"""Tests for the permission-overlay (Complets-style) backend."""

import pytest

from repro.hw.mpu import MPU, MPURegion
from repro.hw.overlay import (
    OverlayProtection,
    compile_regions_to_overlay,
    use_overlay,
)
from repro.hw.pmp import PmpProtection


class TestCompilation:
    def test_empty_set_is_the_default_map(self):
        starts, perms = compile_regions_to_overlay([None] * 8)
        assert starts == [0]
        assert perms == [None]

    def test_highest_numbered_region_wins(self):
        low = MPURegion(number=1, base=0x20000000, size=0x400,
                        priv="RW", unpriv="NA")
        high = MPURegion(number=6, base=0x20000000, size=0x400,
                         priv="RW", unpriv="RW")
        starts, perms = compile_regions_to_overlay([low, high])
        index = starts.index(0x20000000)
        assert perms[index] == ("RW", "RW")

    def test_disabled_region_is_ignored(self):
        ghost = MPURegion(number=5, base=0x20000000, size=0x400,
                          priv="RW", unpriv="RW", enabled=False)
        starts, perms = compile_regions_to_overlay([ghost])
        assert all(pair is None for pair in perms)

    def test_subregion_hole_falls_through(self):
        # Sub-region 1 disabled: that interval reverts to the default
        # map (None) while its neighbours keep the region's pair.
        region = MPURegion(number=3, base=0x20000000, size=0x400,
                           priv="RW", unpriv="RO",
                           subregion_disable=0b00000010)
        starts, perms = compile_regions_to_overlay([region])
        sub = region.subregion_size
        assert perms[starts.index(0x20000000)] == ("RW", "RO")
        assert perms[starts.index(0x20000000 + sub)] is None
        assert perms[starts.index(0x20000000 + 2 * sub)] == ("RW", "RO")


class TestSemantics:
    def _overlay(self, *regions, privdefena=True):
        overlay = OverlayProtection()
        overlay.privdefena = privdefena
        for region in regions:
            overlay.set_region(region)
        overlay.enabled = True
        return overlay

    def test_disabled_unit_allows_everything(self):
        overlay = OverlayProtection()
        assert overlay.allows(0xDEAD0000, 4, False, True)

    def test_unprivileged_no_match_denied(self):
        overlay = self._overlay()
        assert not overlay.allows(0x20000000, 4, False, False)
        assert overlay.allows(0x20000000, 4, True, False)

    def test_privdefena_clear_denies_privileged_no_match(self):
        overlay = self._overlay(privdefena=False)
        assert not overlay.allows(0x20000000, 4, True, False)

    def test_read_only_denies_writes(self):
        region = MPURegion(number=2, base=0x20000000, size=0x100,
                           priv="RW", unpriv="RO")
        overlay = self._overlay(region)
        assert overlay.allows(0x20000010, 4, False, False)
        assert not overlay.allows(0x20000010, 4, False, True)

    def test_straddling_access_checks_both_ends(self):
        region = MPURegion(number=2, base=0x20000000, size=0x100,
                           priv="RW", unpriv="RW")
        overlay = self._overlay(region)
        # Last byte of the window is fine; one past the end is not.
        assert overlay.allows(0x200000FC, 4, False, True)
        assert not overlay.allows(0x200000FE, 4, False, True)

    def test_decision_cache_dropped_on_configuration_epoch(self):
        region = MPURegion(number=2, base=0x20000000, size=0x100,
                           priv="RW", unpriv="RW")
        overlay = self._overlay(region)
        epoch = overlay.epoch
        assert overlay.allows(0x20000010, 4, False, True)
        assert overlay._decisions
        overlay.clear_region(2)
        assert overlay.epoch == epoch + 1
        assert not overlay._decisions
        assert not overlay.allows(0x20000010, 4, False, True)

    def test_snapshot_restore_roundtrip(self):
        region = MPURegion(number=4, base=0x20000000, size=0x100,
                           priv="RW", unpriv="RO")
        overlay = self._overlay(region)
        saved = overlay.snapshot()
        overlay.load_configuration([])
        assert not overlay.allows(0x20000010, 4, False, False)
        overlay.restore(saved)
        assert overlay.allows(0x20000010, 4, False, False)
        assert not overlay.allows(0x20000010, 4, False, True)


class TestCostModel:
    def test_switch_costs_order_overlay_mpu_pmp(self):
        """The whole point of the substrate: overlay switches are one
        register write, PMP switches rewrite the most CSRs."""
        assert (OverlayProtection.switch_base_cost
                < MPU.switch_base_cost
                < PmpProtection.switch_base_cost)
        assert (OverlayProtection.region_switch_cost
                < MPU.region_switch_cost
                < PmpProtection.region_switch_cost)


class TestEndToEnd:
    def test_pinlock_runs_under_opec_on_overlay(self):
        """OPEC-Monitor unchanged, protection swapped for the overlay."""
        from repro import build_opec, run_image
        from repro.apps import pinlock

        app = pinlock.build(rounds=2)
        artifacts = build_opec(app.module, app.board, app.specs)
        result = run_image(artifacts.image, setup=app.setup,
                           max_instructions=app.max_instructions,
                           backend="overlay")
        app.verify_run(result.machine, result.halt_code)
        assert isinstance(result.machine.enforcement, OverlayProtection)

    def test_isolation_still_enforced_on_overlay(self):
        import repro.ir as ir
        from repro import build_opec, run_image
        from repro.hw import SecurityAbort, stm32f4_discovery
        from tests.conftest import MINI_SPECS, build_mini_module

        probe = build_opec(build_mini_module(), stm32f4_discovery(),
                           MINI_SPECS)
        secret = probe.module.get_global("secret")
        leaked = probe.image.global_address(secret)

        module = build_mini_module()
        victim = module.get_function("task_b")
        block = victim.blocks[0]
        ret = block.instructions.pop()
        b = ir.IRBuilder(victim, block)
        b.store(0xBAD, b.inttoptr(leaked, ir.I32))
        block.instructions.append(ret)
        artifacts = build_opec(module, stm32f4_discovery(), MINI_SPECS)
        with pytest.raises(SecurityAbort):
            run_image(artifacts.image, setup=lambda m: use_overlay(m))

"""Property-based tests: interpreter arithmetic vs a Python oracle."""

from hypothesis import given, settings, strategies as st

import repro.ir as ir
from repro.hw import Machine, stm32f4_discovery
from repro.image import build_vanilla_image
from repro.interp import Interpreter
from repro.ir import I32

WORD = 0xFFFFFFFF
u32 = st.integers(min_value=0, max_value=WORD)


def _signed(x):
    return (x & 0x7FFFFFFF) - (x & 0x80000000)


def oracle(op, a, b):
    if op == "add":
        return (a + b) & WORD
    if op == "sub":
        return (a - b) & WORD
    if op == "mul":
        return (a * b) & WORD
    if op == "udiv":
        return (a // b) & WORD if b else 0
    if op == "sdiv":
        sa, sb = _signed(a), _signed(b)
        return int(sa / sb) & WORD if sb else 0
    if op == "urem":
        return (a % b) & WORD if b else 0
    if op == "srem":
        sa, sb = _signed(a), _signed(b)
        return (sa - int(sa / sb) * sb) & WORD if sb else 0
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return (a << (b & 31)) & WORD
    if op == "lshr":
        return (a >> (b & 31)) & WORD
    if op == "ashr":
        return (_signed(a) >> (b & 31)) & WORD
    raise AssertionError(op)


def cmp_oracle(pred, a, b):
    sa, sb = _signed(a), _signed(b)
    return {
        "eq": a == b, "ne": a != b,
        "ult": a < b, "ule": a <= b, "ugt": a > b, "uge": a >= b,
        "slt": sa < sb, "sle": sa <= sb, "sgt": sa > sb, "sge": sa >= sb,
    }[pred]


def run_expr(build):
    module = ir.Module("m")
    _f, b = ir.define(module, "main", I32, [])
    b.halt(build(b))
    board = stm32f4_discovery()
    image = build_vanilla_image(module, board)
    machine = Machine(board)
    image.initialize_memory(machine)
    return Interpreter(machine, image).run()


@given(op=st.sampled_from(ir.BINARY_OPS), a=u32, b=u32)
@settings(max_examples=400, deadline=None)
def test_binop_matches_oracle(op, a, b):
    assert run_expr(lambda bb: bb.binop(op, a, b)) == oracle(op, a, b)


@given(pred=st.sampled_from(ir.ICMP_PREDICATES), a=u32, b=u32)
@settings(max_examples=300, deadline=None)
def test_icmp_matches_oracle(pred, a, b):
    result = run_expr(lambda bb: bb.icmp(pred, a, b))
    assert result == int(cmp_oracle(pred, a, b))


@given(value=u32)
@settings(max_examples=100, deadline=None)
def test_store_load_roundtrip(value):
    def build(b):
        slot = b.alloca(I32)
        b.store(b.const(value), slot)
        return b.load(slot)

    assert run_expr(build) == value


@given(value=st.integers(min_value=0, max_value=0xFF))
@settings(max_examples=50, deadline=None)
def test_sext_trunc_roundtrip(value):
    def build(b):
        truncated = b.trunc(b.const(value), ir.I8)
        return b.cast("sext", truncated, I32)

    expected = (value - 0x100 if value & 0x80 else value) & WORD
    assert run_expr(build) == expected

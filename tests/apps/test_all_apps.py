"""Integration tests: every workload runs correctly under every build.

Each application's ``check`` asserts device-level evidence (UART
transcript, LCD frames, USB disk contents, echoed TCP frames, CRC), so
a pass means the firmware actually did its job under enforcement.
"""

import pytest

from repro import build_opec, build_vanilla, run_image
from repro.baselines import build_aces
from repro.eval.workloads import build_app

QUICK_APPS = ("PinLock", "FatFs-uSD", "Camera", "CoreMark")
SLOW_APPS = ("Animation", "LCD-uSD", "TCP-Echo")


@pytest.mark.parametrize("name", QUICK_APPS + SLOW_APPS)
def test_vanilla_run(name):
    app = build_app(name, profile="quick")
    image = build_vanilla(app.module, app.board)
    result = run_image(image, setup=app.setup,
                       max_instructions=app.max_instructions)
    app.verify_run(result.machine, result.halt_code)


@pytest.mark.parametrize("name", QUICK_APPS + SLOW_APPS)
def test_opec_run_matches_vanilla(name):
    app = build_app(name, profile="quick")
    vanilla = run_image(build_vanilla(app.module, app.board),
                        setup=app.setup,
                        max_instructions=app.max_instructions)
    artifacts = build_opec(app.module, app.board, app.specs)
    opec = run_image(artifacts.image, setup=app.setup,
                     max_instructions=app.max_instructions)
    app.verify_run(opec.machine, opec.halt_code)
    assert opec.halt_code == vanilla.halt_code
    # Isolation really was on.
    assert opec.machine.mpu.enabled
    assert not opec.machine.base_privilege
    assert opec.hooks.switch_count > 0


@pytest.mark.parametrize("name", ("PinLock", "FatFs-uSD"))
@pytest.mark.parametrize("strategy", ("ACES1", "ACES2", "ACES3"))
def test_aces_run_matches_vanilla(name, strategy):
    app = build_app(name, profile="quick")
    vanilla = run_image(build_vanilla(app.module, app.board),
                        setup=app.setup,
                        max_instructions=app.max_instructions)
    artifacts = build_aces(app.module, app.board, strategy)
    result = run_image(artifacts.image, setup=app.setup,
                       max_instructions=app.max_instructions)
    app.verify_run(result.machine, result.halt_code)
    assert result.halt_code == vanilla.halt_code


@pytest.mark.parametrize("name, expected_ops", [
    ("PinLock", 6), ("Animation", 8), ("FatFs-uSD", 10), ("LCD-uSD", 11),
    ("TCP-Echo", 9), ("Camera", 9), ("CoreMark", 9),
])
def test_operation_counts_match_table1(name, expected_ops):
    app = build_app(name, profile="quick")
    artifacts = build_opec(app.module, app.board, app.specs)
    assert len(artifacts.operations) == expected_ops


@pytest.mark.parametrize("name", QUICK_APPS)
def test_opec_runtime_overhead_is_small(name):
    app = build_app(name, profile="quick")
    vanilla = run_image(build_vanilla(app.module, app.board),
                        setup=app.setup,
                        max_instructions=app.max_instructions)
    artifacts = build_opec(app.module, app.board, app.specs)
    opec = run_image(artifacts.image, setup=app.setup,
                     max_instructions=app.max_instructions)
    overhead = opec.cycles / vanilla.cycles - 1.0
    assert overhead < 0.10, f"{name} overhead {overhead:.1%}"

"""Storage HAL authored in IR: SDIO block driver ("stm32_hal_sd.c")
and USB mass-storage writer ("usbh_msc.c").

Single-block reads/writes stream 128 words through the controller FIFO
— the dominant MMIO traffic in the Animation / FatFs-uSD / LCD-uSD /
Camera workloads.
"""

from __future__ import annotations

from types import SimpleNamespace

from ...hw.board import Board
from ...ir import I32, Module, VOID, define, ptr

SDIO_POWER = 0x00
SDIO_ARG = 0x08
SDIO_CMD = 0x0C
SDIO_STA = 0x34
SDIO_FIFO = 0x80
CMD_READ_BLOCK = 17
CMD_WRITE_BLOCK = 24
STA_CMDREND = 1 << 6

USB_CTRL = 0x00
USB_BLK = 0x04
USB_DATA = 0x08
USB_STA = 0x0C

WORDS_PER_BLOCK = 128


STA_ERRORS = 0x3F  # CCRCFAIL/DCRCFAIL/CTIMEOUT/DTIMEOUT/TXUNDERR/RXOVERR


def add_sd_hal(module: Module, board: Board) -> SimpleNamespace:
    base = board.peripheral("SDIO").base
    p32 = ptr(I32)

    hsd_t = module.struct("SD_Handle", [
        ("instance", I32), ("state", I32), ("error", I32),
        ("blocks_read", I32), ("blocks_written", I32),
    ])
    hsd = module.add_global("hsd", hsd_t, source_file="stm32_hal_sd.c")
    sd_abort_count = module.add_global("sd_abort_count", I32, 0,
                                       source_file="stm32_hal_sd.c")

    # The abort path only runs on card errors — never in the model, but
    # it rides along in every SD-using operation's dependency set (the
    # untaken-branch over-privilege of §6.4).
    sd_abort, b = define(module, "SD_Abort", VOID, [],
                         source_file="stm32_hal_sd.c")
    b.store(b.add(b.load(sd_abort_count), 1), sd_abort_count)
    b.store(0, b.mmio(base + SDIO_POWER))  # power the card down
    b.halt(0xED)

    sd_check_error, b = define(module, "SD_CheckError", VOID, [],
                               source_file="stm32_hal_sd.c")
    status = b.load(b.mmio(base + SDIO_STA))
    failed = b.icmp("ne", b.and_(status, STA_ERRORS & ~STA_CMDREND), 0)
    with b.if_then(failed):
        b.store(status, b.gep(hsd, 0, 2))
        b.store(3, b.gep(hsd, 0, 1))  # HAL_SD_STATE_ERROR
        b.call(sd_abort)
    b.ret_void()

    sd_init, b = define(module, "BSP_SD_Init", VOID, [],
                        source_file="stm32_hal_sd.c")
    b.store(base, b.gep(hsd, 0, 0))
    b.store(3, b.mmio(base + SDIO_POWER))  # power on
    with b.while_loop(
        lambda: b.icmp(
            "eq", b.and_(b.load(b.mmio(base + SDIO_STA)), STA_CMDREND), 0
        )
    ):
        pass
    b.call(sd_check_error)
    b.store(1, b.gep(hsd, 0, 1))  # HAL_SD_STATE_READY
    b.ret_void()

    read_block, b = define(module, "BSP_SD_ReadBlock", VOID, [I32, p32],
                           source_file="stm32_hal_sd.c")
    block, buffer = read_block.params
    b.store(block, b.mmio(base + SDIO_ARG))
    b.store(CMD_READ_BLOCK, b.mmio(base + SDIO_CMD))
    with b.for_range(0, WORDS_PER_BLOCK) as load_i:
        i = load_i()
        word = b.load(b.mmio(base + SDIO_FIFO))
        b.store(word, b.gep(buffer, i))
    b.call(sd_check_error)
    b.store(b.add(b.load(b.gep(hsd, 0, 3)), 1), b.gep(hsd, 0, 3))
    b.ret_void()

    write_block, b = define(module, "BSP_SD_WriteBlock", VOID, [I32, p32],
                            source_file="stm32_hal_sd.c")
    block, buffer = write_block.params
    b.store(block, b.mmio(base + SDIO_ARG))
    b.store(CMD_WRITE_BLOCK, b.mmio(base + SDIO_CMD))
    with b.for_range(0, WORDS_PER_BLOCK) as load_i:
        i = load_i()
        b.store(b.load(b.gep(buffer, i)), b.mmio(base + SDIO_FIFO))
    b.call(sd_check_error)
    b.store(b.add(b.load(b.gep(hsd, 0, 4)), 1), b.gep(hsd, 0, 4))
    b.ret_void()

    return SimpleNamespace(
        init=sd_init, read_block=read_block, write_block=write_block,
        check_error=sd_check_error, handle=hsd,
    )


def add_usb_hal(module: Module, board: Board) -> SimpleNamespace:
    base = board.peripheral("USB_OTG").base
    p32 = ptr(I32)

    usb_init, b = define(module, "USBH_MSC_Init", VOID, [],
                         source_file="usbh_msc.c")
    b.store(1, b.mmio(base + USB_CTRL))
    with b.while_loop(
        lambda: b.icmp("eq", b.and_(b.load(b.mmio(base + USB_STA)), 1), 0)
    ):
        pass
    b.ret_void()

    usb_write_block, b = define(module, "USBH_MSC_WriteBlock", VOID,
                                [I32, p32], source_file="usbh_msc.c")
    block, buffer = usb_write_block.params
    b.store(block, b.mmio(base + USB_BLK))
    with b.for_range(0, WORDS_PER_BLOCK) as load_i:
        i = load_i()
        b.store(b.load(b.gep(buffer, i)), b.mmio(base + USB_DATA))
    b.ret_void()

    return SimpleNamespace(init=usb_init, write_block=usb_write_block)

"""Unit tests for the Machine: privilege, PPB, MPU-checked accesses."""

import pytest

from repro.hw import (
    BusFault,
    Machine,
    MemManageFault,
    MPURegion,
    stm32f4_discovery,
    stm32479i_eval,
)


class TestPrivilege:
    def test_starts_privileged(self, machine):
        assert machine.privileged

    def test_drop_privilege(self, machine):
        machine.drop_privilege()
        assert not machine.privileged
        assert not machine.base_privilege

    def test_privileged_mode_restores_base(self, machine):
        machine.drop_privilege()
        with machine.privileged_mode():
            assert machine.privileged
        assert not machine.privileged

    def test_handler_can_lift_base_privilege(self, machine):
        machine.drop_privilege()
        with machine.privileged_mode():
            machine.set_base_privilege(True)
        assert machine.privileged


class TestPPB:
    def test_unprivileged_ppb_access_bus_faults(self, machine):
        machine.drop_privilege()
        with pytest.raises(BusFault) as excinfo:
            machine.load(0xE000E014, 4)  # SysTick RVR
        assert excinfo.value.is_ppb
        assert machine.stats.bus_faults == 1

    def test_privileged_ppb_access_ok(self, machine):
        machine.store(0xE000E014, 4, 1234)
        assert machine.load(0xE000E014, 4) == 1234

    def test_busfault_carries_store_value(self, machine):
        machine.drop_privilege()
        with pytest.raises(BusFault) as excinfo:
            machine.store(0xE000E014, 4, 77)
        assert excinfo.value.value == 77
        assert excinfo.value.is_write


class TestMPUChecked:
    def test_denied_store_raises_memmanage(self, machine):
        machine.mpu.enabled = True
        machine.drop_privilege()
        with pytest.raises(MemManageFault):
            machine.store(machine.board.sram_base, 4, 1)
        assert machine.stats.memmanage_faults == 1

    def test_region_grants_access(self, machine):
        base = machine.board.sram_base
        machine.mpu.enabled = True
        machine.mpu.set_region(MPURegion(
            number=0, base=base, size=0x1000, priv="RW", unpriv="RW"))
        machine.drop_privilege()
        machine.store(base + 8, 4, 42)
        assert machine.load(base + 8, 4) == 42

    def test_direct_access_bypasses_mpu(self, machine):
        machine.mpu.enabled = True
        machine.drop_privilege()
        machine.write_direct(machine.board.sram_base, 4, 7)
        assert machine.read_direct(machine.board.sram_base, 4) == 7


class TestDevices:
    def test_core_devices_always_present(self, machine):
        assert "DWT" in machine.devices
        assert "SysTick" in machine.devices

    def test_dwt_cyccnt_reflects_cycles(self, machine):
        machine.consume(123)
        assert machine.load(0xE0001004, 4) == 123

    def test_dwt_cyccnt_reset(self, machine):
        machine.consume(50)
        machine.store(0xE0001004, 4, 0)
        machine.consume(7)
        assert machine.load(0xE0001004, 4) == 7

    def test_attach_device_maps_window(self, machine):
        from repro.hw.peripherals import RCC

        rcc = machine.attach_device("RCC", RCC())
        base = machine.board.peripheral("RCC").base
        machine.store(base + 0x30, 4, 0xFF)
        assert rcc.registers[0x30] == 0xFF


class TestBoards:
    def test_discovery_sizes(self):
        board = stm32f4_discovery()
        assert board.flash_size == 1024 * 1024
        assert board.sram_size == 192 * 1024

    def test_eval_sizes_and_extras(self):
        board = stm32479i_eval()
        assert board.flash_size == 2 * 1024 * 1024
        assert board.sram_size == 288 * 1024
        assert "LTDC" in board.peripherals
        assert "ETH" in board.peripherals

    def test_peripheral_at(self):
        board = stm32f4_discovery()
        assert board.peripheral_at(0x40023800).name == "RCC"
        assert board.peripheral_at(0x40023BFF).name == "RCC"
        assert board.peripheral_at(0x30000000) is None

    def test_core_peripherals_flagged(self):
        board = stm32f4_discovery()
        assert board.peripheral("SysTick").core
        assert not board.peripheral("RCC").core
        assert board.is_ppb(0xE000E010)
        assert not board.is_ppb(0x40000000)

#!/usr/bin/env python3
"""The PinLock case study (§6.1) as a runnable demo.

A buggy ``HAL_UART_Receive_IT`` hands the attacker an arbitrary-write
primitive over the serial port.  The attacker overwrites the stored
``KEY`` hash from inside ``Lock_Task``, then unlocks the lock with a
PIN of their choosing.

* On the vanilla build the attack succeeds silently.
* Under OPEC, ``Lock_Task``'s operation owns no copy of ``KEY``; the
  write faults and the monitor aborts the firmware.

Run:  python examples/pinlock_attack.py
"""

from repro import build_opec, build_vanilla, run_image
from repro.apps import pinlock
from repro.apps.hal.crypto import fnv1a_host
from repro.apps.hal.uart import ATTACK_TRIGGER
from repro.hw import SecurityAbort
from repro.hw.peripherals import GPIO, RCC, UART

ATTACK_PIN = b"6666"


def attack_setup(key_address: int):
    forged = fnv1a_host(ATTACK_PIN)

    def setup(machine):
        machine.attach_device("RCC", RCC())
        for port in ("GPIOA", "GPIOB", "GPIOC", "GPIOD"):
            machine.attach_device(port, GPIO())
        uart = machine.attach_device("USART2", UART())
        uart.feed(b"9999")                           # rejected PIN
        uart.feed(bytes([ATTACK_TRIGGER]))           # exploit header
        uart.feed(key_address.to_bytes(4, "little"))  # target address
        uart.feed(forged.to_bytes(4, "little"))       # forged key hash
        uart.feed(ATTACK_PIN)                         # attacker's PIN
        uart.feed(b"0000")                            # lock again

    return setup


def main() -> None:
    print("== PinLock case study (paper §6.1) ==\n")

    # Vanilla: find KEY's address, fire the exploit.
    app = pinlock.build(rounds=1, vulnerable=True)
    image = build_vanilla(app.module, app.board)
    key_addr = image.global_address(image.module.get_global("KEY"))
    print(f"KEY lives at 0x{key_addr:08X} in the vanilla build")
    result = run_image(image, setup=attack_setup(key_addr),
                       max_instructions=app.max_instructions)
    transcript = result.machine.device("USART2").transmitted()
    print(f"vanilla: attacker's PIN accepted -> transcript={transcript!r}")
    print("         the lock opened for PIN"
          f" {ATTACK_PIN.decode()} (attack SUCCEEDED)\n")

    # OPEC: same exploit against the public copy of KEY.
    app = pinlock.build(rounds=1, vulnerable=True)
    artifacts = build_opec(app.module, app.board, app.specs)
    key = artifacts.module.get_global("KEY")
    target = artifacts.image.public_addresses[key]
    print(f"under OPEC, KEY's public copy lives at 0x{target:08X}")
    lock_op = artifacts.policy.operation_by_entry("Lock_Task")
    section = artifacts.image.layout_of(lock_op).section
    print(f"Lock_Task's data section: 0x{section.base:08X}"
          f"..0x{section.end:08X} (no copy of KEY inside)")
    try:
        run_image(artifacts.image, setup=attack_setup(target),
                  max_instructions=app.max_instructions)
        print("opec   : attack succeeded (this should not happen)")
    except SecurityAbort as abort:
        print(f"opec   : attack BLOCKED -> {abort}")


if __name__ == "__main__":
    main()

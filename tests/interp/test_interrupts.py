"""Unit tests for the interrupt model (SysTick tick + IRQ dispatch)."""

import pytest

import repro.ir as ir
from repro import build_opec, build_vanilla, run_image
from repro.hw import Machine, stm32f4_discovery
from repro.hw.machine import SYSTICK_IRQ
from repro.image import build_vanilla_image
from repro.interp import Interpreter
from repro.ir import I32, VOID
from repro.partition import OperationSpec, PartitionError


def _tick_module(*, arm: bool = True, work: int = 50_000):
    """main arms SysTick, spins, halts with the tick count."""
    module = ir.Module("ticks")
    ticks = module.add_global("uwTick", I32, 0, source_file="hal.c")
    handler, b = ir.define(module, "SysTick_Handler", VOID, [],
                           source_file="stm32_it.c", irq_number=15)
    b.store(b.add(b.load(ticks), 1), ticks)
    b.ret_void()
    _m, b = ir.define(module, "main", I32, [], source_file="main.c")
    if arm:
        b.store(999, b.mmio(0xE000E014))   # RVR: tick every 1000 cycles
        b.store(7, b.mmio(0xE000E010))     # CSR: ENABLE | TICKINT
    with b.for_range(0, work):
        pass
    b.halt(b.load(ticks))
    return module


class TestSysTickIRQ:
    def test_handler_fires_periodically(self):
        code = run_image(build_vanilla(_tick_module(), stm32f4_discovery()),
                         max_instructions=10_000_000).halt_code
        # ~50k loop iterations * ~7 cycles / 1000-cycle period.
        assert code > 100

    def test_no_ticks_when_not_armed(self):
        code = run_image(
            build_vanilla(_tick_module(arm=False), stm32f4_discovery()),
            max_instructions=10_000_000).halt_code
        assert code == 0

    def test_disarm_stops_ticks(self, machine):
        machine.store(0xE000E014, 4, 99)
        machine.store(0xE000E010, 4, 7)
        machine.consume(1000)
        assert machine.pending_irqs
        machine.pending_irqs.clear()
        machine.store(0xE000E010, 4, 0)  # disable
        machine.consume(10_000)
        assert not machine.pending_irqs

    def test_long_stall_coalesces_to_one_tick(self, machine):
        machine.arm_systick(999)
        machine.consume(100_000)  # a hundred periods in one stall
        assert machine.pending_irqs.count(SYSTICK_IRQ) == 1
        machine.pending_irqs.clear()
        machine.consume(1000)
        assert machine.pending_irqs.count(SYSTICK_IRQ) == 1


class TestDispatchSemantics:
    def test_handler_runs_privileged_then_restores(self):
        module = ir.Module("m")
        seen = module.add_global("seen_priv", I32, 0xFF)
        handler, b = ir.define(module, "H", VOID, [], irq_number=40)
        b.store(1, seen)
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        with b.for_range(0, 100):
            pass
        b.halt(b.load(seen))

        board = stm32f4_discovery()
        image = build_vanilla_image(module, board)
        machine = Machine(board)
        image.initialize_memory(machine)
        machine.drop_privilege()
        interp = Interpreter(machine, image)
        privilege_during = []
        original = interp._dispatch_irq

        def spy(number):
            original(number)
            privilege_during.append(machine.privileged)

        interp._dispatch_irq = spy
        machine.raise_irq(40)
        assert interp.run() == 1
        assert privilege_during == [True]
        assert not machine.privileged  # restored after exception return

    def test_unvectored_irq_dropped(self):
        module = _tick_module(arm=False, work=10)
        board = stm32f4_discovery()
        image = build_vanilla_image(module, board)
        machine = Machine(board)
        image.initialize_memory(machine)
        interp = Interpreter(machine, image)
        machine.raise_irq(77)  # nobody handles this one
        assert interp.run() == 0

    def test_no_nesting(self):
        """A handler is never preempted by another pending IRQ."""
        module = ir.Module("m")
        depth = module.add_global("depth", I32, 0)
        worst = module.add_global("worst", I32, 0)
        handler, b = ir.define(module, "H", VOID, [], irq_number=41)
        d = b.add(b.load(depth), 1)
        b.store(d, depth)
        with b.if_then(b.icmp("ugt", d, b.load(worst))):
            b.store(d, worst)
        with b.for_range(0, 10):
            pass
        b.store(b.sub(b.load(depth), 1), depth)
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        with b.for_range(0, 50):
            pass
        b.halt(b.load(worst))
        board = stm32f4_discovery()
        image = build_vanilla_image(module, board)
        machine = Machine(board)
        image.initialize_memory(machine)
        interp = Interpreter(machine, image)
        for _ in range(5):
            machine.raise_irq(41)
        assert interp.run() == 1  # max observed depth


class TestOpecInteraction:
    def test_handler_excluded_from_operations_and_cannot_be_entry(self):
        from repro.analysis import ResourceAnalysis, build_call_graph
        from repro.partition import partition_operations

        module = _tick_module()
        board = stm32f4_discovery()
        graph = build_call_graph(module)
        resources = ResourceAnalysis(module, board, graph.andersen)
        with pytest.raises(PartitionError, match="interrupt"):
            partition_operations(
                module, graph, [OperationSpec("SysTick_Handler")], resources)

    def test_pinlock_ticks_under_opec(self):
        from repro.apps import pinlock

        app = pinlock.build(rounds=2)
        artifacts = build_opec(app.module, app.board, app.specs)
        result = run_image(artifacts.image, setup=app.setup,
                           max_instructions=app.max_instructions)
        app.verify_run(result.machine, result.halt_code)
        uw_tick = artifacts.module.get_global("uwTick")
        address = artifacts.image.global_address(uw_tick)
        # The ISR ran (privileged) while unprivileged operations executed.
        assert result.machine.read_direct(address, 4) > 0

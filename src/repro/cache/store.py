"""On-disk content-addressed artifact store.

Layout::

    <root>/<fingerprint[:16]>/<digest[:2]>/<digest>.bin

Partitioning by pipeline fingerprint means entries written by an older
(or newer) compiler can never even be *looked at* — version
invalidation is structural, not a header check.

Entry format: a magic line, the SHA-256 of the compressed payload, a
newline, then the zlib-compressed pickle.  Loads verify the hash
before unpickling; any mismatch, truncation, or unpickling error
counts as a corrupt entry, deletes the file best-effort, and reports a
miss so the caller falls back to a cold build.  Writes go to a
pid-suffixed temp file followed by :func:`os.replace`, so concurrent
``REPRO_JOBS`` workers can share one store without ever observing a
half-written entry.

Configuration (read per call, so tests can monkeypatch):

* ``REPRO_CACHE`` unset → ``.repro-cache/`` under the current
  directory;
* ``REPRO_CACHE=<dir>`` → that directory;
* ``REPRO_CACHE=off`` (or ``0`` / ``none`` / ``disabled``) → caching
  bypassed entirely (:func:`active_store` returns ``None``).
"""

from __future__ import annotations

import os
import pickle
import time
import zlib
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Iterator, Optional

from ..obs.events import CACHE_HIT, CACHE_MISS, CACHE_STORE, DOMAIN_HOST
from ..obs.recorder import active_recorder
from .digest import pipeline_fingerprint

_MAGIC = b"opec-cache-v1"
_OFF_VALUES = frozenset({"off", "0", "none", "disabled", "false"})
DEFAULT_ROOT = ".repro-cache"


@dataclass
class CacheCounters:
    """Cache traffic counters; additive across stores and processes."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def merge(self, other: "CacheCounters | dict") -> "CacheCounters":
        values = other if isinstance(other, dict) else asdict(other)
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + int(values.get(f.name, 0)))
        return self

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


# Process-wide aggregate over every store instance (workers report
# this back to the pool parent so merged rows can show totals).
GLOBAL_COUNTERS = CacheCounters()


def counters_snapshot() -> dict[str, int]:
    return GLOBAL_COUNTERS.as_dict()


def counters_delta(since: dict[str, int]) -> dict[str, int]:
    now = counters_snapshot()
    return {key: now[key] - since.get(key, 0) for key in now}


@dataclass
class ArtifactStore:
    """One content-addressed store rooted at ``root``."""

    root: Path
    fingerprint: str = field(default_factory=pipeline_fingerprint)
    counters: CacheCounters = field(default_factory=CacheCounters)

    # -- paths --------------------------------------------------------

    @property
    def version_dir(self) -> Path:
        return self.root / self.fingerprint[:16]

    def path_for(self, digest: str) -> Path:
        return self.version_dir / digest[:2] / f"{digest}.bin"

    def entry_paths(self) -> Iterator[Path]:
        if not self.version_dir.is_dir():
            return iter(())
        return self.version_dir.glob("*/*.bin")

    # -- read/write ---------------------------------------------------

    def get(self, digest: str) -> Optional[Any]:
        """The stored object, or ``None`` on miss/corruption."""
        # ``wall_us`` on the lookup events is host-side diagnostics
        # (hot vs. cold store latency in the fleet trace); it never
        # reaches a deterministic export.
        start = time.perf_counter()
        path = self.path_for(digest)
        try:
            raw = path.read_bytes()
        except OSError:
            self._count("misses")
            self._trace(CACHE_MISS, digest, wall_us=self._us(start))
            return None
        try:
            obj = self._decode(raw)
        except Exception:
            self._count("corrupt")
            self._count("misses")
            self._trace(CACHE_MISS, digest, corrupt=1,
                        wall_us=self._us(start))
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._count("hits")
        self._count("bytes_read", len(raw))
        self._trace(CACHE_HIT, digest, bytes=len(raw),
                    wall_us=self._us(start))
        return obj

    def put(self, digest: str, obj: Any) -> int:
        """Store ``obj``; returns the entry size in bytes."""
        payload = zlib.compress(
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), 6)
        import hashlib

        entry = b"%s\n%s\n%s" % (
            _MAGIC, hashlib.sha256(payload).hexdigest().encode(), payload)
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_bytes(entry)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full store degrades to "no cache", never
            # to a failed build.
            try:
                tmp.unlink()
            except OSError:
                pass
            return 0
        self._count("stores")
        self._count("bytes_written", len(entry))
        self._trace(CACHE_STORE, digest, bytes=len(entry))
        return len(entry)

    @staticmethod
    def _decode(raw: bytes) -> Any:
        import hashlib

        magic, want_hash, payload = raw.split(b"\n", 2)
        if magic != _MAGIC:
            raise ValueError("bad magic")
        if hashlib.sha256(payload).hexdigest().encode() != want_hash:
            raise ValueError("payload hash mismatch")
        return pickle.loads(zlib.decompress(payload))

    # -- maintenance --------------------------------------------------

    def verify(self, prune: bool = False) -> tuple[int, list[Path]]:
        """Integrity-check every entry; returns (ok_count, bad_paths)."""
        ok, bad = 0, []
        for path in self.entry_paths():
            try:
                self._decode(path.read_bytes())
                ok += 1
            except Exception:
                bad.append(path)
                if prune:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        return ok, bad

    def entry_count(self) -> int:
        return sum(1 for _ in self.entry_paths())

    def total_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entry_paths())

    def clear(self) -> int:
        """Remove every entry of every fingerprint under ``root``."""
        import shutil

        removed = 0
        if self.root.is_dir():
            for child in self.root.iterdir():
                if child.is_dir():
                    removed += sum(1 for _ in child.glob("*/*.bin"))
                    shutil.rmtree(child, ignore_errors=True)
        return removed

    def _count(self, name: str, amount: int = 1) -> None:
        setattr(self.counters, name, getattr(self.counters, name) + amount)
        setattr(GLOBAL_COUNTERS, name,
                getattr(GLOBAL_COUNTERS, name) + amount)

    @staticmethod
    def _us(start: float) -> int:
        return int((time.perf_counter() - start) * 1e6)

    @staticmethod
    def _trace(kind: str, digest: str, **args: int) -> None:
        recorder = active_recorder()
        if recorder is not None:
            recorder.instant(kind, digest[:16], None, DOMAIN_HOST,
                             args=args or None)


_stores: dict[tuple[str, str], ArtifactStore] = {}


def cache_root() -> Optional[Path]:
    """The configured store root, or ``None`` when caching is off."""
    raw = os.environ.get("REPRO_CACHE", "").strip()
    if raw.lower() in _OFF_VALUES:
        return None
    return Path(raw) if raw else Path(DEFAULT_ROOT)


def active_store() -> Optional[ArtifactStore]:
    """The process-wide store for the current configuration.

    Instances are memoised per (root, fingerprint) so counters
    accumulate for the lifetime of the process; the environment is
    re-read on every call so tests can flip ``REPRO_CACHE``.
    """
    root = cache_root()
    if root is None:
        return None
    key = (str(root), pipeline_fingerprint())
    store = _stores.get(key)
    if store is None:
        store = ArtifactStore(root=root, fingerprint=key[1])
        _stores[key] = store
    return store


def reset_store_state() -> None:
    """Forget memoised stores and zero the global counters (tests)."""
    _stores.clear()
    for f in fields(GLOBAL_COUNTERS):
        setattr(GLOBAL_COUNTERS, f.name, 0)

"""Multi-threading extension (§7, "Concurrency").

The paper sketches what OPEC needs on a single-core multi-threaded
system: on a context switch the monitor must (1) write back the
suspended thread's operation shadows and refresh the resumed thread's,
and (2) reconfigure the MPU for the resumed thread's operation.  This
module implements exactly that on top of :class:`OpecMonitor`, with a
cooperative round-robin scheduler the tests drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..partition.operations import Operation
from .monitor import OpecMonitor


@dataclass
class ThreadContext:
    """The monitor-visible state of one logical thread."""

    thread_id: int
    operation: Operation
    stack_pointer: int
    stack_mask: int


class ThreadSupport:
    """Single-core context switching per §7 (solution sketch 1)."""

    def __init__(self, monitor: OpecMonitor):
        self.monitor = monitor
        self.threads: dict[int, ThreadContext] = {}
        self.current_thread: Optional[int] = None
        self.switches = 0

    def register_thread(self, thread_id: int, operation: Operation,
                        stack_pointer: int) -> ThreadContext:
        """Declare a thread currently executing inside ``operation``."""
        mask = self.monitor.stack.mask_for(
            self.monitor.stack.boundary_below(stack_pointer))
        context = ThreadContext(
            thread_id=thread_id, operation=operation,
            stack_pointer=stack_pointer, stack_mask=mask,
        )
        self.threads[thread_id] = context
        if self.current_thread is None:
            self.current_thread = thread_id
            self.monitor.current = operation
        return context

    def context_switch(self, interp, to_thread: int) -> None:
        """Suspend the current thread, resume ``to_thread`` (§7 steps
        1-2): shadow write-back + refresh, relocation-table update,
        MPU reconfiguration."""
        target = self.threads[to_thread]
        machine = self.monitor.machine
        machine.consume(machine.enforcement.switch_base_cost)
        self.switches += 1

        with machine.privileged_mode():
            if self.current_thread is not None:
                previous = self.threads[self.current_thread]
                previous.stack_pointer = interp.sp
                previous.stack_mask = self.monitor.current_stack_mask
                previous.operation = self.monitor.current
                # (1) write back the suspended thread's shadows …
                self.monitor.sync.write_back(previous.operation)
            # … and refresh the resumed thread's.
            self.monitor.sync.refresh(target.operation)
            self.monitor.sync.update_relocation_table(target.operation)
            self.monitor.sync.redirect_pointers(target.operation)
            # (2) reconfigure the MPU for the resumed operation.
            self.monitor._addr_cache.clear()
            self.monitor.current = target.operation
            self.monitor.current_stack_mask = target.stack_mask
            self.monitor._load_mpu(target.operation, target.stack_mask)
        interp.sp = target.stack_pointer
        self.current_thread = to_thread

"""Unit tests for the flight recorder ring buffer and env knobs."""

import pytest

from repro.obs.events import BEGIN, DOMAIN_HOST, DOMAIN_SIM, END, INSTANT
from repro.obs.recorder import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    active_recorder,
    attach_crash_context,
    install,
    reset_active,
    trace_capacity,
    trace_enabled,
)


class TestRingBuffer:
    def test_emit_assigns_monotonic_seq(self):
        rec = FlightRecorder()
        events = [rec.instant("k", f"e{i}", i * 10) for i in range(5)]
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]
        assert rec.seq == 5
        assert len(rec) == 5

    def test_capacity_bounds_buffer_and_counts_drops(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.instant("k", f"e{i}", i)
        assert len(rec) == 4
        assert rec.dropped == 6
        assert rec.seq == 10  # emission count survives the drops
        assert [e.name for e in rec.events()] == ["e6", "e7", "e8", "e9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError, match="positive"):
            FlightRecorder(capacity=-3)

    def test_none_ts_falls_back_to_seq(self):
        rec = FlightRecorder()
        rec.instant("k", "host-event", None, domain=DOMAIN_HOST)
        rec.instant("k", "sim-event", 1234)
        host, sim = rec.events()
        assert host.ts == host.seq == 0
        assert sim.ts == 1234

    def test_begin_end_instant_phases(self):
        rec = FlightRecorder()
        assert rec.begin("k", "a", 0).ph == BEGIN
        assert rec.end("k", "a", 1).ph == END
        assert rec.instant("k", "b", 2).ph == INSTANT

    def test_events_filters_by_domain(self):
        rec = FlightRecorder()
        rec.instant("k", "s", 0)
        rec.instant("k", "h", None, domain=DOMAIN_HOST)
        assert [e.name for e in rec.events(DOMAIN_SIM)] == ["s"]
        assert [e.name for e in rec.events(DOMAIN_HOST)] == ["h"]
        assert len(rec.events()) == 2

    def test_tail_returns_most_recent(self):
        rec = FlightRecorder()
        for i in range(6):
            rec.instant("k", f"e{i}", i)
        assert [e.name for e in rec.tail(2)] == ["e4", "e5"]
        assert [e.name for e in rec.tail(100)] == [f"e{i}" for i in range(6)]
        assert rec.tail(0) == []
        assert rec.tail(-1) == []

    def test_clear_resets_everything(self):
        rec = FlightRecorder(capacity=2)
        for i in range(5):
            rec.instant("k", f"e{i}", i)
        rec.clear()
        assert len(rec) == 0
        assert rec.seq == 0
        assert rec.dropped == 0


class TestEnvKnobs:
    def test_trace_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace_enabled() is False

    @pytest.mark.parametrize("value", ["on", "1", "true", "YES", " Enabled "])
    def test_trace_on_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert trace_enabled() is True

    @pytest.mark.parametrize("value", ["", "off", "0", "none", "False"])
    def test_trace_off_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert trace_enabled() is False

    def test_unknown_trace_value_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "maybe")
        with pytest.raises(ValueError, match="REPRO_TRACE"):
            trace_enabled()

    def test_capacity_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_BUF", raising=False)
        assert trace_capacity() == DEFAULT_CAPACITY

    def test_capacity_parses_positive_int(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_BUF", " 1024 ")
        assert trace_capacity() == 1024

    @pytest.mark.parametrize("value", ["0", "-5", "x", "1.5"])
    def test_bad_capacity_fails_loudly(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE_BUF", value)
        with pytest.raises(ValueError, match="REPRO_TRACE_BUF"):
            trace_capacity()


class TestAmbientRecorder:
    @pytest.fixture(autouse=True)
    def _isolate(self, monkeypatch):
        """Leave the process-global recorder exactly as we found it."""
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        previous = install(None)
        reset_active()
        yield
        install(previous)

    def test_off_by_default(self):
        assert active_recorder() is None

    def test_env_enables_ambient_recording(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "on")
        monkeypatch.setenv("REPRO_TRACE_BUF", "128")
        reset_active()
        rec = active_recorder()
        assert isinstance(rec, FlightRecorder)
        assert rec.capacity == 128
        assert active_recorder() is rec  # memoised

    def test_install_overrides_and_returns_previous(self):
        mine = FlightRecorder(capacity=8)
        assert install(mine) is None
        assert active_recorder() is mine
        assert install(None) is mine
        assert active_recorder() is None

    def test_reset_rereads_environment(self, monkeypatch):
        assert active_recorder() is None
        monkeypatch.setenv("REPRO_TRACE", "on")
        assert active_recorder() is None  # still memoised
        reset_active()
        assert active_recorder() is not None


class TestCrashContext:
    def test_formats_tail_with_header(self):
        rec = FlightRecorder()
        rec.begin("op.switch", "a->b", 100, args={"from": "a", "to": "b"})
        rec.end("op.switch", "a->b", 250)
        text = rec.crash_context()
        assert text.startswith("flight recorder: last 2 of 2 events")
        assert "op.switch" in text
        assert "from=a" in text and "to=b" in text

    def test_attach_sets_crash_context_and_emits_crash_event(self):
        rec = FlightRecorder()
        rec.instant("k", "before", 10)
        error = RuntimeError("boom")
        attach_crash_context(error, rec, ts=99)
        assert "run.crash" in error.crash_context
        assert "reason=boom" in error.crash_context
        assert "before" in error.crash_context
        assert rec.events()[-1].kind == "run.crash"

    def test_attach_without_recorder_is_noop(self):
        error = RuntimeError("boom")
        attach_crash_context(error, None)
        assert not hasattr(error, "crash_context")

    def test_window_is_bounded(self):
        rec = FlightRecorder()
        for i in range(100):
            rec.instant("k", f"e{i}", i)
        error = RuntimeError("boom")
        attach_crash_context(error, rec, ts=100, count=5)
        assert "e95" not in error.crash_context
        assert "e99" in error.crash_context

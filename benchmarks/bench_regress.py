#!/usr/bin/env python
"""Interpreter performance regression harness.

Runs a fixed set of workloads and emits ``BENCH_interp.json`` so future
changes have a perf trajectory to compare against:

* ``vanilla_throughput`` — a tight arithmetic/memory loop on the bare
  interpreter with block compilation **on** (the headline
  instructions-per-second of the substrate);
* ``vanilla_throughput_singlestep`` — the same loop with block
  compilation forced **off**, continuing the pre-superinstruction
  trajectory (and pinning that the two modes agree bit-for-bit);
* ``pinlock_opec`` — the PinLock application under full OPEC
  enforcement (operation switches, MPU faults, SysTick, core-peripheral
  emulation), single-step mode — the historical end-to-end trajectory;
* ``pinlock_opec_pmp`` / ``pinlock_opec_overlay`` — the same firmware
  on the other enforcement backends (single-step), so each substrate's
  arbitration path (PMP entry scan + decision cache, overlay interval
  bisect) has its own throughput trajectory;
* ``pinlock_opec_blockcompile`` — PinLock/OPEC/mpu with block
  compilation on: the superinstruction path through the monitor,
  SVC boundaries, and MemManage retries;
* ``batch_throughput`` — N lanes of the throughput firmware
  multiplexed through one process by the batch runner, sharing one
  image and one set of compiled block closures.

For each workload the report records host wall-clock seconds *and* the
simulated quantities (``cycles``, instructions, ``MachineStats``).
Wall-clock is the number optimisations may move; the simulated numbers
are the determinism contract — they must never change, and must not
depend on block compilation or batching (see DESIGN.md, "Performance &
determinism").  The harness enforces the latter directly: compiled
results are compared field-by-field against single-step results and a
mismatch fails the run.

Usage:  PYTHONPATH=src python benchmarks/bench_regress.py [out.json]
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import repro.ir as ir  # noqa: E402
from repro import build_opec, run_image  # noqa: E402
from repro.hw import Machine, stm32f4_discovery  # noqa: E402
from repro.image import build_vanilla_image  # noqa: E402
from repro.interp import BatchRunner, Interpreter  # noqa: E402
from repro.ir import I32  # noqa: E402

BATCH_LANES = 8


def _throughput_module(iterations: int = 100_000):
    module = ir.Module("throughput")
    _m, b = ir.define(module, "main", I32, [])
    acc = b.alloca(I32)
    b.store(0, acc)
    with b.for_range(0, iterations) as load_i:
        b.store(b.add(b.load(acc), load_i()), acc)
    b.halt(b.load(acc))
    return module


def _check_identical(name: str, compiled: dict, reference: dict) -> None:
    """Fail loudly if a compiled run's simulated numbers drift."""
    keys = ("instructions", "cycles", "stats", "halt_code", "switches")
    for key in keys:
        if key in compiled and key in reference \
                and compiled[key] != reference[key]:
            raise SystemExit(
                f"{name}: {key} diverged between block-compiled and "
                f"single-step runs: {compiled[key]!r} != {reference[key]!r}")


def _run_throughput(block_compile: bool) -> dict:
    board = stm32f4_discovery()
    image = build_vanilla_image(_throughput_module(), board)
    machine = Machine(board)
    image.initialize_memory(machine)
    interp = Interpreter(machine, image, max_instructions=10_000_000,
                         block_compile=block_compile)
    start = time.perf_counter()
    interp.run()
    wall = time.perf_counter() - start
    return {
        "wall_clock_s": round(wall, 4),
        "instructions": interp.instructions_executed,
        "cycles": machine.cycles,
        "stats": machine.stats.as_dict(),
        "insts_per_s": round(interp.instructions_executed / wall),
    }


def bench_vanilla_throughput() -> tuple[dict, dict]:
    compiled = _run_throughput(block_compile=True)
    singlestep = _run_throughput(block_compile=False)
    _check_identical("vanilla_throughput", compiled, singlestep)
    return compiled, singlestep


def bench_pinlock_opec(backend: str = "mpu",
                       block_compile: bool = False) -> dict:
    from repro.apps import pinlock

    app = pinlock.build(rounds=2)
    artifacts = build_opec(app.module, app.board, app.specs)
    start = time.perf_counter()
    result = run_image(artifacts.image, setup=app.setup,
                       max_instructions=app.max_instructions,
                       backend=backend, block_compile=block_compile)
    wall = time.perf_counter() - start
    app.verify_run(result.machine, result.halt_code)
    return {
        "wall_clock_s": round(wall, 4),
        "halt_code": result.halt_code,
        "cycles": result.machine.cycles,
        "switches": result.hooks.switch_count,
        "stats": result.machine.stats.as_dict(),
    }


def bench_batch_throughput(lanes: int = BATCH_LANES) -> dict:
    """N throughput lanes through one process, sharing image + blocks."""
    board = stm32f4_discovery()
    image = build_vanilla_image(_throughput_module(), board)
    solo = _run_throughput(block_compile=True)
    runner = BatchRunner(block_compile=True)
    for _ in range(lanes):
        runner.add(image, max_instructions=10_000_000)
    start = time.perf_counter()
    result = runner.run()
    wall = time.perf_counter() - start
    total_insts = 0
    for lane in result.lanes:
        if lane.error is not None:
            raise SystemExit(f"batch_throughput: {lane.name} died: "
                             f"{lane.error}")
        lane_report = {
            "instructions": lane.interpreter.instructions_executed,
            "cycles": lane.machine.cycles,
            "stats": lane.machine.stats.as_dict(),
        }
        _check_identical(f"batch_throughput/{lane.name}", lane_report, solo)
        total_insts += lane.interpreter.instructions_executed
    return {
        "wall_clock_s": round(wall, 4),
        "lanes": lanes,
        "instructions": total_insts,
        "cycles_per_lane": result.lanes[0].machine.cycles,
        "insts_per_s": round(total_insts / wall),
        "compile_metrics":
            result.compile_metrics.snapshot()["counters"],
    }


def main() -> int:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else REPO / "BENCH_interp.json"
    throughput, throughput_singlestep = bench_vanilla_throughput()
    pinlock_mpu = bench_pinlock_opec()
    pinlock_compiled = bench_pinlock_opec(block_compile=True)
    _check_identical("pinlock_opec_blockcompile", pinlock_compiled,
                     pinlock_mpu)
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {
            "vanilla_throughput": throughput,
            "vanilla_throughput_singlestep": throughput_singlestep,
            "pinlock_opec": pinlock_mpu,
            "pinlock_opec_pmp": bench_pinlock_opec("pmp"),
            "pinlock_opec_overlay": bench_pinlock_opec("overlay"),
            "pinlock_opec_blockcompile": pinlock_compiled,
            "batch_throughput": bench_batch_throughput(),
        },
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Stable structural digests for the artifact cache.

A cache key must be identical across processes, ``PYTHONHASHSEED``
values, and machines, and must change whenever anything that could
change the produced artifact changes.  Three ingredients:

* the **module digest** — SHA-256 of the canonical ``.oir`` printer
  form (:func:`repro.ir.printer.print_module`), which captures every
  semantic property of the firmware (types, globals with initializers
  and sanitize ranges, function flags, instruction streams);
* the **configuration digest** — board profile, operation specs /
  ACES strategy, stack/heap sizes, build flavour;
* the **pipeline fingerprint** — SHA-256 over every ``repro`` source
  file plus :data:`CACHE_SCHEMA_VERSION`, so *any* change to a
  compiler, interpreter, or runtime stage invalidates every entry
  without anyone having to remember to bump a constant.  The schema
  version exists for the rare semantic change that lives outside the
  tree (e.g. a pickle-format decision in this package).

Digests are plain hex strings; everything is hashed through a single
``sha256`` so entries can be verified on load.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Sequence

from ..hw.board import Board
from ..ir.module import Module
from ..ir.printer import print_module
from ..partition.operations import OperationSpec

# Bump when the on-disk entry format or digest recipe itself changes
# semantics in a way the source fingerprint cannot see.
CACHE_SCHEMA_VERSION = 1

_fingerprint_memo: dict[int, str] = {}


def clear_digest_memos() -> None:
    """Drop memoised fingerprint state (tests monkeypatch the schema
    version; regular code never needs this)."""
    _fingerprint_memo.clear()


def pipeline_fingerprint() -> str:
    """Hash of every ``repro`` source file + the schema version.

    Computed once per process (the tree does not change under a
    running build); memoised per schema version so tests can
    monkeypatch :data:`CACHE_SCHEMA_VERSION` to simulate a semantic
    pipeline change.
    """
    version = CACHE_SCHEMA_VERSION
    cached = _fingerprint_memo.get(version)
    if cached is not None:
        return cached
    root = Path(__file__).resolve().parent.parent  # src/repro
    hasher = hashlib.sha256()
    hasher.update(f"schema={version}\n".encode())
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        hasher.update(str(path.relative_to(root)).encode())
        hasher.update(b"\0")
        hasher.update(path.read_bytes())
        hasher.update(b"\0")
    fingerprint = hasher.hexdigest()
    _fingerprint_memo[version] = fingerprint
    return fingerprint


def module_digest(module: Module) -> str:
    """SHA-256 of the canonical printer form of ``module``."""
    return hashlib.sha256(print_module(module).encode()).hexdigest()


def board_canonical(board: Board) -> str:
    peripherals = sorted(
        board.peripherals.values(), key=lambda p: (p.base, p.name))
    body = ";".join(
        f"{p.name}@{p.base:#x}+{p.size:#x}{'!' if p.core else ''}"
        for p in peripherals)
    return (f"{board.name} flash={board.flash_base:#x}+{board.flash_size:#x} "
            f"sram={board.sram_base:#x}+{board.sram_size:#x} [{body}]")


def specs_canonical(specs: Sequence[OperationSpec]) -> str:
    # Spec order is semantic: it fixes operation indexes.
    return "|".join(
        f"{spec.entry}{{{','.join(f'{k}={v}' for k, v in sorted(spec.stack_info.items()))}}}"
        for spec in specs)


def build_digest(
    flavour: str,
    module: Module,
    board: Board,
    *,
    specs: Sequence[OperationSpec] = (),
    stack_size: int = 0,
    heap_size: int = 0,
    verify: bool = True,
) -> str:
    """Content key for one whole-image build.

    ``flavour`` is ``"opec"``, ``"vanilla"``, or ``"aces:<strategy>"``.
    """
    hasher = hashlib.sha256()
    for part in (
        "build", pipeline_fingerprint(), flavour,
        f"stack={stack_size} heap={heap_size} verify={int(verify)}",
        board_canonical(board), specs_canonical(specs),
        module_digest(module),
    ):
        hasher.update(part.encode())
        hasher.update(b"\0")
    return hasher.hexdigest()


def run_digest(
    build_key: str,
    app_name: str,
    profile: str,
    *,
    entry: str = "main",
    max_instructions: int = 0,
    backend: str = "mpu",
) -> str:
    """Content key for one simulated run of a built image.

    The host-side stimuli (``Application.setup``) are a function of
    ``(app_name, profile)`` and of the source tree, which the build
    key's pipeline fingerprint already covers.  The enforcement
    ``backend`` is part of the key — switch/fault costs differ per
    substrate, so a warm hit must never serve one backend's cycles to
    another's run.
    """
    text = (f"run\0{build_key}\0{app_name}\0{profile}\0{entry}\0"
            f"{max_instructions}\0backend={backend}")
    return hashlib.sha256(text.encode()).hexdigest()


def closures_digest(module: Module) -> str:
    """Content key for a module's compiled-closure bundle.

    Marshalled code objects are CPython-version-specific, so the
    implementation cache tag and marshal format version join the
    module digest; pipeline changes are covered by the store's
    fingerprint-versioned directory.
    """
    import marshal
    import sys

    text = (f"closures\0{module_digest(module)}\0"
            f"{sys.implementation.cache_tag}\0marshal={marshal.version}")
    return hashlib.sha256(text.encode()).hexdigest()


def trace_digest(
    build_key: str,
    app_name: str,
    profile: str,
    entries: Sequence[str],
    *,
    max_instructions: int = 0,
) -> str:
    """Content key for a §6.4 task trace of the vanilla build."""
    text = (f"trace\0{build_key}\0{app_name}\0{profile}\0"
            f"{','.join(entries)}\0{max_instructions}")
    return hashlib.sha256(text.encode()).hexdigest()

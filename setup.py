"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs are unavailable; this keeps
``pip install -e .`` working through the legacy develop path.
"""

from setuptools import setup

setup()

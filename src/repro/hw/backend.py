"""The enforcement-backend interface (ROADMAP item 3, paper §7).

OPEC's design claims portability to any substrate with MPU-like
physical memory permissions.  This module makes that claim a contract:
:class:`EnforcementBackend` is the interface the monitor, the ACES
baseline runtime, and the image pipeline program against, and three
conformant backends live behind it:

* ``mpu`` — the faithful ARMv7-M MPU (:class:`repro.hw.mpu.MPU`), the
  substrate every committed ``results/`` figure was produced on;
* ``pmp`` — the RISC-V PMP adapter (:class:`repro.hw.pmp.PmpProtection`),
  which lowers MPU region sets onto NAPOT entries;
* ``overlay`` — a Complets-style permission-overlay model
  (:class:`repro.hw.overlay.OverlayProtection`): the region set is
  compiled into a flat permission table once per configuration and a
  switch is a single overlay-select register write.

The contract has five parts:

1. **region/overlay load** — ``load_configuration`` /  ``set_region`` /
   ``clear_region`` / ``get_region`` consume the backend-neutral policy
   language, :class:`repro.hw.mpu.MPURegion` descriptors (the output of
   :mod:`repro.image.mpu_config`); each backend lowers them to its own
   representation;
2. **per-access arbitration** — ``allows(address, size, privileged,
   write)``; for unprivileged accesses every backend must arbitrate
   identically (property-tested in
   ``tests/properties/test_backend_differential.py``); privileged
   deltas are documented per backend (DESIGN.md, "Enforcement
   backends");
3. **cost model** — ``switch_base_cost`` (cycles charged per full
   reconfiguration, i.e. one operation/compartment switch) and
   ``region_switch_cost`` (cycles per fault-driven single-window
   remap); the monitor charges these instead of hard-wired constants,
   so backends with cheaper or dearer switch hardware show up in the
   Figure 9 matrix;
4. **snapshot/restore** — the opaque configuration capsule saved in
   operation context;
5. **decision-cache epoch** — every configuration change must bump
   ``epoch`` and drop any memoised verdicts (``invalidate``), so
   cached arbitration never survives a reconfiguration.
"""

from __future__ import annotations

import abc
import os
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .mpu import MPURegion

#: Backend names the factory, the CLI, and ``REPRO_BACKEND`` accept.
KNOWN_BACKENDS = ("mpu", "pmp", "overlay")

#: The substrate the committed ``results/`` were produced on.
DEFAULT_BACKEND = "mpu"


class EnforcementBackend(abc.ABC):
    """One memory-isolation substrate (MPU / PMP / permission overlay).

    Concrete backends carry three class-level identity/cost fields —
    ``name``, ``switch_base_cost``, ``region_switch_cost`` — and two
    instance fields — ``enabled`` (checked before any arbitration) and
    ``epoch`` (the decision-cache generation; bumped by every
    configuration change).
    """

    #: Registry name (also the CLI/``REPRO_BACKEND`` spelling).
    name: str = "abstract"
    #: Cycles charged for a full reconfiguration (operation switch).
    switch_base_cost: int = 0
    #: Cycles charged for a fault-driven single-window remap.
    region_switch_cost: int = 0

    # -- configuration (the backend-neutral policy language) -----------

    @abc.abstractmethod
    def load_configuration(self, regions: list["MPURegion"]) -> None:
        """Replace the whole configuration (operation switch, §5.3)."""

    @abc.abstractmethod
    def set_region(self, region: "MPURegion") -> None:
        """Install one region descriptor (fault-time virtualisation)."""

    @abc.abstractmethod
    def clear_region(self, number: int) -> None:
        """Remove the descriptor in slot ``number``."""

    @abc.abstractmethod
    def get_region(self, number: int) -> Optional["MPURegion"]:
        """The descriptor currently in slot ``number`` (or ``None``)."""

    # -- arbitration ----------------------------------------------------

    @abc.abstractmethod
    def allows(self, address: int, size: int, privileged: bool,
               write: bool) -> bool:
        """Arbitrate one access of ``size`` bytes at ``address``."""

    # -- context capsule ------------------------------------------------

    @abc.abstractmethod
    def snapshot(self) -> list[Optional["MPURegion"]]:
        """Copy of the current configuration (operation context)."""

    @abc.abstractmethod
    def restore(self, snapshot: list[Optional["MPURegion"]]) -> None:
        """Reinstall a :meth:`snapshot` capsule."""

    # -- decision-cache epoch -------------------------------------------

    @abc.abstractmethod
    def invalidate(self) -> None:
        """Start a new configuration epoch, dropping cached verdicts."""

    # -- epoch-specialised arbitration ----------------------------------

    def fast_allows(self):
        """An arbitration callable specialised for the current ``epoch``.

        The block compiler's fault-free load/store path calls the
        returned callable instead of :meth:`allows`.  The contract: the
        callable must arbitrate identically to :meth:`allows` for as
        long as ``self.epoch`` keeps its current value — callers
        re-validate ``(backend identity, epoch)`` before every use and
        rebind after any mismatch (see ``Machine._refresh_fast_path``),
        so a specialisation may capture structures that
        :meth:`invalidate` replaces (e.g. the verdict memo dict) but
        must read live any state that changes *without* an epoch bump
        (``enabled``, ``privdefena``).  The default is :meth:`allows`
        itself, which is trivially valid for every epoch.
        """
        return self.allows


BackendSpec = Union[str, EnforcementBackend]


def create_backend(spec: BackendSpec = DEFAULT_BACKEND) -> EnforcementBackend:
    """Instantiate a backend by registry name (or pass one through).

    Imports lazily so this module stays import-light and free of
    cycles (the concrete backends import :class:`EnforcementBackend`).
    """
    if isinstance(spec, EnforcementBackend):
        return spec
    if spec == "mpu":
        from .mpu import MPU

        return MPU()
    if spec == "pmp":
        from .pmp import PmpProtection

        return PmpProtection()
    if spec == "overlay":
        from .overlay import OverlayProtection

        return OverlayProtection()
    raise ValueError(
        f"unknown enforcement backend {spec!r}: "
        f"expected one of {', '.join(KNOWN_BACKENDS)}")


def active_backend() -> str:
    """The ambient backend name (``REPRO_BACKEND``, default ``mpu``).

    Validated loudly — a typo must not silently hand every run the
    default substrate (mirrors the ``REPRO_PROFILE`` contract).
    """
    raw = os.environ.get("REPRO_BACKEND", DEFAULT_BACKEND).strip().lower()
    if raw not in KNOWN_BACKENDS:
        raise ValueError(
            f"unknown enforcement backend {raw!r} (REPRO_BACKEND): "
            f"expected one of {', '.join(KNOWN_BACKENDS)}")
    return raw

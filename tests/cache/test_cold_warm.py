"""The cache contract: a warm hit is byte-identical to a cold build.

Each test points ``REPRO_CACHE`` at a private directory, cold-builds
real applications (populating the store), then rebuilds and compares
the canonical forms the evaluation depends on — image memory bytes,
the §4.3 policy document, the points-to solution, simulated cycles.
"""

from collections import Counter

import pytest

from repro import cache
from repro.eval import workloads
from repro.hw import Machine
from repro.image.policyfile import dump_policy
from repro.ir import print_module
from repro.pipeline import build_opec, build_vanilla, run_image

APPS = ("PinLock", "CoreMark")


@pytest.fixture
def private_store(tmp_path, monkeypatch):
    """A fresh store for one test, with every in-process memo reset so
    the second build genuinely comes off the disk."""
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "store"))
    workloads.clear_caches()
    cache.reset_store_state()
    yield cache.active_store()
    workloads.clear_caches()
    cache.reset_store_state()


def _memory_bytes(image):
    """Flash + SRAM contents after programming a fresh machine."""
    machine = Machine(image.board)
    image.initialize_memory(machine)
    board = image.board
    return (machine.read_bytes(board.flash_base, image.flash_used())
            + machine.read_bytes(board.sram_base, image.sram_used()))


def _points_to_summary(andersen) -> Counter:
    """Order- and identity-insensitive rendering of the solution."""
    return Counter(
        (repr(value), tuple(sorted(repr(obj) for obj in objects)))
        for value, objects in andersen._pts.items())


@pytest.mark.parametrize("name", APPS)
def test_opec_warm_build_is_byte_identical(name, private_store):
    app = workloads.build_app(name, profile="quick")
    cold = build_opec(app.module, app.board, app.specs)
    assert not cold.cache_hit
    warm = build_opec(app.module, app.board, app.specs)
    assert warm.cache_hit
    assert warm.cache_digest == cold.cache_digest
    assert warm.module is not cold.module  # rehydrated copy...
    assert print_module(warm.module) == print_module(cold.module)
    assert dump_policy(warm.image) == dump_policy(cold.image)
    assert _memory_bytes(warm.image) == _memory_bytes(cold.image)
    assert (_points_to_summary(warm.andersen)
            == _points_to_summary(cold.andersen))
    cold_run = run_image(cold.image, setup=app.setup,
                         max_instructions=app.max_instructions)
    warm_run = run_image(warm.image, setup=app.setup,
                         max_instructions=app.max_instructions)
    assert (warm_run.halt_code, warm_run.cycles) == \
        (cold_run.halt_code, cold_run.cycles)


@pytest.mark.parametrize("name", APPS)
def test_vanilla_warm_build_is_byte_identical(name, private_store):
    app = workloads.build_app(name, profile="quick")
    cold = build_vanilla(app.module, app.board)
    warm = build_vanilla(app.module, app.board)
    assert warm is not cold
    assert _memory_bytes(warm) == _memory_bytes(cold)


def test_run_results_are_cached_and_identical(private_store):
    cold = workloads.run_build("PinLock", "opec", profile="quick")
    before = cache.counters_snapshot()
    workloads.clear_caches()  # drop the in-process memo, keep the disk
    warm = workloads.run_build("PinLock", "opec", profile="quick")
    assert cache.counters_delta(before)["hits"] > 0
    assert (warm.halt_code, warm.cycles) == (cold.halt_code, cold.cycles)


def test_off_disables_the_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "off")
    workloads.clear_caches()
    app = workloads.build_app("PinLock", profile="quick")
    first = build_opec(app.module, app.board, app.specs)
    second = build_opec(app.module, app.board, app.specs)
    assert not first.cache_hit and not second.cache_hit
    assert first.cache_digest == "" and second.cache_digest == ""
    assert second.module is app.module  # no rehydration without a store
    workloads.clear_caches()


def test_corrupt_store_entry_recovers_with_cold_build(private_store):
    app = workloads.build_app("PinLock", profile="quick")
    cold = build_opec(app.module, app.board, app.specs)
    path = private_store.path_for(cold.cache_digest)
    path.write_bytes(b"opec-cache-v1\n" + b"0" * 64 + b"\ngarbage")
    rebuilt = build_opec(app.module, app.board, app.specs)
    assert not rebuilt.cache_hit  # corruption fell back to a cold build
    assert private_store.counters.corrupt == 1
    assert dump_policy(rebuilt.image) == dump_policy(cold.image)
    warm = build_opec(app.module, app.board, app.specs)
    assert warm.cache_hit  # the rebuild restored the entry

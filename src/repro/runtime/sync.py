"""Global-variable synchronisation and sanitisation (§5.2, Figure 7).

External (shared) globals have one *public* original plus a shadow copy
per accessing operation.  On a switch the monitor writes the suspended
operation's shadows back to the public copies — after checking each
value against its developer-provided valid range — then refreshes the
resumed/entered operation's shadows from the public copies, and finally
redirects any pointer fields that still point into another operation's
data section (§5.3).
"""

from __future__ import annotations

from typing import Optional

from ..hw.exceptions import SecurityAbort
from ..hw.machine import Machine
from ..image.linker import OpecImage
from ..interp.costs import SANITIZE_CHECK_COST, SYNC_WORD_COST
from ..ir.values import GlobalVariable
from ..partition.operations import Operation


class SwitchPlan:
    """Precompiled switch-phase work for one operation (§5.2–§5.3).

    Every policy and layout lookup the monitor's switch path performs
    is resolved once, the first time an operation participates in a
    switch: sanitisation checks, shadow↔public copy pairs, relocation-
    table slot values, pointer-field addresses, and the backend's base
    switch cost.  The executing side charges each phase's cycle cost in
    one batch, which is observationally identical to per-item charging
    as long as nothing samples the cycle counter mid-phase — the
    monitor therefore only takes the planned path when no recorder is
    attached and the SysTick timer is unarmed.
    """

    __slots__ = (
        "op_index", "op_name", "switch_base_cost", "sanitize_checks",
        "writeback", "refresh", "sync_words", "sync_bytes",
        "reloc_writes", "redirect_fields", "own_shadows",
    )

    def __init__(self, op_index: int, op_name: str, switch_base_cost: int):
        self.op_index = op_index
        self.op_name = op_name
        self.switch_base_cost = switch_base_cost
        self.sanitize_checks: list[tuple[int, int, int, int, str]] = []
        self.writeback: list[tuple[int, int, int]] = []
        self.refresh: list[tuple[int, int, int]] = []
        self.sync_words = 0
        self.sync_bytes = 0
        self.reloc_writes: list[tuple[int, int]] = []
        self.redirect_fields: list[int] = []
        self.own_shadows: dict[GlobalVariable, int] = {}


class DataSynchronizer:
    """Performs the Figure-7 data movement for one image."""

    def __init__(self, machine: Machine, image: OpecImage):
        self.machine = machine
        self.image = image
        self.policy = image.policy
        # Address index over every shadow copy and public original so
        # pointer fields can be retargeted across sections (§5.3).
        self._intervals: list[tuple[int, int, Optional[int], GlobalVariable]] = []
        for (op_index, gvar), addr in image.shadow_addresses.items():
            self._intervals.append((addr, addr + gvar.size, op_index, gvar))
        for gvar, addr in image.public_addresses.items():
            self._intervals.append((addr, addr + gvar.size, None, gvar))
        self._intervals.sort()
        self._bytes_copied = machine.metrics.counter("monitor.sync_bytes_copied")

    # -- words ------------------------------------------------------------

    def _copy(self, src: int, dst: int, size: int) -> None:
        blob = self.machine.read_bytes(src, size)
        self.machine.write_bytes(dst, blob)
        self._bytes_copied.value += size
        self.machine.consume(SYNC_WORD_COST * ((size + 3) // 4))

    # -- sanitisation -------------------------------------------------------

    def sanitize(self, operation: Operation, gvar: GlobalVariable) -> None:
        """Abort if a scalar shadow value left its declared range."""
        if gvar.sanitize_range is None or gvar.size > 4:
            return
        shadow = self.image.shadow_address(operation, gvar)
        value = self.machine.read_direct(shadow, gvar.size)
        self.machine.consume(SANITIZE_CHECK_COST)
        lo, hi = gvar.sanitize_range
        if not lo <= value <= hi:
            raise SecurityAbort(
                f"sanitisation failed for @{gvar.name} in operation "
                f"{operation.name}: value {value} outside [{lo}, {hi}]"
            )

    def sanitize_operation(self, operation: Operation) -> None:
        """Range-check every external shadow of ``operation``.

        The monitor runs this as its own switch phase (so it traces as a
        distinct span) and then copies with ``sanitize=False``; checking
        all shadows before copying any is equivalent to the interleaved
        order because a failed check aborts the run.
        """
        for gvar in self.policy.external_vars(operation):
            self.sanitize(operation, gvar)

    # -- Figure 7 steps ------------------------------------------------------

    def write_back(self, operation: Operation, *,
                   sanitize: bool = True) -> None:
        """Shadows of ``operation`` → public copies (sanitised)."""
        for gvar in self.policy.external_vars(operation):
            if sanitize:
                self.sanitize(operation, gvar)
            shadow = self.image.shadow_address(operation, gvar)
            self._copy(shadow, self.image.public_addresses[gvar], gvar.size)

    def refresh(self, operation: Operation) -> None:
        """Public copies → shadows of ``operation``."""
        for gvar in self.policy.external_vars(operation):
            shadow = self.image.shadow_address(operation, gvar)
            self._copy(self.image.public_addresses[gvar], shadow, gvar.size)

    def update_relocation_table(self, operation: Operation) -> None:
        """Point every external's slot at ``operation``'s shadow, or at
        the public original when the operation does not access it."""
        accessible = set(self.policy.external_vars(operation))
        for gvar, slot in self.image.reloc_slots.items():
            if gvar in accessible:
                target = self.image.shadow_address(operation, gvar)
            else:
                target = self.image.public_addresses[gvar]
            self.machine.write_direct(slot, 4, target)
            self.machine.consume(1)

    # -- pointer-field redirection (§5.3) --------------------------------------

    def _locate(self, address: int) -> Optional[tuple[Optional[int],
                                                      GlobalVariable, int]]:
        for start, end, op_index, gvar in self._intervals:
            if start <= address < end:
                return op_index, gvar, address - start
        return None

    def redirect_pointers(self, operation: Operation) -> None:
        """Rewrite pointer fields in ``operation``'s section that point
        at another operation's shadow (or a public original) of a
        variable this operation holds its own shadow of."""
        own_shadows = {
            gvar: self.image.shadow_address(operation, gvar)
            for gvar in self.policy.external_vars(operation)
        }
        section_vars = self.policy.section_vars(operation)
        for gvar in section_vars:
            if not gvar.pointer_field_offsets:
                continue
            base = self._home_address(operation, gvar)
            for offset in gvar.pointer_field_offsets:
                pointer = self.machine.read_direct(base + offset, 4)
                self.machine.consume(2)
                located = self._locate(pointer)
                if located is None:
                    continue
                target_op, target_var, delta = located
                if target_op == operation.index:
                    continue
                if target_var in own_shadows:
                    self.machine.write_direct(
                        base + offset, 4, own_shadows[target_var] + delta
                    )
                    self.machine.consume(1)

    def _home_address(self, operation: Operation, gvar: GlobalVariable) -> int:
        key = (operation.index, gvar)
        if key in self.image.shadow_addresses:
            return self.image.shadow_addresses[key]
        return self.image.global_address(gvar)

    # -- precompiled switch phases -----------------------------------------

    def compile_plan(self, operation: Operation,
                     switch_base_cost: int) -> SwitchPlan:
        """Resolve every lookup of ``operation``'s switch phases.

        Item order matches the interpreted phases exactly so the memory
        write sequence — and therefore the final image — is identical.
        """
        image = self.image
        plan = SwitchPlan(operation.index, operation.name, switch_base_cost)
        externals = list(self.policy.external_vars(operation))
        for gvar in externals:
            shadow = image.shadow_address(operation, gvar)
            if gvar.sanitize_range is not None and gvar.size <= 4:
                lo, hi = gvar.sanitize_range
                plan.sanitize_checks.append(
                    (shadow, gvar.size, lo, hi, gvar.name))
            public = image.public_addresses[gvar]
            plan.writeback.append((shadow, public, gvar.size))
            plan.refresh.append((public, shadow, gvar.size))
            plan.sync_words += (gvar.size + 3) // 4
            plan.sync_bytes += gvar.size
            plan.own_shadows[gvar] = shadow
        accessible = set(externals)
        for gvar, slot in image.reloc_slots.items():
            if gvar in accessible:
                target = image.shadow_address(operation, gvar)
            else:
                target = image.public_addresses[gvar]
            plan.reloc_writes.append((slot, target))
        for gvar in self.policy.section_vars(operation):
            if not gvar.pointer_field_offsets:
                continue
            base = self._home_address(operation, gvar)
            for offset in gvar.pointer_field_offsets:
                plan.redirect_fields.append(base + offset)
        return plan

    def run_sanitize(self, plan: SwitchPlan) -> None:
        """Planned :meth:`sanitize_operation` — per-check charging is
        kept because an abort must leave the cycle counter exactly
        where the interpreted path would."""
        machine = self.machine
        for shadow, size, lo, hi, name in plan.sanitize_checks:
            value = machine.read_direct(shadow, size)
            machine.consume(SANITIZE_CHECK_COST)
            if not lo <= value <= hi:
                raise SecurityAbort(
                    f"sanitisation failed for @{name} in operation "
                    f"{plan.op_name}: value {value} outside [{lo}, {hi}]"
                )

    def run_copies(self, pairs: list[tuple[int, int, int]],
                   words: int, nbytes: int) -> None:
        """Planned :meth:`write_back`/:meth:`refresh` with one batched
        cycle charge and counter bump."""
        machine = self.machine
        read, write = machine.read_bytes, machine.write_bytes
        for src, dst, size in pairs:
            write(dst, read(src, size))
        self._bytes_copied.value += nbytes
        machine.consume(SYNC_WORD_COST * words)

    def run_reloc(self, plan: SwitchPlan) -> None:
        """Planned :meth:`update_relocation_table` — slot targets were
        resolved at plan-compile time."""
        machine = self.machine
        for slot, target in plan.reloc_writes:
            machine.write_direct(slot, 4, target)
        machine.consume(len(plan.reloc_writes))

    def run_redirect(self, plan: SwitchPlan) -> None:
        """Planned :meth:`redirect_pointers`; pointer values are
        runtime data, so only the field walk is precompiled."""
        machine = self.machine
        cost = 2 * len(plan.redirect_fields)
        own = plan.own_shadows
        op_index = plan.op_index
        locate = self._locate
        for addr in plan.redirect_fields:
            located = locate(machine.read_direct(addr, 4))
            if located is None:
                continue
            target_op, target_var, delta = located
            if target_op == op_index:
                continue
            target = own.get(target_var)
            if target is not None:
                machine.write_direct(addr, 4, target + delta)
                cost += 1
        machine.consume(cost)

"""Andersen-style inclusion-based points-to analysis.

Stands in for SVF (§4.1, §4.2): a whole-module, flow-insensitive,
context-insensitive, field-insensitive inclusion analysis with an
on-the-fly call graph for indirect calls.  Like SVF it is *sound but
over-approximate* — the false positives it introduces are exactly what
drives the paper's discussion of spurious icall targets and
execution-time over-privilege (§6.4, §7).

Abstract objects:

* ``("alloca", inst)`` — a stack allocation site;
* ``("global", gvar)`` — a global variable's storage;
* ``("func", function)`` — a function (for function pointers).

The solver is the classic worklist formulation: points-to sets
propagate along copy edges; load/store constraints add new copy edges
as the pointer operands' sets grow.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Iterable

from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    Call,
    Cast,
    GEP,
    ICall,
    Load,
    Ret,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.values import GlobalVariable, Value

AbstractObject = tuple  # ("alloca"|"global"|"func", payload)


class AndersenResult:
    """Solved points-to information plus solver statistics."""

    def __init__(self, pts: dict, icall_edges: dict, solve_time: float,
                 iterations: int):
        self._pts = pts
        self._icall_edges = icall_edges
        self.solve_time = solve_time
        self.iterations = iterations

    def points_to(self, value: Value) -> frozenset[AbstractObject]:
        return frozenset(self._pts.get(value, ()))

    def pointed_globals(self, value: Value) -> set[GlobalVariable]:
        """Global variables a pointer may target (locals filtered out,
        matching §4.2's "filter out the local targets")."""
        return {obj[1] for obj in self._pts.get(value, ()) if obj[0] == "global"}

    def icall_targets(self, icall: ICall) -> set[Function]:
        return set(self._icall_edges.get(icall, ()))

    def resolves(self, icall: ICall) -> bool:
        return bool(self._icall_edges.get(icall))


class AndersenSolver:
    """Build constraints from a module and solve to a fixed point."""

    def __init__(self, module: Module):
        self.module = module
        self.pts: dict[object, set[AbstractObject]] = defaultdict(set)
        self.copy_edges: dict[object, set[object]] = defaultdict(set)
        self.load_uses: dict[object, set[object]] = defaultdict(set)
        self.store_sources: dict[object, set[object]] = defaultdict(set)
        self.icall_sites: dict[object, set[ICall]] = defaultdict(set)
        self.icall_edges: dict[ICall, set[Function]] = defaultdict(set)
        self.returns: dict[Function, list[Value]] = defaultdict(list)
        self.call_results: dict[Function, set[object]] = defaultdict(set)
        self.worklist: list[object] = []
        self.iterations = 0

    # -- constraint generation -------------------------------------------

    def build(self) -> None:
        for func in self.module.iter_functions():
            for inst in func.iter_instructions():
                if isinstance(inst, Ret) and inst.value is not None:
                    self.returns[func].append(inst.value)
        for func in self.module.iter_functions():
            for inst in func.iter_instructions():
                self._constraints_for(inst)

    def _seed(self, value: Value) -> object:
        """Register base points-to facts for constant-like operands."""
        if isinstance(value, GlobalVariable):
            self._add_pts(value, ("global", value))
        elif isinstance(value, Function):
            self._add_pts(value, ("func", value))
        return value

    def _constraints_for(self, inst) -> None:
        for op in inst.operands:
            self._seed(op)

        if isinstance(inst, Alloca):
            self._add_pts(inst, ("alloca", inst))
        elif isinstance(inst, (GEP, Cast)):
            # Field-insensitive: derived pointers alias their base.
            self._copy(inst.operands[0], inst)
        elif isinstance(inst, Select):
            self._copy(inst.operands[1], inst)
            self._copy(inst.operands[2], inst)
        elif isinstance(inst, Load):
            self.load_uses[inst.pointer].add(inst)
            self._reprocess(inst.pointer)
        elif isinstance(inst, Store):
            self.store_sources[inst.pointer].add(inst.value)
            self._reprocess(inst.pointer)
        elif isinstance(inst, Call):
            self._wire_call(inst.callee, inst.operands, inst)
        elif isinstance(inst, ICall):
            self.icall_sites[inst.target].add(inst)
            self._reprocess(inst.target)

    def _wire_call(self, callee: Function, args: Iterable[Value], result_node) -> None:
        for param, arg in zip(callee.params, args):
            self._copy(arg, param)
        for ret_val in self.returns.get(callee, ()):
            self._copy(ret_val, result_node)

    # -- solver primitives ---------------------------------------------------

    def _add_pts(self, node: object, obj: AbstractObject) -> bool:
        if obj not in self.pts[node]:
            self.pts[node].add(obj)
            self.worklist.append(node)
            return True
        return False

    def _copy(self, src: object, dst: object) -> None:
        if dst not in self.copy_edges[src]:
            self.copy_edges[src].add(dst)
            if self.pts.get(src):
                self.worklist.append(src)

    def _reprocess(self, node: object) -> None:
        if self.pts.get(node):
            self.worklist.append(node)

    # -- fixed point -----------------------------------------------------------

    def solve(self) -> AndersenResult:
        start = time.perf_counter()
        self.build()
        while self.worklist:
            node = self.worklist.pop()
            self.iterations += 1
            node_pts = self.pts.get(node, set())
            if not node_pts:
                continue
            # Copy edges: pts flows to targets.
            for dst in list(self.copy_edges.get(node, ())):
                before = len(self.pts[dst])
                self.pts[dst] |= node_pts
                if len(self.pts[dst]) != before:
                    self.worklist.append(dst)
            # Load constraints: *node flows into each load result.
            for load_inst in list(self.load_uses.get(node, ())):
                for obj in list(node_pts):
                    self._copy(obj, load_inst)
            # Store constraints: stored values flow into *node.
            for src in list(self.store_sources.get(node, ())):
                for obj in list(node_pts):
                    self._copy(src, obj)
            # Indirect calls: new function targets wire args/returns.
            for icall in list(self.icall_sites.get(node, ())):
                for obj in list(node_pts):
                    if obj[0] != "func":
                        continue
                    func = obj[1]
                    if func not in self.icall_edges[icall]:
                        if not _signature_plausible(icall, func):
                            continue
                        self.icall_edges[icall].add(func)
                        self._wire_call(func, icall.args, icall)
        elapsed = time.perf_counter() - start
        return AndersenResult(dict(self.pts), dict(self.icall_edges),
                              elapsed, self.iterations)


def _signature_plausible(icall: ICall, func: Function) -> bool:
    """Reject pointer targets whose arity cannot match the call site."""
    return len(func.ftype.params) == len(icall.args) or func.ftype.variadic


def run_andersen(module: Module) -> AndersenResult:
    """Convenience wrapper: build + solve."""
    return AndersenSolver(module).solve()

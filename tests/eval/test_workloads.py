"""Tests for workload profiles and build/run caching."""

import pytest

from repro.eval import workloads


def test_profiles_change_workload_scale():
    quick = workloads.build_app("PinLock", profile="quick")
    paper = workloads.build_app("PinLock", profile="paper")
    assert quick.module is not paper.module
    # Same structure, different stop conditions (rounds compiled into
    # main's loop bound).
    assert len(quick.specs) == len(paper.specs)


def test_builds_are_cached_per_profile():
    a = workloads.build_app("PinLock", profile="quick")
    b = workloads.build_app("PinLock", profile="quick")
    assert a is b
    artifacts_a = workloads.opec_artifacts("PinLock", profile="quick")
    artifacts_b = workloads.opec_artifacts("PinLock", profile="quick")
    assert artifacts_a is artifacts_b


def test_artifacts_are_internally_consistent():
    """With the content-addressed store, a warm build's objects are
    fresh copies rather than the app's own module — but every object
    *inside* one artifact bundle must reference the same module."""
    artifacts = workloads.opec_artifacts("PinLock", profile="quick")
    assert artifacts.image.module is artifacts.module
    for op in artifacts.operations:
        for func in op.functions:
            assert artifacts.module.functions[func.name] is func
    aces = workloads.aces_artifacts("PinLock", "ACES2", profile="quick")
    assert aces.image.module is aces.module
    for compartment in aces.compartments:
        for func in compartment.functions:
            assert aces.module.functions[func.name] is func


def test_build_app_rejects_unknown_profile(monkeypatch):
    with pytest.raises(ValueError, match="unknown workload profile"):
        workloads.build_app("PinLock", profile="fast")
    monkeypatch.setenv("REPRO_PROFILE", "bogus")
    with pytest.raises(ValueError, match="bogus"):
        workloads.build_app("CoreMark")


def test_run_cache_returns_same_result():
    first = workloads.run_build("PinLock", "vanilla", profile="quick")
    second = workloads.run_build("PinLock", "vanilla", profile="quick")
    assert first is second


def test_clear_caches_resets():
    workloads.build_app("PinLock", profile="quick")
    workloads.clear_caches()
    rebuilt = workloads.build_app("PinLock", profile="quick")
    assert rebuilt is workloads.build_app("PinLock", profile="quick")


def test_active_profile_env(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "paper")
    assert workloads.active_profile() == "paper"
    monkeypatch.setenv("REPRO_PROFILE", "quick")
    assert workloads.active_profile() == "quick"


def test_repro_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert workloads.repro_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert workloads.repro_jobs() == 4
    monkeypatch.setenv("REPRO_JOBS", "auto")
    assert workloads.repro_jobs() >= 1
    monkeypatch.setenv("REPRO_JOBS", "bogus")
    assert workloads.repro_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "-3")
    assert workloads.repro_jobs() == 1


def test_compute_all_rows_sections_and_order():
    rows = workloads.compute_all_rows(jobs=1)
    assert set(rows) == {"table1", "figure9", "table2", "figure10",
                         "figure11", "table3", "cache", "compile",
                         "telemetry"}
    assert set(rows["cache"]) == {"hits", "misses", "stores", "corrupt",
                                  "bytes_read", "bytes_written"}
    # Envelope protocol: conductor first, then one per app in order.
    envelopes = rows["telemetry"]
    assert [env.label for env in envelopes] == \
        ["conductor", *workloads.APP_NAMES]
    assert [env.worker for env in envelopes] == \
        list(range(len(workloads.APP_NAMES) + 1))
    assert [r.app for r in rows["table1"]] == \
        [*workloads.APP_NAMES, "Average"]
    assert [r.app for r in rows["table3"]] == list(workloads.APP_NAMES)


def test_compute_all_rows_aggregates_compile_metrics(monkeypatch):
    """Interpreter compile metrics used to die with each worker's
    interpreters; ``compute_all_rows`` must fold them into the merged
    output.  Cache off so the runs actually execute (and compile);
    compilation pinned on so the counters are nonzero even when the CI
    matrix runs the suite with the tiers disabled."""
    monkeypatch.setenv("REPRO_CACHE", "off")
    monkeypatch.setenv("REPRO_BLOCKCOMPILE", "on")
    monkeypatch.setenv("REPRO_TRACEFUSE", "on")
    workloads.clear_caches()
    try:
        rows = workloads.compute_all_rows(jobs=1)
        compile_totals = rows["compile"]
        assert compile_totals.get("blockcompile.blocks_compiled", 0) > 0
        assert compile_totals.get("blockcompile.block_entries", 0) > 0
        assert list(compile_totals) == sorted(compile_totals)
    finally:
        workloads.clear_caches()


def test_compute_all_rows_parallel_merge_identical():
    """The REPRO_JOBS fan-out contract: a process-pool evaluation must
    merge into exactly the rows the serial path computes (row
    dataclasses compare by value, floats included)."""
    serial = workloads.compute_all_rows(jobs=1)
    parallel = workloads.compute_all_rows(jobs=2)
    # Cache traffic, compile activity, and the telemetry envelopes
    # legitimately differ between the two paths (the serial pass warms
    # the in-process memos the parallel workers cannot see); every
    # *table* must merge identically.
    for diagnostic in ("cache", "compile", "telemetry"):
        serial.pop(diagnostic)
        parallel.pop(diagnostic)
    assert serial == parallel

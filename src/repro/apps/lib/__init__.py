"""Firmware libraries authored in IR: filesystem and network stack."""

from . import fatfs, netstack

__all__ = ["fatfs", "netstack"]

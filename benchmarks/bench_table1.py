"""Benchmark + regeneration of Table 1 (security metrics, §6.2).

The timed quantity is the full OPEC-Compiler pipeline (points-to, call
graph, resource analysis, partitioning, policy, image generation) per
application — the compile-time cost of the system.  The printed rows
are the paper's Table 1.
"""

from __future__ import annotations

import pytest

from repro import build_opec
from repro.eval import table1
from repro.eval.workloads import APP_NAMES, build_app

_rows = []


@pytest.mark.parametrize("app_name", APP_NAMES)
def test_table1_row(benchmark, app_name):
    app = build_app(app_name)

    def compile_pipeline():
        return build_opec(app.module, app.board, app.specs)

    benchmark.pedantic(compile_pipeline, rounds=1, iterations=1)
    row = table1.compute_row(app_name)
    _rows.append(row)
    assert row.operations >= 6


def test_print_table1(benchmark):
    rows = benchmark.pedantic(table1.compute_table, rounds=1, iterations=1)
    print()
    print(table1.render(rows))
    by_app = {r.app: r for r in rows}
    # Paper shape (Table 1): operation counts are exact.
    assert by_app["PinLock"].operations == 6
    assert by_app["Animation"].operations == 8
    assert by_app["FatFs-uSD"].operations == 10
    assert by_app["LCD-uSD"].operations == 11
    assert abs(by_app["Average"].operations - 8.86) < 0.01
    # FatFs-uSD's shared FATFS/FIL structures push its accessible-globals
    # percentage to the top of the field, as in the paper.
    gvars_pct = {r.app: r.avg_gvars_pct for r in rows if r.app != "Average"}
    assert gvars_pct["FatFs-uSD"] == max(gvars_pct.values())

"""Core (Private Peripheral Bus) device models: DWT, SysTick, SCB.

These live at PPB addresses, so unprivileged firmware touching them
bus-faults and OPEC-Monitor emulates the access (§5.2).  The DWT
cycle counter is the instrument the paper uses to measure runtime
overhead (§6.3); here it reflects the machine's deterministic cycle
count.
"""

from __future__ import annotations


class DWT:
    """Data Watchpoint and Trace unit: CTRL at 0x0, CYCCNT at 0x4."""

    CTRL = 0x0
    CYCCNT = 0x4

    def __init__(self):
        self.machine = None  # set by Machine.attach_device
        self.ctrl = 0
        self._base_cycles = 0

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == self.CTRL:
            return self.ctrl
        if offset == self.CYCCNT:
            return (self.machine.cycles - self._base_cycles) & 0xFFFFFFFF
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == self.CTRL:
            self.ctrl = value
        elif offset == self.CYCCNT:
            # Writing CYCCNT resets the visible counter.
            self._base_cycles = self.machine.cycles - value


class SysTick:
    """SysTick timer: CSR at 0x0, RVR at 0x4, CVR at 0x8."""

    def __init__(self):
        self.machine = None
        self.csr = 0
        self.rvr = 0

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == 0x0:
            return self.csr
        if offset == 0x4:
            return self.rvr
        if offset == 0x8:
            reload = self.rvr or 0xFFFFFF
            return (reload - self.machine.cycles) % (reload + 1)
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == 0x0:
            self.csr = value
            if self.machine is not None:
                # ENABLE | TICKINT arms the periodic tick interrupt.
                if value & 0b11 == 0b11:
                    self.machine.arm_systick(self.rvr)
                else:
                    self.machine.disarm_systick()
        elif offset == 0x4:
            self.rvr = value & 0xFFFFFF
        # CVR writes clear the counter; the model has no latched state.


class SCB:
    """System Control Block stub: registers behave as plain storage."""

    def __init__(self):
        self.machine = None
        self.registers: dict[int, int] = {}

    def mmio_read(self, offset: int, size: int) -> int:
        return self.registers.get(offset, 0)

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        self.registers[offset] = value

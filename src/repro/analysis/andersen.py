"""Andersen-style inclusion-based points-to analysis.

Stands in for SVF (§4.1, §4.2): a whole-module, flow-insensitive,
context-insensitive, field-insensitive inclusion analysis with an
on-the-fly call graph for indirect calls.  Like SVF it is *sound but
over-approximate* — the false positives it introduces are exactly what
drives the paper's discussion of spurious icall targets and
execution-time over-privilege (§6.4, §7).

Abstract objects:

* ``("alloca", inst)`` — a stack allocation site;
* ``("global", gvar)`` — a global variable's storage;
* ``("func", function)`` — a function (for function pointers).

The solver uses **difference propagation** (Pearce et al. style): each
node carries a *delta* — the objects added to its points-to set since
it was last processed — and only the delta flows along copy edges and
into the load/store/icall constraints.  Together with a
duplicate-suppressing worklist this makes each abstract object cross
each edge exactly once, instead of whole sets being re-unioned on
every pop.  The fixed point (and therefore every points-to set and
icall edge) is identical to the naive full-propagation formulation;
``tests/properties/test_andersen_equivalence.py`` holds the solver to
that contract against a reference implementation.
"""

from __future__ import annotations

import time
from collections import defaultdict, deque
from typing import Iterable

from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    Call,
    Cast,
    GEP,
    ICall,
    Load,
    Ret,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.values import GlobalVariable, Value

AbstractObject = tuple  # ("alloca"|"global"|"func", payload)


class AndersenResult:
    """Solved points-to information plus solver statistics.

    Besides the points-to map and icall edges the result carries the
    solver's cost counters, snapshotted by ``benchmarks/bench_analysis.py``:

    * ``iterations`` — worklist pops;
    * ``propagated_objects`` — total objects moved out of node deltas;
    * ``peak_delta`` — largest single delta processed;
    * ``constraint_counts`` — final constraint-graph sizes
      (``copy_edges``, ``load``, ``store``, ``icall_sites``).
    """

    def __init__(self, pts: dict, icall_edges: dict, solve_time: float,
                 iterations: int, propagated_objects: int = 0,
                 peak_delta: int = 0,
                 constraint_counts: dict | None = None):
        self._pts = pts
        self._icall_edges = icall_edges
        self.solve_time = solve_time
        self.iterations = iterations
        self.propagated_objects = propagated_objects
        self.peak_delta = peak_delta
        self.constraint_counts = dict(constraint_counts or {})

    def points_to(self, value: Value) -> frozenset[AbstractObject]:
        return frozenset(self._pts.get(value, ()))

    def pointed_globals(self, value: Value) -> set[GlobalVariable]:
        """Global variables a pointer may target (locals filtered out,
        matching §4.2's "filter out the local targets")."""
        return {obj[1] for obj in self._pts.get(value, ()) if obj[0] == "global"}

    def icall_targets(self, icall: ICall) -> set[Function]:
        return set(self._icall_edges.get(icall, ()))

    def resolves(self, icall: ICall) -> bool:
        return bool(self._icall_edges.get(icall))


class AndersenSolver:
    """Build constraints from a module and solve to a fixed point."""

    def __init__(self, module: Module):
        self.module = module
        self.pts: dict[object, set[AbstractObject]] = defaultdict(set)
        # Objects added to pts[node] but not yet pushed along the
        # node's outgoing constraints — the difference-propagation
        # frontier.  Invariant: delta[node] ⊆ pts[node], and every
        # object enters a node's delta exactly once.
        self.delta: dict[object, set[AbstractObject]] = defaultdict(set)
        self.copy_edges: dict[object, set[object]] = defaultdict(set)
        self.load_uses: dict[object, set[object]] = defaultdict(set)
        self.store_sources: dict[object, set[object]] = defaultdict(set)
        self.icall_sites: dict[object, set[ICall]] = defaultdict(set)
        self.icall_edges: dict[ICall, set[Function]] = defaultdict(set)
        self.returns: dict[Function, list[Value]] = defaultdict(list)
        self.worklist: deque[object] = deque()
        self.on_worklist: set[object] = set()
        self.iterations = 0
        self.propagated_objects = 0
        self.peak_delta = 0

    # -- constraint generation -------------------------------------------

    def build(self) -> None:
        for func in self.module.iter_functions():
            for inst in func.iter_instructions():
                if isinstance(inst, Ret) and inst.value is not None:
                    self.returns[func].append(inst.value)
        for func in self.module.iter_functions():
            for inst in func.iter_instructions():
                self._constraints_for(inst)

    def _seed(self, value: Value) -> object:
        """Register base points-to facts for constant-like operands."""
        if isinstance(value, GlobalVariable):
            self._add_pts(value, ("global", value))
        elif isinstance(value, Function):
            self._add_pts(value, ("func", value))
        return value

    def _constraints_for(self, inst) -> None:
        for op in inst.operands:
            self._seed(op)

        if isinstance(inst, Alloca):
            self._add_pts(inst, ("alloca", inst))
        elif isinstance(inst, (GEP, Cast)):
            # Field-insensitive: derived pointers alias their base.
            self._copy(inst.operands[0], inst)
        elif isinstance(inst, Select):
            self._copy(inst.operands[1], inst)
            self._copy(inst.operands[2], inst)
        elif isinstance(inst, Load):
            if inst not in self.load_uses[inst.pointer]:
                self.load_uses[inst.pointer].add(inst)
                # Catch up on objects the pointer already points to.
                for obj in tuple(self.pts.get(inst.pointer, ())):
                    self._copy(obj, inst)
        elif isinstance(inst, Store):
            if inst.value not in self.store_sources[inst.pointer]:
                self.store_sources[inst.pointer].add(inst.value)
                for obj in tuple(self.pts.get(inst.pointer, ())):
                    self._copy(inst.value, obj)
        elif isinstance(inst, Call):
            self._wire_call(inst.callee, inst.operands, inst)
        elif isinstance(inst, ICall):
            if inst not in self.icall_sites[inst.target]:
                self.icall_sites[inst.target].add(inst)
                for obj in tuple(self.pts.get(inst.target, ())):
                    self._wire_icall_target(inst, obj)

    def _wire_call(self, callee: Function, args: Iterable[Value], result_node) -> None:
        for param, arg in zip(callee.params, args):
            self._copy(arg, param)
        for ret_val in self.returns.get(callee, ()):
            self._copy(ret_val, result_node)

    def _wire_icall_target(self, icall: ICall, obj: AbstractObject) -> None:
        if obj[0] != "func":
            return
        func = obj[1]
        if func in self.icall_edges[icall]:
            return
        if not _signature_plausible(icall, func):
            return
        self.icall_edges[icall].add(func)
        self._wire_call(func, icall.args, icall)

    # -- solver primitives ---------------------------------------------------

    def _add_pts(self, node: object, obj: AbstractObject) -> bool:
        if obj not in self.pts[node]:
            self.pts[node].add(obj)
            self.delta[node].add(obj)
            self._schedule(node)
            return True
        return False

    def _schedule(self, node: object) -> None:
        if node not in self.on_worklist:
            self.on_worklist.add(node)
            self.worklist.append(node)

    def _copy(self, src: object, dst: object) -> None:
        if dst not in self.copy_edges[src]:
            self.copy_edges[src].add(dst)
            # A fresh edge must carry src's *whole* current set once;
            # afterwards only src's deltas flow across it.
            for obj in tuple(self.pts.get(src, ())):
                self._add_pts(dst, obj)

    # -- fixed point -----------------------------------------------------------

    def solve(self) -> AndersenResult:
        start = time.perf_counter()
        self.build()
        while self.worklist:
            node = self.worklist.popleft()
            self.on_worklist.discard(node)
            self.iterations += 1
            d = self.delta.get(node)
            if not d:
                continue
            self.delta[node] = set()
            if len(d) > self.peak_delta:
                self.peak_delta = len(d)
            self.propagated_objects += len(d)
            # Copy edges: only the delta flows to targets.
            for dst in tuple(self.copy_edges.get(node, ())):
                for obj in d:
                    self._add_pts(dst, obj)
            # Load constraints: each new *node object feeds the loads.
            for load_inst in tuple(self.load_uses.get(node, ())):
                for obj in d:
                    self._copy(obj, load_inst)
            # Store constraints: stored values flow into new objects.
            for src in tuple(self.store_sources.get(node, ())):
                for obj in d:
                    self._copy(src, obj)
            # Indirect calls: new function targets wire args/returns.
            for icall in tuple(self.icall_sites.get(node, ())):
                for obj in d:
                    self._wire_icall_target(icall, obj)
        elapsed = time.perf_counter() - start
        constraint_counts = {
            "copy_edges": sum(len(v) for v in self.copy_edges.values()),
            "load": sum(len(v) for v in self.load_uses.values()),
            "store": sum(len(v) for v in self.store_sources.values()),
            "icall_sites": sum(len(v) for v in self.icall_sites.values()),
        }
        return AndersenResult(
            dict(self.pts), dict(self.icall_edges), elapsed, self.iterations,
            propagated_objects=self.propagated_objects,
            peak_delta=self.peak_delta,
            constraint_counts=constraint_counts,
        )


def _signature_plausible(icall: ICall, func: Function) -> bool:
    """Reject pointer targets whose arity cannot match the call site."""
    return len(func.ftype.params) == len(icall.args) or func.ftype.variadic


def run_andersen(module: Module) -> AndersenResult:
    """Convenience wrapper: build + solve."""
    return AndersenSolver(module).solve()

"""The paper's two over-privilege metrics (§6.4, Equations 1 and 2).

* **PT** — partition-time over-privilege of a domain: the fraction of
  its *accessible* global-variable bytes that no function in the domain
  has a data dependency on (Eq. 1).  OPEC's shadowing makes this 0 by
  construction; ACES' region merging does not.
* **ET** — execution-time over-privilege of a task: one minus the
  fraction of its *needed* global-variable bytes actually used during
  execution (Eq. 2); "needed" depends on the partitioning scheme.
"""

from __future__ import annotations

from typing import Iterable

from ..ir.values import GlobalVariable


def var2size(variables: Iterable[GlobalVariable]) -> int:
    """Σ sizes of a set of (writable) global variables, in bytes."""
    return sum(v.size for v in variables if not v.is_const)


def pt_value(accessible: set[GlobalVariable],
             needed: set[GlobalVariable]) -> float:
    """Equation 1: unneeded-but-accessible bytes over accessible bytes.

    A domain accessing no globals (or suffering no over-privilege) has
    PT = 0.
    """
    accessible_bytes = var2size(accessible)
    if accessible_bytes == 0:
        return 0.0
    unneeded_bytes = var2size(accessible - needed)
    return unneeded_bytes / accessible_bytes


def et_value(used: set[GlobalVariable],
             needed: set[GlobalVariable]) -> float:
    """Equation 2: 1 − used bytes / needed bytes.

    A task needing no globals has ET = 0.
    """
    needed_bytes = var2size(needed)
    if needed_bytes == 0:
        return 0.0
    used_bytes = var2size(used & needed)
    return 1.0 - used_bytes / needed_bytes


def cumulative_ratio(values: list[float],
                     thresholds: Iterable[float]) -> list[float]:
    """Fraction of ``values`` ≤ each threshold (Figure 10's y-axis)."""
    if not values:
        return [1.0 for _ in thresholds]
    count = len(values)
    return [sum(1 for v in values if v <= t) / count for t in thresholds]

"""First-class IR values: constants, globals, and parameters.

A :class:`Value` is anything an instruction can take as an operand.
Instructions themselves are values too (they produce a result); they
live in :mod:`repro.ir.instructions`.
"""

from __future__ import annotations

from typing import Optional, Union

from .types import IntType, PointerType, Type, I32, ptr

Initializer = Union[int, bytes, list, None]


class Value:
    """Base class for every IR value."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name

    def short(self) -> str:
        """A compact printable handle used by the textual printer."""
        return f"%{self.name}" if self.name else "%?"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short()}: {self.type}>"


class Constant(Value):
    """An integer constant of a given integer type."""

    def __init__(self, value: int, type_: IntType = I32):
        if not isinstance(type_, IntType):
            raise TypeError("Constant requires an integer type")
        super().__init__(type_)
        self.value = value & type_.mask

    def short(self) -> str:
        return str(self.value)


class ConstantPointer(Value):
    """A pointer constant: a fixed machine address cast to a pointer.

    This is how memory-mapped peripheral registers appear in firmware
    (``*(volatile uint32_t *)0x40011004``).  The backward-slicing pass
    in :mod:`repro.analysis.peripherals` recognises these.
    """

    def __init__(self, address: int, type_: PointerType):
        super().__init__(type_)
        self.address = address & 0xFFFFFFFF

    def short(self) -> str:
        return f"0x{self.address:08X}"


class ConstantNull(Value):
    """The null pointer of a given pointer type."""

    def __init__(self, type_: PointerType):
        super().__init__(type_)

    def short(self) -> str:
        return "null"


class Parameter(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int):
        super().__init__(type_, name)
        self.index = index


class GlobalVariable(Value):
    """A module-level variable.

    ``value_type`` is the type of the stored object; as a value the
    global is a *pointer* to that object, exactly as in LLVM.

    Attributes relevant to OPEC:

    * ``source_file`` — the "file" the variable was declared in; used by
      the ACES filename partitioning strategies.
    * ``is_const`` — read-only data, placed in flash.
    * ``sanitize_range`` — developer-provided ``(lo, hi)`` valid-value
      range used by the monitor's write-back sanitisation (§5.2).
    * ``pointer_field_offsets`` — byte offsets of pointer-typed fields,
      recorded by the compiler so the monitor can retarget them when
      switching operations (§4.2 / §5.3).
    """

    def __init__(
        self,
        name: str,
        value_type: Type,
        initializer: Initializer = None,
        *,
        source_file: str = "",
        is_const: bool = False,
        sanitize_range: Optional[tuple[int, int]] = None,
    ):
        super().__init__(ptr(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.source_file = source_file
        self.is_const = is_const
        self.sanitize_range = sanitize_range
        self.pointer_field_offsets = _pointer_field_offsets(value_type)

    @property
    def size(self) -> int:
        return self.value_type.size

    def short(self) -> str:
        return f"@{self.name}"

    def encode_initializer(self) -> bytes:
        """Render the initializer as little-endian bytes of ``size``."""
        return encode_initializer(self.initializer, self.value_type)


def _pointer_field_offsets(type_: Type, base: int = 0) -> list[int]:
    """Byte offsets of every pointer-typed slot within ``type_``."""
    from .types import ArrayType, StructType

    offsets: list[int] = []
    if isinstance(type_, PointerType):
        offsets.append(base)
    elif isinstance(type_, StructType):
        for i, (_, ftype) in enumerate(type_.fields):
            offsets.extend(_pointer_field_offsets(ftype, base + type_.offset_of(i)))
    elif isinstance(type_, ArrayType):
        for i in range(type_.count):
            offsets.extend(_pointer_field_offsets(type_.element, base + i * type_.stride))
    return offsets


def encode_initializer(init: Initializer, type_: Type) -> bytes:
    """Encode a Python-level initializer into raw little-endian bytes.

    Supported forms: ``None`` (zero-fill), ``int`` (scalar), ``bytes``
    (verbatim, zero-padded), and nested lists matching array/struct
    shape.
    """
    from .types import ArrayType, StructType

    size = type_.size
    if init is None:
        return bytes(size)
    if isinstance(init, int):
        if not type_.is_scalar:
            raise TypeError(f"integer initializer for non-scalar type {type_}")
        return (init & ((1 << (size * 8)) - 1)).to_bytes(size, "little")
    if isinstance(init, (bytes, bytearray)):
        data = bytes(init)
        if len(data) > size:
            raise ValueError(f"initializer too large: {len(data)} > {size}")
        return data + bytes(size - len(data))
    if isinstance(init, list):
        if isinstance(type_, ArrayType):
            if len(init) > type_.count:
                raise ValueError("too many array initializer elements")
            chunks = []
            for element in init:
                chunk = encode_initializer(element, type_.element)
                chunks.append(chunk + bytes(type_.stride - len(chunk)))
            blob = b"".join(chunks)
            return blob + bytes(size - len(blob))
        if isinstance(type_, StructType):
            if len(init) > len(type_.fields):
                raise ValueError("too many struct initializer elements")
            buf = bytearray(size)
            for i, element in enumerate(init):
                chunk = encode_initializer(element, type_.field_type(i))
                off = type_.offset_of(i)
                buf[off : off + len(chunk)] = chunk
            return bytes(buf)
    raise TypeError(f"unsupported initializer {init!r} for {type_}")

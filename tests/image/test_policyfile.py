"""Tests for the §4.3 policy-file serialisation."""

import json

import pytest

from repro import build_opec
from repro.image.policyfile import (
    PolicyValidationError,
    dump_policy,
    load_policy,
    policy_document,
    validate_policy,
    write_policy,
)

from ..conftest import MINI_SPECS, build_mini_module


@pytest.fixture
def artifacts(board):
    return build_opec(build_mini_module(), board, MINI_SPECS)


def test_document_structure(artifacts):
    document = policy_document(artifacts.image)
    assert document["format"] == "opec-policy-v1"
    assert document["module"] == "mini"
    assert len(document["operations"]) == 3
    main_op = next(op for op in document["operations"] if op["default"])
    assert main_op["entry"] == "main"


def test_externals_and_reloc_slots_serialised(artifacts):
    document = policy_document(artifacts.image)
    assert "counter" in document["relocation_table"]
    task_a = next(op for op in document["operations"]
                  if op["entry"] == "task_a")
    assert task_a["globals"]["external"] == ["counter"]
    assert task_a["globals"]["internal"] == ["secret"]


def test_mpu_regions_serialised(artifacts):
    document = policy_document(artifacts.image)
    for op in document["operations"]:
        numbers = [r["number"] for r in op["mpu_regions"]]
        assert numbers == [0, 1, 2, 3, 4]


def test_json_roundtrip(artifacts, tmp_path):
    path = tmp_path / "policy.json"
    write_policy(artifacts.image, str(path))
    loaded = load_policy(path.read_text())
    assert loaded == policy_document(artifacts.image)


def test_validate_accepts_own_document(artifacts):
    validate_policy(policy_document(artifacts.image), artifacts.image)


def test_validate_rejects_tampered_functions(artifacts):
    document = policy_document(artifacts.image)
    document["operations"][1]["functions"].append("evil_fn")
    with pytest.raises(PolicyValidationError, match="function set"):
        validate_policy(document, artifacts.image)


def test_validate_rejects_wrong_format(artifacts):
    document = policy_document(artifacts.image)
    document["format"] = "something-else"
    with pytest.raises(PolicyValidationError):
        validate_policy(document, artifacts.image)
    with pytest.raises(PolicyValidationError):
        load_policy(json.dumps(document))


def test_validate_rejects_missing_operation(artifacts):
    document = policy_document(artifacts.image)
    document["operations"][0]["entry"] = "ghost"
    with pytest.raises(PolicyValidationError, match="unknown operation"):
        validate_policy(document, artifacts.image)


def test_sanitize_ranges_included(board):
    import repro.ir as ir
    from repro.partition import OperationSpec

    module = ir.Module("san")
    state = module.add_global("state", ir.I32, 0, sanitize_range=(0, 3))
    t1, b = ir.define(module, "t1", ir.VOID, [])
    b.store(1, state)
    b.ret_void()
    t2, b = ir.define(module, "t2", ir.VOID, [])
    b.store(2, state)
    b.ret_void()
    _m, b = ir.define(module, "main", ir.I32, [])
    b.call(t1)
    b.call(t2)
    b.halt(0)
    artifacts = build_opec(module, board,
                           [OperationSpec("t1"), OperationSpec("t2")])
    document = policy_document(artifacts.image)
    t1_doc = next(op for op in document["operations"] if op["entry"] == "t1")
    assert t1_doc["sanitize"] == {"state": [0, 3]}

"""UART HAL authored in IR ("stm32_hal_uart.c").

Includes ``HAL_UART_Receive_IT`` — the function the paper's PinLock
case study assumes is buggy (§6.1).  The optional *planted
vulnerability* models the attacker's arbitrary-write primitive: when
the host sends the trigger byte 0xEE, the function reads a 4-byte
target address and a 4-byte value off the wire and writes the value to
that address — a faithful stand-in for a hijacked receive path.
"""

from __future__ import annotations

from types import SimpleNamespace

from ...hw.board import Board
from ...ir import I8, I32, Module, VOID, define, ptr

UART_SR = 0x00
UART_DR = 0x04
UART_BRR = 0x08
UART_CR1 = 0x0C
SR_RXNE = 1 << 5
SR_TXE = 1 << 7

ATTACK_TRIGGER = 0xEE


SR_ORE = 1 << 3


def add_uart_hal(module: Module, board: Board, *,
                 uart_name: str = "USART2",
                 with_vulnerability: bool = False,
                 error_handler=None) -> SimpleNamespace:
    base = board.peripheral(uart_name).base
    p8 = ptr(I8)

    # Driver handle + statistics: the UART_HandleTypeDef analogue.
    huart_t = module.struct("UART_Handle", [
        ("instance", I32), ("baudrate", I32), ("state", I32),
        ("rx_count", I32), ("tx_count", I32),
    ])
    huart = module.add_global("huart2", huart_t,
                              source_file="stm32_hal_uart.c")
    uart_errors = module.add_global("uart_error_count", I32, 0,
                                    source_file="stm32_hal_uart.c")

    uart_init, b = define(module, "HAL_UART_Init", VOID, [],
                          source_file="stm32_hal_uart.c")
    b.store(base, b.gep(huart, 0, 0))
    b.store(115_200, b.gep(huart, 0, 1))
    b.store(0x0683, b.mmio(base + UART_BRR))
    b.store(0x200C, b.mmio(base + UART_CR1))   # UE | TE | RE
    b.store(1, b.gep(huart, 0, 2))             # HAL_UART_STATE_READY
    b.ret_void()

    read_byte, b = define(module, "UART_Read_Byte", I32, [],
                          source_file="stm32_hal_uart.c")
    with b.while_loop(
        lambda: b.icmp("eq", b.and_(b.load(b.mmio(base + UART_SR)), SR_RXNE), 0)
    ):
        pass
    status = b.load(b.mmio(base + UART_SR))
    overrun = b.icmp("ne", b.and_(status, SR_ORE), 0)
    with b.if_then(overrun):
        # Never taken in the model, but real receive paths carry it —
        # the untaken-branch over-privilege of §6.4.
        b.store(b.add(b.load(uart_errors), 1), uart_errors)
        if error_handler is not None:
            b.call(error_handler, 0x10)
    b.store(b.add(b.load(b.gep(huart, 0, 3)), 1), b.gep(huart, 0, 3))
    b.ret(b.load(b.mmio(base + UART_DR)))

    write_byte, b = define(module, "UART_Write_Byte", VOID, [I32],
                           source_file="stm32_hal_uart.c")
    (byte,) = write_byte.params
    with b.while_loop(
        lambda: b.icmp("eq", b.and_(b.load(b.mmio(base + UART_SR)), SR_TXE), 0)
    ):
        pass
    b.store(byte, b.mmio(base + UART_DR))
    b.store(b.add(b.load(b.gep(huart, 0, 4)), 1), b.gep(huart, 0, 4))
    b.ret_void()

    transmit, b = define(module, "HAL_UART_Transmit", VOID, [p8, I32],
                         source_file="stm32_hal_uart.c")
    data, length = transmit.params
    with b.for_range(0, length) as load_i:
        byte = b.zext(b.load(b.gep(data, load_i())))
        b.call(write_byte, byte)
    b.ret_void()

    # HAL_UART_Receive_IT(buffer, length): receive `length` bytes.
    receive, b = define(module, "HAL_UART_Receive_IT", VOID, [p8, I32],
                        source_file="stm32_hal_uart.c")
    buffer, length = receive.params
    if with_vulnerability:
        # Buggy parsing path: a 0xEE header smuggles an arbitrary write
        # (address, value) through the receive routine.
        first = b.call(read_byte, name="first")
        is_attack = b.icmp("eq", first, ATTACK_TRIGGER)
        with b.if_else(is_attack) as otherwise:
            address = b.alloca(I32, name="target")
            b.store(0, address)
            with b.for_range(0, 4) as load_i:
                i = load_i()
                byte = b.call(read_byte)
                shifted = b.shl(byte, b.mul(i, 8))
                b.store(b.or_(b.load(address), shifted), address)
            value = b.alloca(I32, name="value")
            b.store(0, value)
            with b.for_range(0, 4) as load_i:
                i = load_i()
                byte = b.call(read_byte)
                shifted = b.shl(byte, b.mul(i, 8))
                b.store(b.or_(b.load(value), shifted), value)
            target = b.inttoptr(b.load(address), I32)
            b.store(b.load(value), target)   # the arbitrary write
            b.ret_void()
            otherwise()
            b.store(b.trunc(first), b.gep(buffer, 0))
            with b.for_range(1, length) as load_i:
                i = load_i()
                byte = b.call(read_byte)
                b.store(b.trunc(byte), b.gep(buffer, i))
        b.ret_void()
    else:
        with b.for_range(0, length) as load_i:
            i = load_i()
            byte = b.call(read_byte)
            b.store(b.trunc(byte), b.gep(buffer, i))
        b.ret_void()

    send_string, b = define(module, "UART_Send_String", VOID, [p8, I32],
                            source_file="stm32_hal_uart.c")
    text, length = send_string.params
    b.call(transmit, text, length)
    b.ret_void()

    return SimpleNamespace(
        init=uart_init, read_byte=read_byte, write_byte=write_byte,
        transmit=transmit, receive_it=receive, send_string=send_string,
        handle=huart, errors=uart_errors,
    )

"""End-to-end build-and-run facade.

Mirrors Figure 5: source (an IR module) + the developer's entry list →
static analyses → operation partitioning → policy → image generation;
then the image runs on a simulated machine under the chosen runtime
(vanilla baseline or OPEC-Monitor).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .analysis.andersen import AndersenResult, run_andersen
from .analysis.callgraph import CallGraph, build_call_graph
from .analysis.resources import ResourceAnalysis
from .cache import active_store, build_digest
from .hw.backend import BackendSpec, active_backend
from .hw.board import Board
from .hw.machine import Machine
from .image.layout import (
    DEFAULT_HEAP_SIZE,
    DEFAULT_STACK_SIZE,
    Image,
    VanillaImage,
    build_vanilla_image,
)
from .image.linker import OpecImage, build_opec_image
from .interp.hooks import RuntimeHooks
from .interp.interpreter import Interpreter
from .ir.module import Module
from .ir.verifier import verify_module
from .obs.events import BUILD_STAGE, DOMAIN_HOST
from .obs.recorder import FlightRecorder, active_recorder
from .partition.operations import Operation, OperationSpec, partition_operations
from .partition.policy import SystemPolicy, build_policy
from .runtime.monitor import OpecMonitor


@dataclass
class BuildArtifacts:
    """Everything the compiler stage produced for one OPEC build."""

    module: Module
    board: Board
    andersen: AndersenResult
    callgraph: CallGraph
    resources: ResourceAnalysis
    operations: list[Operation]
    policy: SystemPolicy
    image: OpecImage
    # Host wall-clock seconds per compiler stage (verify / andersen /
    # callgraph / resources / partition / policy / image) — diagnostic
    # only, never part of the determinism contract.  A cache hit
    # replaces the map with a single "cache_load" entry.
    stage_times: dict[str, float] = field(default_factory=dict)
    # Content-addressed cache bookkeeping: the structural digest this
    # build is stored under, and whether it was served from the store.
    cache_digest: str = ""
    cache_hit: bool = False


def build_opec(
    module: Module,
    board: Board,
    specs: Sequence[OperationSpec],
    *,
    stack_size: int = DEFAULT_STACK_SIZE,
    heap_size: int = DEFAULT_HEAP_SIZE,
    verify: bool = True,
) -> BuildArtifacts:
    """Run the full OPEC-Compiler pipeline (Figure 5, stage I).

    Consults the content-addressed artifact store first: a hit returns
    a deep copy of a previous build of the same (module, board, specs,
    flavour, pipeline version) — byte-identical images and analysis
    results without re-running any stage.  Note that a hit's objects
    are *fresh* copies: ``artifacts.module`` is equal to, but not the
    same object as, the ``module`` argument.
    """
    store = active_store()
    digest = ""
    if store is not None:
        start = time.perf_counter()
        digest = build_digest("opec", module, board, specs=specs,
                              stack_size=stack_size, heap_size=heap_size,
                              verify=verify)
        cached = store.get(digest)
        if cached is not None:
            cached.stage_times = {"cache_load": time.perf_counter() - start}
            cached.cache_digest = digest
            cached.cache_hit = True
            return cached

    stage_times: dict[str, float] = {}
    recorder = active_recorder()

    def timed(stage: str, thunk):
        if recorder is not None:
            recorder.begin(BUILD_STAGE, stage, None, DOMAIN_HOST,
                           args={"flavour": "opec",
                                 "module": module.name})
        start = time.perf_counter()
        result = thunk()
        stage_times[stage] = time.perf_counter() - start
        if recorder is not None:
            # Host-side wall clock: diagnostic only, never part of a
            # deterministic export (sim-domain exports drop host events).
            recorder.end(BUILD_STAGE, stage, None, DOMAIN_HOST,
                         args={"wall_us": int(stage_times[stage] * 1e6)})
        return result

    if verify:
        timed("verify", lambda: verify_module(module))
    andersen = timed("andersen", lambda: run_andersen(module))
    graph = timed("callgraph", lambda: build_call_graph(module, andersen))
    resources = ResourceAnalysis(module, board, andersen)
    # Pre-warm the per-function cache so "resources" carries the slicing
    # cost and "partition" is pure reachability + merging.
    timed("resources", lambda: [resources.function_resources(f)
                                for f in module.iter_functions()])
    operations = timed("partition", lambda: partition_operations(
        module, graph, specs, resources))
    policy = timed("policy", lambda: build_policy(module, operations))
    image = timed("image", lambda: build_opec_image(
        module, board, policy, stack_size=stack_size, heap_size=heap_size))
    artifacts = BuildArtifacts(
        module=module, board=board, andersen=andersen, callgraph=graph,
        resources=resources, operations=operations, policy=policy,
        image=image, stage_times=stage_times, cache_digest=digest,
    )
    if store is not None:
        store.put(digest, artifacts)
    return artifacts


def build_vanilla(module: Module, board: Board, *,
                  stack_size: int = DEFAULT_STACK_SIZE,
                  heap_size: int = DEFAULT_HEAP_SIZE,
                  verify: bool = True) -> VanillaImage:
    """The unprotected baseline build (cached like ``build_opec``)."""
    store = active_store()
    digest = ""
    if store is not None:
        digest = build_digest("vanilla", module, board,
                              stack_size=stack_size, heap_size=heap_size,
                              verify=verify)
        cached = store.get(digest)
        if cached is not None:
            return cached
    recorder = active_recorder()
    if recorder is not None:
        recorder.begin(BUILD_STAGE, "vanilla", None, DOMAIN_HOST,
                       args={"flavour": "vanilla", "module": module.name})
    stage_start = time.perf_counter()
    if verify:
        verify_module(module)
    image = build_vanilla_image(module, board,
                                stack_size=stack_size, heap_size=heap_size)
    if recorder is not None:
        recorder.end(BUILD_STAGE, "vanilla", None, DOMAIN_HOST,
                     args={"wall_us": int(
                         (time.perf_counter() - stage_start) * 1e6)})
    if store is not None:
        store.put(digest, image)
    return image


@dataclass
class RunResult:
    """Outcome of one simulated firmware run."""

    halt_code: int
    cycles: int
    machine: Machine
    interpreter: Interpreter
    hooks: RuntimeHooks


def default_hooks(machine: Machine, image: Image) -> Optional[RuntimeHooks]:
    """The runtime an image gets when the caller passes ``hooks=None``.

    OPEC images get a fresh monitor, ACES images their compartment
    runtime, vanilla images the no-op default (``None`` here; the
    interpreter substitutes ``RuntimeHooks()``).  Shared by
    :func:`run_image` and the batch runner so a batched lane runs
    under exactly the runtime a solo run would.
    """
    if isinstance(image, OpecImage):
        return OpecMonitor(machine, image)
    if image.kind == "aces":
        from .baselines.aces.runtime import AcesRuntime

        return AcesRuntime(machine, image)
    return None


def prepare_machine(
    image: Image,
    *,
    setup: Optional[Callable[[Machine], None]] = None,
    recorder: Optional[FlightRecorder] = None,
    backend: Optional[BackendSpec] = None,
) -> Machine:
    """Build and initialise a fresh machine for ``image`` (no run)."""
    machine = Machine(image.board,
                      backend=backend if backend is not None
                      else active_backend())
    machine.recorder = recorder if recorder is not None \
        else active_recorder()
    if setup is not None:
        setup(machine)
    image.initialize_memory(machine)
    return machine


def run_image(
    image: Image,
    *,
    hooks: Optional[RuntimeHooks] = None,
    setup: Optional[Callable[[Machine], None]] = None,
    entry: str = "main",
    max_instructions: int = 100_000_000,
    recorder: Optional[FlightRecorder] = None,
    backend: Optional[BackendSpec] = None,
    block_compile: Optional[bool] = None,
    trace_fuse: Optional[bool] = None,
) -> RunResult:
    """Load ``image`` onto a fresh machine and run it to halt.

    ``setup`` attaches device models and feeds host-side stimuli; for
    OPEC images pass ``hooks=None`` to get a monitor automatically.
    ``recorder`` attaches a flight recorder to the machine; when left
    ``None`` the ambient recorder (``REPRO_TRACE``) applies.
    ``backend`` selects the enforcement substrate (name or instance);
    when left ``None`` the ambient ``REPRO_BACKEND`` applies.
    ``block_compile`` overrides superinstruction execution; when left
    ``None`` the ambient ``REPRO_BLOCKCOMPILE`` (default on) applies.
    ``trace_fuse`` overrides loop-trace fusion the same way
    (``REPRO_TRACEFUSE``, default on, inert without block compilation).
    """
    machine = prepare_machine(image, setup=setup, recorder=recorder,
                              backend=backend)
    if hooks is None:
        hooks = default_hooks(machine, image)
    interp = Interpreter(machine, image, hooks,
                         max_instructions=max_instructions,
                         block_compile=block_compile,
                         trace_fuse=trace_fuse)
    code = interp.run(entry=entry)
    return RunResult(
        halt_code=code, cycles=machine.cycles, machine=machine,
        interpreter=interp, hooks=interp.hooks,
    )

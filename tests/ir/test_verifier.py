"""Unit tests for the IR verifier."""

import pytest

import repro.ir as ir
from repro.ir import I8, I32, VOID, VerificationError, verify_module
from repro.ir.instructions import Jump, Ret, Store
from repro.ir.values import Constant


def test_valid_module_passes(mini_module):
    verify_module(mini_module)


def test_missing_terminator():
    module = ir.Module("m")
    func, b = ir.define(module, "f", VOID, [])
    b.alloca(I32)
    with pytest.raises(VerificationError, match="missing terminator"):
        verify_module(module)


def test_terminator_not_last():
    module = ir.Module("m")
    func, b = ir.define(module, "f", VOID, [])
    block = func.entry_block
    ret = Ret(None)
    ret.parent = block
    block.instructions.append(ret)
    extra = ir.Alloca(I32)
    extra.parent = block
    block.instructions.append(extra)  # bypasses the append() guard
    block.instructions.append(Ret(None))
    with pytest.raises(VerificationError, match="not last"):
        verify_module(module)


def test_store_type_mismatch():
    module = ir.Module("m")
    _func, b = ir.define(module, "f", VOID, [])
    slot = b.alloca(I8)
    block = b.block
    bad = Store(Constant(1, I32), slot)
    bad.parent = block
    block.instructions.append(bad)
    b.ret_void()
    with pytest.raises(VerificationError, match="store type mismatch"):
        verify_module(module)


def test_call_arity_mismatch():
    module = ir.Module("m")
    callee, cb = ir.define(module, "callee", VOID, [I32])
    cb.ret_void()
    _func, b = ir.define(module, "f", VOID, [])
    from repro.ir.instructions import Call

    bad = Call(callee, [])
    bad.parent = b.block
    b.block.instructions.append(bad)
    b.ret_void()
    with pytest.raises(VerificationError, match="expected 1"):
        verify_module(module)


def test_ret_value_from_void_function():
    module = ir.Module("m")
    _func, b = ir.define(module, "f", VOID, [])
    block = b.block
    block.instructions.append(Ret(Constant(1)))
    with pytest.raises(VerificationError, match="ret value from void"):
        verify_module(module)


def test_ret_void_from_int_function():
    module = ir.Module("m")
    _func, b = ir.define(module, "f", I32, [])
    b.ret_void()
    with pytest.raises(VerificationError, match="ret void"):
        verify_module(module)


def test_dominance_violation():
    module = ir.Module("m")
    func, b = ir.define(module, "f", I32, [])
    then_block = b.add_block("then")
    merge = b.add_block("merge")
    b.br(b.icmp("eq", 1, 1), then_block, merge)
    b.position_at_end(then_block)
    defined_in_then = b.add(1, 2)
    b.jump(merge)
    b.position_at_end(merge)
    # `defined_in_then` does not dominate merge (entry can skip it).
    b.halt(defined_in_then)
    with pytest.raises(VerificationError, match="not dominated"):
        verify_module(module)


def test_value_defined_earlier_in_loop_is_dominated():
    module = ir.Module("m")
    _func, b = ir.define(module, "f", I32, [])
    i = b.alloca(I32)
    b.store(0, i)
    with b.while_loop(lambda: b.icmp("slt", b.load(i), 3)):
        v = b.add(b.load(i), 1)
        b.store(v, i)
    b.halt(b.load(i))
    verify_module(module)


def test_branch_condition_must_be_integer():
    module = ir.Module("m")
    func, b = ir.define(module, "f", VOID, [])
    other = b.add_block("o")
    slot = b.alloca(I32)  # pointer-typed value
    from repro.ir.instructions import Br

    bad = Br(slot, other, other)
    bad.parent = b.block
    b.block.instructions.append(bad)
    b.position_at_end(other)
    b.ret_void()
    with pytest.raises(VerificationError, match="condition"):
        verify_module(module)


def test_errors_are_collected_not_first_only():
    module = ir.Module("m")
    _f1, b1 = ir.define(module, "f1", VOID, [])
    b1.alloca(I32)  # missing terminator
    _f2, b2 = ir.define(module, "f2", I32, [])
    b2.ret_void()  # wrong ret
    with pytest.raises(VerificationError) as excinfo:
        verify_module(module)
    assert len(excinfo.value.errors) >= 2

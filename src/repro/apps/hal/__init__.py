"""Hardware abstraction layer authored in IR.

Every function carries a ``source_file`` tag ("rcc.c", "gpio.c",
"stm32_hal_uart.c", …) so the ACES filename strategies (§6.4) see the
same file structure real vendor HAL code has.
"""

from .camera import add_camera_hal
from .crypto import add_crypto, fnv1a_host
from .display import add_dma2d_hal, add_lcd_hal
from .ethernet import add_eth_hal
from .libc import add_libc
from .storage import add_sd_hal, add_usb_hal
from .system import add_system_hal
from .uart import ATTACK_TRIGGER, add_uart_hal

__all__ = [
    "add_camera_hal", "add_crypto", "fnv1a_host", "add_dma2d_hal",
    "add_lcd_hal", "add_eth_hal", "add_libc", "add_sd_hal", "add_usb_hal",
    "add_system_hal", "ATTACK_TRIGGER", "add_uart_hal",
]

"""Central metrics registry: named counters and cycle histograms.

The registry is the one place simulated quantities accumulate —
machine-level access/fault counters (the former ad-hoc
:class:`~repro.hw.machine.MachineStats` fields live here now, behind a
compatibility shim), monitor-level switch/sync/relocation counters,
and cycle-valued histograms (operation-switch duration, MemManage
handling time).  Everything in it is derived from simulated execution,
so a snapshot is deterministic: same firmware, same stimuli, same
numbers — across processes, hash seeds, and cache temperatures.

Counters are tiny mutable cells (``counter.value += 1``) so hot paths
pay one attribute store, the same shape as the dataclass field
increments they replace.
"""

from __future__ import annotations

from typing import Iterable, Optional


class Counter:
    """One monotonically written integer cell."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class CycleHistogram:
    """Power-of-two-bucketed histogram of cycle durations.

    Bucket ``i`` counts observations with ``bit_length() == i`` (bucket
    0 holds zeros); 33 buckets cover the 32-bit cycle range.  Buckets
    are a fixed-size list, so observation is O(1) and snapshots are
    deterministic without sorting.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    BUCKETS = 33

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max = 0
        self.buckets = [0] * self.BUCKETS

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[min(value.bit_length(), self.BUCKETS - 1)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min or 0,
            "mean": round(self.mean, 2),
            "max": self.max,
            "buckets": {
                f"<2^{i}": n for i, n in enumerate(self.buckets) if n
            },
        }


class MetricsRegistry:
    """Get-or-create registry of counters and histograms."""

    __slots__ = ("counters", "histograms")

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, CycleHistogram] = {}

    def counter(self, name: str) -> Counter:
        cell = self.counters.get(name)
        if cell is None:
            cell = self.counters[name] = Counter(name)
        return cell

    def histogram(self, name: str) -> CycleHistogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = CycleHistogram(name)
        return hist

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate ``other``'s metrics into this registry.

        Used by the batch runner to aggregate per-lane registries into
        a fleet-wide view.  Merging is order-independent for counters
        and for every histogram field, so the aggregate is
        deterministic regardless of lane completion order.
        """
        for name, cell in other.counters.items():
            self.counter(name).value += cell.value
        for name, hist in other.histograms.items():
            mine = self.histogram(name)
            mine.count += hist.count
            mine.total += hist.total
            if hist.min is not None and (mine.min is None
                                         or hist.min < mine.min):
                mine.min = hist.min
            if hist.max > mine.max:
                mine.max = hist.max
            for i, n in enumerate(hist.buckets):
                mine.buckets[i] += n

    # -- snapshots ----------------------------------------------------

    def snapshot(self) -> dict:
        """Every metric as plain data, sorted by name (deterministic)."""
        return {
            "counters": {name: self.counters[name].value
                         for name in sorted(self.counters)},
            "histograms": {name: self.histograms[name].as_dict()
                           for name in sorted(self.histograms)},
        }

    def render(self, title: str = "Metrics") -> str:
        """An aligned text summary (counters, then histograms)."""
        lines = [title]
        rows: list[tuple[str, str]] = [
            (name, str(self.counters[name].value))
            for name in sorted(self.counters)
        ]
        lines.extend(_aligned(["counter", "value"], rows))
        hist_rows = []
        for name in sorted(self.histograms):
            h = self.histograms[name]
            hist_rows.append((name, str(h.count), str(h.total),
                              str(h.min or 0), f"{h.mean:.1f}", str(h.max)))
        if hist_rows:
            lines.append("")
            lines.extend(_aligned(
                ["histogram", "count", "total", "min", "mean", "max"],
                hist_rows))
        return "\n".join(lines)


def _aligned(headers: Iterable[str],
             rows: list[tuple[str, ...]]) -> list[str]:
    headers = list(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
           "  ".join("-" * w for w in widths)]
    out.extend("  ".join(c.ljust(w) for c, w in zip(row, widths))
               for row in rows)
    return out


__all__ = ["Counter", "CycleHistogram", "MetricsRegistry"]

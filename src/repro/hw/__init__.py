"""Simulated ARMv7-M hardware substrate.

Stands in for the paper's STM32 boards: byte-addressable memory map
(Figure 2), two privilege levels with PPB protection (§2.1), exception
plumbing for SVC / MemManage / BusFault, a DWT-style cycle counter,
and device models for every peripheral the six applications use.

Memory isolation is pluggable (:mod:`repro.hw.backend`): a faithful
8-region MPU with sub-regions (§2.2), a RISC-V PMP adapter (§7), and a
Complets-style permission-overlay model all enforce the same policy
language behind :class:`~repro.hw.backend.EnforcementBackend`.
"""

from .backend import (
    DEFAULT_BACKEND,
    EnforcementBackend,
    KNOWN_BACKENDS,
    active_backend,
    create_backend,
)
from .board import (
    Board,
    CORE_PERIPHERALS,
    Peripheral,
    PPB_BASE,
    PPB_END,
    stm32479i_eval,
    stm32f4_discovery,
)
from .exceptions import (
    BusFault,
    HardFault,
    MachineError,
    MachineHalt,
    MemManageFault,
    SecurityAbort,
)
from .machine import Machine, MachineStats
from .memory import FlashRegion, MemoryMap, MMIORegion, RamRegion, Region
from .mpu import (
    ACCESS_NONE,
    ACCESS_READ,
    ACCESS_READWRITE,
    MIN_REGION_SIZE,
    MPU,
    MPURegion,
    NUM_REGIONS,
    NUM_SUBREGIONS,
    align_base,
    is_power_of_two,
    region_size_for,
)
from .overlay import (
    OverlayProtection,
    compile_regions_to_overlay,
    use_overlay,
)
from .pmp import (
    NUM_PMP_ENTRIES,
    PMP,
    PMPEntry,
    PmpProtection,
    compile_regions_to_pmp,
    napot_cover,
    use_pmp,
)

__all__ = [
    "DEFAULT_BACKEND", "EnforcementBackend", "KNOWN_BACKENDS",
    "active_backend", "create_backend",
    "Board", "CORE_PERIPHERALS", "Peripheral", "PPB_BASE", "PPB_END",
    "stm32479i_eval", "stm32f4_discovery",
    "BusFault", "HardFault", "MachineError", "MachineHalt",
    "MemManageFault", "SecurityAbort",
    "Machine", "MachineStats",
    "FlashRegion", "MemoryMap", "MMIORegion", "RamRegion", "Region",
    "ACCESS_NONE", "ACCESS_READ", "ACCESS_READWRITE",
    "MIN_REGION_SIZE", "MPU", "MPURegion", "NUM_REGIONS",
    "NUM_SUBREGIONS", "align_base", "is_power_of_two", "region_size_for",
    "NUM_PMP_ENTRIES", "PMP", "PMPEntry", "PmpProtection",
    "compile_regions_to_pmp", "napot_cover", "use_pmp",
    "OverlayProtection", "compile_regions_to_overlay", "use_overlay",
]

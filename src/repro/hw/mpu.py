"""ARMv7-M Memory Protection Unit model.

Implements the MPU semantics the whole OPEC design hinges on (§2.2):

* eight regions, each with a power-of-two size (minimum 32 bytes) and a
  base address aligned to that size;
* when regions overlap, the **highest-numbered** enabled region decides
  the access permission;
* each region splits into eight equal sub-regions that can be disabled
  individually; a disabled sub-region falls through to lower-numbered
  regions (this is what OPEC's stack protection exploits, §5.2);
* with ``PRIVDEFENA`` set, privileged code falls back to the default
  memory map when no region matches; unprivileged code faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .backend import EnforcementBackend

ACCESS_NONE = "NA"
ACCESS_READ = "RO"
ACCESS_READWRITE = "RW"

MIN_REGION_SIZE = 32
NUM_REGIONS = 8
NUM_SUBREGIONS = 8


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def region_size_for(length: int) -> int:
    """Smallest legal MPU region size covering ``length`` bytes."""
    size = MIN_REGION_SIZE
    while size < length:
        size <<= 1
    return size


def align_base(address: int, size: int) -> int:
    """Round ``address`` down to a legal base for a region of ``size``."""
    return address & ~(size - 1)


@dataclass
class MPURegion:
    """One MPU region descriptor.

    ``priv`` / ``unpriv`` are the access permissions at each privilege
    level, one of ``"NA"``, ``"RO"``, ``"RW"``.  ``subregion_disable``
    is an 8-bit mask; bit *i* set disables sub-region *i* (lowest
    addresses first, matching the SRD field).
    """

    number: int
    base: int
    size: int
    priv: str = ACCESS_READWRITE
    unpriv: str = ACCESS_NONE
    executable: bool = False
    subregion_disable: int = 0
    enabled: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.number < NUM_REGIONS:
            raise ValueError(f"region number {self.number} out of range")
        if not is_power_of_two(self.size) or self.size < MIN_REGION_SIZE:
            raise ValueError(f"illegal region size {self.size}")
        if self.base % self.size != 0:
            raise ValueError(
                f"base 0x{self.base:08X} not aligned to size 0x{self.size:X}"
            )
        if self.priv not in (ACCESS_NONE, ACCESS_READ, ACCESS_READWRITE):
            raise ValueError(f"bad priv access {self.priv!r}")
        if self.unpriv not in (ACCESS_NONE, ACCESS_READ, ACCESS_READWRITE):
            raise ValueError(f"bad unpriv access {self.unpriv!r}")
        if not 0 <= self.subregion_disable < 256:
            raise ValueError("subregion_disable must be an 8-bit mask")

    @property
    def subregion_size(self) -> int:
        return self.size // NUM_SUBREGIONS

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def subregion_of(self, address: int) -> int:
        return (address - self.base) // self.subregion_size

    def matches(self, address: int) -> bool:
        """True if this region claims ``address`` (sub-region enabled)."""
        if not self.enabled or not self.contains(address):
            return False
        return not (self.subregion_disable >> self.subregion_of(address)) & 1

    def permits(self, privileged: bool, write: bool) -> bool:
        access = self.priv if privileged else self.unpriv
        if access == ACCESS_NONE:
            return False
        if write and access != ACCESS_READWRITE:
            return False
        return True


@dataclass
class MPU(EnforcementBackend):
    """The MPU: eight region slots plus the control register bits.

    Arbitration results are memoised in a decision cache.  Region
    boundaries (base, end, every sub-region edge) all fall on multiples
    of four bytes — the minimum region size is 32 and sub-regions are
    an eighth of a power-of-two size — so the verdict for a probe byte
    is constant across its aligned 4-byte word.  A decision is
    therefore cached under ``(first-word, last-word, privileged,
    write, privdefena)`` and stays valid until the region
    configuration changes:
    ``set_region`` / ``clear_region`` / ``load_configuration`` /
    ``restore`` start a new configuration epoch and drop the cache.
    ``privileged`` is part of the key, so privilege changes need no
    invalidation; ``enabled`` is re-checked on every call before the
    cache is consulted.
    """

    # EnforcementBackend identity + cost model.  A full reconfiguration
    # is eight RBAR/RASR register pairs plus the SVC path around them;
    # a fault-driven remap rewrites one pair inside the MemManage
    # handler.  These are the exact constants the monitor charged
    # before the interface existed (interp.costs.SWITCH_BASE_COST /
    # REGION_SWITCH_COST), so MPU-backend results stay bit-identical.
    name = "mpu"
    switch_base_cost = 60
    region_switch_cost = 40

    enabled: bool = False
    privdefena: bool = True
    regions: list[Optional[MPURegion]] = field(
        default_factory=lambda: [None] * NUM_REGIONS
    )
    epoch: int = field(default=0, repr=False, compare=False)
    _decisions: dict = field(default_factory=dict, repr=False, compare=False)

    def invalidate(self) -> None:
        """Start a new region-configuration epoch, dropping the cache."""
        self.epoch += 1
        self._decisions = {}

    def set_region(self, region: MPURegion) -> None:
        self.regions[region.number] = region
        self.invalidate()

    def clear_region(self, number: int) -> None:
        self.regions[number] = None
        self.invalidate()

    def get_region(self, number: int) -> Optional[MPURegion]:
        return self.regions[number]

    def load_configuration(self, regions: list[MPURegion]) -> None:
        """Replace the full region set (operation switch, §5.3)."""
        self.regions = [None] * NUM_REGIONS
        for region in regions:
            self.regions[region.number] = region
        self.invalidate()

    def matching_region(self, address: int) -> Optional[MPURegion]:
        """Highest-numbered enabled region claiming ``address``."""
        for region in reversed(self.regions):
            if region is not None and region.matches(address):
                return region
        return None

    def allows(self, address: int, size: int, privileged: bool,
               write: bool) -> bool:
        """Check an access of ``size`` bytes starting at ``address``.

        Both the first and last byte are checked so accesses straddling
        a sub-region or region boundary are confined correctly.
        """
        if not self.enabled:
            return True
        key = (address >> 2, (address + size - 1) >> 2, privileged, write,
               self.privdefena)
        verdict = self._decisions.get(key)
        if verdict is None:
            verdict = self._arbitrate(address, size, privileged, write)
            self._decisions[key] = verdict
        return verdict

    def fast_allows(self):
        """Epoch-scoped arbitration closure (base-class contract).

        Captures this epoch's verdict memo and the arbitrator directly;
        ``invalidate`` *replaces* ``_decisions``, so the captured dict
        can never serve a later epoch.  ``enabled`` and ``privdefena``
        flip without an epoch bump and are read live.
        """
        def fast(address, size, privileged, write, _self=self,
                 _decisions=self._decisions, _arbitrate=self._arbitrate):
            if not _self.enabled:
                return True
            key = (address >> 2, (address + size - 1) >> 2, privileged,
                   write, _self.privdefena)
            verdict = _decisions.get(key)
            if verdict is None:
                verdict = _arbitrate(address, size, privileged, write)
                _decisions[key] = verdict
            return verdict

        return fast

    def _arbitrate(self, address: int, size: int, privileged: bool,
                   write: bool) -> bool:
        """The uncached §2.2 arbitration (first and last probe byte)."""
        last = address + size - 1
        for probe in (address, last) if last != address else (address,):
            region = self.matching_region(probe)
            if region is None:
                if privileged and self.privdefena:
                    continue
                return False
            if not region.permits(privileged, write):
                return False
        return True

    def snapshot(self) -> list[Optional[MPURegion]]:
        """Copy of the current region set (saved in operation context)."""
        return list(self.regions)

    def restore(self, snapshot: list[Optional[MPURegion]]) -> None:
        self.regions = list(snapshot)
        self.invalidate()

"""Figure 10: cumulative ratio of the PT (partition-time
over-privilege) value per compartment, for the three ACES strategies
on the five shared applications (§6.4).

OPEC's PT is zero for every operation by construction (verified here
too): an operation's data section contains exactly the variables it
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps import ACES_APPS
from ..baselines.aces.compartments import ALL_STRATEGIES
from .metrics import cumulative_ratio, pt_value
from .report import render_table
from .workloads import aces_artifacts, opec_artifacts

THRESHOLDS = [round(0.1 * i, 1) for i in range(11)]


@dataclass
class Figure10Data:
    app: str
    pt_values: dict[str, list[float]] = field(default_factory=dict)

    def cumulative(self, strategy: str) -> list[float]:
        return cumulative_ratio(self.pt_values[strategy], THRESHOLDS)


def aces_pt_values(name: str, strategy: str) -> list[float]:
    artifacts = aces_artifacts(name, strategy)
    values = []
    for compartment in artifacts.compartments:
        accessible = {
            v for v in artifacts.assignment.accessible_vars(compartment)
            if not v.is_const
        }
        needed = {
            v for v in compartment.resources.globals_all if not v.is_const
        }
        values.append(pt_value(accessible, needed))
    return values


def opec_pt_values(name: str) -> list[float]:
    artifacts = opec_artifacts(name)
    policy = artifacts.policy
    values = []
    for operation in artifacts.operations:
        accessible = {
            v for v in policy.section_vars(operation) if not v.is_const
        }
        needed = {
            v for v in operation.resources.globals_all if not v.is_const
        }
        values.append(pt_value(accessible, needed))
    return values


def compute_app(name: str) -> Figure10Data:
    entry = Figure10Data(app=name)
    for strategy in ALL_STRATEGIES:
        entry.pt_values[strategy] = aces_pt_values(name, strategy)
    entry.pt_values["OPEC"] = opec_pt_values(name)
    return entry


def compute_figure(apps: tuple[str, ...] = ACES_APPS) -> list[Figure10Data]:
    return [compute_app(name) for name in apps]


def render(data: list[Figure10Data]) -> str:
    blocks = []
    for entry in data:
        rows = []
        for strategy in (*ALL_STRATEGIES, "OPEC"):
            series = entry.cumulative(strategy)
            rows.append(
                (strategy, *(f"{v:.2f}" for v in series))
            )
        blocks.append(render_table(
            ["Policy", *(f"PT<={t}" for t in THRESHOLDS)],
            rows,
            title=f"Figure 10({entry.app}): cumulative ratio of PT",
        ))
    return "\n\n".join(blocks)


def main() -> None:
    print(render(compute_figure()))


if __name__ == "__main__":
    main()

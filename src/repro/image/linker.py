"""The OPEC linker: program-image generation (§4.4).

Builds an :class:`OpecImage` from a module and its
:class:`~repro.partition.policy.SystemPolicy`:

* flash — vector table, application code, OPEC-Monitor code, read-only
  data, operation metadata, SVC instrumentation stubs;
* SRAM — the public data section (originals of external variables plus
  globals no operation touches, and the monitor's privileged state),
  the variable relocation table, the operation-data zone (heap plus one
  data section per operation, sections sorted by size descending and
  placed at MPU-legal bases, §4.4), and the stack;
* per-operation MPU region templates (R0–R4 plus peripheral windows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hw.board import Board
from ..hw.mpu import MIN_REGION_SIZE, region_size_for
from ..ir.module import Module
from ..ir.values import GlobalVariable
from ..partition.operations import Operation
from ..partition.policy import SystemPolicy
from . import metadata as md
from .layout import (
    DEFAULT_HEAP_SIZE,
    DEFAULT_STACK_SIZE,
    Image,
    Section,
    VECTOR_TABLE_SIZE,
    align_up,
)
from .mpu_config import (
    RegionTemplate,
    background_region,
    code_region,
    covering_regions,
    data_zone_region,
    opdata_region,
    stack_region,
)

_WORD = 4

# Functions whose presence in an operation marks it as a heap user.
HEAP_FUNCTION_NAMES = frozenset(
    {"malloc", "free", "calloc", "realloc", "heap_alloc", "heap_free",
     "mem_malloc", "mem_free"}
)


class LinkError(Exception):
    """The image does not fit the board's memories."""


@dataclass
class OperationLayout:
    """Per-operation link products consumed by the monitor."""

    operation: Operation
    section: Section
    region_size: int
    templates: list[RegionTemplate] = field(default_factory=list)
    static_windows: list[tuple[int, int]] = field(default_factory=list)
    uses_heap: bool = False


class OpecImage(Image):
    """A firmware image armed with OPEC (Figure 6)."""

    kind = "opec"

    def __init__(self, module: Module, board: Board, policy: SystemPolicy,
                 stack_size: int = DEFAULT_STACK_SIZE,
                 heap_size: int = DEFAULT_HEAP_SIZE):
        super().__init__(module, board, stack_size, heap_size)
        self.policy = policy
        self.op_layouts: dict[int, OperationLayout] = {}
        self.shadow_addresses: dict[tuple[int, GlobalVariable], int] = {}
        self.public_addresses: dict[GlobalVariable, int] = {}
        self.reloc_slots: dict[GlobalVariable, int] = {}
        self.entry_to_operation: dict[str, Operation] = {
            op.entry.name: op for op in policy.operations
        }
        self.stack_base = 0
        self.monitor_code_bytes = 0
        self.metadata_bytes = 0
        self.instrumentation_bytes = 0

    # -- queries used by the monitor -------------------------------------

    def operation_for_entry(self, func) -> Optional[Operation]:
        return self.entry_to_operation.get(func.name)

    def shadow_address(self, operation: Operation,
                       gvar: GlobalVariable) -> int:
        return self.shadow_addresses[(operation.index, gvar)]

    def layout_of(self, operation: Operation) -> OperationLayout:
        return self.op_layouts[operation.index]

    @property
    def subregion_size(self) -> int:
        return self.stack_size // 8


def build_opec_image(module: Module, board: Board, policy: SystemPolicy,
                     stack_size: int = DEFAULT_STACK_SIZE,
                     heap_size: int = DEFAULT_HEAP_SIZE) -> OpecImage:
    """Link a module + policy into an OPEC image."""
    if stack_size & (stack_size - 1):
        raise LinkError("stack size must be a power of two (one MPU region)")
    image = OpecImage(module, board, policy, stack_size, heap_size)

    _layout_flash(image)
    _layout_sram(image)
    _build_region_templates(image)
    return image


# -- flash ---------------------------------------------------------------


def _layout_flash(image: OpecImage) -> None:
    board = image.board
    cursor = board.flash_base
    image.add_section("vectors", cursor, VECTOR_TABLE_SIZE, "code")
    cursor += VECTOR_TABLE_SIZE

    text_start = cursor
    cursor = image._layout_code(cursor)
    image.add_section("text", text_start, cursor - text_start, "code")

    image.instrumentation_bytes = md.instrumentation_size(
        image.module, image.policy
    )
    image.add_section("svc_stubs", cursor, image.instrumentation_bytes, "code")
    cursor += image.instrumentation_bytes

    image.monitor_code_bytes = md.monitor_code_size(len(image.policy.operations))
    image.add_section("monitor", cursor, image.monitor_code_bytes, "monitor")
    cursor += image.monitor_code_bytes

    rodata_start = cursor
    cursor = image._layout_rodata(cursor)
    if cursor > rodata_start:
        image.add_section("rodata", rodata_start, cursor - rodata_start,
                          "rodata")

    image.metadata_bytes = md.metadata_size(image.policy)
    image.add_section("metadata", cursor, image.metadata_bytes, "metadata")
    cursor += image.metadata_bytes

    if cursor > board.flash_base + board.flash_size:
        raise LinkError("OPEC image does not fit in flash")


# -- SRAM -----------------------------------------------------------------


def _layout_sram(image: OpecImage) -> None:
    board = image.board
    policy = image.policy
    cursor = board.sram_base

    # Public data section: external originals + unpartitioned globals,
    # then the monitor's privileged state.
    public_start = cursor
    for gvar in policy.all_external_vars() + policy.public_only_vars():
        address = align_up(cursor, max(gvar.value_type.alignment, _WORD))
        image.public_addresses[gvar] = address
        image._global_addresses[gvar] = address
        cursor = address + align_up(gvar.size, _WORD)
    cursor = align_up(cursor, _WORD) + md.MONITOR_DATA_BYTES
    image.add_section("public", public_start, cursor - public_start, "public")

    # Variable relocation table: one pointer slot per external variable.
    reloc_start = cursor
    for gvar in policy.all_external_vars():
        image.reloc_slots[gvar] = cursor
        cursor += _WORD
    image.add_section("reloc", reloc_start, max(cursor - reloc_start, _WORD),
                      "reloc")

    # Operation-data zone: per-operation sections (descending size at
    # MPU-legal bases) followed by the heap.  A dry relative-placement
    # pass sizes the zone so its single covering MPU region (R2) can be
    # based exactly at the zone start, never reaching down over the
    # relocation table.
    sections = []
    for operation in policy.operations:
        content = policy.section_size(operation)
        region = region_size_for(max(content, MIN_REGION_SIZE))
        sections.append((region, content, operation))
    sections.sort(key=lambda item: item[0], reverse=True)

    relative = 0
    offsets: list[int] = []
    for region, _content, _operation in sections:
        base = align_up(relative, region)
        offsets.append(base)
        relative = base + region
    heap_offset = align_up(relative, MIN_REGION_SIZE)
    zone_length = heap_offset + image.heap_size
    zone_region_size = region_size_for(max(zone_length, MIN_REGION_SIZE))
    zone_start = align_up(cursor, zone_region_size)

    for (region, content, operation), offset in zip(sections, offsets):
        base = zone_start + offset
        section = image.add_section(
            f"opdata.{operation.entry.name}", base, region, "opdata"
        )
        image.op_layouts[operation.index] = OperationLayout(
            operation=operation, section=section, region_size=region,
            uses_heap=_operation_uses_heap(operation),
        )
        _place_section_vars(image, operation, base)

    image.heap_base = zone_start + heap_offset
    image.add_section("heap", image.heap_base, image.heap_size, "heap")
    image.zone_start = zone_start
    image.zone_size = zone_region_size
    zone_end = image.heap_base + image.heap_size

    # Stack: one power-of-two MPU region at the top of SRAM.
    sram_end = board.sram_base + board.sram_size
    image.stack_base = sram_end - image.stack_size
    if image.stack_base % image.stack_size != 0:
        raise LinkError("stack base not aligned for its MPU region")
    image.stack_top = sram_end
    image.stack_limit = image.stack_base
    image.add_section("stack", image.stack_base, image.stack_size, "stack")

    if zone_end > image.stack_base:
        raise LinkError(
            f"SRAM overflow: operation-data zone ends at 0x{zone_end:08X}, "
            f"stack begins at 0x{image.stack_base:08X}"
        )


def _place_section_vars(image: OpecImage, operation: Operation,
                        base: int) -> None:
    """Lay out internal variables and external shadows in a section."""
    policy = image.policy
    cursor = base
    for gvar in policy.internal_vars(operation):
        address = align_up(cursor, max(gvar.value_type.alignment, _WORD))
        image._global_addresses[gvar] = address
        cursor = address + align_up(gvar.size, _WORD)
    for gvar in policy.external_vars(operation):
        address = align_up(cursor, max(gvar.value_type.alignment, _WORD))
        image.shadow_addresses[(operation.index, gvar)] = address
        cursor = address + align_up(gvar.size, _WORD)


def _operation_uses_heap(operation: Operation) -> bool:
    return any(f.name in HEAP_FUNCTION_NAMES for f in operation.functions)


# -- MPU templates ------------------------------------------------------------


def _build_region_templates(image: OpecImage) -> None:
    board = image.board
    shared = [
        background_region(),
        code_region(board.flash_base, board.flash_size),
        data_zone_region(image.zone_start, image.zone_size),
    ]
    # The SRAM layout aligned the zone start to the zone region size, so
    # the NA overlay starts exactly at the zone and can never reach down
    # over the relocation table.
    zone_template = shared[2]
    if zone_template.base < image.section("reloc").end:
        raise LinkError(
            "data zone MPU region would cover the relocation table"
        )

    for operation in image.policy.operations:
        layout = image.op_layouts[operation.index]
        templates = list(shared)
        templates.append(
            stack_region(image.stack_base, image.stack_size)
        )
        templates.append(
            opdata_region(layout.section.base, layout.region_size)
        )
        layout.templates = templates
        layout.static_windows = _static_windows(operation, layout)


def _static_windows(operation: Operation,
                    layout: OperationLayout) -> list[tuple[int, int]]:
    """The peripheral windows wired statically into R5–R7.

    The heap (when used) takes the first slot; remaining slots hold the
    operation's first merged windows; everything else is served by the
    fault-driven virtualisation (§5.2).
    """
    slots: list[tuple[int, int]] = []
    # The heap region (when used) is attached by the monitor at switch
    # time and occupies the first peripheral slot.
    budget = 2 if layout.uses_heap else 3
    for window in operation.windows:
        for base, size in covering_regions(window.base, window.size):
            if len(slots) < budget:
                slots.append((base, size))
    return slots

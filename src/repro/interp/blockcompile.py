"""Superinstruction compilation: one Python closure per basic block.

PR 1 made per-instruction dispatch cheap (``inst._hot``); the next
factor requires not dispatching at all.  This module compiles each
:class:`~repro.ir.function.BasicBlock` once into a single generated
function — the straight-line handler chain fused into one code object —
cached on the block (``block._compiled``) and shared by every
interpreter executing it.

Design constraints (DESIGN.md, "Superinstruction compilation"):

* **Bit-identical semantics.**  The generated code charges the same
  cycles at the same points (``machine.cycles`` plus the SysTick
  check — an inlined ``Machine.consume``), bumps the same
  ``MachineStats`` counter cells in the same order, delivers pending
  IRQs at the same instruction boundaries, and routes faults through
  the same ``Interpreter._retry_access`` path as single-step
  execution.  ``tools/check_determinism.py`` runs the full export with
  block compilation on and off and byte-compares everything.

* **Image independence.**  The same IR objects may be linked into
  several images (and shared by batch-runner lanes), so generated code
  resolves every image- or machine-specific value at run time through
  the executing interpreter: globals via
  ``interp.hooks.global_address``, function addresses and the stack
  limit via ``interp.image``.  Only genuinely immutable facts are
  folded at compile time: operand slots, constant values, cycle
  costs, access sizes/masks, GEP strides and struct offsets, branch
  targets.

* **Epoch-scoped access fast path.**  Loads/stores inline the exact
  body of ``Machine.load``/``store`` but arbitrate through the
  backend's :meth:`~repro.hw.backend.EnforcementBackend.fast_allows`
  specialisation, validated against the decision-cache epoch at block
  entry and re-validated after every fault retry (the only point
  inside a block where the monitor can reconfigure enforcement; the
  SVC/call/return seams leave the block entirely).

* **Single-step fallback.**  The compiled function returns to the
  interpreter loop — with ``frame.index`` and
  ``interp.instructions_executed`` synced — at every suspension
  point: pending IRQs, SVCs, calls, returns.  IRQ windows, delivery
  boundaries, and uncompilable blocks run through the unmodified
  ``step()``, so the trickiest interleavings always execute on the
  reference path.

* **Fault-exact fallback.**  Register fetches always precede side
  effects, so a missing register (KeyError) replays the instruction
  through its single-step handler (:func:`_undef`), which raises the
  canonical "use of undefined value" HardFault.  Shapes the compiler
  does not specialise (runtime struct indices, unknown ops) delegate
  to ``Interpreter._execute`` mid-block.

``REPRO_BLOCKCOMPILE`` (default **on**) gates the whole mechanism;
unknown spellings raise loudly, matching ``REPRO_TRACE``.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from ..hw.board import PPB_BASE as _PPB_BASE, PPB_END as _PPB_END
from ..hw.exceptions import BusFault, HardFault, MemManageFault
from ..ir.function import BasicBlock, Function
from ..ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    GEP,
    Halt,
    ICall,
    ICmp,
    Instruction,
    Jump,
    Load,
    Ret,
    Select,
    Store,
    SVC,
    Unreachable,
)
from ..ir.types import ArrayType, IntType, StructType
from ..ir.values import (
    Constant,
    ConstantNull,
    ConstantPointer,
    GlobalVariable,
    Parameter,
)
from .costs import DEFAULT_COST, DIV_COST, INSTRUCTION_COSTS

_WORD = 0xFFFFFFFF
_DIV_OPS = ("udiv", "sdiv", "urem", "srem")

#: Accepted ``REPRO_BLOCKCOMPILE`` spellings.  Anything else raises.
#: Unset/empty means **on** — block compilation is the default mode.
BLOCKCOMPILE_ON_VALUES = frozenset({"", "on", "1", "true", "yes", "enabled"})
BLOCKCOMPILE_OFF_VALUES = frozenset({"off", "0", "none", "false", "disabled"})

_BINOP_SYMBOLS = {"add": "+", "sub": "-", "mul": "*",
                  "and": "&", "or": "|", "xor": "^"}
_ICMP_SYMBOLS = {"eq": "==", "ne": "!=",
                 "ult": "<", "ule": "<=", "ugt": ">", "uge": ">=",
                 "slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
_ICMP_SIGNED = frozenset({"slt", "sle", "sgt", "sge"})


def block_compile_enabled() -> bool:
    """Whether ``REPRO_BLOCKCOMPILE`` asks for compiled-block execution.

    Defaults to on; misspellings raise instead of silently changing
    the execution mode under a benchmark or a determinism check.
    """
    raw = os.environ.get("REPRO_BLOCKCOMPILE", "").strip().lower()
    if raw in BLOCKCOMPILE_ON_VALUES:
        return True
    if raw in BLOCKCOMPILE_OFF_VALUES:
        return False
    raise ValueError(
        f"REPRO_BLOCKCOMPILE={raw!r} is not a recognised setting; "
        f"use one of {sorted(BLOCKCOMPILE_ON_VALUES - {''})} or "
        f"{sorted(BLOCKCOMPILE_OFF_VALUES)}"
    )


def _undef(interp, frame, inst) -> None:
    """Cold path: a register operand was missing (KeyError on fetch).

    Generated code performs all register fetches before any side
    effect, so the instruction can be replayed through its single-step
    handler, which raises the canonical "use of undefined value"
    HardFault with the exact message single-step execution produces.
    """
    interp._execute(frame, inst)
    # The replay must raise (the register really is absent); reaching
    # here means the compiled fetch and the handler disagree.
    raise HardFault(f"operand KeyError replaying {inst!r}")


def _fold_signed(value: int, bits: int) -> int:
    """Compile-time twos-complement fold (mirrors ``_to_signed``)."""
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def _inst_cost(inst: Instruction) -> int:
    cost = INSTRUCTION_COSTS.get(inst.opcode, DEFAULT_COST)
    if isinstance(inst, BinOp) and inst.op in _DIV_OPS:
        cost = DIV_COST
    return cost


class _Emitted:
    """One instruction's generated statements plus emission metadata.

    ``fetch`` holds the statements that may raise KeyError on a
    missing register (always free of side effects beyond scratch
    locals / idempotent register writes); ``body`` holds the
    side-effecting remainder.  Unguarded instructions keep everything
    in ``body``.
    """

    __slots__ = ("fetch", "body", "transfers", "pure")

    def __init__(self, body: list[str], *, fetch: Optional[list[str]] = None,
                 transfers: bool = False, pure: bool = False):
        self.fetch = fetch or []
        self.body = body
        self.transfers = transfers  # ends with `return`
        self.pure = pure            # eligible for the batched pure path

    @property
    def guarded(self) -> bool:
        return bool(self.fetch)


class _BlockCompiler:
    """Emits and ``exec``s the superinstruction source for one block."""

    def __init__(self, block: BasicBlock):
        self.block = block
        function = block.parent
        self.fname = function.name if function is not None else "?"
        self.ns: dict = {}
        self._obj_names: dict[int, str] = {}
        self._counter = 0

    # -- namespace bindings -------------------------------------------

    def _bind(self, obj, prefix: str = "O") -> str:
        name = self._obj_names.get(id(obj))
        if name is None:
            self._counter += 1
            name = f"_{prefix}{self._counter}"
            self._obj_names[id(obj)] = name
            self.ns[name] = obj
        return name

    # -- operand expressions ------------------------------------------

    def _operand(self, value) -> tuple[str, bool]:
        """``(expression, needs_keyerror_guard)`` for one operand.

        Mirrors ``Interpreter.eval``'s classification; register
        operands compile to a plain dict fetch and everything
        image-specific stays a runtime call through ``interp``.
        """
        if isinstance(value, Constant):
            return repr(value.value & value.type.mask), False
        if isinstance(value, ConstantPointer):
            return repr(value.address), False
        if isinstance(value, ConstantNull):
            return "0", False
        if isinstance(value, GlobalVariable):
            name = self._bind(value, "G")
            return (f"(interp.hooks.global_address(interp, {name})"
                    f" & {_WORD})"), False
        if isinstance(value, Function):
            name = self._bind(value, "F")
            return f"interp.image.function_address({name})", False
        if isinstance(value, (Parameter, Instruction)):
            return f"regs[{self._bind(value, 'V')}]", True
        # Exotic Value subclasses: defer to the reference evaluator.
        return f"interp.eval(frame, {self._bind(value, 'V')})", False

    # -- shared snippets ----------------------------------------------

    def _flush(self, i: int) -> list[str]:
        """Statements syncing interpreter state before any escape.

        Every emitter routes its escape paths through here (and
        :meth:`_flush_in` inside ``try``/``if`` bodies), so a subclass
        compiling multi-block traces can extend the flush — e.g. also
        restoring ``frame.block`` — without re-emitting the handlers.
        """
        return ["interp.instructions_executed = n",
                f"frame.index = {i}"]

    def _flush_in(self, i: int, depth: int = 1) -> list[str]:
        """The flush statements indented ``depth`` levels."""
        return ["    " * depth + stmt for stmt in self._flush(i)]

    _FP_BIND = [
        "enf = machine.enforcement",
        "if enf is machine._fp_backend and enf.epoch == machine._fp_epoch:",
        "    allows = machine._fp_allows",
        "else:",
        "    allows = machine._refresh_fast_path()",
    ]

    # -- per-instruction emitters -------------------------------------
    #
    # Statements assume locals ``interp, frame, machine, regs, pending,
    # n, maxi`` (plus the memory hoists when the block touches memory).
    # Register fetches always land in ``fetch`` so the KeyError guard
    # can replay through ``_undef`` before any side effect happens.

    def _emit(self, i: int, inst: Instruction) -> _Emitted:
        if isinstance(inst, BinOp):
            return self._emit_binop(i, inst)
        if isinstance(inst, Load):
            return self._emit_load(i, inst)
        if isinstance(inst, Store):
            return self._emit_store(i, inst)
        if isinstance(inst, ICmp):
            return self._emit_icmp(i, inst)
        if isinstance(inst, Cast):
            return self._emit_cast(i, inst)
        if isinstance(inst, GEP):
            return self._emit_gep(i, inst)
        if isinstance(inst, Select):
            return self._emit_select(i, inst)
        if isinstance(inst, Alloca):
            return self._emit_alloca(i, inst)
        if isinstance(inst, Call):
            return self._emit_call(i, inst)
        if isinstance(inst, ICall):
            return self._emit_icall(i, inst)
        if isinstance(inst, SVC):
            return self._emit_svc(i, inst)
        if isinstance(inst, Br):
            return self._emit_br(i, inst)
        if isinstance(inst, Jump):
            return self._emit_jump(i, inst)
        if isinstance(inst, Ret):
            return self._emit_ret(i, inst)
        if isinstance(inst, Halt):
            return self._emit_halt(i, inst)
        if isinstance(inst, Unreachable):
            return self._emit_unreachable(i, inst)
        return self._emit_escape(i, inst)

    def _emit_escape(self, i: int, inst: Instruction) -> _Emitted:
        """Delegate one instruction to its single-step handler.

        Used for shapes the compiler does not specialise (runtime
        struct indices, unknown ops): the handler runs with
        ``frame.index`` synced, advances it itself, and raises exactly
        what single-step execution would.  Never used for control
        transfers, so straight-line emission continues after it.
        """
        iname = self._bind(inst, "I")
        return _Emitted(self._flush(i) + [
            f"interp._execute(frame, {iname})",
        ])

    def _emit_binop(self, i: int, inst: BinOp) -> _Emitted:
        a, ga = self._operand(inst.operands[0])
        b, gb = self._operand(inst.operands[1])
        bits = inst.type.bits if isinstance(inst.type, IntType) else 32
        mask = (1 << bits) - 1
        dst = self._bind(inst, "V")
        op = inst.op
        sym = _BINOP_SYMBOLS.get(op)
        if sym is not None:
            if op in ("and", "or", "xor"):
                # The reference returns these unmasked.
                stmts = [f"regs[{dst}] = {a} {sym} {b}"]
            else:
                stmts = [f"regs[{dst}] = ({a} {sym} {b}) & {mask}"]
        elif op == "shl":
            stmts = [f"regs[{dst}] = ({a} << ({b} & 31)) & {mask}"]
        elif op == "lshr":
            stmts = [f"regs[{dst}] = ({a} >> ({b} & 31)) & {mask}"]
        elif op == "ashr":
            stmts = [f"regs[{dst}] = (_ts({a}, {bits}) >> ({b} & 31))"
                     f" & {mask}"]
        elif op in ("udiv", "urem"):
            pysym = "//" if op == "udiv" else "%"
            stmts = [f"__x = {a}",
                     f"__y = {b}",
                     f"regs[{dst}] = (__x {pysym} __y) & {mask}"
                     f" if __y else 0"]
        elif op in ("sdiv", "srem"):
            stmts = [f"__sa = _ts({a}, {bits})",
                     f"__sb = _ts({b}, {bits})"]
            if op == "sdiv":
                stmts.append(f"regs[{dst}] = (_tdiv(__sa, __sb) & {mask})"
                             f" if __sb else 0")
            else:
                stmts.append(f"regs[{dst}] = (__sa - _tdiv(__sa, __sb)"
                             f" * __sb) & {mask} if __sb else 0")
        else:
            return self._emit_escape(i, inst)
        if ga or gb:
            return _Emitted([], fetch=stmts, pure=True)
        return _Emitted(stmts, pure=True)

    def _emit_icmp(self, i: int, inst: ICmp) -> _Emitted:
        a, ga = self._operand(inst.operands[0])
        b, gb = self._operand(inst.operands[1])
        op0_type = inst.operands[0].type
        bits = op0_type.bits if isinstance(op0_type, IntType) else 32
        pred = inst.pred
        sym = _ICMP_SYMBOLS.get(pred)
        if sym is None:
            return self._emit_escape(i, inst)
        dst = self._bind(inst, "V")
        if pred in _ICMP_SIGNED:
            expr = f"_ts({a}, {bits}) {sym} _ts({b}, {bits})"
        else:
            expr = f"{a} {sym} {b}"
        stmts = [f"regs[{dst}] = 1 if {expr} else 0"]
        if ga or gb:
            return _Emitted([], fetch=stmts, pure=True)
        return _Emitted(stmts, pure=True)

    def _emit_cast(self, i: int, inst: Cast) -> _Emitted:
        a, guarded = self._operand(inst.operands[0])
        kind = inst.kind
        dst = self._bind(inst, "V")
        dst_mask = (inst.type.mask if isinstance(inst.type, IntType)
                    else _WORD)
        if kind in ("zext", "ptrtoint", "inttoptr", "bitcast"):
            stmts = [f"regs[{dst}] = {a} & {dst_mask}"]
        elif kind == "trunc":
            stmts = [f"regs[{dst}] = {a} & {inst.type.mask}"]
        elif kind == "sext":
            src = inst.operands[0].type
            bits = src.bits if isinstance(src, IntType) else 32
            stmts = [f"regs[{dst}] = _ts({a}, {bits}) & {dst_mask}"]
        else:
            return self._emit_escape(i, inst)
        if guarded:
            return _Emitted([], fetch=stmts, pure=True)
        return _Emitted(stmts, pure=True)

    def _emit_select(self, i: int, inst: Select) -> _Emitted:
        cond, gc = self._operand(inst.operands[0])
        a, ga = self._operand(inst.operands[1])
        b, gb = self._operand(inst.operands[2])
        dst = self._bind(inst, "V")
        # A conditional expression keeps the unchosen arm lazy,
        # matching single-step (which only evaluates the chosen one).
        stmts = [f"regs[{dst}] = ({a}) if ({cond}) else ({b})"]
        if gc or ga or gb:
            return _Emitted([], fetch=stmts, pure=True)
        return _Emitted(stmts, pure=True)

    def _emit_gep(self, i: int, inst: GEP) -> _Emitted:
        ptr, guarded = self._operand(inst.pointer)
        indices = inst.indices
        const_off = 0
        terms: list[str] = []

        def add_index(value, stride: int) -> None:
            nonlocal const_off, guarded
            if isinstance(value, Constant):
                signed = _fold_signed(value.value & value.type.mask, 32)
                const_off += signed * stride
            else:
                expr, g = self._operand(value)
                guarded = guarded or g
                terms.append(f"_ts({expr}, 32) * {stride}")

        try:
            pointee = inst.pointer.type.pointee
            add_index(indices[0], pointee.size)
            current = pointee
            bad_walk = False
            for index in indices[1:]:
                if isinstance(current, ArrayType):
                    add_index(index, current.stride)
                    current = current.element
                elif isinstance(current, StructType):
                    if not isinstance(index, Constant):
                        return self._emit_escape(i, inst)
                    ival = index.value & index.type.mask
                    const_off += current.offset_of(ival)
                    current = current.field_type(ival)
                else:
                    bad_walk = True
                    break
        except Exception:
            return self._emit_escape(i, inst)
        # Masking once at the end equals the reference's per-step
        # masking: addition mod 2**32 is associative.
        parts = [ptr]
        if const_off:
            parts.append(str(const_off))
        parts.extend(terms)
        expr = f"({' + '.join(parts)}) & {_WORD}"
        if bad_walk:
            # The static type walk hit a non-aggregate: evaluate the
            # operands gathered so far (an undefined register must
            # still fault first, like single-step), then raise the
            # handler's HardFault.
            body = self._flush(i) + [
                "raise HardFault('gep into non-aggregate at runtime')",
            ]
            if guarded:
                return _Emitted(body, fetch=[f"__g = {expr}"],
                                transfers=True)
            return _Emitted([f"__g = {expr}"] + body, transfers=True)
        dst = self._bind(inst, "V")
        stmts = [f"regs[{dst}] = {expr}"]
        if guarded:
            return _Emitted([], fetch=stmts, pure=True)
        return _Emitted(stmts, pure=True)

    def _emit_alloca(self, i: int, inst: Alloca) -> _Emitted:
        dst = self._bind(inst, "V")
        msg = f"stack overflow in @{self.fname} (sp=0x%08X)"
        return _Emitted([
            f"interp.sp = __sp = (interp.sp - {inst.byte_size}) & -4",
            "if __sp < interp.image.stack_limit:",
        ] + self._flush_in(i) + [
            f"    raise HardFault({msg!r} % __sp)",
            f"regs[{dst}] = __sp",
        ])

    def _emit_load(self, i: int, inst: Load) -> _Emitted:
        addr, guarded = self._operand(inst.pointer)
        size = inst.type.size
        mask = (1 << (size * 8)) - 1
        dst = self._bind(inst, "V")
        fetch = [f"__a = {addr}"]
        body = [
            "n_loads.value += 1",
            "__p = machine.privileged",
            "try:",
            f"    if not __p and {_PPB_BASE} <= __a < {_PPB_END}:",
            "        n_bus.value += 1",
            f"        raise BusFault(__a, {size}, False, value=0,"
            f" is_ppb=True)",
            f"    if allows(__a, {size}, __p, False):",
            f"        __v = mem_read(__a, {size})",
            "    else:",
            "        n_mm.value += 1",
            f"        raise MemManageFault(__a, {size}, False, value=0)",
            "except (MemManageFault, BusFault) as __f:",
        ] + self._flush_in(i) + [
            f"    __v = interp._retry_access("
            f"lambda __a=__a: machine.load(__a, {size}), __f)",
        ] + ["    " + line for line in self._FP_BIND] + [
            # Unmapped accesses (and device models) raise HardFault
            # straight out of mem_read: flush before it escapes.
            "except Exception:",
        ] + self._flush_in(i) + [
            "    raise",
            f"regs[{dst}] = __v & {mask}",
        ]
        if guarded:
            return _Emitted(body, fetch=fetch)
        return _Emitted(fetch + body)

    def _emit_store(self, i: int, inst: Store) -> _Emitted:
        addr, ga = self._operand(inst.pointer)
        value, gv = self._operand(inst.value)
        size = inst.value.type.size
        # Reference order: pointer first, then value.
        fetch = [f"__a = {addr}", f"__v = {value}"]
        body = [
            "n_stores.value += 1",
            "__p = machine.privileged",
            "try:",
            f"    if not __p and {_PPB_BASE} <= __a < {_PPB_END}:",
            "        n_bus.value += 1",
            f"        raise BusFault(__a, {size}, True, value=__v,"
            f" is_ppb=True)",
            f"    if allows(__a, {size}, __p, True):",
            f"        mem_write(__a, {size}, __v)",
            "    else:",
            "        n_mm.value += 1",
            f"        raise MemManageFault(__a, {size}, True, value=__v)",
            "except (MemManageFault, BusFault) as __f:",
        ] + self._flush_in(i) + [
            f"    interp._retry_access("
            f"lambda __a=__a, __v=__v: machine.store(__a, {size}, __v)"
            f" or 0, __f)",
        ] + ["    " + line for line in self._FP_BIND] + [
            # Unmapped accesses (and device models) raise HardFault
            # straight out of mem_write: flush before it escapes.
            "except Exception:",
        ] + self._flush_in(i) + [
            "    raise",
        ]
        if ga or gv:
            return _Emitted(body, fetch=fetch)
        return _Emitted(fetch + body)

    def _emit_call(self, i: int, inst: Call) -> _Emitted:
        exprs = []
        guarded = False
        for arg in inst.operands:
            expr, g = self._operand(arg)
            exprs.append(expr)
            guarded = guarded or g
        callee = self._bind(inst.callee, "F")
        iname = self._bind(inst, "I")
        fetch = [f"__args = [{', '.join(exprs)}]"]
        # ``_do_call`` advances frame.index past this call, runs the
        # switch-point hooks, pushes the callee frame; we suspend, and
        # the loop re-enters this block at i+1 after the return.
        body = self._flush(i) + [
            f"interp._do_call(frame, {iname}, {callee}, __args)",
            "return",
        ]
        if guarded:
            return _Emitted(body, fetch=fetch, transfers=True)
        return _Emitted(fetch + body, transfers=True)

    def _emit_icall(self, i: int, inst: ICall) -> _Emitted:
        target, guarded = self._operand(inst.target)
        exprs = []
        for arg in inst.args:
            expr, g = self._operand(arg)
            exprs.append(expr)
            guarded = guarded or g
        iname = self._bind(inst, "I")
        fetch = [
            f"__t = {target}",
            "__c = interp.image.function_at(__t)",
            "if __c is None:",
        ] + self._flush_in(i) + [
            "    raise HardFault("
            "'icall to non-function address 0x%08X' % __t)",
            f"__args = [{', '.join(exprs)}]",
        ]
        body = self._flush(i) + [
            f"interp._do_call(frame, {iname}, __c, __args)",
            "return",
        ]
        if guarded:
            return _Emitted(body, fetch=fetch, transfers=True)
        return _Emitted(fetch + body, transfers=True)

    def _emit_svc(self, i: int, inst: SVC) -> _Emitted:
        # SVC boundaries run the single-step handler and suspend the
        # block: the monitor may switch operations, reconfigure
        # enforcement, or change privilege, so the block is re-entered
        # (re-hoisting every binding) at i+1.
        iname = self._bind(inst, "I")
        return _Emitted(self._flush(i) + [
            f"interp._exec_svc(frame, {iname})",
            "return",
        ], transfers=True)

    def _emit_br(self, i: int, inst: Br) -> _Emitted:
        cond_op = inst.operands[0]
        then_name = self._bind(inst.then_block, "B")
        else_name = self._bind(inst.else_block, "B")
        if isinstance(cond_op, Constant):
            folded = cond_op.value & cond_op.type.mask
            fetch = [f"__b = {then_name if folded else else_name}"]
            guarded = False
        else:
            cond, guarded = self._operand(cond_op)
            fetch = [f"__b = {then_name} if ({cond}) else {else_name}"]
        body = [
            "interp.instructions_executed = n",
            "frame.block = __b",
            "frame.index = 0",
            "return",
        ]
        if guarded:
            return _Emitted(body, fetch=fetch, transfers=True, pure=True)
        return _Emitted(fetch + body, transfers=True, pure=True)

    def _emit_jump(self, i: int, inst: Jump) -> _Emitted:
        target = self._bind(inst.target, "B")
        # `__b` first, matching Br, so the batched path can split the
        # (trivial) fetch from the transfer uniformly.
        return _Emitted([
            f"__b = {target}",
            "interp.instructions_executed = n",
            "frame.block = __b",
            "frame.index = 0",
            "return",
        ], transfers=True, pure=True)

    def _emit_ret(self, i: int, inst: Ret) -> _Emitted:
        iname = self._bind(inst, "I")
        return _Emitted(self._flush(i) + [
            f"interp._do_return(frame, {iname})",
            "return",
        ], transfers=True)

    def _emit_halt(self, i: int, inst: Halt) -> _Emitted:
        iname = self._bind(inst, "I")
        return _Emitted(self._flush(i) + [
            f"interp._exec_halt(frame, {iname})",
            "return",
        ], transfers=True)

    def _emit_unreachable(self, i: int, inst: Unreachable) -> _Emitted:
        msg = f"unreachable executed in @{self.fname}"
        return _Emitted(self._flush(i) + [f"raise HardFault({msg!r})"],
                        transfers=True)

    # -- assembly ------------------------------------------------------

    def compile(self) -> Callable:
        from .interpreter import (  # runtime import: no module cycle
            ExecutionLimitExceeded,
            _to_signed,
            _trunc_div,
        )

        block = self.block
        insts = block.instructions
        emitted = [self._emit(i, inst) for i, inst in enumerate(insts)]
        costs = [_inst_cost(inst) for inst in insts]
        has_mem = any(isinstance(inst, (Load, Store)) for inst in insts)

        budget_msg = f"instruction budget exceeded in @{self.fname}"
        fell_msg = f"fell off block {block.name} in @{self.fname}"

        lines = ["def __block(interp, frame, machine, start):"]

        def w(indent: int, text: str) -> None:
            lines.append("    " * indent + text)

        w(1, "regs = frame.regs")
        w(1, "pending = machine.pending_irqs")
        w(1, "n = interp.instructions_executed")
        w(1, "maxi = interp.max_instructions")
        if has_mem:
            w(1, "mem_read = machine.memory.read")
            w(1, "mem_write = machine.memory.write")
            w(1, "n_loads = machine._n_loads")
            w(1, "n_stores = machine._n_stores")
            w(1, "n_bus = machine._n_bus_faults")
            w(1, "n_mm = machine._n_memmanage")
            for line in self._FP_BIND:
                w(1, line)

        # Tier 2: a block of pure register compute plus its Br/Jump
        # terminator executes with one batched cycle charge and one
        # budget check.  Safe because pure ops cannot fault, touch
        # memory, pend IRQs, or observe the cycle counter — and all
        # state mutation (cycles, instruction count, the transfer)
        # happens only after every KeyError-capable fetch succeeded;
        # register writes inside the try are idempotent, so a missing
        # register falls through to the per-instruction path, which
        # replays from index 0 and reports the fault like single-step.
        batchable = (len(insts) >= 2 and all(e.pure for e in emitted)
                     and emitted[-1].transfers)
        if batchable:
            total = sum(costs)
            term_stmts = emitted[-1].fetch + emitted[-1].body
            term_fetch, term_transfer = term_stmts[:1], term_stmts[1:]
            w(1, f"if start == 0 and not pending "
                 f"and not machine._systick_armed "
                 f"and n + {len(insts)} <= maxi:")
            w(2, "try:")
            for e in emitted[:-1]:
                for stmt in e.fetch + e.body:
                    w(3, stmt)
            for stmt in term_fetch:
                w(3, stmt)
            w(2, "except KeyError:")
            w(3, "pass")
            w(2, "else:")
            w(3, f"machine.cycles += {total}")
            w(3, f"n += {len(insts)}")
            for stmt in term_transfer:
                w(3, stmt)

        for i, (inst, e, cost) in enumerate(zip(insts, emitted, costs)):
            w(1, f"if start <= {i}:")
            w(2, "if pending:")
            w(3, "interp.instructions_executed = n")
            w(3, f"frame.index = {i}")
            w(3, "return")
            w(2, "n += 1")
            w(2, "if n > maxi:")
            w(3, "interp.instructions_executed = n")
            w(3, f"frame.index = {i}")
            w(3, f"raise ExecutionLimitExceeded({budget_msg!r})")
            w(2, f"machine.cycles += {cost}")
            w(2, "if machine._systick_armed "
                 "and machine.cycles >= machine._systick_next:")
            w(3, "machine._systick_fire()")
            if e.guarded:
                w(2, "try:")
                for stmt in e.fetch:
                    w(3, stmt)
                w(2, "except KeyError:")
                w(3, "interp.instructions_executed = n")
                w(3, f"frame.index = {i}")
                w(3, f"_undef(interp, frame, {self._bind(inst, 'I')})")
                for stmt in e.body:
                    w(2, stmt)
            else:
                for stmt in e.body:
                    w(2, stmt)

        # Fell off the block (no terminator transferred): mirror
        # step()'s boundary order — deliver a pending IRQ first, then
        # fault.
        w(1, "interp.instructions_executed = n")
        w(1, f"frame.index = {len(insts)}")
        w(1, "if pending:")
        w(2, "return")
        w(1, f"raise HardFault({fell_msg!r})")

        source = "\n".join(lines) + "\n"
        self.ns.update({
            "BusFault": BusFault,
            "MemManageFault": MemManageFault,
            "HardFault": HardFault,
            "ExecutionLimitExceeded": ExecutionLimitExceeded,
            "_ts": _to_signed,
            "_tdiv": _trunc_div,
            "_undef": _undef,
        })
        code = compile(source, f"<block @{self.fname}:{block.name}>", "exec")
        exec(code, self.ns)
        fn = self.ns["__block"]
        fn.__repro_source__ = source
        fn.__repro_batched__ = batchable
        return fn


def compile_block(block: BasicBlock) -> Optional[Callable]:
    """Compile ``block`` and cache the closure on it.

    Returns the compiled function, or ``None`` (also cached) when the
    block cannot be compiled — the interpreter then permanently
    single-steps that block.  Never raises: a codegen failure must
    degrade to the reference path, not kill the run.
    """
    try:
        fn = _BlockCompiler(block).compile()
    except Exception:
        fn = None
    block._compiled = fn
    return fn


__all__ = [
    "BLOCKCOMPILE_OFF_VALUES",
    "BLOCKCOMPILE_ON_VALUES",
    "block_compile_enabled",
    "compile_block",
]

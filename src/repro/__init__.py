"""OPEC reproduction: operation-based security isolation for bare-metal
embedded systems (EuroSys '22), rebuilt end-to-end in Python.

Layers (bottom to top):

* :mod:`repro.ir` — the firmware IR (stands in for LLVM IR);
* :mod:`repro.hw` — the simulated ARMv7-M machine: memory map, MPU,
  privilege levels, exceptions, device models (stands in for the STM32
  boards);
* :mod:`repro.interp` — the IR interpreter executing images on the
  machine;
* :mod:`repro.analysis` / :mod:`repro.partition` / :mod:`repro.image` —
  OPEC-Compiler: points-to, call graph, resource dependencies,
  operation partitioning, policy and image generation;
* :mod:`repro.runtime` — OPEC-Monitor: privileged enforcement;
* :mod:`repro.baselines` — vanilla and ACES comparators;
* :mod:`repro.apps` — the seven evaluation workloads;
* :mod:`repro.eval` — metrics and every table/figure of §6.

Quickstart::

    from repro import build_opec, run_image
    from repro.apps import pinlock
    app = pinlock.build()
    artifacts = build_opec(app.module, app.board, app.specs)
    result = run_image(artifacts.image, setup=app.setup)
"""

from .pipeline import (
    BuildArtifacts,
    RunResult,
    build_opec,
    build_vanilla,
    run_image,
)

__version__ = "1.0.0"

__all__ = [
    "BuildArtifacts", "RunResult", "build_opec", "build_vanilla",
    "run_image", "__version__",
]

"""OPEC-Compiler static analyses (§4.1–§4.2).

Call-graph construction with sound icall resolution (Andersen
points-to + type-based fallback), intra-procedural slicing, and
per-function resource-dependency analysis over globals and peripherals.
"""

from .andersen import AndersenResult, AndersenSolver, run_andersen
from .callgraph import CallGraph, IcallSite, build_call_graph
from .resources import FunctionResources, ResourceAnalysis
from .slicing import (
    ConstantAddressResolver,
    clear_slicing_caches,
    forward_derived,
)


from .typeanalysis import (
    TypeBasedResolver,
    address_taken_functions,
    signature_key,
    signatures_match,
)

__all__ = [
    "AndersenResult", "AndersenSolver", "run_andersen",
    "CallGraph", "IcallSite", "build_call_graph",
    "FunctionResources", "ResourceAnalysis",
    "ConstantAddressResolver", "clear_analysis_caches",
    "clear_slicing_caches", "forward_derived",
    "TypeBasedResolver", "address_taken_functions",
    "signature_key", "signatures_match",
]


def clear_analysis_caches() -> None:
    """Reset every module-level analysis memo.

    The slicing def-use index is the only module-level store today;
    call-graph reachability and Andersen deltas live on their result
    objects and die with the artifacts that own them.  Kept as the
    single entry point so future module-level memos have one place to
    register.
    """
    clear_slicing_caches()

"""Regenerate every table and figure of the paper's evaluation (§6).

All rows come from :func:`repro.eval.workloads.compute_all_rows`, so
exporting ``REPRO_JOBS`` > 1 fans the seven applications out over a
process pool; the printed output is byte-identical either way.
"""

from __future__ import annotations

from typing import Optional

from . import figure9, figure10, figure11, table1, table2, table3
from .workloads import compute_all_rows


def main(backend: Optional[str] = None) -> None:
    rows = compute_all_rows(backend=backend)
    sections = [
        ("Table 1", table1, rows["table1"]),
        ("Figure 9", figure9, rows["figure9"]),
        ("Table 2", table2, rows["table2"]),
        ("Figure 10", figure10, rows["figure10"]),
        ("Figure 11", figure11, rows["figure11"]),
        ("Table 3", table3, rows["table3"]),
    ]
    for _name, module, data in sections:
        print("=" * 72)
        print(module.render(data))
        print()


if __name__ == "__main__":
    main()

"""Fleet observability: telemetry envelopes, trace fusion, roll-ups.

Since the evaluation and campaign engines fan out over ``REPRO_JOBS``
worker processes, a single-process flight recorder or metrics registry
only ever sees one worker's slice of the work.  This module is the
cross-worker layer:

* **Worker telemetry envelopes.**  :func:`begin_capture` /
  :func:`end_capture` bracket a unit of work and produce a picklable
  :class:`WorkerTelemetry` snapshot — the simulated metrics and
  interpreter compile counters the work accumulated (via
  :func:`record_simulation`), the artifact-store traffic it caused,
  per-lane recorder rings, and the worker's host-side event stream.
  Envelopes ride the existing pool result protocol back to the parent
  (``eval/workloads.py`` and ``campaign/engine.py`` both return them).
  Captures nest: an inner capture's cache traffic is *excluded* from
  the enclosing one, so summing a call's envelopes never double-counts.

* **Trace fusion** (:func:`fuse_trace`).  One Chrome trace-event JSON
  document for the whole fleet: the **sim domain** on pid 0 with one
  tid per lane, assigned by sorted lane name so the serialization is
  byte-identical for any worker count; the **host domain** on one pid
  per worker (pid 1 = the conductor, pids 2+ = workers) carrying
  wall-clock ``fleet.*`` spans (dispatch, chunk, build, run) and the
  seq-stamped build/cache events, so scheduling and idle gaps are
  visible.  :func:`sim_trace_section` extracts the deterministic part
  for the determinism sweep.

* **Metrics roll-up** (:func:`render_dashboard`).  Counters summed and
  power-of-two histograms merged across lanes and workers
  (order-independent by :meth:`MetricsRegistry.merge` construction),
  rendered as a text dashboard: per-lane sim results and switch-cost
  histograms per backend above the :data:`HOST_SECTION_MARKER`, then
  per-worker utilisation, cache temperature, and compile activity
  below it.  :func:`sim_dashboard_section` truncates at the marker.

The ``repro fleet`` CLI verb drives :func:`run_fleet`; the committed
``results/fleet_pinlock.{json,txt}`` pin the sim sections in
``tools/check_determinism.py``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .events import (
    DOMAIN_HOST,
    DOMAIN_SIM,
    Event,
    FLEET_BUILD,
    FLEET_CHUNK,
    FLEET_DISPATCH,
    FLEET_FIRMWARE,
    FLEET_RUN,
    INSTANT,
)
from .metrics import MetricsRegistry
from .recorder import FlightRecorder, install, trace_capacity

#: Dashboard line separating the deterministic sim-domain section from
#: the host-domain diagnostics.  ``tools/check_determinism.py`` and the
#: CI fleet smoke both truncate here — keep the literal in sync.
HOST_SECTION_MARKER = \
    "-- host domain (wall clock; masked in determinism checks) --"


def validate_jobs(value, source: str = "--jobs") -> int:
    """Parse a worker count, failing loudly on non-positive values
    (the ``repro fleet`` counterpart of
    :func:`~repro.obs.recorder.validate_capacity`)."""
    try:
        jobs = int(value)
    except (TypeError, ValueError):
        jobs = 0
    if jobs <= 0:
        raise ValueError(
            f"invalid worker count {value!r} ({source}): "
            "expected a positive integer")
    return jobs


def _now_us() -> int:
    return time.time_ns() // 1000


@contextmanager
def wall_span(recorder: Optional[FlightRecorder], kind: str, name: str,
              **args):
    """A host-domain span timestamped with wall-clock microseconds.

    Unlike the seq-stamped host events, ``fleet.*`` spans exist to show
    where wall time went; fusion normalises the epoch timestamps to the
    earliest span so the absolute clock never reaches an export.
    """
    if recorder is None:
        yield
        return
    recorder.begin(kind, name, _now_us(), DOMAIN_HOST, args or None)
    try:
        yield
    finally:
        recorder.end(kind, name, _now_us(), DOMAIN_HOST)


# -- worker-side telemetry capture ---------------------------------------


class TelemetryCollector:
    """Accumulates the simulated work one capture window performs.

    Two registries, mirroring the split the interpreter keeps: machine
    metrics (simulated counters/histograms — deterministic per run) and
    compile metrics (codegen activity — varies with cache temperature).
    Store/memo hits contribute nothing: like the cache counters, these
    describe work the process actually performed.
    """

    __slots__ = ("metrics", "compile")

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.compile = MetricsRegistry()

    def record_simulation(self, machine_metrics=None,
                          compile_metrics=None) -> None:
        if machine_metrics is not None:
            self.metrics.merge(machine_metrics)
        if compile_metrics is not None:
            self.compile.merge(compile_metrics)


_collector = TelemetryCollector()


def collector() -> TelemetryCollector:
    """The ambient collector fresh simulations report into."""
    return _collector


def record_simulation(machine_metrics=None, compile_metrics=None) -> None:
    """Report one fresh simulation's registries to the ambient
    collector (module-level convenience for the run seams)."""
    _collector.record_simulation(machine_metrics, compile_metrics)


def reset() -> None:
    """Forget every collected metric and any open captures (tests)."""
    global _collector
    _collector = TelemetryCollector()
    _tokens.clear()


@dataclass
class LaneTelemetry:
    """One fleet lane's picklable outcome: identity, simulated result,
    sim-domain event ring, and the machine's metrics registry."""

    name: str
    backend: str
    halt_code: int = -1
    cycles: int = 0
    switches: int = 0
    faulted: bool = False
    detail: str = ""                      # fault class for faulted lanes
    dropped: int = 0                      # ring drops (sim events lost)
    events: list = field(default_factory=list)          # sim Event list
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)


@dataclass
class WorkerTelemetry:
    """Everything one capture window observed, shaped for pickling."""

    worker: int = 0                       # 0 = conductor, 1.. = workers
    label: str = ""
    lanes: list = field(default_factory=list)           # [LaneTelemetry]
    host_events: list = field(default_factory=list)     # host Event list
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    compile_counters: dict = field(default_factory=dict)
    cache_counters: dict = field(default_factory=dict)
    busy_us: int = 0                      # capture-window wall time


@dataclass
class _CaptureToken:
    previous: TelemetryCollector
    cache_before: dict
    start_ns: int


_tokens: list[_CaptureToken] = []


def begin_capture() -> _CaptureToken:
    """Open a capture window: swap in a fresh ambient collector and
    snapshot the process-wide cache counters."""
    global _collector
    from ..cache import counters_snapshot

    token = _CaptureToken(previous=_collector,
                          cache_before=counters_snapshot(),
                          start_ns=time.time_ns())
    _collector = TelemetryCollector()
    _tokens.append(token)
    return token


def end_capture(token: _CaptureToken, *, worker: int = 0, label: str = "",
                lanes: Sequence[LaneTelemetry] = (),
                host_events: Sequence[Event] = ()) -> WorkerTelemetry:
    """Close a capture window and package it as an envelope.

    Captures are exclusive: the window's cache delta is folded into the
    *enclosing* window's baseline, so a parent capture around a set of
    child captures observes only the work no child claimed — summing a
    call's envelopes (children + parent) reproduces the plain totals
    exactly once.
    """
    global _collector
    from ..cache import counters_delta

    captured = _collector
    _collector = token.previous
    if _tokens and _tokens[-1] is token:
        _tokens.pop()
    delta = counters_delta(token.cache_before)
    if _tokens:
        enclosing = _tokens[-1]
        for key, value in delta.items():
            enclosing.cache_before[key] = \
                enclosing.cache_before.get(key, 0) + value
    return WorkerTelemetry(
        worker=worker,
        label=label,
        lanes=list(lanes),
        host_events=list(host_events),
        metrics=captured.metrics,
        compile_counters={name: cell.value for name, cell
                          in sorted(captured.compile.counters.items())
                          if cell.value},
        cache_counters={key: value for key, value in delta.items()
                        if value},
        busy_us=(time.time_ns() - token.start_ns) // 1000,
    )


# -- fleet runs ----------------------------------------------------------


@dataclass
class FleetResult:
    """One ``run_fleet`` invocation's merged outcome."""

    target: str
    profile: str
    backends: tuple
    jobs: int
    trace: bool
    envelopes: list = field(default_factory=list)       # worker envelopes
    parent: WorkerTelemetry = field(default_factory=WorkerTelemetry)
    wall_s: float = 0.0

    @property
    def lanes(self) -> list:
        """Every lane of every worker, in canonical (name) order."""
        return sorted((lane for env in self.envelopes
                       for lane in env.lanes),
                      key=lambda lane: lane.name)


def fleet_lane_specs(target: str, profile: str,
                     backends: Sequence[str]) -> list[tuple[str, str, str]]:
    """The (app, kind, backend) lane grid for one eval target, in a
    fixed deterministic order.  ``target`` is one app name or ``all``.
    """
    from ..apps import ALL_APPS
    from ..eval.workloads import _run_kinds

    if target == "all":
        names = list(ALL_APPS)
    elif target in ALL_APPS:
        names = [target]
    else:
        raise ValueError(
            f"unknown fleet target {target!r}: expected an application "
            f"({', '.join(ALL_APPS)}), 'all', or 'campaign'")
    return [(name, kind, backend)
            for name in names
            for backend in backends
            for kind in _run_kinds(name)]


def _lane_switches(machine_metrics: MetricsRegistry, hooks) -> int:
    """Operation/compartment switch count for one lane (the monitor
    histogram, or the ACES runtime's entry counter)."""
    hist = machine_metrics.histograms.get("monitor.switch_cycles")
    if hist is not None and hist.count:
        return hist.count
    return getattr(hooks, "switch_count", 0) or 0


def _fleet_eval_worker(
        job: tuple[int, list, str, int, bool]) -> WorkerTelemetry:
    """Pool entry point: simulate one worker's slice of the lane grid.

    Every lane simulates *fresh* under a dedicated recorder (a cached
    RunResult carries no event stream), staged as batch-runner lanes so
    flavours of the same module share compiled closures; builds are
    served by the artifact store as usual.  The sim-domain outcome of a
    lane is therefore cache-temperature- and worker-count-independent.
    """
    import os

    worker, specs, profile, capacity, trace = job
    saved_profile = os.environ.get("REPRO_PROFILE")
    os.environ["REPRO_PROFILE"] = profile
    from ..hw.exceptions import MachineError
    from ..interp.batch import BatchRunner, LaneFailure

    host = FlightRecorder(capacity)
    previous = install(host)
    token = begin_capture()
    lanes: list[LaneTelemetry] = []
    try:
        with wall_span(host, FLEET_CHUNK, f"worker{worker}",
                       lanes=len(specs)):
            runner = BatchRunner()
            staged = []
            for app_name, kind, backend in specs:
                lane_name = f"{app_name}:{kind}:{backend}"
                with wall_span(host, FLEET_BUILD, lane_name):
                    app, image = _lane_image(app_name, kind, profile)
                recorder = FlightRecorder(capacity)
                lane = runner.add(
                    image, name=lane_name, setup=app.setup,
                    max_instructions=app.max_instructions,
                    backend=backend, recorder=recorder)
                staged.append((app, lane, recorder, backend))
            with wall_span(host, FLEET_RUN, f"worker{worker}",
                           lanes=len(staged)):
                result = runner.run()
            collector().record_simulation(
                compile_metrics=result.compile_metrics)
            for app, lane, recorder, backend in staged:
                telemetry = LaneTelemetry(
                    name=lane.name, backend=backend,
                    cycles=lane.machine.cycles,
                    switches=_lane_switches(lane.machine.metrics,
                                            lane.hooks),
                    dropped=recorder.dropped,
                    events=recorder.events(DOMAIN_SIM) if trace else [],
                    metrics=lane.machine.metrics,
                )
                if lane.error is not None:
                    original = lane.error.original \
                        if isinstance(lane.error, LaneFailure) \
                        else lane.error
                    if not isinstance(original, MachineError):
                        raise original
                    telemetry.faulted = True
                    telemetry.detail = type(original).__name__
                else:
                    telemetry.halt_code = lane.halt_code
                    app.verify_run(lane.machine, lane.halt_code)
                collector().record_simulation(lane.machine.metrics)
                lanes.append(telemetry)
    finally:
        install(previous)
        if saved_profile is None:
            os.environ.pop("REPRO_PROFILE", None)
        else:
            os.environ["REPRO_PROFILE"] = saved_profile
        envelope = end_capture(token, worker=worker,
                               label=f"worker{worker}", lanes=lanes,
                               host_events=host.events())
    return envelope


def _lane_image(app_name: str, kind: str, profile: str):
    """Resolve one lane's application and built image (store-served)."""
    from ..eval.workloads import (
        aces_artifacts,
        build_app,
        opec_artifacts,
    )
    from ..pipeline import build_vanilla

    app = build_app(app_name, profile)
    if kind == "vanilla":
        return app, build_vanilla(app.module, app.board)
    if kind == "opec":
        return app, opec_artifacts(app_name, profile).image
    return app, aces_artifacts(app_name, kind, profile).image


def run_fleet(target: str, *, jobs: Optional[int] = None,
              profile: Optional[str] = None,
              backends: Optional[Sequence[str]] = None,
              capacity: Optional[int] = None,
              trace: bool = True,
              seed: int = 2026, firmwares: int = 4,
              attacks: Sequence[str] = ("global", "icall")) -> FleetResult:
    """Run an eval or campaign target across a worker fleet and return
    the merged telemetry.

    ``target`` is an application name, ``all``, or ``campaign``.  Eval
    targets expand to one lane per (app, build flavour, backend), split
    round-robin over ``jobs`` workers (default ``REPRO_JOBS``); the
    campaign target drives :func:`repro.campaign.run_campaign` with
    telemetry capture on.  The sim-domain content of the result — lane
    outcomes, per-lane event streams, merged sim metrics — is
    byte-stable for any job count; only the host-domain spans differ.
    """
    from ..eval.workloads import active_profile, repro_jobs

    jobs = repro_jobs() if jobs is None else validate_jobs(jobs)
    profile = profile or active_profile()
    capacity = trace_capacity() if capacity is None else capacity
    start = time.perf_counter()
    parent_recorder = FlightRecorder(capacity)
    previous = install(parent_recorder)
    token = begin_capture()
    try:
        if target == "campaign":
            backends = tuple(backends) if backends \
                else ("mpu", "pmp", "overlay")
            envelopes = _run_campaign_fleet(
                seed=seed, firmwares=firmwares, attacks=tuple(attacks),
                backends=backends, jobs=jobs, trace=trace)
        else:
            if not backends:
                from ..hw.backend import active_backend

                backends = (active_backend(),)
            backends = tuple(backends)
            specs = fleet_lane_specs(target, profile, backends)
            envelopes = _dispatch_eval_workers(
                specs, profile, capacity, trace, jobs, parent_recorder)
    finally:
        install(previous)
        parent = end_capture(token, worker=0, label="conductor",
                             host_events=parent_recorder.events())
    wall_s = time.perf_counter() - start
    return FleetResult(target=target, profile=profile, backends=backends,
                       jobs=jobs, trace=trace, envelopes=envelopes,
                       parent=parent, wall_s=wall_s)


def _dispatch_eval_workers(specs, profile, capacity, trace, jobs,
                           parent_recorder) -> list[WorkerTelemetry]:
    """Fan the lane grid out over worker processes (round-robin slices,
    one long-lived job per worker) and collect their envelopes."""
    workers = max(1, min(jobs, len(specs)))
    slices = [(index + 1, specs[index::workers], profile, capacity, trace)
              for index in range(workers)]
    if workers == 1:
        with wall_span(parent_recorder, FLEET_DISPATCH, "worker1",
                       worker=1, lanes=len(specs)):
            return [_fleet_eval_worker(slices[0])]
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

    envelopes: list[Optional[WorkerTelemetry]] = [None] * workers
    with ProcessPoolExecutor(max_workers=workers) as pool:
        pending = {}
        begins = {}
        for job in slices:
            worker = job[0]
            begins[worker] = _now_us()
            pending[pool.submit(_fleet_eval_worker, job)] = \
                (worker, len(job[1]))
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                worker, lane_count = pending.pop(future)
                parent_recorder.begin(
                    FLEET_DISPATCH, f"worker{worker}", begins[worker],
                    DOMAIN_HOST, {"worker": worker, "lanes": lane_count})
                parent_recorder.end(FLEET_DISPATCH, f"worker{worker}",
                                    _now_us(), DOMAIN_HOST,
                                    {"worker": worker})
                envelopes[worker - 1] = future.result()
    return [env for env in envelopes if env is not None]


def _run_campaign_fleet(*, seed, firmwares, attacks, backends, jobs,
                        trace) -> list[WorkerTelemetry]:
    from ..campaign import CampaignConfig, run_campaign

    config = CampaignConfig(seed=seed, firmwares=firmwares,
                            attacks=attacks, backends=backends,
                            jobs=jobs, telemetry_trace=trace)
    return run_campaign(config).telemetry


# -- trace fusion --------------------------------------------------------

#: Host-domain tids inside each worker pid.
_HOST_WALL_TID = 0        # fleet.* wall-clock spans
_HOST_SEQ_TID = 1         # build/cache events (sequence-stamped)


def fuse_trace(result: FleetResult) -> str:
    """One multi-process Chrome trace-event JSON for the whole fleet.

    Sim domain: pid 0, one tid per lane in sorted-name order and DWT
    cycle timestamps — canonical and byte-stable for any worker count.
    Host domain: pid 1 for the conductor, pid ``1 + worker`` for each
    worker; ``fleet.*`` spans carry wall-clock microseconds normalised
    to the earliest span, seq-stamped build/cache events keep their
    sequence timestamps on a separate tid.
    """
    import json

    events: list[dict] = []
    metadata: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "sim (DWT cycles, canonical)"}},
    ]
    lanes = result.lanes
    sim_events = 0
    for tid, lane in enumerate(lanes, start=1):
        metadata.append(
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
             "args": {"name": lane.name}})
        for event in lane.events:
            entry = {"name": event.name, "cat": event.kind,
                     "ph": event.ph, "ts": event.ts, "pid": 0,
                     "tid": tid}
            if event.ph == INSTANT:
                entry["s"] = "t"
            if event.args:
                entry["args"] = event.args
            events.append(entry)
            sim_events += 1

    sources = [result.parent] + sorted(result.envelopes,
                                       key=lambda env: env.worker)
    base_us = min(
        (event.ts for env in sources for event in env.host_events
         if event.kind.startswith("fleet.")), default=0)
    host_events = 0
    for env in sources:
        pid = 1 + env.worker
        label = env.label or (f"worker{env.worker}" if env.worker
                              else "conductor")
        metadata.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": f"host {label}"}})
        named_tids = {_HOST_WALL_TID: "wall clock (us)",
                      _HOST_SEQ_TID: "build/cache (seq)"}
        for event in env.host_events:
            if event.kind.startswith("fleet."):
                tid = _HOST_WALL_TID
                if event.kind == FLEET_DISPATCH and event.args:
                    tid = 1 + event.args.get("worker", 0)
                    named_tids[tid] = f"dispatch {event.name}"
                entry = {"name": event.name, "cat": event.kind,
                         "ph": event.ph, "ts": event.ts - base_us,
                         "pid": pid, "tid": tid}
            else:
                entry = {"name": event.name, "cat": event.kind,
                         "ph": event.ph, "ts": event.ts, "pid": pid,
                         "tid": _HOST_SEQ_TID}
            if event.ph == INSTANT:
                entry["s"] = "t"
            if event.args:
                entry["args"] = event.args
            events.append(entry)
            host_events += 1
        metadata.extend(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": name}}
            for tid, name in sorted(named_tids.items()))
    document = {
        "displayTimeUnit": "ns",
        "otherData": {
            "sim_clock": "dwt-cycles (pid 0)",
            "sim_lanes": len(lanes),
            "sim_events": sim_events,
            "host_clock": "wall-us / seq (pids >= 1)",
            "host_events": host_events,
            "workers": len(result.envelopes),
        },
        "traceEvents": metadata + events,
    }
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")) + "\n"


def sim_trace_section(trace_json: str) -> str:
    """The deterministic slice of a fused trace: pid-0 events plus the
    ``sim_*`` header fields, re-serialised canonically.  Byte-identical
    for any ``REPRO_JOBS`` / worker count / cache temperature."""
    import json

    document = json.loads(trace_json)
    sim = {
        "otherData": {key: value
                      for key, value in document["otherData"].items()
                      if key.startswith("sim_")},
        "traceEvents": [entry for entry in document["traceEvents"]
                        if entry.get("pid") == 0],
    }
    return json.dumps(sim, sort_keys=True, separators=(",", ":")) + "\n"


# -- dashboard -----------------------------------------------------------


def _sum_counters(dicts) -> dict:
    totals: dict[str, int] = {}
    for mapping in dicts:
        for key, value in mapping.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _counter_line(label: str, totals: dict) -> str:
    if not totals:
        return f"{label}: (none)"
    body = "  ".join(f"{key}={totals[key]}" for key in sorted(totals))
    return f"{label}: {body}"


def telemetry_summary(envelopes: Sequence[WorkerTelemetry]) -> str:
    """Aggregate cache/compile counters of a set of envelopes, as the
    two-line footer ``repro campaign`` prints (stdout only — never part
    of the byte-checked report files)."""
    lines = ["worker telemetry (host-side diagnostics; varies with "
             "cache temperature):"]
    lines.append("  " + _counter_line(
        "cache", _sum_counters(env.cache_counters for env in envelopes)))
    lines.append("  " + _counter_line(
        "compile",
        _sum_counters(env.compile_counters for env in envelopes)))
    return "\n".join(lines)


def render_dashboard(result: FleetResult) -> str:
    """The fleet text dashboard: deterministic sim-domain roll-up first
    (lane table, merged metrics, per-backend switch-cost histograms),
    then the :data:`HOST_SECTION_MARKER` line, then the host-domain
    diagnostics (per-worker utilisation, cache traffic, compile
    activity)."""
    from .metrics import _aligned

    lanes = result.lanes
    faulted = [lane for lane in lanes if lane.faulted]
    lines = [f"== fleet dashboard: {result.target} [{result.profile}] ==",
             f"backends: {','.join(result.backends)}",
             f"lanes: {len(lanes)}  faults: {len(faulted)}/{len(lanes)}"]
    if lanes:
        lines.append("")
        lines.extend(_aligned(
            ["lane", "backend", "outcome", "halt", "cycles", "switches",
             "sim-events", "dropped"],
            [(lane.name, lane.backend,
              f"fault:{lane.detail}" if lane.faulted else "halt",
              str(lane.halt_code), str(lane.cycles), str(lane.switches),
              str(len(lane.events)), str(lane.dropped))
             for lane in lanes]))
        merged = MetricsRegistry()
        for lane in lanes:
            merged.merge(lane.metrics)
        lines.append("")
        lines.append(merged.render(
            "fleet metrics (sim domain, merged across lanes)"))
        hist_rows = []
        for backend in result.backends:
            per_backend = MetricsRegistry()
            for lane in lanes:
                if lane.backend == backend:
                    per_backend.merge(lane.metrics)
            hist = per_backend.histograms.get("monitor.switch_cycles")
            if hist is None or not hist.count:
                hist_rows.append((backend, "0", "0", "0", "0.0", "0"))
            else:
                hist_rows.append((backend, str(hist.count),
                                  str(hist.total), str(hist.min or 0),
                                  f"{hist.mean:.1f}", str(hist.max)))
        lines.append("")
        lines.append("switch-cost histograms per backend")
        lines.extend(_aligned(
            ["backend", "switches", "cycles", "min", "mean", "max"],
            hist_rows))
    else:
        lines.append("")
        lines.append("no sim lanes (campaign fleet: metrics roll-up only)")
    lines.append("")
    lines.append(HOST_SECTION_MARKER)
    lines.append(f"jobs: {result.jobs}  workers: {len(result.envelopes)}  "
                 f"wall: {result.wall_s:.3f}s")
    wall_us = max(1, int(result.wall_s * 1_000_000))
    worker_rows = []
    for env in [result.parent] + sorted(result.envelopes,
                                        key=lambda env: env.worker):
        cache = env.cache_counters
        hits = cache.get("hits", 0)
        misses = cache.get("misses", 0)
        looked = hits + misses
        hit_pct = f"{100 * hits / looked:.0f}%" if looked else "-"
        compiled = env.compile_counters.get(
            "blockcompile.blocks_compiled", 0)
        traces = env.compile_counters.get("tracefuse.traces_compiled", 0)
        worker_rows.append(
            (env.label or f"worker{env.worker}", str(len(env.lanes)),
             f"{env.busy_us / 1_000_000:.3f}",
             f"{min(100, 100 * env.busy_us // wall_us)}%",
             str(hits), str(misses), hit_pct, str(compiled), str(traces)))
    lines.extend(_aligned(
        ["worker", "lanes", "busy_s", "util", "cache-hits",
         "cache-misses", "hit-rate", "blocks-compiled", "traces-compiled"],
        worker_rows))
    all_envs = [result.parent, *result.envelopes]
    lines.append(_counter_line(
        "cache", _sum_counters(env.cache_counters for env in all_envs)))
    lines.append(_counter_line(
        "compile",
        _sum_counters(env.compile_counters for env in all_envs)))
    if not lanes:
        merged = MetricsRegistry()
        for env in all_envs:
            merged.merge(env.metrics)
        if merged.counters or merged.histograms:
            lines.append("")
            lines.append(merged.render(
                "work metrics (fresh simulations this run performed)"))
    return "\n".join(lines)


def sim_dashboard_section(dashboard: str) -> str:
    """Everything above the host marker — the deterministic part."""
    return dashboard.split(HOST_SECTION_MARKER)[0].rstrip("\n")


__all__ = [
    "FLEET_BUILD", "FLEET_CHUNK", "FLEET_DISPATCH", "FLEET_FIRMWARE",
    "FLEET_RUN", "HOST_SECTION_MARKER", "FleetResult", "LaneTelemetry",
    "TelemetryCollector", "WorkerTelemetry", "begin_capture",
    "collector", "end_capture", "fleet_lane_specs", "fuse_trace",
    "record_simulation", "render_dashboard", "reset", "run_fleet",
    "sim_dashboard_section", "sim_trace_section", "telemetry_summary",
    "validate_jobs", "wall_span",
]

#!/usr/bin/env python
"""Interpreter performance regression harness.

Runs a fixed set of workloads and emits ``BENCH_interp.json`` so future
changes have a perf trajectory to compare against:

* ``vanilla_throughput`` — a tight arithmetic/memory loop on the bare
  interpreter with block compilation **on** (the headline
  instructions-per-second of the substrate);
* ``vanilla_throughput_singlestep`` — the same loop with block
  compilation forced **off**, continuing the pre-superinstruction
  trajectory (and pinning that the two modes agree bit-for-bit);
* ``pinlock_opec`` — the PinLock application under full OPEC
  enforcement (operation switches, MPU faults, SysTick, core-peripheral
  emulation), single-step mode — the historical end-to-end trajectory;
* ``pinlock_opec_pmp`` / ``pinlock_opec_overlay`` — the same firmware
  on the other enforcement backends (single-step), so each substrate's
  arbitration path (PMP entry scan + decision cache, overlay interval
  bisect) has its own throughput trajectory;
* ``pinlock_opec_blockcompile`` — PinLock/OPEC/mpu with block
  compilation on: the superinstruction path through the monitor,
  SVC boundaries, and MemManage retries;
* ``batch_throughput`` — N lanes of the throughput firmware
  multiplexed through one process by the batch runner, sharing one
  image and one set of compiled block closures;
* ``tracefuse_throughput`` / ``tracefuse_throughput_blocks`` — an
  ALU-heavy hot loop (the shape where fusing whole iterations under
  one batched cycle charge pays most) with loop-trace fusion on vs
  per-block execution, pinning the fused tier's speedup trajectory and
  its bit-identity;
* ``warm_compile`` — the same firmware cold (compiling every closure
  and persisting it) then warm (every closure rehydrated from the
  artifact store): the warm pass must recompile **nothing**.

For each workload the report records host wall-clock seconds *and* the
simulated quantities (``cycles``, instructions, ``MachineStats``).
Wall-clock is the number optimisations may move; the simulated numbers
are the determinism contract — they must never change, and must not
depend on block compilation or batching (see DESIGN.md, "Performance &
determinism").  The harness enforces the latter directly: compiled
results are compared field-by-field against single-step results and a
mismatch fails the run.

Usage:  PYTHONPATH=src python benchmarks/bench_regress.py [out.json]
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import repro.ir as ir  # noqa: E402
from repro import build_opec, run_image  # noqa: E402
from repro.hw import Machine, stm32f4_discovery  # noqa: E402
from repro.image import build_vanilla_image  # noqa: E402
from repro.interp import BatchRunner, Interpreter  # noqa: E402
from repro.ir import I32  # noqa: E402

BATCH_LANES = 8


def _throughput_module(iterations: int = 100_000):
    module = ir.Module("throughput")
    _m, b = ir.define(module, "main", I32, [])
    acc = b.alloca(I32)
    b.store(0, acc)
    with b.for_range(0, iterations) as load_i:
        b.store(b.add(b.load(acc), load_i()), acc)
    b.halt(b.load(acc))
    return module


def _alu_module(iterations: int = 300_000):
    """A hot loop dominated by pure register compute: ~10 ALU ops per
    iteration against 2 memory ops, so the fused tier's batched
    charging covers long pure runs."""
    module = ir.Module("alu")
    _m, b = ir.define(module, "main", I32, [])
    acc = b.alloca(I32)
    b.store(7, acc)
    with b.for_range(0, iterations) as load_i:
        v = b.load(acc)
        v = b.add(v, load_i())
        v = b.xor(v, 0x5A5A5A5A)
        v = b.shl(v, 1)
        v = b.sub(v, 3)
        v = b.lshr(v, 1)
        v = b.mul(v, 3)
        v = b.and_(v, 0x00FFFFFF)
        b.store(v, acc)
    b.halt(b.load(acc))
    return module


def _check_identical(name: str, compiled: dict, reference: dict) -> None:
    """Fail loudly if a compiled run's simulated numbers drift."""
    keys = ("instructions", "cycles", "stats", "halt_code", "switches")
    for key in keys:
        if key in compiled and key in reference \
                and compiled[key] != reference[key]:
            raise SystemExit(
                f"{name}: {key} diverged between block-compiled and "
                f"single-step runs: {compiled[key]!r} != {reference[key]!r}")


def _run_module(module, *, block_compile: bool,
                trace_fuse=None) -> dict:
    board = stm32f4_discovery()
    image = build_vanilla_image(module, board)
    machine = Machine(board)
    image.initialize_memory(machine)
    interp = Interpreter(machine, image, max_instructions=10_000_000,
                         block_compile=block_compile,
                         trace_fuse=trace_fuse)
    start = time.perf_counter()
    interp.run()
    wall = time.perf_counter() - start
    return {
        "wall_clock_s": round(wall, 4),
        "instructions": interp.instructions_executed,
        "cycles": machine.cycles,
        "stats": machine.stats.as_dict(),
        "insts_per_s": round(interp.instructions_executed / wall),
        "compile_metrics": interp.compile_metrics.snapshot()["counters"],
    }


def _run_throughput(block_compile: bool) -> dict:
    return _run_module(_throughput_module(), block_compile=block_compile)


def bench_vanilla_throughput() -> tuple[dict, dict]:
    compiled = _run_throughput(block_compile=True)
    singlestep = _run_throughput(block_compile=False)
    _check_identical("vanilla_throughput", compiled, singlestep)
    return compiled, singlestep


def bench_pinlock_opec(backend: str = "mpu",
                       block_compile: bool = False) -> dict:
    from repro.apps import pinlock

    app = pinlock.build(rounds=2)
    artifacts = build_opec(app.module, app.board, app.specs)
    start = time.perf_counter()
    result = run_image(artifacts.image, setup=app.setup,
                       max_instructions=app.max_instructions,
                       backend=backend, block_compile=block_compile)
    wall = time.perf_counter() - start
    app.verify_run(result.machine, result.halt_code)
    return {
        "wall_clock_s": round(wall, 4),
        "halt_code": result.halt_code,
        "cycles": result.machine.cycles,
        "switches": result.hooks.switch_count,
        "stats": result.machine.stats.as_dict(),
    }


def bench_batch_throughput(lanes: int = BATCH_LANES) -> dict:
    """N throughput lanes through one process, sharing image + blocks."""
    board = stm32f4_discovery()
    image = build_vanilla_image(_throughput_module(), board)
    solo = _run_throughput(block_compile=True)
    runner = BatchRunner(block_compile=True)
    for _ in range(lanes):
        runner.add(image, max_instructions=10_000_000)
    start = time.perf_counter()
    result = runner.run()
    wall = time.perf_counter() - start
    total_insts = 0
    for lane in result.lanes:
        if lane.error is not None:
            raise SystemExit(f"batch_throughput: {lane.name} died: "
                             f"{lane.error}")
        lane_report = {
            "instructions": lane.interpreter.instructions_executed,
            "cycles": lane.machine.cycles,
            "stats": lane.machine.stats.as_dict(),
        }
        _check_identical(f"batch_throughput/{lane.name}", lane_report, solo)
        total_insts += lane.interpreter.instructions_executed
    return {
        "wall_clock_s": round(wall, 4),
        "lanes": lanes,
        "instructions": total_insts,
        "cycles_per_lane": result.lanes[0].machine.cycles,
        "insts_per_s": round(total_insts / wall),
        "compile_metrics":
            result.compile_metrics.snapshot()["counters"],
    }


def bench_tracefuse_throughput() -> tuple[dict, dict]:
    """The fused tier's headline: an ALU-heavy loop, fused vs
    per-block, bit-identical by construction."""
    fused = _run_module(_alu_module(), block_compile=True,
                        trace_fuse=True)
    if fused["compile_metrics"]["tracefuse.traces_compiled"] == 0:
        raise SystemExit("tracefuse_throughput: hot loop never fused")
    blocks = _run_module(_alu_module(), block_compile=True,
                         trace_fuse=False)
    _check_identical("tracefuse_throughput", fused, blocks)
    fused["speedup_vs_blocks"] = round(
        blocks["wall_clock_s"] / fused["wall_clock_s"], 3)
    return fused, blocks


def bench_warm_compile() -> dict:
    """Cold vs warm codegen through the persistent closure cache.

    Runs the same firmware twice against a private artifact store —
    fresh module instances, so the warm pass models a fresh process —
    and fails the harness if the warm pass compiled anything at all.
    """
    import os
    import tempfile

    from repro import cache

    saved = os.environ.get("REPRO_CACHE")
    with tempfile.TemporaryDirectory(prefix="repro-closures-") as tmp:
        os.environ["REPRO_CACHE"] = tmp
        cache.reset_store_state()
        try:
            cold = _run_module(_alu_module(), block_compile=True,
                               trace_fuse=True)
            warm = _run_module(_alu_module(), block_compile=True,
                               trace_fuse=True)
        finally:
            if saved is None:
                del os.environ["REPRO_CACHE"]
            else:
                os.environ["REPRO_CACHE"] = saved
            cache.reset_store_state()
    _check_identical("warm_compile", warm, cold)
    warm_counters = warm["compile_metrics"]
    for counter in ("blockcompile.blocks_compiled",
                    "tracefuse.traces_compiled",
                    "tracefuse.trace_rejects"):
        if warm_counters[counter] != 0:
            raise SystemExit(
                f"warm_compile: warm run performed codegen "
                f"({counter}={warm_counters[counter]})")
    if warm_counters["closurecache.blocks_loaded"] == 0:
        raise SystemExit("warm_compile: warm run loaded no closures")
    return {
        "cold_wall_s": cold["wall_clock_s"],
        "warm_wall_s": warm["wall_clock_s"],
        "cold_compile_metrics": cold["compile_metrics"],
        "warm_compile_metrics": warm_counters,
    }


def main() -> int:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else REPO / "BENCH_interp.json"
    throughput, throughput_singlestep = bench_vanilla_throughput()
    pinlock_mpu = bench_pinlock_opec()
    pinlock_compiled = bench_pinlock_opec(block_compile=True)
    _check_identical("pinlock_opec_blockcompile", pinlock_compiled,
                     pinlock_mpu)
    tracefuse, tracefuse_blocks = bench_tracefuse_throughput()
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {
            "vanilla_throughput": throughput,
            "vanilla_throughput_singlestep": throughput_singlestep,
            "tracefuse_throughput": tracefuse,
            "tracefuse_throughput_blocks": tracefuse_blocks,
            "warm_compile": bench_warm_compile(),
            "pinlock_opec": pinlock_mpu,
            "pinlock_opec_pmp": bench_pinlock_opec("pmp"),
            "pinlock_opec_overlay": bench_pinlock_opec("overlay"),
            "pinlock_opec_blockcompile": pinlock_compiled,
            "batch_throughput": bench_batch_throughput(),
        },
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

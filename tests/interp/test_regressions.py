"""Regression tests for interpreter hot-path correctness bugs.

Each test here pins a bug that once lived in the dispatch/eval path:

* ``eval`` returning ``Constant.value`` unmasked, letting a negative
  Python int escape into addresses and shift amounts;
* ``sdiv``/``srem`` computed via float division (``int(sa / sb)``),
  which silently loses precision past 53 bits of quotient.
"""

import pytest

import repro.ir as ir
from repro.hw import Machine, stm32f4_discovery
from repro.image import build_vanilla_image
from repro.interp import Interpreter
from repro.interp.interpreter import Frame
from repro.ir import I32
from repro.ir.instructions import BinOp
from repro.ir.types import IntType
from repro.ir.values import Constant

I64 = IntType(64)
M64 = (1 << 64) - 1


def make_interp():
    """A minimal interpreter plus a frame to evaluate operands in."""
    module = ir.Module("m")
    func, b = ir.define(module, "main", I32, [])
    b.halt(0)
    board = stm32f4_discovery()
    image = build_vanilla_image(module, board)
    machine = Machine(board)
    image.initialize_memory(machine)
    interp = Interpreter(machine, image)
    return interp, Frame(function=func, block=func.entry_block)


class TestConstantMasking:
    def test_constant_masked_at_construction(self):
        assert Constant(-4).value == 0xFFFFFFFC

    def test_folded_negative_constant_masked_at_eval(self):
        """A pass folding a constant in place may leave a raw negative
        behind; eval must still produce the two's-complement bits."""
        interp, frame = make_interp()
        const = Constant(0)
        const.value = -4  # in-place constant fold, no re-masking
        assert interp.eval(frame, const) == 0xFFFFFFFC

    def test_folded_i64_constant_keeps_its_width(self):
        interp, frame = make_interp()
        const = Constant(0, I64)
        const.value = -1
        assert interp.eval(frame, const) == M64


class TestSignedDivision:
    """sdiv/srem must be exact pure-integer truncating division."""

    def test_int_min_over_minus_one_wraps(self):
        interp, frame = make_interp()
        inst = BinOp("sdiv", Constant(0x80000000), Constant(0xFFFFFFFF))
        # ARM SDIV: INT_MIN / -1 overflows and wraps back to INT_MIN.
        assert interp._compute_binop(frame, inst) == 0x80000000

    def test_int_min_rem_minus_one_is_zero(self):
        interp, frame = make_interp()
        inst = BinOp("srem", Constant(0x80000000), Constant(0xFFFFFFFF))
        assert interp._compute_binop(frame, inst) == 0

    @pytest.mark.parametrize("sa, sb, q, r", [
        (-7, 2, -3, -1),
        (7, -2, -3, 1),
        (-7, -2, 3, -1),
        (7, 2, 3, 1),
    ])
    def test_truncation_and_remainder_signs(self, sa, sb, q, r):
        interp, frame = make_interp()
        lhs, rhs = Constant(sa & 0xFFFFFFFF), Constant(sb & 0xFFFFFFFF)
        assert interp._compute_binop(
            frame, BinOp("sdiv", lhs, rhs)) == q & 0xFFFFFFFF
        assert interp._compute_binop(
            frame, BinOp("srem", lhs, rhs)) == r & 0xFFFFFFFF

    def test_sdiv_64bit_is_exact(self):
        """Float division loses the low quotient bits past 2**53; the
        pure-integer path must not."""
        sa, sb = -(2**62 + 1), 3
        exact_q = -((2**62 + 1) // 3)
        assert int(sa / sb) != exact_q  # the old float path really fails
        interp, frame = make_interp()
        inst = BinOp("sdiv", Constant(sa & M64, I64), Constant(sb, I64))
        assert interp._compute_binop(frame, inst) == exact_q & M64

    def test_srem_64bit_is_exact(self):
        sa, sb = -(2**62 + 1), 3
        interp, frame = make_interp()
        inst = BinOp("srem", Constant(sa & M64, I64), Constant(sb, I64))
        assert interp._compute_binop(frame, inst) == -2 & M64

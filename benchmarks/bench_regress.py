#!/usr/bin/env python
"""Interpreter performance regression harness.

Runs two fixed workloads and emits ``BENCH_interp.json`` so future
changes have a perf trajectory to compare against:

* ``vanilla_throughput`` — a tight arithmetic/memory loop on the bare
  interpreter (the substrate's instructions-per-second);
* ``pinlock_opec`` — the PinLock application under full OPEC
  enforcement (operation switches, MPU faults, SysTick, core-peripheral
  emulation) — the end-to-end hot path;
* ``pinlock_opec_pmp`` / ``pinlock_opec_overlay`` — the same firmware
  on the other enforcement backends, so each substrate's arbitration
  path (PMP entry scan + decision cache, overlay interval bisect) has
  its own throughput trajectory.

For each workload the report records host wall-clock seconds *and* the
simulated quantities (``cycles``, instructions, ``MachineStats``).
Wall-clock is the number optimisations may move; the simulated numbers
are the determinism contract — they must never change (see DESIGN.md,
"Performance & determinism").

Usage:  PYTHONPATH=src python benchmarks/bench_regress.py [out.json]
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import repro.ir as ir  # noqa: E402
from repro import build_opec, run_image  # noqa: E402
from repro.hw import Machine, stm32f4_discovery  # noqa: E402
from repro.image import build_vanilla_image  # noqa: E402
from repro.interp import Interpreter  # noqa: E402
from repro.ir import I32  # noqa: E402


def _throughput_module(iterations: int = 100_000):
    module = ir.Module("throughput")
    _m, b = ir.define(module, "main", I32, [])
    acc = b.alloca(I32)
    b.store(0, acc)
    with b.for_range(0, iterations) as load_i:
        b.store(b.add(b.load(acc), load_i()), acc)
    b.halt(b.load(acc))
    return module


def bench_vanilla_throughput() -> dict:
    board = stm32f4_discovery()
    image = build_vanilla_image(_throughput_module(), board)
    machine = Machine(board)
    image.initialize_memory(machine)
    interp = Interpreter(machine, image, max_instructions=10_000_000)
    start = time.perf_counter()
    interp.run()
    wall = time.perf_counter() - start
    return {
        "wall_clock_s": round(wall, 4),
        "instructions": interp.instructions_executed,
        "cycles": machine.cycles,
        "stats": machine.stats.as_dict(),
        "insts_per_s": round(interp.instructions_executed / wall),
    }


def bench_pinlock_opec(backend: str = "mpu") -> dict:
    from repro.apps import pinlock

    app = pinlock.build(rounds=2)
    artifacts = build_opec(app.module, app.board, app.specs)
    start = time.perf_counter()
    result = run_image(artifacts.image, setup=app.setup,
                       max_instructions=app.max_instructions,
                       backend=backend)
    wall = time.perf_counter() - start
    app.verify_run(result.machine, result.halt_code)
    return {
        "wall_clock_s": round(wall, 4),
        "halt_code": result.halt_code,
        "cycles": result.machine.cycles,
        "switches": result.hooks.switch_count,
        "stats": result.machine.stats.as_dict(),
    }


def main() -> int:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else REPO / "BENCH_interp.json"
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {
            "vanilla_throughput": bench_vanilla_throughput(),
            "pinlock_opec": bench_pinlock_opec(),
            "pinlock_opec_pmp": bench_pinlock_opec("pmp"),
            "pinlock_opec_overlay": bench_pinlock_opec("overlay"),
        },
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""lwIP-style network stack subset authored in IR.

Source-file structure mirrors lwIP: "inet_chksum.c", "pbuf.c",
"etharp.c", "ip4.c", "tcp_in.c", "tcp_out.c", "echo.c".  The TCP echo
application registers its receive callback as a *function pointer* in
the PCB, so delivering payload data goes through an indirect call —
the icall the points-to analysis must resolve (Table 3).

Frame layout (network byte order, offsets from the frame start):
ethernet header 0–13 (ethertype at 12), IPv4 header 14–33 (protocol at
23, header checksum at 24, addresses at 26/30), TCP header 34–53
(ports at 34/36, flags at 47), payload from 54.
"""

from __future__ import annotations

import struct
from types import SimpleNamespace

from ...ir import (
    FunctionType,
    I8,
    I32,
    Module,
    VOID,
    array,
    define,
    ptr,
)

ETH_HEADER = 14
IP_HEADER = 20
TCP_HEADER = 20
PAYLOAD_OFFSET = ETH_HEADER + IP_HEADER + TCP_HEADER  # 54
ECHO_PORT = 7
PBUF_COUNT = 8
PBUF_PAYLOAD = 256
FRAME_CAPACITY = 384


def add_netstack(module: Module, eth: SimpleNamespace,
                 libc: SimpleNamespace) -> SimpleNamespace:
    p8 = ptr(I8)
    recv_cb_type = FunctionType(VOID, [p8, I32])

    pbuf_t = module.struct("pbuf", [
        ("in_use", I32), ("len", I32), ("payload", array(I8, PBUF_PAYLOAD)),
    ])
    pcb_t = module.struct("tcp_pcb", [
        ("local_port", I32), ("state", I32),
        ("recv_cb", ptr(I8)),  # function pointer slot (stored as address)
        ("rcv_next", I32), ("snd_next", I32),
    ])

    pbuf_pool = module.add_global("pbuf_pool", array(pbuf_t, PBUF_COUNT),
                                  source_file="pbuf.c")
    echo_pcb = module.add_global("echo_pcb", pcb_t, source_file="tcp_in.c")
    rx_frame = module.add_global("rx_frame", array(I8, FRAME_CAPACITY),
                                 source_file="netif.c")
    rx_len = module.add_global("rx_len", I32, 0, source_file="netif.c")
    tx_frame = module.add_global("tx_frame", array(I8, FRAME_CAPACITY),
                                 source_file="netif.c")
    tx_len = module.add_global("tx_len", I32, 0, source_file="netif.c")
    valid_packets = module.add_global("valid_packets", I32, 0,
                                      source_file="stats.c")
    invalid_packets = module.add_global("invalid_packets", I32, 0,
                                        source_file="stats.c")
    echoed_bytes = module.add_global("echoed_bytes", I32, 0,
                                     source_file="stats.c")

    # -- inet_chksum.c ---------------------------------------------------
    checksum16, b = define(module, "inet_chksum", I32, [p8, I32],
                           source_file="inet_chksum.c")
    data, length = checksum16.params
    total = b.alloca(I32, name="sum")
    b.store(0, total)
    pairs = b.udiv(length, 2)
    with b.for_range(0, pairs) as load_i:
        i = load_i()
        hi = b.zext(b.load(b.gep(data, b.mul(i, 2))))
        lo = b.zext(b.load(b.gep(data, b.add(b.mul(i, 2), 1))))
        word = b.or_(b.shl(hi, 8), lo)
        b.store(b.add(b.load(total), word), total)
    # Fold carries twice, then complement.
    folded = b.add(b.and_(b.load(total), 0xFFFF), b.lshr(b.load(total), 16))
    folded2 = b.add(b.and_(folded, 0xFFFF), b.lshr(folded, 16))
    b.ret(b.and_(b.xor(folded2, 0xFFFFFFFF), 0xFFFF))

    # -- pbuf.c -------------------------------------------------------------
    pbuf_alloc, b = define(module, "pbuf_alloc", I32, [],
                           source_file="pbuf.c")
    with b.for_range(0, PBUF_COUNT) as load_i:
        i = load_i()
        slot = b.gep(pbuf_pool, 0, i, 0)
        free = b.icmp("eq", b.load(slot), 0)
        with b.if_then(free):
            b.store(1, slot)
            b.ret(i)
    b.ret(0xFFFFFFFF)

    pbuf_free, b = define(module, "pbuf_free", VOID, [I32],
                          source_file="pbuf.c")
    (index,) = pbuf_free.params
    b.store(0, b.gep(pbuf_pool, 0, index, 0))
    b.ret_void()

    # -- helpers over byte buffers ------------------------------------------
    get16, b = define(module, "net_get16", I32, [p8, I32],
                      source_file="inet_chksum.c")
    buffer, offset = get16.params
    hi = b.zext(b.load(b.gep(buffer, offset)))
    lo = b.zext(b.load(b.gep(buffer, b.add(offset, 1))))
    b.ret(b.or_(b.shl(hi, 8), lo))

    put16, b = define(module, "net_put16", VOID, [p8, I32, I32],
                      source_file="inet_chksum.c")
    buffer, offset, value = put16.params
    b.store(b.trunc(b.lshr(value, 8)), b.gep(buffer, offset))
    b.store(b.trunc(value), b.gep(buffer, b.add(offset, 1)))
    b.ret_void()

    swap_bytes, b = define(module, "net_swap", VOID, [p8, I32, I32, I32],
                           source_file="etharp.c")
    buffer, off_a, off_b, count = swap_bytes.params
    with b.for_range(0, count) as load_i:
        i = load_i()
        pa = b.gep(buffer, b.add(off_a, i))
        pb_ = b.gep(buffer, b.add(off_b, i))
        va = b.load(pa)
        vb = b.load(pb_)
        b.store(vb, pa)
        b.store(va, pb_)
    b.ret_void()

    oversize_drops = module.add_global("oversize_drops", I32, 0,
                                       source_file="echo.c")

    # -- echo.c: the application receive callback (icall target) -----------
    echo_recv, b = define(module, "echo_recv", VOID, [p8, I32],
                          source_file="echo.c")
    payload, raw_length = echo_recv.params
    # Clamp to the pbuf payload capacity: a giant segment must never
    # overflow the pool (real lwIP would chain pbufs here).
    too_big = b.icmp("ugt", raw_length, PBUF_PAYLOAD)
    with b.if_then(too_big):
        b.store(b.add(b.load(oversize_drops), 1), oversize_drops)
    length = b.select(too_big, PBUF_PAYLOAD, raw_length)
    index = b.call(pbuf_alloc, name="pb")
    ok = b.icmp("ne", index, 0xFFFFFFFF)
    with b.if_then(ok):
        dest = b.gep(pbuf_pool, 0, index, 2, 0)
        b.call(libc.memcpy, dest, payload, length)
        b.store(length, b.gep(pbuf_pool, 0, index, 1))
        # Stage the echo payload into the TX frame.
        b.call(libc.memcpy,
               b.gep(tx_frame, 0, PAYLOAD_OFFSET), dest, length)
        b.store(b.add(b.load(echoed_bytes), length), echoed_bytes)
        b.call(pbuf_free, index)
    b.ret_void()

    # -- tcp_out.c: build the echo reply from the received frame -----------
    tcp_output, b = define(module, "tcp_output", VOID, [I32],
                           source_file="tcp_out.c")
    (payload_len,) = tcp_output.params
    src = b.gep(rx_frame, 0, 0)
    dst = b.gep(tx_frame, 0, 0)
    # Copy headers, then swap MACs, IPs, and ports for the return path.
    b.call(libc.memcpy, dst, src, PAYLOAD_OFFSET)
    b.call(swap_bytes, dst, 0, 6, 6)          # ethernet addresses
    b.call(swap_bytes, dst, 26, 30, 4)        # IP addresses
    b.call(swap_bytes, dst, 34, 36, 2)        # TCP ports
    # Acknowledge what was received: ack = seq + payload_len.
    seq_hi = b.call(get16, dst, 38)
    seq_lo = b.call(get16, dst, 40)
    seq = b.or_(b.shl(seq_hi, 16), seq_lo)
    ack = b.add(seq, payload_len)
    b.call(put16, dst, 42, b.lshr(ack, 16))
    b.call(put16, dst, 44, b.and_(ack, 0xFFFF))
    # Refresh the IP header checksum.
    b.call(put16, dst, 24, 0)
    check = b.call(checksum16, b.gep(tx_frame, 0, ETH_HEADER), IP_HEADER)
    b.call(put16, dst, 24, check)
    b.store(b.add(PAYLOAD_OFFSET, payload_len), tx_len)
    b.ret_void()

    # -- tcp_in.c --------------------------------------------------------------
    tcp_input, b = define(module, "tcp_input", I32, [I32],
                          source_file="tcp_in.c")
    (total_len,) = tcp_input.params
    frame = b.gep(rx_frame, 0, 0)
    dst_port = b.call(get16, frame, 36)
    wrong_port = b.icmp("ne", dst_port, b.load(b.gep(echo_pcb, 0, 0)))
    with b.if_then(wrong_port):
        b.ret(0)
    payload_len = b.sub(total_len, PAYLOAD_OFFSET)
    has_payload = b.icmp("ugt", payload_len, 0)
    with b.if_then(has_payload):
        callback = b.load(b.gep(echo_pcb, 0, 2))
        b.store(b.add(b.load(b.gep(echo_pcb, 0, 3)), payload_len),
                b.gep(echo_pcb, 0, 3))
        b.icall(b.ptrtoint(callback), recv_cb_type,
                b.gep(rx_frame, 0, PAYLOAD_OFFSET), payload_len)
        b.call(tcp_output, payload_len)
    b.ret(1)

    # -- icmp.c: a second transport handler for the dispatch table ------
    icmp_input, b = define(module, "icmp_input", I32, [I32],
                           source_file="icmp.c")
    (_total_len,) = icmp_input.params
    # Echo-request handling would go here; the profile only counts it.
    b.ret(0)

    # -- ip4.c -------------------------------------------------------------------
    # lwIP dispatches transports through a protocol table; the lookup
    # makes every delivered packet an indirect call with two possible
    # targets (the icall multiplicity of Table 3).
    proto_fn_t = FunctionType(I32, [I32])
    proto_handlers = module.add_global("ip_proto_handlers",
                                       array(ptr(I8), 2),
                                       source_file="ip4.c")

    ip_input, b = define(module, "ip_input", I32, [I32],
                         source_file="ip4.c")
    (total_len,) = ip_input.params
    frame = b.gep(rx_frame, 0, 0)
    version = b.lshr(b.zext(b.load(b.gep(frame, ETH_HEADER))), 4)
    with b.if_then(b.icmp("ne", version, 4)):
        b.ret(0)
    proto = b.zext(b.load(b.gep(frame, 23)))
    is_tcp = b.icmp("eq", proto, 6)
    is_icmp = b.icmp("eq", proto, 1)
    with b.if_then(b.icmp("eq", b.or_(is_tcp, is_icmp), 0)):
        b.ret(0)  # unsupported transport (UDP removed, §6.5)
    check = b.call(checksum16, b.gep(rx_frame, 0, ETH_HEADER), IP_HEADER)
    with b.if_then(b.icmp("ne", check, 0)):
        b.ret(0)
    slot = b.select(is_tcp, 1, 0)
    handler = b.load(b.gep(proto_handlers, 0, slot))
    b.ret(b.icall(b.ptrtoint(handler), proto_fn_t, total_len))

    # -- etharp.c ------------------------------------------------------------------
    eth_input, b = define(module, "ethernet_input", I32, [I32],
                          source_file="etharp.c")
    (total_len,) = eth_input.params
    frame = b.gep(rx_frame, 0, 0)
    ethertype = b.call(get16, frame, 12)
    is_ip = b.icmp("eq", ethertype, 0x0800)
    with b.if_else(is_ip) as otherwise:
        b.ret(b.call(ip_input, total_len))
        otherwise()
        b.ret(0)
    b.unreachable()

    # -- timeouts.c: the periodic housekeeping callback ------------------
    timer_fn_t = FunctionType(VOID, [])
    timer_cb = module.add_global("tcp_timer_cb", ptr(I8),
                                 source_file="timeouts.c")

    slow_timer, b = define(module, "tcp_slow_timer", VOID, [],
                           source_file="timeouts.c")
    # Age out leaked pbufs, like lwIP's slow timer sweeping its pools.
    with b.for_range(0, PBUF_COUNT) as load_i:
        i = load_i()
        in_use = b.load(b.gep(pbuf_pool, 0, i, 0))
        leaked = b.icmp("ugt", in_use, 1)
        with b.if_then(leaked):
            b.store(0, b.gep(pbuf_pool, 0, i, 0))
    b.ret_void()

    run_timers, b = define(module, "sys_check_timeouts", VOID, [],
                           source_file="timeouts.c")
    handler = b.load(timer_cb)
    b.icall(b.ptrtoint(handler), timer_fn_t)
    b.ret_void()

    # -- stack init ("tcp.c") -----------------------------------------------------
    stack_init, b = define(module, "tcp_echo_init", VOID, [],
                           source_file="tcp.c")
    b.store(ECHO_PORT, b.gep(echo_pcb, 0, 0))
    b.store(1, b.gep(echo_pcb, 0, 1))  # LISTEN
    b.store(b.inttoptr(b.ptrtoint(echo_recv), I8),
            b.gep(echo_pcb, 0, 2))
    b.store(0, b.gep(echo_pcb, 0, 3))
    b.store(0, b.gep(echo_pcb, 0, 4))
    b.store(b.inttoptr(b.ptrtoint(icmp_input), I8),
            b.gep(proto_handlers, 0, 0))
    b.store(b.inttoptr(b.ptrtoint(tcp_input), I8),
            b.gep(proto_handlers, 0, 1))
    b.store(b.inttoptr(b.ptrtoint(slow_timer), I8), timer_cb)
    with b.for_range(0, PBUF_COUNT) as load_i:
        b.store(0, b.gep(pbuf_pool, 0, load_i(), 0))
    b.ret_void()

    return SimpleNamespace(
        pbuf_t=pbuf_t, pcb_t=pcb_t,
        checksum16=checksum16, pbuf_alloc=pbuf_alloc, pbuf_free=pbuf_free,
        get16=get16, put16=put16, swap_bytes=swap_bytes,
        echo_recv=echo_recv, tcp_output=tcp_output, tcp_input=tcp_input,
        icmp_input=icmp_input, ip_input=ip_input, eth_input=eth_input,
        stack_init=stack_init, slow_timer=slow_timer,
        run_timers=run_timers,
        globals=SimpleNamespace(
            pbuf_pool=pbuf_pool, echo_pcb=echo_pcb, rx_frame=rx_frame,
            rx_len=rx_len, tx_frame=tx_frame, tx_len=tx_len,
            valid_packets=valid_packets, invalid_packets=invalid_packets,
            echoed_bytes=echoed_bytes,
        ),
    )


# -- host-side frame builders ---------------------------------------------------


def _ip_checksum(header: bytes) -> int:
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def make_tcp_frame(payload: bytes, *, dst_port: int = ECHO_PORT,
                   seq: int = 0x1000, corrupt_checksum: bool = False,
                   protocol: int = 6, ethertype: int = 0x0800) -> bytes:
    """Craft an ethernet/IPv4/TCP frame as the desktop client would."""
    eth = bytes.fromhex("0202030405060A0B0C0D0E0F") + struct.pack(
        ">H", ethertype
    )
    total_ip = IP_HEADER + TCP_HEADER + len(payload)
    ip = bytearray(struct.pack(
        ">BBHHHBBH4s4s",
        0x45, 0, total_ip, 0x1234, 0, 64, protocol, 0,
        bytes([192, 168, 1, 100]), bytes([192, 168, 1, 10]),
    ))
    checksum = _ip_checksum(bytes(ip))
    if corrupt_checksum:
        checksum ^= 0x5555
    struct.pack_into(">H", ip, 10, checksum)
    tcp = struct.pack(
        ">HHIIBBHHH", 0xC000, dst_port, seq, 0, 0x50, 0x18, 0x2000, 0, 0
    )
    return eth + bytes(ip) + tcp + payload


def parse_reply(frame: bytes) -> dict:
    """Parse an echoed frame for test assertions."""
    return {
        "dst_mac": frame[0:6],
        "src_mac": frame[6:12],
        "src_ip": frame[26:30],
        "dst_ip": frame[30:34],
        "src_port": struct.unpack(">H", frame[34:36])[0],
        "dst_port": struct.unpack(">H", frame[36:38])[0],
        "payload": frame[PAYLOAD_OFFSET:],
    }

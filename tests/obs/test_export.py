"""Tests for the trace exporters and the end-to-end event stream."""

import json

import pytest

from repro import build_opec, run_image
from repro.obs import (
    FlightRecorder,
    chrome_trace,
    event_tsv,
    span_pairs,
    trace_summary,
)
from repro.obs.events import DOMAIN_HOST, DOMAIN_SIM

from ..conftest import MINI_HALT_CODE, MINI_SPECS, build_mini_module


def _traced_mini_run(board):
    artifacts = build_opec(build_mini_module(), board, MINI_SPECS)
    recorder = FlightRecorder()
    result = run_image(artifacts.image, recorder=recorder)
    assert result.halt_code == MINI_HALT_CODE
    return recorder, result


class TestChromeTrace:
    def test_valid_json_with_expected_schema(self, board):
        recorder, _ = _traced_mini_run(board)
        document = json.loads(chrome_trace(recorder))
        assert document["otherData"]["clock"] == "dwt-cycles"
        assert document["otherData"]["dropped"] == 0
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"  # thread_name metadata first
        assert events[0]["args"]["name"] == "firmware (DWT cycles)"
        for entry in events[1:]:
            assert entry["ph"] in ("B", "E", "i")
            assert isinstance(entry["ts"], int)
            assert entry["tid"] == 0  # sim track only by default

    def test_begin_end_balance_and_nesting(self, board):
        recorder, result = _traced_mini_run(board)
        events = recorder.events(DOMAIN_SIM)
        begins = [e for e in events if e.ph == "B"]
        ends = [e for e in events if e.ph == "E"]
        assert len(begins) == len(ends)  # clean halt closes every span
        pairs = span_pairs(events)
        assert len(pairs) == len(begins)
        # Three switches (a, b, a), each a span with 4 phases inside,
        # mirrored on return: op.switch/op.return plus op.sanitise,
        # op.sync, op.stack, op.mpu spans.
        kinds = {p[0].kind for p in pairs}
        assert {"op.switch", "op.return", "op.sanitise", "op.sync",
                "op.stack", "op.mpu"} <= kinds
        switches = [p for p in pairs if p[0].kind == "op.switch"]
        assert len(switches) == result.hooks.switch_count == 3
        for begin, end in pairs:
            assert begin.ts <= end.ts  # cycle timestamps monotone

    def test_phase_spans_nest_inside_switch(self, board):
        recorder, _ = _traced_mini_run(board)
        events = recorder.events(DOMAIN_SIM)
        pairs = span_pairs(events)
        switch = next(p for p in pairs if p[0].kind == "op.switch")
        inner = [p for p in pairs
                 if p[0].kind.startswith("op.")
                 and p[0].kind not in ("op.switch", "op.return")
                 and switch[0].seq < p[0].seq and p[1].seq < switch[1].seq]
        assert {p[0].kind for p in inner} == {"op.sanitise", "op.sync",
                                              "op.stack", "op.mpu"}

    def test_svc_events_bracket_switches(self, board):
        recorder, _ = _traced_mini_run(board)
        kinds = [e.kind for e in recorder.events(DOMAIN_SIM)]
        assert kinds.count("svc.enter") == 3
        assert kinds.count("svc.return") == 3
        assert kinds[-1] == "run.halt"

    def test_host_domain_excluded_by_default(self, board):
        recorder, _ = _traced_mini_run(board)
        recorder.instant("cache.hit", "deadbeef", None, domain=DOMAIN_HOST)
        document = json.loads(chrome_trace(recorder))
        assert all(e["tid"] == 0 for e in document["traceEvents"])
        everything = json.loads(chrome_trace(recorder, domain=None))
        assert any(e["tid"] == 1 for e in everything["traceEvents"])


class TestEventTsv:
    def test_header_and_row_shape(self, board):
        recorder, _ = _traced_mini_run(board)
        lines = event_tsv(recorder).splitlines()
        assert lines[0] == "seq\tts\tph\tkind\tname\tdomain\targs"
        assert len(lines) == len(recorder.events(DOMAIN_SIM)) + 1
        for line in lines[1:]:
            assert len(line.split("\t")) == 7

    def test_summary_mentions_counts(self):
        rec = FlightRecorder(capacity=4)
        for i in range(6):
            rec.instant("k", f"e{i}", i)
        text = trace_summary(rec)
        assert "6 events emitted" in text
        assert "2 dropped" in text
        assert "capacity 4" in text


class TestSpanPairs:
    def test_unclosed_spans_dropped(self):
        rec = FlightRecorder()
        rec.begin("outer", "o", 0)
        rec.begin("inner", "i", 1)
        rec.end("inner", "i", 2)
        # "outer" never ends — a crash mid-span.
        pairs = span_pairs(rec.events())
        assert [(b.kind, e.ts) for b, e in pairs] == [("inner", 2)]


class TestDeterminism:
    def test_trace_bytes_identical_across_runs(self, board):
        first_rec, _ = _traced_mini_run(board)
        second_rec, _ = _traced_mini_run(board)
        assert chrome_trace(first_rec) == chrome_trace(second_rec)
        assert event_tsv(first_rec) == event_tsv(second_rec)

    def test_metrics_identical_across_runs(self, board):
        _, first = _traced_mini_run(board)
        _, second = _traced_mini_run(board)
        assert (first.machine.metrics.snapshot()
                == second.machine.metrics.snapshot())

    def test_traced_run_charges_identical_cycles(self, board):
        artifacts = build_opec(build_mini_module(), board, MINI_SPECS)
        plain = run_image(artifacts.image)
        traced = run_image(artifacts.image, recorder=FlightRecorder())
        assert plain.cycles == traced.cycles
        assert plain.halt_code == traced.halt_code
        assert (plain.machine.stats.as_dict()
                == traced.machine.stats.as_dict())

"""Workload profiles and build/run caching for the evaluation harness.

Two profiles:

* ``paper`` — the paper's stop conditions (100 un/locks, 11 pictures,
  5 + 45 TCP packets, …); used by the benchmark suite;
* ``quick`` — scaled-down rounds for fast test runs.

Set ``REPRO_PROFILE=quick`` in the environment to downscale everything.
Builds and runs are memoised per process (several table/figure
generators share the same artifacts) *and* persisted in the
content-addressed artifact store (:mod:`repro.cache`), so repeated
evaluations — and every ``REPRO_JOBS`` worker — reuse whole-image
builds and completed simulation results across processes.  Set
``REPRO_CACHE=off`` to bypass the store.

:func:`compute_all_rows` is the evaluation fan-out point: it computes
every table/figure row of §6, either serially in-process or — with
``REPRO_JOBS`` > 1 — one worker process per application, merging the
returned rows in fixed :data:`APP_NAMES` order so the rendered output
is byte-identical either way.
"""

from __future__ import annotations

import os
from typing import Optional

from .. import cache
from ..apps import ACES_APPS, ALL_APPS, Application
from ..obs import fleet
from ..apps import coremark, pinlock
from ..baselines import AcesArtifacts, build_aces
from ..hw.backend import active_backend
from ..pipeline import BuildArtifacts, RunResult, build_opec, build_vanilla, run_image

APP_NAMES = tuple(ALL_APPS)

#: The workload profiles the harness understands.  ``build_app``
#: validates against this set so an ``REPRO_PROFILE`` typo fails loudly
#: instead of silently handing PinLock/CoreMark the quick rounds.
KNOWN_PROFILES = ("paper", "quick")


def active_profile() -> str:
    return os.environ.get("REPRO_PROFILE", "paper")


def repro_jobs() -> int:
    """Evaluation fan-out width.  ``REPRO_JOBS`` unset/1 → serial;
    ``0`` or ``auto`` → one worker per CPU."""
    raw = os.environ.get("REPRO_JOBS", "1").strip().lower()
    if raw in ("0", "auto"):
        return os.cpu_count() or 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


_app_cache: dict[tuple[str, str], Application] = {}
_opec_cache: dict[tuple[str, str], BuildArtifacts] = {}
_aces_cache: dict[tuple[str, str, str], AcesArtifacts] = {}
_run_cache: dict[tuple[str, str, str], RunResult] = {}

def clear_caches() -> None:
    """Reset every in-process memo the harness (and the analyses
    underneath it) keeps, so tests that mutate modules cannot observe
    stale entries.  The on-disk artifact store is content-addressed —
    a mutated module simply digests differently — so it is *not*
    cleared here; use ``repro cache clear`` for that."""
    from ..analysis import clear_analysis_caches
    from . import figure11

    _app_cache.clear()
    _opec_cache.clear()
    _aces_cache.clear()
    _run_cache.clear()
    clear_analysis_caches()
    figure11._trace_cache.clear()


def build_app(name: str, profile: Optional[str] = None) -> Application:
    profile = profile or active_profile()
    if profile not in KNOWN_PROFILES:
        raise ValueError(
            f"unknown workload profile {profile!r} (REPRO_PROFILE): "
            f"expected one of {', '.join(KNOWN_PROFILES)}")
    key = (name, profile)
    if key not in _app_cache:
        if name == "PinLock":
            rounds = 100 if profile == "paper" else 5
            _app_cache[key] = pinlock.build(rounds=rounds)
        elif name == "CoreMark":
            iterations = 100 if profile == "paper" else 10
            _app_cache[key] = coremark.build(iterations=iterations)
        else:
            _app_cache[key] = ALL_APPS[name]()
    return _app_cache[key]


def opec_artifacts(name: str, profile: Optional[str] = None) -> BuildArtifacts:
    profile = profile or active_profile()
    key = (name, profile)
    if key not in _opec_cache:
        app = build_app(name, profile)
        _opec_cache[key] = build_opec(app.module, app.board, app.specs)
    return _opec_cache[key]


def aces_artifacts(name: str, strategy: str,
                   profile: Optional[str] = None) -> AcesArtifacts:
    profile = profile or active_profile()
    key = (name, strategy, profile)
    if key not in _aces_cache:
        app = build_app(name, profile)
        _aces_cache[key] = build_aces(app.module, app.board, strategy)
    return _aces_cache[key]


def _run_digest(app: Application, name: str, kind: str,
                profile: str, backend: str) -> str:
    """Content key for one simulated run of one build flavour."""
    if kind == "opec":
        flavour_key = cache.build_digest("opec", app.module, app.board,
                                         specs=app.specs)
    elif kind == "vanilla":
        flavour_key = cache.build_digest("vanilla", app.module, app.board)
    else:
        flavour_key = cache.build_digest(f"aces:{kind}", app.module,
                                         app.board)
    return cache.run_digest(flavour_key, name, profile,
                            max_instructions=app.max_instructions,
                            backend=backend)


def run_build(name: str, kind: str, profile: Optional[str] = None,
              backend: Optional[str] = None) -> RunResult:
    """Run one build flavour ("vanilla", "opec", "ACES1/2/3").

    Simulated runs are deterministic — same image, same host stimuli,
    same enforcement backend, same cycle count — so completed
    :class:`RunResult` objects are persisted in the artifact store
    alongside the builds.  A warm hit skips the simulation entirely;
    the application's ``verify_run`` checks are re-applied to the
    rehydrated machine either way.  ``backend`` defaults to the
    ambient ``REPRO_BACKEND``; it is part of both the in-process memo
    key and the store digest, so no backend ever observes another's
    cycles.
    """
    profile = profile or active_profile()
    backend = backend or active_backend()
    key = (name, kind, profile, backend)
    if key in _run_cache:
        return _run_cache[key]
    app = build_app(name, profile)
    store = cache.active_store()
    digest = ""
    if store is not None:
        digest = _run_digest(app, name, kind, profile, backend)
        cached = store.get(digest)
        if cached is not None:
            app.verify_run(cached.machine, cached.halt_code)
            _run_cache[key] = cached
            return cached
    if kind == "vanilla":
        image = build_vanilla(app.module, app.board)
    elif kind == "opec":
        image = opec_artifacts(name, profile).image
    else:
        image = aces_artifacts(name, kind, profile).image
    result = run_image(image, setup=app.setup,
                       max_instructions=app.max_instructions,
                       backend=backend)
    fleet.record_simulation(result.machine.metrics,
                            result.interpreter.compile_metrics)
    app.verify_run(result.machine, result.halt_code)
    if store is not None:
        store.put(digest, result)
    _run_cache[key] = result
    return result


# -- whole-evaluation fan-out ------------------------------------------


def _run_kinds(name: str) -> tuple[str, ...]:
    """Build flavours the §6 row computations simulate for one app,
    in the order the computations request them."""
    from ..baselines.aces.compartments import ALL_STRATEGIES

    kinds: tuple[str, ...] = ("vanilla", "opec")
    if name in ACES_APPS:
        kinds += tuple(ALL_STRATEGIES)
    return kinds


def _prefetch_runs(name: str, profile: str, backend: str) -> None:
    """Simulate every cache-cold build flavour of one app as one batch.

    ``_compute_app_rows`` needs the same (vanilla, opec[, ACES]) runs
    several times across its tables and figures; :func:`run_build`
    memoises them, but serially the flavours still execute one after
    another.  Staging the flavours that neither the memo nor the
    artifact store can serve as lanes of a single
    :class:`~repro.interp.batch.BatchRunner` interleaves them at block
    granularity inside this worker — one warm-up, shared compiled
    closures across flavours of the same module — while lane isolation
    keeps each result bit-identical to the solo ``run_build`` it
    stands in for (same memo key, same store digest, same
    ``verify_run`` checks).  A lane failure re-raises exactly what the
    serial path would have raised, in the serial request order.
    """
    from ..interp.batch import BatchRunner, LaneFailure

    app = build_app(name, profile)
    store = cache.active_store()
    runner = None
    staged = []
    for kind in _run_kinds(name):
        key = (name, kind, profile, backend)
        if key in _run_cache:
            continue
        digest = ""
        if store is not None:
            digest = _run_digest(app, name, kind, profile, backend)
            cached = store.get(digest)
            if cached is not None:
                app.verify_run(cached.machine, cached.halt_code)
                _run_cache[key] = cached
                continue
        if kind == "vanilla":
            image = build_vanilla(app.module, app.board)
        elif kind == "opec":
            image = opec_artifacts(name, profile).image
        else:
            image = aces_artifacts(name, kind, profile).image
        if runner is None:
            runner = BatchRunner()
        lane = runner.add(image, name=f"{name}:{kind}", setup=app.setup,
                          max_instructions=app.max_instructions,
                          backend=backend)
        staged.append((key, digest, lane))
    if runner is None:
        return
    fleet.record_simulation(
        compile_metrics=runner.run().compile_metrics)
    for key, digest, lane in staged:
        if lane.error is not None:
            if isinstance(lane.error, LaneFailure):
                raise lane.error.original
            raise lane.error
        result = RunResult(
            halt_code=lane.halt_code, cycles=lane.machine.cycles,
            machine=lane.machine, interpreter=lane.interpreter,
            hooks=lane.hooks,
        )
        fleet.record_simulation(result.machine.metrics)
        app.verify_run(result.machine, result.halt_code)
        if store is not None:
            store.put(digest, result)
        _run_cache[key] = result


def _compute_app_rows(name: str, backend: Optional[str] = None) -> dict:
    """Every §6 row that concerns one application, under the ambient
    profile.  ``backend`` reaches the run-based rows (Figure 9,
    Table 2) as an explicit parameter; the remaining rows are static
    analyses with no enforcement substrate.  Row objects are plain
    dataclasses of primitives, so they cross a process boundary."""
    from . import figure9, figure10, figure11, table1, table2, table3

    _prefetch_runs(name, active_profile(), backend or active_backend())
    rows: dict = {
        "table1": table1.compute_row(name),
        "figure9": figure9.compute_row(name, backend=backend),
        "table3": table3.compute_row(name),
    }
    if name in ACES_APPS:
        rows["table2"] = table2.compute_rows(name, backend=backend)
        rows["figure10"] = figure10.compute_app(name)
        rows["figure11"] = figure11.compute_app(name)
    return rows


def _app_rows_worker(job: tuple[str, str, str]) -> tuple[str, dict, object]:
    """Process-pool entry point: pin the worker's profile (an ambient
    setting many helpers default from) and compute one app's rows; the
    enforcement backend travels as an explicit parameter, never via
    the environment.  Workers share the parent's on-disk artifact
    store (``REPRO_CACHE`` is inherited), so only the first process to
    need a build or run pays for it; the returned telemetry envelope
    carries the capture window's cache traffic, compile activity, and
    simulated metrics back to the parent.  A capture window, not
    process totals: with chunked dispatch one worker process computes
    several apps back to back."""
    name, profile, backend = job
    os.environ["REPRO_PROFILE"] = profile
    token = fleet.begin_capture()
    try:
        rows = _compute_app_rows(name, backend=backend)
    finally:
        envelope = fleet.end_capture(token, label=name)
    return (name, rows, envelope)


def compute_all_rows(jobs: Optional[int] = None,
                     backend: Optional[str] = None) -> dict[str, list]:
    """All rows for Tables 1–3 and Figures 9–11.

    With ``jobs`` (default: ``REPRO_JOBS``) > 1, applications are
    built and run concurrently in a process pool; the per-app rows are
    then merged in fixed ``APP_NAMES`` order, so the result — and
    everything rendered from it — is identical to the serial path.

    The returned mapping carries three extra, non-table keys.
    ``"cache"``: aggregate artifact-cache hit/miss/bytes counters
    summed over this call across every worker process.  ``"compile"``:
    aggregate interpreter compile-metric counters (blocks/traces
    compiled, cache loads, fallback steps, …) summed the same way —
    previously these died with each worker's interpreters.
    ``"telemetry"``: the full per-worker
    :class:`~repro.obs.fleet.WorkerTelemetry` envelopes (conductor
    first, then one per application in ``APP_NAMES`` order) the
    aggregates are summed from.  Renderers ignore all three; they are
    diagnostic (cache/compile activity depends on cache temperature
    and is *not* part of the determinism contract).
    """
    from . import figure9, table1

    jobs = repro_jobs() if jobs is None else max(1, jobs)
    backend = backend or active_backend()
    envelopes: list[fleet.WorkerTelemetry] = []
    outer = fleet.begin_capture()
    try:
        if jobs > 1:
            from concurrent.futures import ProcessPoolExecutor

            profile = active_profile()
            per_app: dict[str, dict] = {}
            workers = min(jobs, len(APP_NAMES))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for name, rows, envelope in pool.map(
                        _app_rows_worker,
                        [(name, profile, backend) for name in APP_NAMES],
                        chunksize=-(-len(APP_NAMES) // workers)):
                    per_app[name] = rows
                    envelopes.append(envelope)
        else:
            per_app = {}
            for name in APP_NAMES:
                token = fleet.begin_capture()
                try:
                    per_app[name] = _compute_app_rows(name,
                                                      backend=backend)
                finally:
                    envelopes.append(fleet.end_capture(token, label=name))
    finally:
        conductor = fleet.end_capture(outer, label="conductor")
    for index, envelope in enumerate(envelopes):
        envelope.worker = index + 1
    telemetry = [conductor, *envelopes]
    counters = cache.CacheCounters()
    compile_totals: dict[str, int] = {}
    for envelope in telemetry:
        counters.merge(envelope.cache_counters)
        for metric, value in envelope.compile_counters.items():
            compile_totals[metric] = compile_totals.get(metric, 0) + value
    return {
        "table1": table1.finalize_rows(
            [per_app[name]["table1"] for name in APP_NAMES]),
        "figure9": figure9.finalize_rows(
            [per_app[name]["figure9"] for name in APP_NAMES]),
        "table2": [row for name in ACES_APPS
                   for row in per_app[name]["table2"]],
        "figure10": [per_app[name]["figure10"] for name in ACES_APPS],
        "figure11": [per_app[name]["figure11"] for name in ACES_APPS],
        "table3": [per_app[name]["table3"] for name in APP_NAMES],
        "cache": counters.as_dict(),
        "compile": {metric: compile_totals[metric]
                    for metric in sorted(compile_totals)},
        "telemetry": telemetry,
    }

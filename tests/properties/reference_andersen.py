"""A deliberately naive Andersen solver used as a test oracle.

Re-states the inclusion-constraint semantics of
``repro.analysis.andersen`` in the most literal form possible: sweep
every constraint, re-union whole points-to sets, and repeat until an
entire pass changes nothing.  No worklist, no deltas, no duplicate
suppression — slow and obviously correct.  The optimized
difference-propagation solver must reach the identical fixed point
(points-to sets and icall edges) on every module.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.andersen import _signature_plausible
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Call,
    Cast,
    GEP,
    ICall,
    Load,
    Ret,
    Select,
    Store,
)
from repro.ir.values import GlobalVariable


class NaiveAndersen:
    """Round-robin full-propagation Andersen fixpoint."""

    def __init__(self, module):
        self.module = module
        self.pts = defaultdict(set)
        self.copy_edges = defaultdict(set)
        self.load_uses = defaultdict(set)
        self.store_sources = defaultdict(set)
        self.icall_site_list = []
        self.icall_edges = defaultdict(set)
        self.returns = defaultdict(list)
        self.passes = 0

    def solve(self):
        self._collect()
        changed = True
        while changed:
            self.passes += 1
            changed = False
            for src, dsts in list(self.copy_edges.items()):
                for dst in list(dsts):
                    if not self.pts[src] <= self.pts[dst]:
                        self.pts[dst] |= self.pts[src]
                        changed = True
            for pointer, loads in list(self.load_uses.items()):
                for obj in list(self.pts[pointer]):
                    for load_inst in loads:
                        if load_inst not in self.copy_edges[obj]:
                            self.copy_edges[obj].add(load_inst)
                            changed = True
            for pointer, sources in list(self.store_sources.items()):
                for obj in list(self.pts[pointer]):
                    for src in sources:
                        if obj not in self.copy_edges[src]:
                            self.copy_edges[src].add(obj)
                            changed = True
            for icall in self.icall_site_list:
                for obj in list(self.pts[icall.target]):
                    if obj[0] != "func":
                        continue
                    func = obj[1]
                    if func in self.icall_edges[icall]:
                        continue
                    if not _signature_plausible(icall, func):
                        continue
                    self.icall_edges[icall].add(func)
                    self._wire_call(func, icall.args, icall)
                    changed = True
        return dict(self.pts), dict(self.icall_edges)

    def _collect(self):
        for func in self.module.iter_functions():
            for inst in func.iter_instructions():
                if isinstance(inst, Ret) and inst.value is not None:
                    self.returns[func].append(inst.value)
        for func in self.module.iter_functions():
            for inst in func.iter_instructions():
                for op in inst.operands:
                    if isinstance(op, GlobalVariable):
                        self.pts[op].add(("global", op))
                    elif isinstance(op, Function):
                        self.pts[op].add(("func", op))
                if isinstance(inst, Alloca):
                    self.pts[inst].add(("alloca", inst))
                elif isinstance(inst, (GEP, Cast)):
                    self.copy_edges[inst.operands[0]].add(inst)
                elif isinstance(inst, Select):
                    self.copy_edges[inst.operands[1]].add(inst)
                    self.copy_edges[inst.operands[2]].add(inst)
                elif isinstance(inst, Load):
                    self.load_uses[inst.pointer].add(inst)
                elif isinstance(inst, Store):
                    self.store_sources[inst.pointer].add(inst.value)
                elif isinstance(inst, Call):
                    self._wire_call(inst.callee, inst.operands, inst)
                elif isinstance(inst, ICall):
                    self.icall_site_list.append(inst)

    def _wire_call(self, callee, args, result_node):
        for param, arg in zip(callee.params, args):
            self.copy_edges[arg].add(param)
        for ret_val in self.returns.get(callee, ()):
            self.copy_edges[ret_val].add(result_node)

"""Call-graph construction (§4.1).

Direct edges come straight from ``call`` instructions.  Indirect edges
are resolved by the Andersen points-to analysis first; sites it cannot
resolve fall back to type-based matching, and the union keeps the graph
sound (over-approximate) as the paper requires — "an unsound call graph
will bring dependency miss to operations".

The per-icall bookkeeping feeds Table 3 (efficiency of the icall
analysis): which analysis resolved each site and how many targets it
has.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..ir.function import Function
from ..ir.instructions import Call, ICall
from ..ir.module import Module
from .andersen import AndersenResult, run_andersen
from .typeanalysis import TypeBasedResolver


@dataclass
class IcallSite:
    """Resolution record for one indirect call site."""

    instruction: ICall
    function: Function
    targets: set[Function] = field(default_factory=set)
    resolved_by: str = "unresolved"  # "svf" | "type" | "unresolved"


@dataclass
class CallGraph:
    """Adjacency over module functions with icall metadata."""

    module: Module
    successors: dict[Function, set[Function]] = field(default_factory=dict)
    icall_sites: list[IcallSite] = field(default_factory=list)
    andersen: Optional[AndersenResult] = None

    def callees(self, func: Function) -> set[Function]:
        return self.successors.get(func, set())

    def reachable_from(
        self,
        entry: Function,
        stop_at: Iterable[Function] = (),
    ) -> set[Function]:
        """DFS from ``entry``; backtrack at other operation entries
        (§4.3) — the entry itself is included, stops are excluded."""
        stops = set(stop_at) - {entry}
        seen: set[Function] = set()
        stack = [entry]
        while stack:
            func = stack.pop()
            if func in seen or func in stops:
                continue
            seen.add(func)
            stack.extend(self.callees(func) - seen - stops)
        return seen

    # -- Table 3 statistics -------------------------------------------

    def icall_count(self) -> int:
        return len(self.icall_sites)

    def resolved_by(self, kind: str) -> int:
        return sum(1 for site in self.icall_sites if site.resolved_by == kind)

    def target_counts(self) -> list[int]:
        return [len(site.targets) for site in self.icall_sites if site.targets]


def build_call_graph(
    module: Module,
    andersen: Optional[AndersenResult] = None,
    use_type_fallback: bool = True,
) -> CallGraph:
    """Build the sound call graph for ``module``."""
    if andersen is None:
        andersen = run_andersen(module)
    type_resolver = TypeBasedResolver(module) if use_type_fallback else None

    graph = CallGraph(module=module, andersen=andersen)
    for func in module.iter_functions():
        edges: set[Function] = set()
        for inst in func.iter_instructions():
            if isinstance(inst, Call):
                edges.add(inst.callee)
            elif isinstance(inst, ICall):
                site = IcallSite(instruction=inst, function=func)
                svf_targets = andersen.icall_targets(inst)
                if svf_targets:
                    site.targets = svf_targets
                    site.resolved_by = "svf"
                elif type_resolver is not None:
                    type_targets = type_resolver.targets(inst)
                    if type_targets:
                        site.targets = type_targets
                        site.resolved_by = "type"
                edges |= site.targets
                graph.icall_sites.append(site)
        graph.successors[func] = edges
    return graph

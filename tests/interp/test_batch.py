"""Unit tests for the batched simulation runner.

The batch contract: lanes are fully isolated (a batched lane's
simulated outcome is bit-identical to a solo run of the same image),
compiled block closures warm across lanes through the shared IR, one
lane's terminal fault never disturbs the fleet, and ``REPRO_BATCH``
validates loudly.
"""

import pytest

import repro.ir as ir
from repro.hw import Machine, stm32f4_discovery
from repro.image import build_vanilla_image
from repro.interp import BatchRunner, Interpreter, batch_lanes
from repro.interp.batch import DEFAULT_LANES, LaneFailure
from repro.interp.hooks import RuntimeHooks
from repro.obs.metrics import MetricsRegistry
from repro.ir import I32


def _loop_module(iterations: int = 300, name: str = "loop"):
    module = ir.Module(name)
    _m, b = ir.define(module, "main", I32, [])
    acc = b.alloca(I32)
    b.store(0, acc)
    with b.for_range(0, iterations) as load_i:
        b.store(b.add(b.load(acc), load_i()), acc)
    b.halt(b.load(acc))
    return module


def _crash_module():
    module = ir.Module("crash")
    _m, b = ir.define(module, "main", I32, [])
    b.halt(b.load(b.mmio(0x60000000)))  # unmapped: terminal HardFault
    return module


def _calling_module():
    module = ir.Module("caller")
    helper, b = ir.define(module, "helper", ir.VOID, [])
    b.ret_void()
    _m, b = ir.define(module, "main", I32, [])
    b.call(helper)
    b.halt(7)
    return module


class _ExplodingHooks(RuntimeHooks):
    """Host-side defect stand-in: raises a non-MachineError mid-run."""

    def is_switch_point(self, interp, callee):
        raise RuntimeError("hook exploded")


class TestReproBatch:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert batch_lanes() == DEFAULT_LANES
        assert batch_lanes(default=3) == 3

    def test_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "5")
        assert batch_lanes() == 5

    @pytest.mark.parametrize("raw", ["0", "-2", "many", "2.5"])
    def test_invalid_raises(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BATCH", raw)
        with pytest.raises(ValueError, match="REPRO_BATCH"):
            batch_lanes()

    @pytest.mark.parametrize("raw", ["many", "2.5"])
    def test_non_integer_distinct_message(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BATCH", raw)
        with pytest.raises(ValueError, match="not an integer"):
            batch_lanes()

    def test_non_positive_distinct_message(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        with pytest.raises(ValueError, match="not a positive"):
            batch_lanes()


class TestBatchIdentity:
    def test_lanes_bit_identical_to_solo(self):
        module = _loop_module()
        board = stm32f4_discovery()
        image = build_vanilla_image(module, board)

        # Per-block tier only: the block-entry accounting below counts
        # one entry per block, which loop fusion deliberately elides
        # (fused batch identity has its own coverage in the tracefuse
        # suites).
        solo_machine = Machine(board)
        image.initialize_memory(solo_machine)
        solo = Interpreter(solo_machine, image, block_compile=True,
                           trace_fuse=False)
        solo_code = solo.run()
        solo_compiled = solo.compile_metrics.snapshot()["counters"]
        solo_sram = solo_machine.read_bytes(solo_machine.sram.base,
                                            solo_machine.sram.size)

        runner = BatchRunner(block_compile=True, trace_fuse=False)
        for _ in range(3):
            runner.add(image)
        result = runner.run()
        assert not result.failed
        for lane in result.lanes:
            assert lane.halt_code == solo_code
            assert lane.machine.cycles == solo_machine.cycles
            assert lane.machine.stats.as_dict() == \
                solo_machine.stats.as_dict()
            assert lane.interpreter.instructions_executed == \
                solo.instructions_executed
            assert lane.machine.read_bytes(
                lane.machine.sram.base, lane.machine.sram.size) == solo_sram

        # The solo run already compiled every closure onto the shared
        # IR; no lane compiles anything, they all just enter blocks.
        aggregate = result.compile_metrics.snapshot()["counters"]
        assert aggregate["blockcompile.blocks_compiled"] == 0
        assert aggregate["blockcompile.block_entries"] == \
            3 * solo_compiled["blockcompile.block_entries"]

    def test_first_lane_warms_the_fleet(self, no_artifact_store):
        module = _loop_module(name="fresh")
        image = build_vanilla_image(module, stm32f4_discovery())
        runner = BatchRunner(block_compile=True)
        for _ in range(4):
            runner.add(image)
        result = runner.run()
        aggregate = result.compile_metrics.snapshot()["counters"]
        # Compiled exactly once across the whole fleet.
        assert aggregate["blockcompile.blocks_compiled"] == \
            len(module.get_function("main").blocks)

    def test_default_lane_names(self):
        image = build_vanilla_image(_loop_module(5), stm32f4_discovery())
        runner = BatchRunner()
        runner.add(image)
        named = runner.add(image, name="probe")
        assert [lane.name for lane in runner.lanes] == ["lane0", "probe"]


class TestFaultIsolation:
    def test_one_lane_dies_rest_complete(self):
        board = stm32f4_discovery()
        good = build_vanilla_image(_loop_module(50), board)
        bad = build_vanilla_image(_crash_module(), board)
        runner = BatchRunner(block_compile=True)
        runner.add(good, name="good0")
        runner.add(bad, name="doomed")
        runner.add(good, name="good1")
        result = runner.run()
        assert [lane.name for lane in result.failed] == ["doomed"]
        assert "unmapped" in str(result.failed[0].error)
        for lane in result.lanes:
            if lane.name != "doomed":
                assert lane.error is None
                assert lane.halt_code == sum(range(50))

    def test_host_defect_wrapped_and_isolated(self):
        """A non-MachineError escaping a lane (a raising hook) must be
        wrapped as LaneFailure — naming the lane and chaining the
        original — while sibling lanes finish normally."""
        board = stm32f4_discovery()
        good = build_vanilla_image(_loop_module(50), board)
        buggy = build_vanilla_image(_calling_module(), board)
        runner = BatchRunner()
        runner.add(good, name="good0")
        runner.add(buggy, name="buggy", hooks=_ExplodingHooks())
        runner.add(good, name="good1")
        result = runner.run()
        assert [lane.name for lane in result.failed] == ["buggy"]
        failure = result.failed[0].error
        assert isinstance(failure, LaneFailure)
        assert failure.lane_name == "buggy"
        assert "buggy" in str(failure)
        assert "RuntimeError" in str(failure)
        assert isinstance(failure.original, RuntimeError)
        assert failure.__cause__ is failure.original
        for lane in result.lanes:
            if lane.name != "buggy":
                assert lane.error is None
                assert lane.halt_code == sum(range(50))


class TestMetricsMerge:
    def test_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").value = 3
        b.counter("hits").value = 4
        b.counter("misses").value = 1
        for value in (2, 9):
            a.histogram("lat").observe(value)
        b.histogram("lat").observe(40)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"] == {"hits": 7, "misses": 1}
        lat = snap["histograms"]["lat"]
        assert lat["count"] == 3
        assert lat["total"] == 51
        assert lat["min"] == 2
        assert lat["max"] == 40

    def test_merge_into_empty_is_copy(self):
        src = MetricsRegistry()
        src.counter("c").value = 5
        src.histogram("h").observe(7)
        dst = MetricsRegistry()
        dst.merge(src)
        assert dst.snapshot() == src.snapshot()

"""TCP-Echo: the lwIP-based echo server (§6).

"Runs a TCP echo server based on lwIP … receives TCP packets sent from
a client running on a desktop and replies to them."  The profile
matches the paper's: 5 valid TCP packets plus 45 invalid ones.

Nine operations as in Table 1.  The packet buffers are shared among
the receive/process/transmit operations, and the pbuf memory pools are
shared further — the pattern the paper credits for this app's high
accessible-globals percentage.
"""

from __future__ import annotations

from ..hw.board import stm32479i_eval
from ..hw.machine import Machine
from ..hw.peripherals import EthernetMAC, GPIO, RCC
from ..ir import I32, Module, VOID, define, ptr
from ..partition.operations import OperationSpec
from .base import Application
from .hal.ethernet import add_eth_hal
from .hal.libc import add_libc
from .hal.system import add_system_hal
from .lib.netstack import add_netstack, make_tcp_frame, parse_reply

VALID_PACKETS = 5
INVALID_PACKETS = 45
ECHO_PAYLOAD = b"hello from the desktop client!!"


def build(valid: int = VALID_PACKETS,
          invalid: int = INVALID_PACKETS) -> Application:
    board = stm32479i_eval()
    module = Module("tcp_echo")

    libc = add_libc(module)
    system = add_system_hal(module, board)
    eth = add_eth_hal(module, board)
    net = add_netstack(module, eth, libc)
    g = net.globals
    total = valid + invalid

    # -- the eight task entries ------------------------------------------
    eth_init_task, b = define(module, "Eth_Init_Task", VOID, [],
                              source_file="netif.c")
    b.call(system.rcc_enable_apb2, 1 << 14)
    b.call(eth.init)
    b.ret_void()

    stack_init_task, b = define(module, "Stack_Init_Task", VOID, [],
                                source_file="tcp.c")
    b.call(net.stack_init)
    b.ret_void()

    rx_task, b = define(module, "Rx_Task", VOID, [], source_file="netif.c")
    with b.while_loop(
        lambda: b.icmp("eq", b.call(eth.frames_waiting), 0)
    ):
        pass
    p32 = ptr(I32)
    words = b.bitcast(b.gep(g.rx_frame, 0, 0), p32)
    length = b.call(eth.rx_frame, words, 96)
    b.store(length, g.rx_len)
    b.ret_void()

    ip_task, b = define(module, "Ip_Task", VOID, [], source_file="ip4.c")
    outcome = b.call(net.eth_input, b.load(g.rx_len))
    ok = b.icmp("ne", outcome, 0)
    with b.if_else(ok) as otherwise:
        b.store(b.add(b.load(g.valid_packets), 1), g.valid_packets)
        otherwise()
        b.store(b.add(b.load(g.invalid_packets), 1), g.invalid_packets)
    b.ret_void()

    tx_task, b = define(module, "Tx_Task", VOID, [], source_file="netif.c")
    pending = b.load(g.tx_len)
    has_reply = b.icmp("ugt", pending, 0)
    with b.if_then(has_reply):
        words = b.bitcast(b.gep(g.tx_frame, 0, 0), ptr(I32))
        b.call(eth.tx_frame, words, pending)
        b.store(0, g.tx_len)
    b.ret_void()

    timer_task, b = define(module, "Timer_Task", VOID, [],
                           source_file="timeouts.c")
    # lwIP-style periodic housekeeping through the timer callback.
    b.call(net.run_timers)
    b.ret_void()

    arp_seen = module.add_global("arp_seen", I32, 0, source_file="etharp.c")
    arp_task, b = define(module, "Arp_Task", VOID, [],
                         source_file="etharp.c")
    # Non-IP frames would be answered here; this profile only counts them.
    hi = b.zext(b.load(b.gep(g.rx_frame, 0, 12)))
    lo = b.zext(b.load(b.gep(g.rx_frame, 0, 13)))
    ethertype = b.or_(b.shl(hi, 8), lo)
    is_arp = b.icmp("eq", ethertype, 0x0806)
    with b.if_then(is_arp):
        b.store(b.add(b.load(arp_seen), 1), arp_seen)
    b.ret_void()

    stats_task, b = define(module, "Stats_Task", I32, [],
                           source_file="stats.c")
    b.ret(b.add(b.load(g.valid_packets), b.load(g.invalid_packets)))

    main, b = define(module, "main", I32, [], source_file="main.c")
    b.call(system.system_clock_config)
    b.call(system.rcc_enable_gpio, 0x3)
    b.call(eth_init_task)
    b.call(stack_init_task)
    with b.while_loop(
        lambda: b.icmp("ult", b.call(stats_task), total)
    ):
        b.call(rx_task)
        b.call(ip_task)
        b.call(tx_task)
        b.call(timer_task)
        b.call(arp_task)
    b.halt(b.load(g.valid_packets))

    specs = [
        OperationSpec("Eth_Init_Task"),
        OperationSpec("Stack_Init_Task"),
        OperationSpec("Rx_Task"),
        OperationSpec("Ip_Task"),
        OperationSpec("Tx_Task"),
        OperationSpec("Timer_Task"),
        OperationSpec("Arp_Task"),
        OperationSpec("Stats_Task"),
    ]

    def setup(machine: Machine) -> None:
        machine.attach_device("RCC", RCC())
        for port in ("GPIOA", "GPIOB"):
            machine.attach_device(port, GPIO())
        mac = machine.attach_device("ETH", EthernetMAC())
        frames = []
        for i in range(valid):
            frames.append(make_tcp_frame(ECHO_PAYLOAD, seq=0x1000 + i))
        for i in range(invalid):
            kind = i % 3
            if kind == 0:
                frames.append(make_tcp_frame(ECHO_PAYLOAD,
                                             corrupt_checksum=True))
            elif kind == 1:
                frames.append(make_tcp_frame(ECHO_PAYLOAD, protocol=17))
            else:
                frames.append(make_tcp_frame(ECHO_PAYLOAD,
                                             ethertype=0x0806))
        # Interleave valid packets among the noise like a real link
        # (deterministic shuffle so runs are reproducible).
        import hashlib

        frames.sort(key=lambda f: hashlib.md5(f).digest())
        for frame in frames:
            mac.enqueue_frame(frame)

    def check(machine: Machine, halt_code: int) -> None:
        assert halt_code == valid, f"accepted {halt_code}/{valid} packets"
        mac = machine.device("ETH")
        replies = mac.sent_frames()
        assert len(replies) == valid, f"sent {len(replies)} echoes"
        for reply in replies:
            parsed = parse_reply(reply)
            assert parsed["payload"][: len(ECHO_PAYLOAD)] == ECHO_PAYLOAD
            assert parsed["src_port"] == 7

    return Application(
        name="TCP-Echo",
        module=module,
        board=board,
        specs=specs,
        setup=setup,
        check=check,
        max_instructions=200_000_000,
        description="lwIP-style TCP echo server (5 valid + 45 invalid).",
    )

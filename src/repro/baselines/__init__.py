"""Comparator builds: the vanilla baseline and ACES (§6.4).

The vanilla build lives in :mod:`repro.image.layout` /
:func:`repro.pipeline.build_vanilla`; this package adds the ACES
reimplementation plus a convenience pipeline mirror of
:func:`repro.pipeline.build_opec`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.andersen import run_andersen
from ..analysis.resources import ResourceAnalysis
from ..cache import active_store, build_digest
from ..hw.board import Board
from ..ir.module import Module
from ..ir.verifier import verify_module
from .aces import (
    AcesImage,
    AcesRuntime,
    Compartment,
    RegionAssignment,
    assign_regions,
    build_aces_image,
    partition_aces,
)


@dataclass
class AcesArtifacts:
    """Everything an ACES build produced."""

    module: Module
    board: Board
    strategy: str
    compartments: list[Compartment]
    assignment: RegionAssignment
    image: AcesImage
    # Content-addressed cache bookkeeping (see repro.cache).
    cache_digest: str = ""
    cache_hit: bool = False


def build_aces(module: Module, board: Board, strategy: str,
               *, verify: bool = True, stack_size: int = 16 * 1024,
               heap_size: int = 8 * 1024) -> AcesArtifacts:
    """Run the ACES pipeline under one of the three strategies.

    Cached through the content-addressed artifact store exactly like
    :func:`repro.pipeline.build_opec`; a hit returns fresh copies of a
    previous build's objects.
    """
    store = active_store()
    digest = ""
    if store is not None:
        digest = build_digest(f"aces:{strategy}", module, board,
                              stack_size=stack_size, heap_size=heap_size,
                              verify=verify)
        cached = store.get(digest)
        if cached is not None:
            cached.cache_digest = digest
            cached.cache_hit = True
            return cached
    if verify:
        verify_module(module)
    andersen = run_andersen(module)
    resources = ResourceAnalysis(module, board, andersen)
    compartments = partition_aces(module, resources, strategy)
    assignment = assign_regions(compartments, module.writable_globals())
    image = build_aces_image(module, board, compartments, assignment,
                             strategy, stack_size=stack_size,
                             heap_size=heap_size)
    artifacts = AcesArtifacts(
        module=module, board=board, strategy=strategy,
        compartments=compartments, assignment=assignment, image=image,
        cache_digest=digest,
    )
    if store is not None:
        store.put(digest, artifacts)
    return artifacts


__all__ = ["AcesArtifacts", "build_aces", "AcesImage", "AcesRuntime"]

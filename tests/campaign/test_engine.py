"""Differential-campaign engine tests: classification, attack
containment, and the byte-identity contract across job counts and
hash seeds."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignConfig,
    generate_firmware,
    render_report,
    report_rows,
    resolve_attack,
    run_campaign,
)
from repro.campaign.attacks import attack_setup
from repro.campaign.engine import evaluate_firmware
from repro.campaign.generator import INSTRUCTION_BUDGET
from repro.interp.batch import BatchRunner
from repro.pipeline import build_opec, build_vanilla

REPO = Path(__file__).resolve().parents[2]

SMALL = CampaignConfig(seed=2026, firmwares=2,
                       attacks=("global", "icall"),
                       backends=("mpu",), jobs=1)


def test_config_validation():
    with pytest.raises(ValueError, match="unknown attack"):
        CampaignConfig(attacks=("frobnicate",)).validate()
    with pytest.raises(ValueError, match="unknown flavour"):
        CampaignConfig(flavours=("debug",)).validate()
    with pytest.raises(ValueError, match="at least one"):
        CampaignConfig(firmwares=0).validate()


def test_vanilla_succumbs_opec_blocks():
    """The core differential on one firmware, all four attacks:
    vanilla lets every payload land, OPEC aborts every one."""
    firmware = generate_firmware(2026, 0)
    vanilla = build_vanilla(firmware.module, firmware.board)
    opec = build_opec(firmware.module, firmware.board,
                      firmware.specs).image
    for kind in ("global", "stack", "peripheral", "icall"):
        runner = BatchRunner()
        for name, image in (("vanilla", vanilla), ("opec", opec)):
            plan = resolve_attack(kind, firmware, image)
            runner.add(image, name=name,
                       setup=attack_setup(firmware, plan),
                       max_instructions=INSTRUCTION_BUDGET,
                       backend="mpu")
        result = runner.run()
        by_name = {lane.name: lane for lane in result.lanes}
        # Vanilla halts normally and the payload landed.
        vanilla_lane = by_name["vanilla"]
        assert vanilla_lane.error is None, (kind, vanilla_lane.error)
        plan = resolve_attack(kind, firmware, vanilla)
        evidence = vanilla_lane.machine.read_direct(
            plan.evidence_address, 4)
        assert evidence == plan.evidence_value, kind
        # OPEC dies on a security abort before the payload matters.
        assert by_name["opec"].error is not None, kind


def test_evaluate_firmware_report_shape():
    report = evaluate_firmware(SMALL, 0)
    assert report.index == 0
    assert set(report.baseline) == {("vanilla", "mpu"), ("opec", "mpu"),
                                    ("aces", "mpu")}
    assert len(report.cells) == 6  # 2 attacks x 3 flavours x 1 backend
    for (_kind, flavour, _backend), outcome in report.cells.items():
        if flavour == "vanilla":
            assert outcome.outcome == "succeeded"
        if flavour == "opec":
            assert outcome.outcome == "blocked"
    # Baselines halt normally everywhere, with switch stats for the
    # protected flavours (ACES reports via its hooks counter).
    for (flavour, _backend), outcome in report.baseline.items():
        assert outcome.outcome == "ok"
        if flavour in ("opec", "aces"):
            assert outcome.switches > 0
            assert outcome.switch_cycles > 0


def test_report_verdicts_pass():
    result = run_campaign(SMALL)
    text = render_report(result)
    assert "-> PASS (OPEC strictly more)" in text
    assert "-> PASS (OPEC strictly lower)" in text
    rows = report_rows(result)
    assert rows[0][0] == "record"
    # 2 firmwares x 3 flavours x 1 backend x (1 baseline + 2 attacks)
    lane_rows = [r for r in rows[1:] if r[0] in ("baseline", "cell")]
    assert len(lane_rows) == 18


def _campaign_text(jobs: int, hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["REPRO_JOBS"] = str(jobs)
    env["PYTHONPATH"] = str(REPO / "src")
    script = (
        "from repro.campaign import CampaignConfig, run_campaign, "
        "render_report, report_rows\n"
        "cfg = CampaignConfig(seed=31, firmwares=2, "
        "attacks=('global','icall'), backends=('mpu','overlay'))\n"
        "res = run_campaign(cfg)\n"
        "print(render_report(res))\n"
        "for row in report_rows(res):\n"
        "    print('\\t'.join(str(c) for c in row))\n"
    )
    proc = subprocess.run([sys.executable, "-c", script], cwd=REPO,
                          env=env, check=True, capture_output=True,
                          text=True)
    return proc.stdout


def test_report_identical_across_jobs_and_hash_seeds():
    """Same seed ⇒ byte-identical report: serial vs 4 workers, and
    different PYTHONHASHSEED values."""
    serial = _campaign_text(jobs=1, hashseed="0")
    fanned = _campaign_text(jobs=4, hashseed="1")
    assert serial == fanned
    assert "Differential security campaign" in serial

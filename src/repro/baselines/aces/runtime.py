"""ACES runtime: compartment switching and enforcement.

Switches happen at every cross-compartment call edge — the code-module
partitioning crosses domains far more often than OPEC's operation
boundaries (Figure 4), which is where ACES' higher runtime overhead in
Table 2 comes from.  Compartments that need core peripherals run at
the privileged level instead of being emulated (§6.2, "ACES lifts the
compartment to the privileged level").

Stack handling follows ACES' design as §5.2 describes it: one MPU
region covers the stack with previous portions' sub-regions disabled;
an access into a previous frame faults and the *micro-emulator* checks
it against the allow list (the stack itself) and performs the access —
paying a per-access emulation cost instead of OPEC's per-switch
relocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...hw.exceptions import BusFault, MemManageFault, SecurityAbort
from ...hw.machine import Machine
from ...hw.mpu import MPURegion
from ...image.mpu_config import subregion_disable_for_free_range
from ...interp.costs import MICRO_EMULATOR_COST
from ...interp.hooks import RuntimeHooks
from ...ir.function import Function
from .compartments import Compartment
from .image import AcesImage


@dataclass
class AcesContext:
    previous: Compartment
    was_privileged: bool
    stack_mask: int


class AcesRuntime(RuntimeHooks):
    """Runtime hooks enforcing the ACES policy."""

    def __init__(self, machine: Machine, image: AcesImage):
        self.machine = machine
        self.image = image
        main = image.module.get_function("main")
        self.current = image.compartment_for(main)
        if self.current is None:
            raise ValueError("main is not in any compartment")
        self.context_stack: list[AcesContext] = []
        self.switch_count = 0
        self.micro_emulations = 0
        self.current_stack_mask = 0

    def on_reset(self, interp) -> None:
        self._load_mpu(self.current, self.current_stack_mask)
        self.machine.enforcement.enabled = True
        if not self.current.privileged:
            self.machine.drop_privilege()

    def is_switch_point(self, interp, callee: Function) -> bool:
        target = self.image.compartment_for(callee)
        return target is not None and target is not self.current

    def _boundary_mask(self, sp: int) -> int:
        sub = self.image.stack_size // 8
        boundary = sp & ~(sub - 1)
        return subregion_disable_for_free_range(
            self.image.stack_base, self.image.stack_size, boundary)

    def before_call(self, interp, callee: Function, args):
        target = self.image.compartment_for(callee)
        assert target is not None
        self.machine.consume(self.machine.enforcement.switch_base_cost)
        self.switch_count += 1
        self.context_stack.append(
            AcesContext(previous=self.current,
                        was_privileged=self.machine.base_privilege,
                        stack_mask=self.current_stack_mask)
        )
        self.current = target
        # Hide the previous compartments' stack portions (no data
        # relocation: faulting accesses go through the micro-emulator).
        self.current_stack_mask = self._boundary_mask(interp.sp)
        self._load_mpu(target, self.current_stack_mask)
        # Privilege lifting: a compartment that needs core peripherals
        # runs at the privileged level (§6.2) — set the thread privilege
        # execution resumes at after this handler returns.
        self.machine.set_base_privilege(target.privileged)
        return args

    def after_return(self, interp, callee: Function) -> None:
        if not self.context_stack:
            raise SecurityAbort("compartment exit without matching entry")
        context = self.context_stack.pop()
        self.machine.consume(self.machine.enforcement.switch_base_cost)
        self.current = context.previous
        self.current_stack_mask = context.stack_mask
        self._load_mpu(self.current, self.current_stack_mask)
        self.machine.set_base_privilege(context.was_privileged)

    def _load_mpu(self, compartment: Compartment, stack_mask: int) -> None:
        layout = self.image.layout_of(compartment)
        regions = []
        for template in layout.templates:
            if template.number == 2:  # the stack region gets the mask
                regions.append(MPURegion(
                    number=2, base=template.base, size=template.size,
                    priv=template.priv, unpriv=template.unpriv,
                    subregion_disable=stack_mask,
                ))
            else:
                regions.append(template)
        self.machine.enforcement.load_configuration(regions)

    def handle_memmanage(self, interp, fault: MemManageFault):
        # The micro-emulator: accesses into the (masked) previous stack
        # frames are checked against the allow list — the stack itself —
        # and performed by the emulator (§5.2).
        if self.image.stack_base <= fault.address < self.image.stack_top:
            self.machine.consume(MICRO_EMULATOR_COST)
            self.machine.stats.micro_emulated_accesses += 1
            self.micro_emulations += 1
            if fault.is_write:
                self.machine.write_direct(fault.address, fault.size,
                                          fault.value)
                return ("emulated", 0)
            return ("emulated",
                    self.machine.read_direct(fault.address, fault.size))
        raise SecurityAbort(
            f"compartment {self.current.name} attempted "
            f"{'write' if fault.is_write else 'read'} at "
            f"0x{fault.address:08X} outside its regions"
        )

    def handle_busfault(self, interp, fault: BusFault):
        # Unprivileged PPB access: ACES has no emulator — the paper's
        # answer is privilege lifting, so reaching here is a policy bug.
        raise SecurityAbort(
            f"compartment {self.current.name} hit the PPB unprivileged "
            f"at 0x{fault.address:08X}"
        )

"""Command-line front end.

Usage (``python -m repro.cli <command>``):

* ``list`` — the available workloads;
* ``build APP [--policy FILE]`` — run the OPEC-Compiler pipeline,
  print the partition, optionally write the §4.3 policy file;
* ``run APP [--build vanilla|opec|ACES1|ACES2|ACES3]
  [--backend mpu|pmp|overlay]`` — run a build on the simulator (under
  the chosen enforcement backend) and report cycles/overhead;
* ``eval TARGET [--backend ...]`` — regenerate a table/figure (or
  ``all``, or the ``backends`` comparison matrix);
* ``trace APP [--format json|tsv] [--output FILE]`` — run a build
  under the flight recorder and export the event stream (Chrome
  trace-event JSON loads directly in Perfetto);
* ``metrics APP`` — run a build and print the metrics registry
  (counters + cycle histograms);
* ``cache stats|clear|verify|fingerprint`` — inspect or maintain the
  content-addressed artifact cache (see ``REPRO_CACHE``);
* ``bench batch APP [--lanes N]`` — multiplex N copies of a build
  through one process via the batch runner (lane count defaults to
  ``REPRO_BATCH``) and report per-lane results plus throughput;
* ``campaign [--seed N] [--firmwares N] [--attacks ...]`` — run a
  differential security campaign over a seeded random-firmware corpus
  and print the containment / over-privilege / switch-cost report;
* ``fleet TARGET [--jobs N] [--backends ...] [--output BASE]`` — run
  an eval app (or ``all``, or ``campaign``) across a worker fleet,
  fuse the per-worker telemetry envelopes into one multi-process
  Perfetto trace (``BASE.json``) and print the fleet dashboard
  (per-worker utilisation, cache hit rates, switch-cost histograms
  per backend, lane fault rates);
* ``attack`` — the PinLock §6.1 case-study demo.

``--backend`` is threaded through the call stack as an explicit
parameter; the CLI never mutates ``os.environ`` (a regression test
pins this), so library callers of these command functions cannot leak
a backend choice into unrelated work in the same process.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

#: Mirrors :data:`repro.hw.backend.KNOWN_BACKENDS`; spelled out here so
#: building the parser does not import the package (a test pins the
#: parity).
BACKEND_CHOICES = ["mpu", "pmp", "overlay"]


def _cmd_list(_args) -> int:
    from .apps import ACES_APPS, ALL_APPS

    for name in ALL_APPS:
        tag = " (ACES comparison app)" if name in ACES_APPS else ""
        print(f"{name}{tag}")
    return 0


def _cmd_build(args) -> int:
    from .eval.workloads import build_app, opec_artifacts
    from .image.policyfile import write_policy

    app = build_app(args.app, profile=args.profile)
    artifacts = opec_artifacts(args.app, profile=args.profile)
    print(f"{app.name}: {len(artifacts.operations)} operations on "
          f"{app.board.name}")
    for op in artifacts.operations:
        kind = "default" if op.is_default else "entry"
        print(f"  [{op.index}] {op.name:20s} ({kind}) "
              f"functions={len(op.functions):3d} "
              f"globals={len(op.accessible_globals):3d} "
              f"windows={len(op.windows)}")
    print(f"flash: monitor={artifacts.image.monitor_code_bytes}B "
          f"metadata={artifacts.image.metadata_bytes}B "
          f"svc-stubs={artifacts.image.instrumentation_bytes}B")
    stages = " ".join(f"{name}={seconds * 1000:.1f}ms"
                      for name, seconds in artifacts.stage_times.items())
    print(f"compile stages: {stages}")
    if args.policy:
        write_policy(artifacts.image, args.policy)
        print(f"policy file written to {args.policy}")
    return 0


def _cmd_run(args) -> int:
    from .eval.workloads import run_build

    result = run_build(args.app, args.build, profile=args.profile,
                       backend=args.backend)
    print(f"{args.app} [{args.build}] halt={result.halt_code} "
          f"cycles={result.cycles}")
    if args.build != "vanilla":
        baseline = run_build(args.app, "vanilla", profile=args.profile,
                             backend=args.backend)
        overhead = result.cycles / baseline.cycles - 1
        print(f"runtime overhead vs vanilla: {overhead:.3%}")
    stats = result.machine.stats
    print(f"svc={stats.svc_calls} memmanage={stats.memmanage_faults} "
          f"region-swaps={stats.peripheral_region_switches} "
          f"core-emulations={stats.emulated_core_accesses}")
    return 0


def _cmd_eval(args) -> int:
    from .eval import (backends, figure9, figure10, figure11, table1,
                       table2, table3)
    from .eval.report_all import main as report_all

    targets = {
        "table1": table1, "table2": table2, "table3": table3,
        "figure9": figure9, "figure10": figure10, "figure11": figure11,
        "backends": backends,
    }
    if args.target == "all":
        report_all(backend=args.backend)
        return 0
    module = targets[args.target]
    # Only the run-based targets take a backend: the rest are static
    # analyses ("backends" sweeps every substrate itself).
    kwargs = ({"backend": args.backend}
              if args.target in ("figure9", "table2") else {})
    if hasattr(module, "compute_table"):
        print(module.render(module.compute_table(**kwargs)))
    else:
        print(module.render(module.compute_figure(**kwargs)))
    return 0


def _cmd_trace(args) -> int:
    from .eval.tracing import record_app_trace
    from .obs import chrome_trace, event_tsv, trace_summary
    from .obs.recorder import validate_capacity

    if args.buf is not None:
        validate_capacity(args.buf, "--buf")
    recorder, result = record_app_trace(
        args.app, args.build, profile=args.profile, capacity=args.buf,
        backend=args.backend)
    domain = None if args.all_domains else "sim"
    if args.format == "json":
        text = chrome_trace(recorder, domain)
    else:
        text = event_tsv(recorder, domain)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"{args.app} [{args.build}] halt={result.halt_code} "
              f"cycles={result.cycles}")
        print(trace_summary(recorder))
        print(f"trace written to {args.output} "
              f"(load JSON in Perfetto / chrome://tracing)")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_metrics(args) -> int:
    from .eval.workloads import run_build

    result = run_build(args.app, args.build, profile=args.profile,
                       backend=args.backend)
    print(result.machine.metrics.render(
        f"{args.app} [{args.build}] — halt={result.halt_code} "
        f"cycles={result.cycles}"))
    if result.interpreter is not None:
        print()
        print(result.interpreter.compile_metrics.render("compile metrics"))
    return 0


def _cmd_dump(args) -> int:
    from .eval.workloads import build_app
    from .ir import print_function, print_module

    app = build_app(args.app, profile="quick")
    if args.function:
        print(print_function(app.module.get_function(args.function)))
    else:
        text = print_module(app.module)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.output} "
                  f"({len(text.splitlines())} lines of OPEC-IR)")
        else:
            print(text)
    return 0


def _cmd_profile(args) -> int:
    from .eval.profiler import profile_image
    from .eval.workloads import build_app, opec_artifacts
    from .pipeline import build_vanilla

    app = build_app(args.app, profile=args.profile)
    if args.build == "opec":
        image = opec_artifacts(args.app, profile=args.profile).image
    else:
        image = build_vanilla(app.module, app.board)
    profile = profile_image(image, setup=app.setup,
                            max_instructions=app.max_instructions)
    print(profile.render(args.top))
    return 0


def _cmd_cache(args) -> int:
    from . import cache

    if args.action == "fingerprint":
        print(cache.pipeline_fingerprint())
        return 0
    store = cache.active_store()
    if store is None:
        print("artifact cache disabled (REPRO_CACHE=off)")
        return 1
    if args.action == "stats":
        entries = store.entry_count()
        size = store.total_bytes()
        print(f"root:        {store.root}")
        print(f"fingerprint: {store.fingerprint}")
        print(f"entries:     {entries}")
        print(f"bytes:       {size} ({size / 1024:.1f} KiB)")
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
    elif args.action == "verify":
        ok, bad = store.verify(prune=args.prune)
        for path in bad:
            state = "pruned" if args.prune else "corrupt"
            print(f"{state}: {path}")
        print(f"{ok} entries ok, {len(bad)} corrupt in {store.root}")
        return 1 if bad and not args.prune else 0
    return 0


def _cmd_bench(args) -> int:
    import time

    from .eval.workloads import build_app, opec_artifacts
    from .interp.batch import BatchRunner, batch_lanes
    from .pipeline import build_vanilla

    lanes = args.lanes if args.lanes is not None else batch_lanes()
    app = build_app(args.app, profile=args.profile)
    if args.build == "opec":
        image = opec_artifacts(args.app, profile=args.profile).image
    else:
        image = build_vanilla(app.module, app.board)
    runner = BatchRunner()
    for _ in range(lanes):
        runner.add(image, setup=app.setup,
                   max_instructions=app.max_instructions,
                   backend=args.backend)
    start = time.perf_counter()
    result = runner.run()
    wall = time.perf_counter() - start
    insts = 0
    for lane in result.lanes:
        if lane.error is not None:
            print(f"{lane.name}: ERROR {lane.error}")
            continue
        executed = lane.interpreter.instructions_executed
        insts += executed
        print(f"{lane.name}: halt={lane.halt_code} "
              f"cycles={lane.cycles} insts={executed}")
    rate = insts / wall if wall else 0.0
    print(f"{lanes} lanes [{args.build}] of {args.app}: "
          f"{insts} instructions in {wall:.3f}s ({rate:,.0f} insts/s)")
    print(result.compile_metrics.render("aggregate compile metrics"))
    return 1 if result.failed else 0


def _cmd_campaign(args) -> int:
    from .campaign import (CampaignConfig, render_report, report_rows,
                           run_campaign)
    from .obs.fleet import telemetry_summary

    config = CampaignConfig(
        seed=args.seed,
        firmwares=args.firmwares,
        attacks=tuple(args.attacks),
        backends=tuple(args.backends),
        jobs=args.jobs,
    )
    result = run_campaign(config)
    text = render_report(result)
    if args.output:
        rows = report_rows(result)
        tsv = "\n".join("\t".join(str(cell) for cell in row)
                        for row in rows) + "\n"
        base = args.output
        with open(f"{base}.txt", "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        with open(f"{base}.tsv", "w", encoding="utf-8") as handle:
            handle.write(tsv)
        print(text)
        print(f"report written to {base}.txt / {base}.tsv")
    else:
        print(text)
    # Footer goes to stdout only — the report files above stay
    # byte-identical across cache temperatures and job counts.
    if result.telemetry:
        print()
        print(telemetry_summary(result.telemetry))
    return 0


def _cmd_fleet(args) -> int:
    from .obs import fleet
    from .obs.recorder import validate_capacity

    jobs = None if args.jobs is None \
        else fleet.validate_jobs(args.jobs, "--jobs")
    capacity = None if args.buf is None \
        else validate_capacity(args.buf, "--buf")
    result = fleet.run_fleet(
        args.target, jobs=jobs, profile=args.profile,
        backends=tuple(args.backends) if args.backends else None,
        capacity=capacity, trace=not args.no_trace,
        seed=args.seed, firmwares=args.firmwares)
    dashboard = fleet.render_dashboard(result)
    print(dashboard)
    if args.output:
        with open(f"{args.output}.json", "w", encoding="utf-8") as handle:
            handle.write(fleet.fuse_trace(result))
        with open(f"{args.output}.txt", "w", encoding="utf-8") as handle:
            handle.write(dashboard + "\n")
        print(f"fleet trace written to {args.output}.json (load in "
              f"Perfetto), dashboard to {args.output}.txt")
    return 0


def _cmd_attack(_args) -> int:
    import runpy
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "examples" / \
        "pinlock_attack.py"
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    # Installed without the examples tree: run the core of the demo.
    from examples import pinlock_attack  # pragma: no cover

    pinlock_attack.main()  # pragma: no cover
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="OPEC reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(
        func=_cmd_list)

    build = sub.add_parser("build", help="run the OPEC-Compiler pipeline")
    build.add_argument("app")
    build.add_argument("--policy", help="write the policy file here")
    build.add_argument("--profile", default="quick",
                       choices=["quick", "paper"])
    build.set_defaults(func=_cmd_build)

    run = sub.add_parser("run", help="run a build on the simulator")
    run.add_argument("app")
    run.add_argument("--build", default="opec",
                     choices=["vanilla", "opec", "ACES1", "ACES2", "ACES3"])
    run.add_argument("--profile", default="quick",
                     choices=["quick", "paper"])
    run.add_argument("--backend", default=None, choices=BACKEND_CHOICES,
                     help="enforcement backend (default: REPRO_BACKEND "
                          "or mpu)")
    run.set_defaults(func=_cmd_run)

    ev = sub.add_parser("eval", help="regenerate a table/figure")
    ev.add_argument("target",
                    choices=["table1", "table2", "table3", "figure9",
                             "figure10", "figure11", "backends", "all"])
    ev.add_argument("--backend", default=None, choices=BACKEND_CHOICES,
                    help="enforcement backend the tables are computed "
                         "under (default: REPRO_BACKEND or mpu)")
    ev.set_defaults(func=_cmd_eval)

    trace = sub.add_parser(
        "trace", help="run under the flight recorder and export events")
    trace.add_argument("app")
    trace.add_argument("--build", default="opec",
                       choices=["vanilla", "opec", "ACES1", "ACES2",
                                "ACES3"])
    trace.add_argument("--profile", default="quick",
                       choices=["quick", "paper"])
    trace.add_argument("--format", default="json",
                       choices=["json", "tsv"],
                       help="Chrome trace-event JSON (Perfetto) or TSV")
    trace.add_argument("--output", help="write the trace here")
    trace.add_argument("--buf", type=int, default=None,
                       help="ring capacity (default: REPRO_TRACE_BUF)")
    trace.add_argument("--all-domains", action="store_true",
                       help="include host-side build/cache events")
    trace.add_argument("--backend", default=None, choices=BACKEND_CHOICES,
                       help="enforcement backend (default: REPRO_BACKEND "
                            "or mpu)")
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics", help="run a build and print the metrics registry")
    metrics.add_argument("app")
    metrics.add_argument("--build", default="opec",
                         choices=["vanilla", "opec", "ACES1", "ACES2",
                                  "ACES3"])
    metrics.add_argument("--profile", default="quick",
                         choices=["quick", "paper"])
    metrics.add_argument("--backend", default=None,
                         choices=BACKEND_CHOICES,
                         help="enforcement backend (default: "
                              "REPRO_BACKEND or mpu)")
    metrics.set_defaults(func=_cmd_metrics)

    dump = sub.add_parser("dump", help="print a workload as OPEC-IR text")
    dump.add_argument("app")
    dump.add_argument("--function", help="print just this function")
    dump.add_argument("--output", help="write to a .oir file")
    dump.set_defaults(func=_cmd_dump)

    prof = sub.add_parser("profile", help="per-function cycle profile")
    prof.add_argument("app")
    prof.add_argument("--build", default="vanilla",
                      choices=["vanilla", "opec"])
    prof.add_argument("--profile", default="quick",
                      choices=["quick", "paper"])
    prof.add_argument("--top", type=int, default=15)
    prof.set_defaults(func=_cmd_profile)

    cache_cmd = sub.add_parser(
        "cache", help="inspect or maintain the artifact cache")
    cache_cmd.add_argument(
        "action", choices=["stats", "clear", "verify", "fingerprint"])
    cache_cmd.add_argument(
        "--prune", action="store_true",
        help="with verify: delete corrupt entries")
    cache_cmd.set_defaults(func=_cmd_cache)

    bench = sub.add_parser(
        "bench", help="performance harnesses (batched simulation)")
    bench.add_argument("mode", choices=["batch"])
    bench.add_argument("app")
    bench.add_argument("--build", default="opec",
                       choices=["vanilla", "opec"])
    bench.add_argument("--lanes", type=int, default=None,
                       help="lane count (default: REPRO_BATCH or 8)")
    bench.add_argument("--profile", default="quick",
                       choices=["quick", "paper"])
    bench.add_argument("--backend", default=None, choices=BACKEND_CHOICES,
                       help="enforcement backend (default: REPRO_BACKEND "
                            "or mpu)")
    bench.set_defaults(func=_cmd_bench)

    campaign = sub.add_parser(
        "campaign", help="differential security campaign over a seeded "
                         "random-firmware corpus")
    campaign.add_argument("--seed", type=int, default=2026,
                          help="corpus seed (same seed -> byte-identical "
                               "report)")
    campaign.add_argument("--firmwares", type=int, default=8,
                          help="corpus size")
    campaign.add_argument("--attacks", nargs="+",
                          default=["global", "stack", "peripheral",
                                   "icall"],
                          choices=["global", "stack", "peripheral",
                                   "icall"],
                          help="attack kinds to inject")
    campaign.add_argument("--backends", nargs="+",
                          default=BACKEND_CHOICES,
                          choices=BACKEND_CHOICES,
                          help="enforcement backends to sweep")
    campaign.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default: REPRO_JOBS)")
    campaign.add_argument("--output",
                          help="also write the report to OUTPUT.txt and "
                               "the flat rows to OUTPUT.tsv")
    campaign.set_defaults(func=_cmd_campaign)

    fleet_cmd = sub.add_parser(
        "fleet", help="run a target across a worker fleet and fuse "
                      "traces + metrics into one dashboard")
    fleet_cmd.add_argument(
        "target", help="application name, 'all', or 'campaign'")
    fleet_cmd.add_argument("--jobs", type=int, default=None,
                           help="worker processes (default: REPRO_JOBS); "
                                "must be positive")
    fleet_cmd.add_argument("--profile", default="quick",
                           choices=["quick", "paper"])
    fleet_cmd.add_argument("--backends", nargs="+", default=None,
                           choices=BACKEND_CHOICES,
                           help="one lane set per backend (default: "
                                "REPRO_BACKEND or mpu)")
    fleet_cmd.add_argument("--buf", type=int, default=None,
                           help="per-lane ring capacity (default: "
                                "REPRO_TRACE_BUF)")
    fleet_cmd.add_argument("--no-trace", action="store_true",
                           help="metrics roll-up only: drop per-lane "
                                "event rings from the envelopes")
    fleet_cmd.add_argument("--output",
                           help="write the fused Perfetto trace to "
                                "OUTPUT.json and the dashboard to "
                                "OUTPUT.txt")
    fleet_cmd.add_argument("--seed", type=int, default=2026,
                           help="campaign target: corpus seed")
    fleet_cmd.add_argument("--firmwares", type=int, default=4,
                           help="campaign target: corpus size")
    fleet_cmd.set_defaults(func=_cmd_fleet)

    sub.add_parser("attack", help="PinLock case-study demo").set_defaults(
        func=_cmd_attack)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

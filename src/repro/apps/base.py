"""Application bundle: what one evaluation workload provides.

Every app in :mod:`repro.apps` builds a fresh IR module (firmware
source), declares its operation entry list + stack information (the
developer inputs of Figure 5), and knows how to wire its device models
and host-side stimulus onto a machine and how to check the run's
functional output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..hw.board import Board
from ..hw.machine import Machine
from ..ir.module import Module
from ..partition.operations import OperationSpec


@dataclass
class Application:
    """One runnable evaluation workload."""

    name: str
    module: Module
    board: Board
    specs: list[OperationSpec]
    setup: Callable[[Machine], None]
    check: Optional[Callable[[Machine, int], None]] = None
    max_instructions: int = 100_000_000
    description: str = ""

    def verify_run(self, machine: Machine, halt_code: int) -> None:
        """Assert the workload did its job (device-level evidence)."""
        if self.check is not None:
            self.check(machine, halt_code)

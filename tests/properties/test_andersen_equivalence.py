"""Equivalence property: the difference-propagation solver reaches the
same fixed point as the naive reference solver on randomized modules.

The generator builds small but adversarial modules from a seed:
pointer slots (global and stack), gep/cast/select chains, direct calls
passing pointers, pointer returns, and function-pointer icalls — every
constraint kind the solver handles.  For each module, every points-to
set and every icall edge must match the oracle's exactly.
"""

from __future__ import annotations

import random

import pytest

import repro.ir as ir
from repro.analysis import run_andersen
from repro.ir import I8, I32, VOID, FunctionType, ptr

from .reference_andersen import NaiveAndersen


def build_random_module(seed: int) -> ir.Module:
    rng = random.Random(seed)
    module = ir.Module(f"rand{seed}")

    globals_ = [module.add_global(f"g{i}", I32)
                for i in range(rng.randint(2, 5))]
    slots = [module.add_global(f"slot{i}", ptr(I32))
             for i in range(rng.randint(1, 3))]
    fnptr_slot = module.add_global("cb", ptr(I8))

    # Handlers an icall may target: some arity-compatible, some not.
    handlers = []
    for i in range(rng.randint(1, 3)):
        arity = rng.choice([1, 1, 2])
        handler, hb = ir.define(module, f"handler{i}", VOID,
                                [ptr(I32)] * arity)
        for param in handler.params:
            if rng.random() < 0.7:
                hb.store(rng.randint(0, 9), param)
        hb.ret_void()
        handlers.append(handler)

    # A pointer-returning helper and a pointer-consuming sink.
    getter, gb = ir.define(module, "getter", ptr(I32), [])
    gb.ret(rng.choice(globals_))
    sink, sb = ir.define(module, "sink", VOID, [ptr(I32)])
    sb.store(1, sink.params[0])
    sb.ret_void()

    for fi in range(rng.randint(1, 3)):
        _f, b = ir.define(module, f"f{fi}", VOID, [])
        pool = list(globals_)
        pool.append(b.alloca(I32))
        for _ in range(rng.randint(3, 12)):
            op = rng.randrange(8)
            if op == 0:
                pool.append(b.alloca(I32))
            elif op == 1:
                b.store(rng.choice(pool), rng.choice(slots))
            elif op == 2:
                pool.append(b.load(rng.choice(slots)))
            elif op == 3:
                pool.append(b.bitcast(rng.choice(pool), ptr(I32)))
            elif op == 4:
                pool.append(b.select(b.icmp("eq", 1, 1),
                                     rng.choice(pool), rng.choice(pool)))
            elif op == 5:
                b.call(sink, rng.choice(pool))
            elif op == 6:
                pool.append(b.call(getter))
            elif op == 7:
                handler = rng.choice(handlers)
                b.store(b.inttoptr(b.ptrtoint(handler), I8), fnptr_slot)
                target = b.load(fnptr_slot)
                b.icall(b.ptrtoint(target), FunctionType(VOID, [ptr(I32)]),
                        rng.choice(pool))
        b.ret_void()
    return module


def _nodes_of_interest(module: ir.Module):
    for gvar in module.iter_globals():
        yield gvar
    for func in module.iter_functions():
        yield func
        yield from func.params
        yield from func.iter_instructions()


@pytest.mark.parametrize("seed", range(20))
def test_optimized_matches_reference(seed):
    module = build_random_module(seed)
    optimized = run_andersen(module)
    reference_pts, reference_icalls = NaiveAndersen(module).solve()

    for node in _nodes_of_interest(module):
        assert optimized.points_to(node) == \
            frozenset(reference_pts.get(node, ())), \
            f"seed {seed}: points-to mismatch at {node!r}"

    from repro.ir.instructions import ICall
    for func in module.iter_functions():
        for inst in func.iter_instructions():
            if isinstance(inst, ICall):
                assert optimized.icall_targets(inst) == \
                    set(reference_icalls.get(inst, ())), \
                    f"seed {seed}: icall edge mismatch at {inst!r}"


@pytest.mark.parametrize("app_name", ["PinLock", "TCP-Echo", "FatFs-uSD"])
def test_optimized_matches_reference_on_real_apps(app_name):
    from repro.eval.workloads import build_app
    from repro.ir.instructions import ICall

    module = build_app(app_name, profile="quick").module
    optimized = run_andersen(module)
    reference_pts, reference_icalls = NaiveAndersen(module).solve()
    for node in _nodes_of_interest(module):
        assert optimized.points_to(node) == \
            frozenset(reference_pts.get(node, ()))
    for func in module.iter_functions():
        for inst in func.iter_instructions():
            if isinstance(inst, ICall):
                assert optimized.icall_targets(inst) == \
                    set(reference_icalls.get(inst, ()))

"""Unit tests for the per-block superinstruction compiler.

The compiler's contract is bit-identity with single-step execution —
same halt codes, same simulated cycles, same stats, same memory image,
same fault messages — plus structural guarantees: closures are cached
on the (image-independent) IR block, uncompilable blocks degrade to a
cached ``None`` sentinel, and ``REPRO_BLOCKCOMPILE`` validates loudly.
"""

import pickle

import pytest

import repro.ir as ir
from repro.hw import Machine, stm32f4_discovery
from repro.hw.exceptions import MachineError
from repro.image import build_vanilla_image
from repro.interp import (
    BLOCKCOMPILE_OFF_VALUES,
    BLOCKCOMPILE_ON_VALUES,
    ExecutionLimitExceeded,
    Interpreter,
    block_compile_enabled,
    compile_block,
)
from repro.ir import I32, VOID


def _loop_module(iterations: int = 500):
    module = ir.Module("loop")
    _m, b = ir.define(module, "main", I32, [])
    acc = b.alloca(I32)
    b.store(0, acc)
    with b.for_range(0, iterations) as load_i:
        b.store(b.add(b.load(acc), load_i()), acc)
    b.halt(b.load(acc))
    return module


def _run(module, block_compile, *, max_instructions=1_000_000,
         raise_irqs=()):
    """Run a vanilla build; return (interp, machine, outcome).

    ``outcome`` is the halt code, or the terminal :class:`MachineError`
    when the firmware faults — callers compare it across modes.
    """
    board = stm32f4_discovery()
    image = build_vanilla_image(module, board)
    machine = Machine(board)
    image.initialize_memory(machine)
    for number in raise_irqs:
        machine.raise_irq(number)
    interp = Interpreter(machine, image, max_instructions=max_instructions,
                         block_compile=block_compile)
    try:
        outcome = interp.run()
    except MachineError as error:
        outcome = error
    return interp, machine, outcome


def _compare_modes(module, *, max_instructions=1_000_000, raise_irqs=()):
    """Run both modes and assert the simulated outcomes are identical."""
    results = []
    for mode in (True, False):
        interp, machine, outcome = _run(
            module, mode, max_instructions=max_instructions,
            raise_irqs=raise_irqs)
        sram = machine.read_bytes(machine.sram.base, machine.sram.size)
        results.append({
            "outcome": (type(outcome).__name__, str(outcome))
            if isinstance(outcome, MachineError) else outcome,
            "cycles": machine.cycles,
            "instructions": interp.instructions_executed,
            "stats": machine.stats.as_dict(),
            "sram": sram,
        })
    compiled, singlestep = results
    assert compiled == singlestep
    return compiled


class TestEnvKnob:
    @pytest.mark.parametrize("raw", sorted(BLOCKCOMPILE_ON_VALUES))
    def test_on_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BLOCKCOMPILE", raw)
        assert block_compile_enabled() is True

    @pytest.mark.parametrize("raw", sorted(BLOCKCOMPILE_OFF_VALUES))
    def test_off_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BLOCKCOMPILE", raw)
        assert block_compile_enabled() is False

    def test_unset_defaults_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_BLOCKCOMPILE", raising=False)
        assert block_compile_enabled() is True

    def test_misspelling_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCKCOMPILE", "fastish")
        with pytest.raises(ValueError, match="REPRO_BLOCKCOMPILE"):
            block_compile_enabled()

    def test_interpreter_consults_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCKCOMPILE", "off")
        module = _loop_module(5)
        board = stm32f4_discovery()
        image = build_vanilla_image(module, board)
        machine = Machine(board)
        image.initialize_memory(machine)
        assert Interpreter(machine, image).block_compile is False
        # An explicit constructor argument overrides the environment.
        assert Interpreter(machine, image,
                           block_compile=True).block_compile is True


class TestClosureCache:
    def test_closure_cached_and_shared_across_machines(
            self, no_artifact_store):
        module = _loop_module(50)
        interp1, _, code1 = _run(module, True)
        first = interp1.compile_metrics.snapshot()["counters"]
        assert first["blockcompile.blocks_compiled"] > 0
        assert first["blockcompile.compile_errors"] == 0
        for block in module.get_function("main").blocks:
            assert callable(block._compiled)
        # A second run over the same IR reuses every closure.
        interp2, _, code2 = _run(module, True)
        second = interp2.compile_metrics.snapshot()["counters"]
        assert second["blockcompile.blocks_compiled"] == 0
        assert second["blockcompile.block_entries"] > 0
        assert code1 == code2

    def test_compile_failure_caches_none_sentinel(self):
        class Broken:
            """Not a BasicBlock: codegen dies, compile_block must not."""
            instructions = None

        broken = Broken()
        assert compile_block(broken) is None
        assert broken._compiled is None

    def test_pickle_drops_compiled_closures(self):
        module = _loop_module(10)
        _run(module, True)
        main = module.get_function("main")
        assert any(callable(b._compiled) for b in main.blocks)
        clone = pickle.loads(pickle.dumps(module))
        for block in clone.get_function("main").blocks:
            assert not hasattr(block, "_compiled")

    def test_generated_source_attached(self):
        module = _loop_module(10)
        _run(module, True)
        entry = module.get_function("main").blocks[0]
        assert "frame.index" in entry._compiled.__repro_source__


class TestEquivalence:
    def test_arith_loop_bit_identical(self):
        result = _compare_modes(_loop_module(500))
        assert result["outcome"] == sum(range(500)) & 0xFFFFFFFF

    def test_budget_exhaustion_identical(self):
        module = _loop_module(10_000)
        outcomes = []
        for mode in (True, False):
            board = stm32f4_discovery()
            image = build_vanilla_image(module, board)
            machine = Machine(board)
            image.initialize_memory(machine)
            interp = Interpreter(machine, image, max_instructions=777,
                                 block_compile=mode)
            with pytest.raises(ExecutionLimitExceeded) as excinfo:
                interp.run()
            outcomes.append((str(excinfo.value), machine.cycles,
                             interp.instructions_executed))
        assert outcomes[0] == outcomes[1]
        # The limit trips on the first instruction past the budget.
        assert outcomes[0][2] == 778

    def test_bus_fault_identical(self):
        # Load from unmapped address space: terminal fault either mode.
        module = ir.Module("crash")
        _m, b = ir.define(module, "main", I32, [])
        acc = b.alloca(I32)
        b.store(1, acc)
        b.halt(b.load(b.mmio(0x60000000)))
        result = _compare_modes(module)
        kind, message = result["outcome"]
        assert message  # a real diagnostic, identically worded

    def test_undefined_value_identical(self):
        # A value defined only on a never-taken path: the compiled
        # register fetch raises KeyError and must replay through the
        # single-step handler for the canonical HardFault message.
        module = ir.Module("undef")
        main = ir.Function("main", ir.FunctionType(I32, []))
        module.add_function(main)
        b = ir.IRBuilder(main)
        dead = main.add_block("dead")
        live = main.add_block("live")
        b.jump(live)
        b.position_at_end(dead)
        phantom = b.add(1, 2)
        b.jump(live)
        b.position_at_end(live)
        b.halt(b.add(phantom, 1))
        result = _compare_modes(module)
        kind, message = result["outcome"]
        assert kind == "HardFault"
        assert "use of undefined value" in message

    def test_mid_run_irqs_identical(self):
        # SysTick armed: compiled blocks must suspend for pending IRQs
        # at instruction boundaries exactly like single-stepping.
        module = ir.Module("ticks")
        ticks = module.add_global("uwTick", I32, 0)
        _h, b = ir.define(module, "SysTick_Handler", VOID, [],
                          irq_number=15)
        b.store(b.add(b.load(ticks), 1), ticks)
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        b.store(99, b.mmio(0xE000E014))   # RVR: tick every 100 cycles
        b.store(7, b.mmio(0xE000E010))    # CSR: ENABLE | TICKINT
        with b.for_range(0, 2000):
            pass
        b.halt(b.load(ticks))
        result = _compare_modes(module, max_instructions=10_000_000)
        assert result["outcome"] > 10  # the handler really fired

    def test_fallback_steps_counted_for_irq_windows(self):
        module = ir.Module("irq")
        flag = module.add_global("flag", I32, 0)
        _h, b = ir.define(module, "H", VOID, [], irq_number=40)
        b.store(1, flag)
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        with b.for_range(0, 20):
            pass
        b.halt(b.load(flag))
        interp, _, code = _run(module, True, raise_irqs=[40])
        assert code == 1
        counters = interp.compile_metrics.snapshot()["counters"]
        assert counters["blockcompile.fallback_steps"] > 0


class TestIRQDeliveryOrder:
    def test_pending_irqs_are_fifo(self):
        """Regression pin for the ``pop(0)`` → ``popleft()`` migration:
        two IRQs raised back-to-back must be delivered oldest-first."""
        module = ir.Module("order")
        order = module.add_global("order", I32, 0)
        for number in (40, 41):
            _h, b = ir.define(module, f"H{number}", VOID, [],
                              irq_number=number)
            b.store(b.add(b.mul(b.load(order), 100), number), order)
            b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        with b.for_range(0, 50):
            pass
        b.halt(b.load(order))
        for mode in (True, False):
            _, _, code = _run(module, mode, raise_irqs=[40, 41])
            assert code == 40 * 100 + 41  # FIFO: 40 first, then 41

"""Board profiles: memory sizes and the peripheral address map.

The peripheral map is the "SoC datasheet" the OPEC compiler consults
when identifying peripheral accesses by constant address (§4.2).  Two
profiles mirror the paper's boards: STM32F4-Discovery (1 MB flash /
192 KB SRAM) and STM32479I-EVAL (2 MB flash / 288 KB SRAM), both
Cortex-M4 class.  Addresses follow the STM32F4 reference manual.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

PPB_BASE = 0xE0000000
PPB_END = 0xE0100000


@dataclass(frozen=True)
class Peripheral:
    """One memory-mapped peripheral window.

    ``core=True`` marks Private Peripheral Bus devices (SysTick, DWT,
    SCB/MPU) that only privileged code may touch (§2.1) — OPEC emulates
    unprivileged access to them instead of lifting code to privileged
    level (§5.2).
    """

    name: str
    base: int
    size: int
    core: bool = False

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


# Core (PPB) peripherals are identical on every ARMv7-M part.
CORE_PERIPHERALS = (
    Peripheral("DWT", 0xE0001000, 0x1000, core=True),
    Peripheral("SysTick", 0xE000E010, 0x10, core=True),
    Peripheral("NVIC", 0xE000E100, 0x400, core=True),
    Peripheral("SCB", 0xE000ED00, 0x90, core=True),
    Peripheral("MPU", 0xE000ED90, 0x40, core=True),
)


@dataclass
class Board:
    """A development board: memories plus its peripheral map."""

    name: str
    flash_base: int
    flash_size: int
    sram_base: int
    sram_size: int
    peripherals: dict[str, Peripheral] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for core in CORE_PERIPHERALS:
            self.peripherals.setdefault(core.name, core)

    def add_peripheral(self, peripheral: Peripheral) -> Peripheral:
        self.peripherals[peripheral.name] = peripheral
        return peripheral

    def peripheral(self, name: str) -> Peripheral:
        return self.peripherals[name]

    def peripheral_at(self, address: int) -> Optional[Peripheral]:
        for peripheral in self.peripherals.values():
            if peripheral.contains(address):
                return peripheral
        return None

    def general_peripherals(self) -> list[Peripheral]:
        return [p for p in self.peripherals.values() if not p.core]

    def core_peripherals(self) -> list[Peripheral]:
        return [p for p in self.peripherals.values() if p.core]

    @staticmethod
    def is_ppb(address: int) -> bool:
        return PPB_BASE <= address < PPB_END


def _stm32_common() -> dict[str, Peripheral]:
    table = [
        ("TIM2", 0x40000000, 0x400),
        ("TIM3", 0x40000400, 0x400),
        ("USART2", 0x40004400, 0x400),
        ("I2C1", 0x40005400, 0x400),
        ("PWR", 0x40007000, 0x400),
        ("USART1", 0x40011000, 0x400),
        ("SDIO", 0x40012C00, 0x400),
        ("SYSCFG", 0x40013800, 0x400),
        ("EXTI", 0x40013C00, 0x400),
        ("GPIOA", 0x40020000, 0x400),
        ("GPIOB", 0x40020400, 0x400),
        ("GPIOC", 0x40020800, 0x400),
        ("GPIOD", 0x40020C00, 0x400),
        ("GPIOE", 0x40021000, 0x400),
        ("CRC", 0x40023000, 0x400),
        ("RCC", 0x40023800, 0x400),
        ("FLASH_IF", 0x40023C00, 0x400),
        ("DMA1", 0x40026000, 0x400),
        ("DMA2", 0x40026400, 0x400),
    ]
    return {name: Peripheral(name, base, size) for name, base, size in table}


def stm32f4_discovery() -> Board:
    """STM32F4-Discovery: 1 MB flash, 192 KB SRAM (paper §6)."""
    return Board(
        name="STM32F4-Discovery",
        flash_base=0x08000000,
        flash_size=1024 * 1024,
        sram_base=0x20000000,
        sram_size=192 * 1024,
        peripherals=_stm32_common(),
    )


def stm32479i_eval() -> Board:
    """STM32479I-EVAL: 2 MB flash, 288 KB SRAM, rich peripherals (§6)."""
    peripherals = _stm32_common()
    extra = [
        ("LTDC", 0x40016800, 0x400),
        ("ETH", 0x40028000, 0x1400),
        ("DMA2D", 0x4002B000, 0x800),
        ("USB_OTG", 0x50000000, 0x40000),
        ("DCMI", 0x50050000, 0x400),
    ]
    for name, base, size in extra:
        peripherals[name] = Peripheral(name, base, size)
    return Board(
        name="STM32479I-EVAL",
        flash_base=0x08000000,
        flash_size=2 * 1024 * 1024,
        sram_base=0x20000000,
        sram_size=288 * 1024,
        peripherals=peripherals,
    )

"""Unit tests for the ACES baseline: strategies, regions, runtime."""

import pytest

import repro.ir as ir
from repro import build_vanilla, run_image
from repro.analysis import ResourceAnalysis
from repro.baselines import build_aces
from repro.baselines.aces import (
    MAX_DATA_REGIONS,
    assign_regions,
    partition_by_filename,
    partition_by_peripheral,
)
from repro.hw import SecurityAbort, stm32f4_discovery
from repro.ir import I32, VOID

from ..conftest import build_mini_module


def _resources(module, board):
    return ResourceAnalysis(module, board)


class TestStrategies:
    def test_filename_one_compartment_per_file(self, board):
        module = build_mini_module()
        compartments = partition_by_filename(module, _resources(module, board))
        assert {c.name for c in compartments} == {"a.c", "b.c", "main.c"}

    def test_optimisation_merges_compartments(self, board):
        module = build_mini_module()
        merged = partition_by_filename(module, _resources(module, board),
                                       optimize=True)
        unmerged = partition_by_filename(module, _resources(module, board),
                                         optimize=False)
        assert len(merged) < len(unmerged)

    def test_peripheral_grouping(self, board):
        module = ir.Module("m")
        rcc = board.peripheral("RCC").base
        tim = board.peripheral("TIM2").base
        f1, b = ir.define(module, "f1", VOID, [], source_file="x.c")
        b.store(1, b.mmio(rcc))
        b.ret_void()
        f2, b = ir.define(module, "f2", VOID, [], source_file="y.c")
        b.store(1, b.mmio(rcc))
        b.ret_void()
        f3, b = ir.define(module, "f3", VOID, [], source_file="x.c")
        b.store(1, b.mmio(tim))
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [], source_file="main.c")
        b.call(f1)
        b.call(f2)
        b.call(f3)
        b.halt(0)
        compartments = partition_by_peripheral(module, _resources(module, board))
        by_name = {c.name: c for c in compartments}
        assert by_name["periph:RCC"].functions == {f1, f2}
        assert by_name["periph:TIM2"].functions == {f3}

    def test_core_peripheral_lifts_compartment(self, board):
        module = ir.Module("m")
        t, b = ir.define(module, "t", VOID, [], source_file="systick.c")
        b.store(1, b.mmio(0xE000E014))
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [], source_file="main.c")
        b.call(t)
        b.halt(0)
        compartments = partition_by_filename(module, _resources(module, board))
        lifted = next(c for c in compartments if c.name == "systick.c")
        assert lifted.privileged


class TestRegionAssignment:
    def _compartments_with_many_groups(self, board):
        """One compartment accessing vars with 6 distinct accessor sets."""
        module = ir.Module("m")
        hub_vars = []
        spokes = []
        for i in range(6):
            g = module.add_global(f"v{i}", I32, i)
            hub_vars.append(g)
            spoke, b = ir.define(module, f"spoke{i}", VOID, [],
                                 source_file=f"s{i}.c")
            b.store(1, g)
            b.ret_void()
            spokes.append(spoke)
        hub, b = ir.define(module, "hub", VOID, [], source_file="hub.c")
        for g in hub_vars:
            b.store(2, g)
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [], source_file="main.c")
        b.call(hub)
        for spoke in spokes:
            b.call(spoke)
        b.halt(0)
        return module, partition_by_filename(module, _resources(module, board))

    def test_merging_respects_region_limit(self, board):
        module, compartments = self._compartments_with_many_groups(board)
        assignment = assign_regions(compartments, module.writable_globals())
        for compartment in compartments:
            assert len(assignment.groups_of(compartment)) <= MAX_DATA_REGIONS

    def test_merging_creates_over_privilege(self, board):
        module, compartments = self._compartments_with_many_groups(board)
        assignment = assign_regions(compartments, module.writable_globals())
        # Some spoke compartment can now access a variable it never
        # needed — the partition-time over-privilege of Figure 3.
        over_privileged = False
        for compartment in compartments:
            accessible = assignment.accessible_vars(compartment)
            needed = compartment.resources.globals_all
            if accessible - needed:
                over_privileged = True
        assert over_privileged

    def test_accessible_is_superset_of_needed(self, board):
        module, compartments = self._compartments_with_many_groups(board)
        assignment = assign_regions(compartments, module.writable_globals())
        for compartment in compartments:
            needed = {
                v for v in compartment.resources.globals_all if not v.is_const
            }
            assert needed <= assignment.accessible_vars(compartment)


class TestAcesRuntime:
    def test_functional_equivalence(self, board):
        module = build_mini_module()
        vanilla = run_image(build_vanilla(module, board))
        for strategy in ("ACES1", "ACES2", "ACES3"):
            module2 = build_mini_module()
            artifacts = build_aces(module2, board, strategy)
            result = run_image(artifacts.image)
            assert result.halt_code == vanilla.halt_code

    def test_switch_on_cross_compartment_calls(self, board):
        module = build_mini_module()
        artifacts = build_aces(module, board, "ACES2")
        result = run_image(artifacts.image)
        # main.c -> a.c, main.c -> b.c, main.c -> a.c
        assert result.hooks.switch_count == 3

    def test_grouped_variable_write_allowed_cross_compartment(self, board):
        """Region merging grants task_b access to vars it shares a
        region with — the over-privilege OPEC blocks."""
        module = build_mini_module()
        artifacts = build_aces(module, board, "ACES2")
        # counter is accessed by a.c, b.c, and main.c: it lands in a
        # region both tasks can write.
        counter = artifacts.module.get_global("counter")
        by_name = {c.name: c for c in artifacts.compartments}
        accessible_b = artifacts.assignment.accessible_vars(by_name["b.c"])
        assert counter in accessible_b

    def test_out_of_region_write_aborts(self, board):
        module = build_mini_module()
        probe = build_aces(module, board, "ACES2")
        secret = probe.module.get_global("secret")
        leaked = probe.image.global_address(secret)

        attack = build_mini_module()
        task_b = attack.get_function("task_b")
        # Append an arbitrary write before task_b's terminator.
        block = task_b.blocks[0]
        ret = block.instructions.pop()
        b = ir.IRBuilder(task_b, block)
        b.store(0xBAD, b.inttoptr(leaked, I32))
        block.instructions.append(ret)
        artifacts = build_aces(attack, board, "ACES2")
        with pytest.raises(SecurityAbort):
            run_image(artifacts.image)

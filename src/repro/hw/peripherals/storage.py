"""Storage device models: SD card (SDIO) and a USB mass-storage port.

The SD card backs the Animation / FatFs-uSD / LCD-uSD workloads; the
USB flash disk receives the Camera app's captured photo (§6).  The
register protocol is a faithful-in-shape simplification of SDIO
single-block transfers: program ARG with the block number, issue
CMD17/CMD24, then stream 128 words through the FIFO.
"""

from __future__ import annotations

from collections import deque

BLOCK_SIZE = 512
WORDS_PER_BLOCK = BLOCK_SIZE // 4


class SDCard:
    """SDIO controller + card with a byte-addressable block image."""

    POWER = 0x00
    ARG = 0x08
    CMD = 0x0C
    RESP1 = 0x14
    DCTRL = 0x2C
    STA = 0x34
    FIFO = 0x80

    CMD_READ_BLOCK = 17
    CMD_WRITE_BLOCK = 24

    STA_CMDREND = 1 << 6
    STA_DBCKEND = 1 << 10

    def __init__(self, image: bytes | bytearray = b"", capacity_blocks: int = 4096,
                 block_latency_cycles: int = 60_000):
        # Single-block SD access is hundreds of microseconds on real
        # cards; the latency is charged on command issue so both
        # baseline and OPEC builds wait identically (I/O-bound §6.3).
        self.machine = None
        self.block_latency_cycles = block_latency_cycles
        self.image = bytearray(capacity_blocks * BLOCK_SIZE)
        self.image[: len(image)] = image
        self.arg = 0
        self.power = 0
        self._fifo: deque[int] = deque()
        self._write_buffer: list[int] = []
        self._write_block = -1
        self.reads = 0
        self.writes = 0

    # -- host side ---------------------------------------------------

    def load_image(self, image: bytes, offset_block: int = 0) -> None:
        start = offset_block * BLOCK_SIZE
        self.image[start : start + len(image)] = image

    def read_block_host(self, block: int) -> bytes:
        start = block * BLOCK_SIZE
        return bytes(self.image[start : start + BLOCK_SIZE])

    # -- device side ---------------------------------------------------

    def _start_read(self, block: int) -> None:
        start = block * BLOCK_SIZE
        blob = self.image[start : start + BLOCK_SIZE]
        self._fifo = deque(
            int.from_bytes(blob[i : i + 4], "little")
            for i in range(0, BLOCK_SIZE, 4)
        )
        self.reads += 1

    def _commit_write(self) -> None:
        start = self._write_block * BLOCK_SIZE
        blob = b"".join(w.to_bytes(4, "little") for w in self._write_buffer)
        self.image[start : start + BLOCK_SIZE] = blob
        self._write_buffer = []
        self._write_block = -1
        self.writes += 1

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == self.STA:
            return self.STA_CMDREND | self.STA_DBCKEND
        if offset == self.RESP1:
            return 0x900  # "ready for data" card status
        if offset == self.FIFO:
            return self._fifo.popleft() if self._fifo else 0
        if offset == self.ARG:
            return self.arg
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == self.ARG:
            self.arg = value
        elif offset == self.CMD:
            command = value & 0x3F
            if command == self.CMD_READ_BLOCK:
                if self.machine is not None:
                    self.machine.consume(self.block_latency_cycles)
                self._start_read(self.arg)
            elif command == self.CMD_WRITE_BLOCK:
                if self.machine is not None:
                    self.machine.consume(self.block_latency_cycles)
                self._write_block = self.arg
                self._write_buffer = []
        elif offset == self.FIFO:
            if self._write_block >= 0:
                self._write_buffer.append(value & 0xFFFFFFFF)
                if len(self._write_buffer) == WORDS_PER_BLOCK:
                    self._commit_write()
        elif offset == self.POWER:
            self.power = value


class USBMassStorage:
    """USB-OTG port exposing a write-only mass-storage disk.

    Protocol: write BLK with the target block, stream 128 words into
    DATA; the block commits automatically.  The Camera app saves its
    photo here (§6); the host inspects ``disk`` afterwards.
    """

    CTRL = 0x00
    BLK = 0x04
    DATA = 0x08
    STA = 0x0C

    STA_READY = 1

    def __init__(self, block_latency_cycles: int = 150_000):
        self.machine = None
        self.block_latency_cycles = block_latency_cycles
        self.disk: dict[int, bytes] = {}
        self.ctrl = 0
        self._block = 0
        self._buffer: list[int] = []

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == self.STA:
            return self.STA_READY
        if offset == self.CTRL:
            return self.ctrl
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == self.CTRL:
            self.ctrl = value
        elif offset == self.BLK:
            self._block = value
            self._buffer = []
        elif offset == self.DATA:
            self._buffer.append(value & 0xFFFFFFFF)
            if len(self._buffer) == WORDS_PER_BLOCK:
                blob = b"".join(w.to_bytes(4, "little") for w in self._buffer)
                self.disk[self._block] = blob
                self._block += 1
                self._buffer = []
                if self.machine is not None:
                    self.machine.consume(self.block_latency_cycles)

"""Unit tests for the runtime-hook integration points."""

import pytest

import repro.ir as ir
from repro.hw import HardFault, Machine, MemManageFault, MPURegion, stm32f4_discovery
from repro.image import build_vanilla_image
from repro.interp import Interpreter, RuntimeHooks
from repro.ir import I32, VOID


def make_setup(module):
    board = stm32f4_discovery()
    image = build_vanilla_image(module, board)
    machine = Machine(board)
    image.initialize_memory(machine)
    return machine, image


class TestSwitchHooks:
    def test_before_call_can_rewrite_args(self):
        module = ir.Module("m")
        task, tb = ir.define(module, "task", I32, [I32])
        tb.ret(task.params[0])
        _f, b = ir.define(module, "main", I32, [])
        b.halt(b.call(task, 1))

        class Rewrite(RuntimeHooks):
            def is_switch_point(self, interp, callee):
                return callee.name == "task"

            def before_call(self, interp, callee, args):
                return [args[0] + 99]

        machine, image = make_setup(module)
        interp = Interpreter(machine, image, Rewrite())
        assert interp.run() == 100
        assert machine.stats.svc_calls == 2  # enter + exit

    def test_after_return_called_in_privileged_mode(self):
        module = ir.Module("m")
        task, tb = ir.define(module, "task", VOID, [])
        tb.ret_void()
        _f, b = ir.define(module, "main", I32, [])
        b.call(task)
        b.halt(0)
        seen = []

        class Spy(RuntimeHooks):
            def is_switch_point(self, interp, callee):
                return callee.name == "task"

            def after_return(self, interp, callee):
                seen.append((callee.name, interp.machine.privileged))

        machine, image = make_setup(module)
        machine.drop_privilege()
        Interpreter(machine, image, Spy()).run()
        assert seen == [("task", True)]


class TestFaultHooks:
    def _denied_store_module(self, address):
        module = ir.Module("m")
        _f, b = ir.define(module, "main", I32, [])
        b.store(7, b.inttoptr(address, I32))
        b.halt(1)
        return module

    def test_memmanage_retry_after_fixup(self):
        board = stm32f4_discovery()
        target = board.sram_base + 64
        module = self._denied_store_module(target)

        class FixUp(RuntimeHooks):
            def on_reset(self, interp):
                interp.machine.mpu.enabled = True
                interp.machine.drop_privilege()

            def handle_memmanage(self, interp, fault):
                interp.machine.mpu.set_region(MPURegion(
                    number=7, base=fault.address & ~31, size=32,
                    priv="RW", unpriv="RW"))
                return True

        machine, image = make_setup(module)
        interp = Interpreter(machine, image, FixUp())
        assert interp.run() == 1
        assert machine.read_direct(target, 4) == 7

    def test_memmanage_unhandled_propagates(self):
        board = stm32f4_discovery()
        module = self._denied_store_module(board.sram_base + 64)

        class Deny(RuntimeHooks):
            def on_reset(self, interp):
                interp.machine.mpu.enabled = True
                interp.machine.drop_privilege()

        machine, image = make_setup(module)
        interp = Interpreter(machine, image, Deny())
        with pytest.raises(MemManageFault):
            interp.run()

    def test_handler_loop_bounded(self):
        board = stm32f4_discovery()
        module = self._denied_store_module(board.sram_base + 64)

        class Liar(RuntimeHooks):
            def on_reset(self, interp):
                interp.machine.mpu.enabled = True
                interp.machine.drop_privilege()

            def handle_memmanage(self, interp, fault):
                return True  # claims to fix, never does

        machine, image = make_setup(module)
        interp = Interpreter(machine, image, Liar())
        with pytest.raises(HardFault, match="retry limit"):
            interp.run()

    def test_busfault_emulated_load(self):
        module = ir.Module("m")
        _f, b = ir.define(module, "main", I32, [])
        b.halt(b.load(b.mmio(0xE000E014)))  # SysTick RVR, unprivileged

        class Emulate(RuntimeHooks):
            def on_reset(self, interp):
                interp.machine.write_direct(0xE000E014, 4, 1234)
                interp.machine.drop_privilege()

            def handle_busfault(self, interp, fault):
                return interp.machine.read_direct(fault.address, fault.size)

        machine, image = make_setup(module)
        interp = Interpreter(machine, image, Emulate())
        assert interp.run() == 1234

    def test_busfault_unhandled_is_hard_fault(self):
        module = ir.Module("m")
        _f, b = ir.define(module, "main", I32, [])
        b.halt(b.load(b.mmio(0xE000E014)))

        class Nothing(RuntimeHooks):
            def on_reset(self, interp):
                interp.machine.drop_privilege()

        machine, image = make_setup(module)
        interp = Interpreter(machine, image, Nothing())
        with pytest.raises(HardFault, match="BusFault"):
            interp.run()


class TestTracingCallbacks:
    def test_enter_exit_pairing(self, mini_module):
        machine, image = make_setup(mini_module)
        entered, exited = [], []
        interp = Interpreter(machine, image)
        interp.on_function_enter = lambda f: entered.append(f.name)
        interp.on_function_exit = lambda f: exited.append(f.name)
        interp.run()
        assert entered == ["main", "task_a", "task_b", "task_a"]
        assert exited == ["task_a", "task_b", "task_a"]  # main halts

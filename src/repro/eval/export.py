"""Export evaluation results to files (text report + TSV data series).

``python -m repro.eval.export [output_dir]`` regenerates every table
and figure and writes:

* ``<target>.txt`` — the rendered text (what the console prints);
* ``<target>.tsv`` — machine-readable rows for plotting elsewhere;
* ``backends.txt`` / ``backends.tsv`` — the comparative
  enforcement-backend matrix (MPU / PMP / overlay overheads, switch
  costs, over-privilege) from :mod:`repro.eval.backends`;
* ``trace_pinlock.json`` / ``trace_pinlock.tsv`` — the PinLock OPEC
  run's flight-recorder stream (Chrome trace-event JSON for Perfetto,
  plus one row per event) — sim domain only, so the bytes are
  cache-temperature-independent;
* ``metrics_pinlock.txt`` — the same run's metrics registry;
* ``campaign_smoke.txt`` / ``campaign_smoke.tsv`` — the differential
  security campaign over the committed smoke corpus
  (:data:`repro.campaign.SMOKE_CONFIG`): containment, over-privilege,
  and switch-cost report plus the flat per-lane rows;
* ``fleet_pinlock.json`` / ``fleet_pinlock.txt`` — the fused
  multi-process fleet trace and dashboard for PinLock across every
  enforcement backend under two workers
  (:func:`repro.obs.fleet.run_fleet`).  The sim-domain sections are
  byte-stable for any worker count or cache temperature; the
  host-domain sections carry wall clock and are masked by
  ``tools/check_determinism.py``.

Rows come from :func:`repro.eval.workloads.compute_all_rows`, so
``REPRO_JOBS`` > 1 regenerates the applications concurrently while the
written files stay bit-identical to a serial export.
"""

from __future__ import annotations

import os
import sys

from ..obs import chrome_trace, event_tsv
from . import backends, figure9, figure10, figure11, table1, table2, table3
from .tracing import record_app_trace
from .workloads import compute_all_rows


def _tsv(rows: list[list[object]]) -> str:
    return "\n".join("\t".join(str(c) for c in row) for row in rows) + "\n"


def export_all(output_dir: str) -> list[str]:
    os.makedirs(output_dir, exist_ok=True)
    written: list[str] = []

    def save(name: str, text: str, rows: list[list[object]]) -> None:
        text_path = os.path.join(output_dir, f"{name}.txt")
        with open(text_path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        tsv_path = os.path.join(output_dir, f"{name}.tsv")
        with open(tsv_path, "w", encoding="utf-8") as handle:
            handle.write(_tsv(rows))
        written.extend([text_path, tsv_path])

    all_rows = compute_all_rows()

    t1 = all_rows["table1"]
    save("table1", table1.render(t1), [
        ["app", "ops", "avg_funcs", "pri_code", "pri_pct",
         "avg_gvars", "avg_gvars_pct"],
        *[[r.app, r.operations, f"{r.avg_functions:.2f}",
           r.privileged_code, f"{r.privileged_pct:.2f}",
           f"{r.avg_gvars:.2f}", f"{r.avg_gvars_pct:.2f}"] for r in t1],
    ])

    f9 = all_rows["figure9"]
    save("figure9", figure9.render(f9), [
        ["app", "runtime_pct", "flash_pct", "sram_pct"],
        *[[r.app, f"{r.runtime_pct:.4f}", f"{r.flash_pct:.3f}",
           f"{r.sram_pct:.3f}"] for r in f9],
    ])

    t2 = all_rows["table2"]
    save("table2", table2.render(t2), [
        ["app", "policy", "ro_x", "fo_pct", "so_pct", "pac_pct"],
        *[[r.app, r.policy, f"{r.runtime_ratio:.3f}",
           f"{r.flash_pct:.3f}", f"{r.sram_pct:.3f}",
           f"{r.privileged_app_pct:.2f}"] for r in t2],
    ])

    f10 = all_rows["figure10"]
    rows10: list[list[object]] = [["app", "policy",
                                   *(f"pt<={t}" for t in figure10.THRESHOLDS)]]
    for entry in f10:
        for policy in (*figure10.ALL_STRATEGIES, "OPEC"):
            rows10.append([entry.app, policy,
                           *(f"{v:.3f}" for v in entry.cumulative(policy))])
    save("figure10", figure10.render(f10), rows10)

    f11 = all_rows["figure11"]
    rows11: list[list[object]] = [["app", "policy", "task", "et"]]
    for entry in f11:
        for policy, values in entry.et.items():
            for task, value in zip(entry.tasks, values):
                rows11.append([entry.app, policy, task, f"{value:.3f}"])
    save("figure11", figure11.render(f11), rows11)

    t3 = all_rows["table3"]
    save("table3", table3.render(t3), [
        ["app", "icalls", "svf", "time_s", "type", "avg", "max"],
        *[[r.app, r.icalls, r.svf_resolved, f"{r.solve_time_s:.3f}",
           r.type_resolved, f"{r.avg_targets:.2f}", r.max_targets]
          for r in t3],
    ])

    # Comparative enforcement-backend matrix: every app's OPEC build
    # under MPU / PMP / overlay.  The table1..figure11 pass above has
    # already warmed the artifact store with the MPU runs, so only the
    # PMP and overlay cells simulate here.
    bk = backends.compute_matrix()
    save("backends", backends.render(bk), [
        ["app", "backend", "cycles", "runtime_pct", "switches",
         "switch_cycles", "switch_avg", "memmanage_faults",
         "region_swaps", "pt_avg"],
        *[[r.app, r.backend, r.cycles, f"{r.runtime_pct:.4f}",
           r.switches, r.switch_cycles, f"{r.switch_avg:.2f}",
           r.memmanage_faults, r.region_swaps, f"{r.pt_avg:.4f}"]
          for r in bk],
    ])

    # Flight-recorder exports: PinLock under OPEC, simulated fresh (a
    # cached RunResult carries no event stream).  Sim-domain only, so
    # the bytes do not depend on cache temperature.
    recorder, result = record_app_trace("PinLock", "opec")
    for name, text in [
        ("trace_pinlock.json", chrome_trace(recorder)),
        ("trace_pinlock.tsv", event_tsv(recorder)),
        ("metrics_pinlock.txt", result.machine.metrics.render(
            f"PinLock [opec] — halt={result.halt_code} "
            f"cycles={result.cycles}") + "\n"),
    ]:
        path = os.path.join(output_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        written.append(path)

    # Differential security campaign over the smoke corpus.  Fans out
    # over the same REPRO_JOBS pool; the report is byte-identical at
    # any job count, so it joins the determinism sweep unmasked.
    from ..campaign import (SMOKE_CONFIG, render_report, report_rows,
                            run_campaign)

    campaign = run_campaign(SMOKE_CONFIG)
    save("campaign_smoke", render_report(campaign),
         report_rows(campaign))

    # Fleet observability export: PinLock lanes across every backend,
    # fanned out over two workers.  Only the sim sections join the
    # determinism sweep (the host sections are wall-clock).
    from ..obs import fleet as fleet_obs

    fleet_result = fleet_obs.run_fleet(
        "PinLock", jobs=2, backends=("mpu", "pmp", "overlay"))
    for name, text in [
        ("fleet_pinlock.json", fleet_obs.fuse_trace(fleet_result)),
        ("fleet_pinlock.txt",
         fleet_obs.render_dashboard(fleet_result) + "\n"),
    ]:
        path = os.path.join(output_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        written.append(path)
    return written


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) > 1 else "results"
    for path in export_all(output_dir):
        print(f"wrote {path}")


if __name__ == "__main__":
    main()

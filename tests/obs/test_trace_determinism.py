"""Trace determinism: hash seeds and cache temperature must not leak
into the flight-recorder exports or the metrics snapshot."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

# Builds PinLock under OPEC, traces the run, and prints the complete
# deterministic surface: the Chrome trace JSON, the event TSV and the
# metrics snapshot.
_TRACE_SCRIPT = """
import json
from repro.eval.tracing import record_app_trace
from repro.obs import chrome_trace, event_tsv

recorder, result = record_app_trace("PinLock", "opec")
print(chrome_trace(recorder), end="")
print(event_tsv(recorder), end="")
print(json.dumps(result.machine.metrics.snapshot(), sort_keys=True))
"""


def _trace_under(seed: str, cache: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["REPRO_PROFILE"] = "quick"
    env["REPRO_CACHE"] = cache
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _TRACE_SCRIPT],
        cwd=REPO, env=env, check=True, capture_output=True, text=True,
    )
    return proc.stdout


def test_trace_stable_across_hash_seeds(tmp_path):
    """Different PYTHONHASHSEED → different dict/set iteration order in
    the analyses; every exported byte must still match."""
    cache = str(tmp_path / "store")
    out_a = _trace_under("0", cache)
    out_b = _trace_under("1", cache)
    assert out_a == out_b
    assert '"traceEvents"' in out_a  # sanity: the export really ran


def test_trace_stable_across_cache_temperature(tmp_path):
    """Cold build, warm rehydrated build, and no cache at all must
    produce the same event stream — a cached build may only change
    *when* the bytes arrive, never which bytes."""
    cache = str(tmp_path / "store")
    cold = _trace_under("0", cache)     # populates the store
    warm = _trace_under("0", cache)     # everything rehydrated
    off = _trace_under("0", "off")      # store bypassed
    assert cold == warm == off

"""PinLock: the paper's case-study smart lock (Listing 1, §6.1).

Six operations as in the paper: the default ``main`` operation
(including ``System_Init``), ``Uart_Init``, ``Key_Init``,
``Init_Lock``, ``Unlock_Task``, and ``Lock_Task``.  ``PinRxBuffer`` is
shared between the two task operations; ``KEY`` between ``Key_Init``
and ``Unlock_Task`` — the sharing pattern behind the partition-time
over-privilege discussion.

The firmware profile stops after ``rounds`` successful unlocks (each
preceded by one rejected wrong PIN, matching "correct and wrong pin
code sent alternately") and the same number of locks.
"""

from __future__ import annotations

from ..hw.board import stm32f4_discovery
from ..hw.machine import Machine
from ..hw.peripherals import GPIO, RCC, UART
from ..ir import I8, I32, Module, VOID, array, define
from ..partition.operations import OperationSpec
from .base import Application
from .hal.crypto import add_crypto, fnv1a_host
from .hal.libc import add_libc
from .hal.system import add_system_hal
from .hal.uart import add_uart_hal

CORRECT_PIN = b"1234"
WRONG_PIN = b"9999"
LOCK_COMMAND = b"0000"
LOCK_PIN_NUMBER = 12  # the board LED standing in for the bolt actuator


def build(rounds: int = 100, vulnerable: bool = False) -> Application:
    """Build the PinLock firmware and its host harness."""
    board = stm32f4_discovery()
    module = Module("pinlock")

    libc = add_libc(module)
    crypto = add_crypto(module)
    system = add_system_hal(module, board)
    uart = add_uart_hal(module, board, with_vulnerability=vulnerable,
                        error_handler=system.error_handler)

    pin_rx = module.add_global("PinRxBuffer", array(I8, 4), source_file="main.c")
    key = module.add_global("KEY", I32, 0, source_file="main.c")
    lock_state = module.add_global("lock_state", I32, 1,
                                   source_file="lock.c",
                                   sanitize_range=(0, 1))
    unlock_count = module.add_global("unlock_count", I32, 0,
                                     source_file="main.c")
    lock_count = module.add_global("lock_count", I32, 0, source_file="main.c")
    provision_pin = module.add_global("provision_pin", array(I8, 4),
                                      list(CORRECT_PIN), is_const=True,
                                      source_file="key.c")

    # -- lock.c --------------------------------------------------------
    # State changes notify a registered observer (the app's one icall).
    from ..ir import FunctionType, ptr

    event_count = module.add_global("lock_events", I32, 0,
                                    source_file="lock.c")
    event_cb = module.add_global("lock_event_cb", ptr(I8),
                                 source_file="lock.c")

    notify_event, b = define(module, "lock_notify", VOID, [I32],
                             source_file="lock.c")
    (_state,) = notify_event.params
    b.store(b.add(b.load(event_count), 1), event_count)
    b.ret_void()

    do_unlock, b = define(module, "do_unlock", VOID, [], source_file="lock.c")
    b.call(system.gpio["GPIOD"].write, LOCK_PIN_NUMBER, 1)
    b.store(0, lock_state)
    observer = b.load(event_cb)
    b.icall(b.ptrtoint(observer), FunctionType(VOID, [I32]), 0)
    b.ret_void()

    do_lock, b = define(module, "do_lock", VOID, [], source_file="lock.c")
    b.call(system.gpio["GPIOD"].write, LOCK_PIN_NUMBER, 0)
    b.store(1, lock_state)
    b.ret_void()

    init_lock, b = define(module, "Init_Lock", VOID, [], source_file="lock.c")
    b.call(system.gpio["GPIOD"].init, LOCK_PIN_NUMBER, 1)  # output mode
    b.store(b.inttoptr(b.ptrtoint(notify_event), I8), event_cb)
    b.call(do_lock)
    b.ret_void()

    # -- key.c ---------------------------------------------------------
    key_init, b = define(module, "Key_Init", VOID, [], source_file="key.c")
    digest = b.call(crypto.fnv1a, b.gep(provision_pin, 0, 0), 4)
    b.store(digest, key)
    b.ret_void()

    # -- uart_init.c ------------------------------------------------------
    uart_init, b = define(module, "Uart_Init", VOID, [],
                          source_file="uart_init.c")
    b.call(system.rcc_enable_apb1, 1 << 17)  # USART2EN
    b.call(uart.init)
    b.ret_void()

    # -- main.c -----------------------------------------------------------
    system_init, b = define(module, "System_Init", VOID, [],
                            source_file="main.c")
    b.call(system.system_clock_config)
    b.call(system.rcc_enable_gpio, 0xF)  # ports A-D
    b.call(system.systick_config, 1000)  # core peripheral (PPB)
    b.ret_void()

    unlock_task, b = define(module, "Unlock_Task", VOID, [],
                            source_file="main.c")
    b.call(uart.receive_it, b.gep(pin_rx, 0, 0), 4)
    result = b.call(crypto.fnv1a, b.gep(pin_rx, 0, 0), 4)
    matches = b.icmp("eq", result, b.load(key))
    with b.if_else(matches) as otherwise:
        b.call(do_unlock)
        b.store(b.add(b.load(unlock_count), 1), unlock_count)
        b.call(uart.write_byte, ord("Y"))
        otherwise()
        b.call(uart.write_byte, ord("N"))
    b.ret_void()

    lock_task, b = define(module, "Lock_Task", VOID, [], source_file="main.c")
    b.call(uart.receive_it, b.gep(pin_rx, 0, 0), 4)
    first = b.zext(b.load(b.gep(pin_rx, 0, 0)))
    is_lock = b.icmp("eq", first, ord("0"))
    with b.if_then(is_lock):
        b.call(do_lock)
        b.store(b.add(b.load(lock_count), 1), lock_count)
        b.call(uart.write_byte, ord("L"))
    b.ret_void()

    # stm32_it.c: the SysTick ISR drives the HAL tick.  Interrupt
    # handlers run privileged and are never operation entries (§4.3).
    systick_handler, b = define(module, "SysTick_Handler", VOID, [],
                                source_file="stm32_it.c", irq_number=15)
    b.call(system.hal_inc_tick)
    b.ret_void()

    main, b = define(module, "main", I32, [], source_file="main.c")
    b.call(system_init)
    b.call(uart_init)
    b.call(key_init)
    b.call(init_lock)
    with b.while_loop(
        lambda: b.icmp("ult", b.load(unlock_count), rounds)
    ):
        b.call(unlock_task)
        b.call(lock_task)
    b.halt(b.load(unlock_count))

    specs = [
        OperationSpec("Uart_Init"),
        OperationSpec("Key_Init"),
        OperationSpec("Init_Lock"),
        OperationSpec("Unlock_Task"),
        OperationSpec("Lock_Task"),
    ]

    def setup(machine: Machine) -> None:
        machine.attach_device("RCC", RCC())
        for port in ("GPIOA", "GPIOB", "GPIOC", "GPIOD"):
            machine.attach_device(port, GPIO())
        uart_dev = machine.attach_device("USART2", UART())
        # Alternate wrong/correct PINs; each iteration also locks.
        for _ in range(rounds):
            uart_dev.feed(WRONG_PIN)      # Unlock_Task: rejected
            uart_dev.feed(LOCK_COMMAND)   # Lock_Task: locks
            uart_dev.feed(CORRECT_PIN)    # Unlock_Task: accepted
            uart_dev.feed(LOCK_COMMAND)   # Lock_Task: locks again

    def check(machine: Machine, halt_code: int) -> None:
        uart_dev = machine.device("USART2")
        transcript = uart_dev.transmitted()
        assert halt_code == rounds, f"unlocked {halt_code}/{rounds} times"
        assert transcript.count(b"Y") == rounds
        assert transcript.count(b"N") == rounds
        assert transcript.count(b"L") == 2 * rounds
        gpio_d = machine.device("GPIOD")
        assert not gpio_d.pin_is_high(LOCK_PIN_NUMBER), "must end locked"

    return Application(
        name="PinLock",
        module=module,
        board=board,
        specs=specs,
        setup=setup,
        check=check,
        description="Smart lock driven over the UART (Listing 1).",
    )


def key_hash() -> int:
    """Host-side value of KEY after Key_Init (the attack's target)."""
    return fnv1a_host(CORRECT_PIN)

"""Unit tests for the IR type system."""

import pytest

from repro.ir import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    VoidType,
    I8,
    I16,
    I32,
    VOID,
    array,
    ptr,
)


class TestIntType:
    def test_sizes(self):
        assert I8.size == 1
        assert I16.size == 2
        assert I32.size == 4

    def test_mask(self):
        assert I8.mask == 0xFF
        assert I32.mask == 0xFFFFFFFF

    def test_scalar(self):
        assert I32.is_scalar

    def test_rejects_odd_width(self):
        with pytest.raises(ValueError):
            IntType(24)

    def test_equality_is_structural(self):
        assert IntType(32) == I32
        assert IntType(8) != I32
        assert hash(IntType(32)) == hash(I32)


class TestPointerType:
    def test_size_is_word(self):
        assert ptr(I8).size == 4
        assert ptr(array(I32, 100)).size == 4

    def test_structural_equality(self):
        assert ptr(I8) == PointerType(I8)
        assert ptr(I8) != ptr(I32)

    def test_str(self):
        assert str(ptr(I32)) == "i32*"


class TestArrayType:
    def test_size(self):
        assert array(I8, 10).size == 10
        assert array(I32, 10).size == 40

    def test_stride_pads_to_alignment(self):
        pair = StructType("pair", [("a", I32), ("b", I8)])
        arr = ArrayType(pair, 4)
        assert arr.stride == 8  # 5 bytes padded to 4-alignment
        assert arr.size == 32

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            ArrayType(I8, -1)

    def test_alignment_follows_element(self):
        assert array(I8, 7).alignment == 1
        assert array(I32, 7).alignment == 4


class TestStructType:
    def test_natural_alignment_offsets(self):
        s = StructType("s", [("a", I8), ("b", I32), ("c", I8)])
        assert s.offset_of(0) == 0
        assert s.offset_of(1) == 4
        assert s.offset_of(2) == 8
        assert s.size == 12  # tail-padded to 4

    def test_field_lookup(self):
        s = StructType("s", [("x", I32), ("y", I8)])
        assert s.field_index("y") == 1
        assert s.field_type(0) == I32
        with pytest.raises(KeyError):
            s.field_index("z")

    def test_empty_struct(self):
        s = StructType("empty", [])
        assert s.size == 0
        assert s.alignment == 1

    def test_named_equality(self):
        a = StructType("s", [("x", I32)])
        b = StructType("s", [("y", I8)])
        assert a == b  # named structs compare by name


class TestFunctionType:
    def test_key_includes_variadic(self):
        a = FunctionType(VOID, [I32])
        b = FunctionType(VOID, [I32], variadic=True)
        assert a != b

    def test_str(self):
        f = FunctionType(I32, [I8, ptr(I32)])
        assert str(f) == "i32 (i8, i32*)"

    def test_size_zero(self):
        assert FunctionType(VOID, []).size == 0


class TestVoid:
    def test_void(self):
        assert VOID.size == 0
        assert isinstance(VOID, VoidType)
        assert not VOID.is_scalar

"""Mini-FAT filesystem authored in IR ("ff.c" + "diskio.c").

Stands in for ChaN's FatFs, which the paper's FatFs-uSD / Animation /
LCD-uSD applications use on their SD cards.  The on-disk format is a
simplified FAT (one superblock, one FAT sector of 32-bit entries, one
root-directory sector of 32-byte entries, then data blocks), but the
software structure mirrors the original: a mounted-filesystem object
(``FATFS``), a file object (``FIL``), a sector cache, and a disk-I/O
layer over the SD HAL.  ``MyFile`` and ``SDFatFs`` style globals shared
across several operations are exactly what drives FatFs-uSD's high
average-accessible-globals number in Table 1.

Host-side :func:`make_disk_image` builds images the IR code mounts.
"""

from __future__ import annotations

import struct
from types import SimpleNamespace

from ...ir import (
    I8,
    I32,
    Module,
    VOID,
    array,
    define,
    ptr,
)

MAGIC = 0x4D464154  # "MFAT" little-endian-ish tag
BLOCK_SIZE = 512
FAT_ENTRIES = 128
DIR_ENTRIES = 16
DIR_ENTRY_SIZE = 32
NAME_LEN = 8
FAT_END = 0xFFFFFFFF

SUPERBLOCK = 0
FAT_BLOCK = 1
ROOT_BLOCK = 2
DATA_START = 3

MODE_READ = 0
MODE_CREATE_FLAG = 1


def add_fatfs(module: Module, sd: SimpleNamespace,
              libc: SimpleNamespace) -> SimpleNamespace:
    """Register the filesystem into ``module`` on top of the SD HAL."""
    p8 = ptr(I8)
    p32 = ptr(I32)

    fatfs_t = module.struct("FATFS", [
        ("fat_start", I32), ("root_start", I32),
        ("data_start", I32), ("mounted", I32),
    ])
    fil_t = module.struct("FIL", [
        ("start", I32), ("size", I32), ("pos", I32),
        ("cur", I32), ("dirent", I32),
    ])

    fat_cache = module.add_global("fat_cache", array(I32, FAT_ENTRIES),
                                  source_file="ff.c")
    sector_buf = module.add_global("sector_buf", array(I8, BLOCK_SIZE),
                                   source_file="ff.c")
    dir_buf = module.add_global("dir_buf", array(I8, BLOCK_SIZE),
                                source_file="ff.c")

    # -- diskio.c: media-agnostic I/O through a driver ops table --------
    # FatFs dispatches through a registered driver, so every sector
    # access is an indirect call (the icalls of Table 3).
    from ...ir import FunctionType

    diskio_fn_t = FunctionType(VOID, [I32, p8])
    diskio_t = module.struct("diskio_ops", [
        ("read_fn", p8), ("write_fn", p8),
    ])
    diskio_ops = module.add_global("diskio_ops", diskio_t,
                                   source_file="diskio.c")

    sd_disk_read, b = define(module, "sd_disk_read", VOID, [I32, p8],
                             source_file="sd_diskio.c")
    block, buffer = sd_disk_read.params
    b.call(sd.read_block, block, b.bitcast(buffer, p32))
    b.ret_void()

    sd_disk_write, b = define(module, "sd_disk_write", VOID, [I32, p8],
                              source_file="sd_diskio.c")
    block, buffer = sd_disk_write.params
    b.call(sd.write_block, block, b.bitcast(buffer, p32))
    b.ret_void()

    disk_register, b = define(module, "disk_io_register", VOID, [],
                              source_file="diskio.c")
    b.store(b.inttoptr(b.ptrtoint(sd_disk_read), I8),
            b.gep(diskio_ops, 0, 0))
    b.store(b.inttoptr(b.ptrtoint(sd_disk_write), I8),
            b.gep(diskio_ops, 0, 1))
    b.ret_void()

    disk_read, b = define(module, "disk_read", VOID, [I32, p8],
                          source_file="diskio.c")
    block, buffer = disk_read.params
    handler = b.load(b.gep(diskio_ops, 0, 0))
    b.icall(b.ptrtoint(handler), diskio_fn_t, block, buffer)
    b.ret_void()

    disk_write, b = define(module, "disk_write", VOID, [I32, p8],
                           source_file="diskio.c")
    block, buffer = disk_write.params
    handler = b.load(b.gep(diskio_ops, 0, 1))
    b.icall(b.ptrtoint(handler), diskio_fn_t, block, buffer)
    b.ret_void()

    # -- ff.c: FAT management ---------------------------------------------
    fat_load, b = define(module, "fat_load", VOID, [], source_file="ff.c")
    b.call(disk_read, FAT_BLOCK, b.bitcast(b.gep(fat_cache, 0, 0), p8))
    b.ret_void()

    fat_flush, b = define(module, "fat_flush", VOID, [], source_file="ff.c")
    b.call(disk_write, FAT_BLOCK, b.bitcast(b.gep(fat_cache, 0, 0), p8))
    b.ret_void()

    fat_get, b = define(module, "fat_get", I32, [I32], source_file="ff.c")
    (index,) = fat_get.params
    b.ret(b.load(b.gep(fat_cache, 0, index)))

    fat_set, b = define(module, "fat_set", VOID, [I32, I32],
                        source_file="ff.c")
    index, value = fat_set.params
    b.store(value, b.gep(fat_cache, 0, index))
    b.ret_void()

    fat_alloc, b = define(module, "fat_alloc", I32, [], source_file="ff.c")
    with b.for_range(1, FAT_ENTRIES) as load_i:
        i = load_i()
        entry = b.call(fat_get, i)
        free = b.icmp("eq", entry, 0)
        with b.if_then(free):
            b.call(fat_set, i, FAT_END)
            b.ret(i)
    b.ret(0)  # exhausted

    # -- ff.c: directory ------------------------------------------------------
    dir_load, b = define(module, "dir_load", VOID, [], source_file="ff.c")
    b.call(disk_read, ROOT_BLOCK, b.gep(dir_buf, 0, 0))
    b.ret_void()

    dir_flush, b = define(module, "dir_flush", VOID, [], source_file="ff.c")
    b.call(disk_write, ROOT_BLOCK, b.gep(dir_buf, 0, 0))
    b.ret_void()

    dir_word, b = define(module, "dir_word", I32, [I32, I32],
                         source_file="ff.c")
    entry, word = dir_word.params
    base = b.bitcast(b.gep(dir_buf, 0, 0), p32)
    slot = b.add(b.mul(entry, DIR_ENTRY_SIZE // 4), word)
    b.ret(b.load(b.gep(base, slot)))

    dir_set_word, b = define(module, "dir_set_word", VOID, [I32, I32, I32],
                             source_file="ff.c")
    entry, word, value = dir_set_word.params
    base = b.bitcast(b.gep(dir_buf, 0, 0), p32)
    slot = b.add(b.mul(entry, DIR_ENTRY_SIZE // 4), word)
    b.store(value, b.gep(base, slot))
    b.ret_void()

    dir_find, b = define(module, "dir_find", I32, [p8], source_file="ff.c")
    (name,) = dir_find.params
    with b.for_range(0, DIR_ENTRIES) as load_i:
        i = load_i()
        used = b.call(dir_word, i, 5)  # word 5: in-use flag
        is_used = b.icmp("ne", used, 0)
        with b.if_then(is_used):
            entry_name = b.gep(dir_buf, 0, b.mul(i, DIR_ENTRY_SIZE))
            diff = b.call(libc.memcmp, entry_name, name, NAME_LEN)
            same = b.icmp("eq", diff, 0)
            with b.if_then(same):
                b.ret(i)
    b.ret(0xFFFFFFFF)

    # -- ff.c: the public API -----------------------------------------------
    f_mount, b = define(module, "f_mount", I32, [ptr(fatfs_t)],
                        source_file="ff.c")
    (fs,) = f_mount.params
    b.call(disk_register)
    b.call(disk_read, SUPERBLOCK, b.gep(sector_buf, 0, 0))
    words = b.bitcast(b.gep(sector_buf, 0, 0), p32)
    magic = b.load(b.gep(words, 0))
    valid = b.icmp("eq", magic, MAGIC)
    with b.if_else(valid) as otherwise:
        b.store(b.load(b.gep(words, 1)), b.gep(fs, 0, 0))  # fat_start
        b.store(b.load(b.gep(words, 2)), b.gep(fs, 0, 1))  # root_start
        b.store(b.load(b.gep(words, 3)), b.gep(fs, 0, 2))  # data_start
        b.store(1, b.gep(fs, 0, 3))
        b.call(fat_load)
        b.ret(0)
        otherwise()
        b.store(0, b.gep(fs, 0, 3))
    b.ret(1)

    f_open, b = define(module, "f_open", I32,
                       [ptr(fil_t), ptr(fatfs_t), p8, I32],
                       source_file="ff.c")
    fil, fs, name, mode = f_open.params
    mounted = b.load(b.gep(fs, 0, 3))
    with b.if_then(b.icmp("eq", mounted, 0)):
        b.ret(1)
    b.call(dir_load)
    found = b.call(dir_find, name, name="entry")
    exists = b.icmp("ne", found, 0xFFFFFFFF)
    with b.if_else(exists) as otherwise:
        b.store(b.call(dir_word, found, 2), b.gep(fil, 0, 0))  # start
        b.store(b.call(dir_word, found, 3), b.gep(fil, 0, 1))  # size
        b.store(0, b.gep(fil, 0, 2))                            # pos
        b.store(b.load(b.gep(fil, 0, 0)), b.gep(fil, 0, 3))     # cur
        b.store(found, b.gep(fil, 0, 4))
        b.ret(0)
        otherwise()
        want_create = b.icmp("ne", mode, MODE_READ)
        with b.if_then(want_create):
            # Claim the first unused directory entry and one data block.
            with b.for_range(0, DIR_ENTRIES) as load_i:
                i = load_i()
                used = b.call(dir_word, i, 5)
                is_free = b.icmp("eq", used, 0)
                with b.if_then(is_free):
                    first = b.call(fat_alloc, name="first")
                    entry_name = b.gep(dir_buf, 0, b.mul(i, DIR_ENTRY_SIZE))
                    b.call(libc.memcpy, entry_name, name, NAME_LEN)
                    b.call(dir_set_word, i, 2, first)
                    b.call(dir_set_word, i, 3, 0)
                    b.call(dir_set_word, i, 5, 1)
                    b.call(dir_flush)
                    b.store(first, b.gep(fil, 0, 0))
                    b.store(0, b.gep(fil, 0, 1))
                    b.store(0, b.gep(fil, 0, 2))
                    b.store(first, b.gep(fil, 0, 3))
                    b.store(i, b.gep(fil, 0, 4))
                    b.ret(0)
    b.ret(1)

    # Advance fil.cur to the chain block containing fil.pos (sequential).
    advance_chain, b = define(module, "advance_chain", VOID, [ptr(fil_t)],
                              source_file="ff.c")
    (fil,) = advance_chain.params
    pos = b.load(b.gep(fil, 0, 2))
    at_boundary = b.icmp("eq", b.urem(pos, BLOCK_SIZE), 0)
    nonzero = b.icmp("ne", pos, 0)
    with b.if_then(b.and_(at_boundary, nonzero)):
        cur = b.load(b.gep(fil, 0, 3))
        nxt = b.call(fat_get, cur)
        b.store(nxt, b.gep(fil, 0, 3))
    b.ret_void()

    f_read, b = define(module, "f_read", I32,
                       [ptr(fil_t), ptr(fatfs_t), p8, I32],
                       source_file="ff.c")
    fil, fs, out, count = f_read.params
    done = b.alloca(I32, name="done")
    offset = b.alloca(I32, name="offset")
    b.store(0, done)
    with b.while_loop(lambda: b.and_(
        b.icmp("ult", b.load(done), count),
        b.icmp("ult", b.load(b.gep(fil, 0, 2)), b.load(b.gep(fil, 0, 1))),
    )):
        # Fetch the sector containing the current position once, then
        # drain bytes from the cache until the sector (or request) ends.
        b.call(advance_chain, fil)
        data_start = b.load(b.gep(fs, 0, 2))
        cur = b.load(b.gep(fil, 0, 3))
        b.call(disk_read, b.add(data_start, cur), b.gep(sector_buf, 0, 0))
        b.store(b.urem(b.load(b.gep(fil, 0, 2)), BLOCK_SIZE), offset)
        with b.while_loop(lambda: b.and_(
            b.and_(
                b.icmp("ult", b.load(done), count),
                b.icmp("ult", b.load(b.gep(fil, 0, 2)),
                       b.load(b.gep(fil, 0, 1))),
            ),
            b.icmp("ult", b.load(offset), BLOCK_SIZE),
        )):
            byte = b.load(b.gep(sector_buf, 0, b.load(offset)))
            b.store(byte, b.gep(out, b.load(done)))
            b.store(b.add(b.load(b.gep(fil, 0, 2)), 1), b.gep(fil, 0, 2))
            b.store(b.add(b.load(done), 1), done)
            b.store(b.add(b.load(offset), 1), offset)
    b.ret(b.load(done))

    f_write, b = define(module, "f_write", I32,
                        [ptr(fil_t), ptr(fatfs_t), p8, I32],
                        source_file="ff.c")
    fil, fs, data, count = f_write.params
    done = b.alloca(I32, name="done")
    b.store(0, done)
    with b.while_loop(lambda: b.icmp("ult", b.load(done), count)):
        pos = b.load(b.gep(fil, 0, 2))
        offset = b.urem(pos, BLOCK_SIZE)
        at_boundary = b.icmp("eq", offset, 0)
        nonzero = b.icmp("ne", pos, 0)
        with b.if_then(b.and_(at_boundary, nonzero)):
            # Crossed into a new block: extend the chain.
            cur = b.load(b.gep(fil, 0, 3))
            fresh = b.call(fat_alloc)
            b.call(fat_set, cur, fresh)
            b.store(fresh, b.gep(fil, 0, 3))
        byte = b.load(b.gep(data, b.load(done)))
        b.store(byte, b.gep(sector_buf, 0, offset))
        new_pos = b.add(pos, 1)
        b.store(new_pos, b.gep(fil, 0, 2))
        b.store(b.add(b.load(done), 1), done)
        flushed = b.icmp("eq", b.urem(new_pos, BLOCK_SIZE), 0)
        finished = b.icmp("uge", b.add(b.load(done), 0), count)
        with b.if_then(b.or_(flushed, finished)):
            data_start = b.load(b.gep(fs, 0, 2))
            cur = b.load(b.gep(fil, 0, 3))
            b.call(disk_write, b.add(data_start, cur),
                   b.gep(sector_buf, 0, 0))
    size = b.load(b.gep(fil, 0, 1))
    pos = b.load(b.gep(fil, 0, 2))
    grown = b.icmp("ugt", pos, size)
    with b.if_then(grown):
        b.store(pos, b.gep(fil, 0, 1))
    b.ret(b.load(done))

    f_close, b = define(module, "f_close", I32, [ptr(fil_t), ptr(fatfs_t)],
                        source_file="ff.c")
    fil, fs = f_close.params
    b.call(dir_load)
    entry = b.load(b.gep(fil, 0, 4))
    b.call(dir_set_word, entry, 3, b.load(b.gep(fil, 0, 1)))
    b.call(dir_flush)
    b.call(fat_flush)
    # Rewind so a reopened FIL object starts clean.
    b.store(0, b.gep(fil, 0, 2))
    b.store(b.load(b.gep(fil, 0, 0)), b.gep(fil, 0, 3))
    b.ret(0)

    return SimpleNamespace(
        fatfs_t=fatfs_t, fil_t=fil_t,
        disk_read=disk_read, disk_write=disk_write,
        disk_register=disk_register,
        sd_disk_read=sd_disk_read, sd_disk_write=sd_disk_write,
        fat_load=fat_load, fat_flush=fat_flush, fat_get=fat_get,
        fat_set=fat_set, fat_alloc=fat_alloc,
        dir_load=dir_load, dir_flush=dir_flush, dir_find=dir_find,
        f_mount=f_mount, f_open=f_open, f_read=f_read,
        f_write=f_write, f_close=f_close,
        globals=SimpleNamespace(fat_cache=fat_cache, sector_buf=sector_buf,
                                dir_buf=dir_buf),
    )


# -- host-side image builder ------------------------------------------------


def make_disk_image(files: dict[bytes, bytes]) -> bytes:
    """Build a disk image the IR filesystem can mount.

    ``files`` maps 8-byte names (padded with spaces) to contents.
    """
    if len(files) > DIR_ENTRIES:
        raise ValueError("too many files for the root directory")
    fat = [0] * FAT_ENTRIES
    root = bytearray(BLOCK_SIZE)
    data: dict[int, bytes] = {}
    next_block = 1  # FAT entry 0 is reserved (used as the free marker)

    for slot, (name, content) in enumerate(files.items()):
        name = name.ljust(NAME_LEN)[:NAME_LEN]
        blocks = max(1, (len(content) + BLOCK_SIZE - 1) // BLOCK_SIZE)
        chain = list(range(next_block, next_block + blocks))
        next_block += blocks
        if next_block > FAT_ENTRIES:
            raise ValueError("disk image full")
        for i, block in enumerate(chain):
            fat[block] = chain[i + 1] if i + 1 < len(chain) else FAT_END
            data[block] = content[i * BLOCK_SIZE:(i + 1) * BLOCK_SIZE]
        # Entry words: name (0-1), start (2), size (3), reserved (4),
        # in-use flag (5), padding (6-7) — must match dir_word indices.
        entry = struct.pack(
            f"<{NAME_LEN}sIIII8x", name, chain[0], len(content), 0, 1
        )
        root[slot * DIR_ENTRY_SIZE:(slot + 1) * DIR_ENTRY_SIZE] = entry

    super_block = struct.pack("<IIIII", MAGIC, FAT_BLOCK, ROOT_BLOCK,
                              DATA_START, FAT_ENTRIES)
    image = bytearray((DATA_START + next_block) * BLOCK_SIZE)
    image[0:len(super_block)] = super_block
    fat_blob = struct.pack(f"<{FAT_ENTRIES}I", *fat)
    image[FAT_BLOCK * BLOCK_SIZE:FAT_BLOCK * BLOCK_SIZE + len(fat_blob)] = fat_blob
    image[ROOT_BLOCK * BLOCK_SIZE:ROOT_BLOCK * BLOCK_SIZE + BLOCK_SIZE] = root
    for block, content in data.items():
        start = (DATA_START + block) * BLOCK_SIZE
        image[start:start + len(content)] = content
    return bytes(image)

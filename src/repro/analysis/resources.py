"""Per-function resource-dependency analysis (§4.2).

For every function the compiler determines:

* **direct globals** — globals reached by a forward slice from the
  global's address to a load/store in the same function (LLVM def-use);
* **indirect globals** — globals the Andersen analysis says a
  dereferenced pointer may target (local targets filtered out);
* **peripherals** — general and core peripherals reached by backward-
  slicing load/store addresses to constants and matching them against
  the board's datasheet map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hw.board import Board, Peripheral
from ..ir.function import Function
from ..ir.instructions import Load, Store
from ..ir.module import Module
from ..ir.values import GlobalVariable
from .andersen import AndersenResult, run_andersen
from .slicing import ConstantAddressResolver, forward_derived


@dataclass
class FunctionResources:
    """Resources one function may touch."""

    globals_direct: set[GlobalVariable] = field(default_factory=set)
    globals_indirect: set[GlobalVariable] = field(default_factory=set)
    peripherals: set[Peripheral] = field(default_factory=set)
    core_peripherals: set[Peripheral] = field(default_factory=set)

    @property
    def globals_all(self) -> set[GlobalVariable]:
        return self.globals_direct | self.globals_indirect

    def merge(self, other: "FunctionResources") -> None:
        self.globals_direct |= other.globals_direct
        self.globals_indirect |= other.globals_indirect
        self.peripherals |= other.peripherals
        self.core_peripherals |= other.core_peripherals


class ResourceAnalysis:
    """Computes and caches :class:`FunctionResources` for a module."""

    def __init__(self, module: Module, board: Board,
                 andersen: Optional[AndersenResult] = None):
        self.module = module
        self.board = board
        self.andersen = andersen if andersen is not None else run_andersen(module)
        self.resolver = ConstantAddressResolver(module)
        self._cache: dict[Function, FunctionResources] = {}

    def function_resources(self, func: Function) -> FunctionResources:
        if func not in self._cache:
            self._cache[func] = self._analyze(func)
        return self._cache[func]

    def _analyze(self, func: Function) -> FunctionResources:
        res = FunctionResources()
        if func.is_declaration:
            return res

        # Direct global accesses: forward slice from each global used in
        # this function to the loads/stores through derived pointers.
        used_globals = {
            op for inst in func.iter_instructions() for op in inst.operands
            if isinstance(op, GlobalVariable)
        }
        if used_globals:
            derived = forward_derived(func, used_globals)
            roots_of: dict = {}
            for inst in func.iter_instructions():
                pointer = None
                if isinstance(inst, Load):
                    pointer = inst.pointer
                elif isinstance(inst, Store):
                    pointer = inst.pointer
                if pointer is None:
                    continue
                if isinstance(pointer, GlobalVariable):
                    res.globals_direct.add(pointer)
                elif pointer in derived:
                    res.globals_direct |= self._trace_roots(pointer, used_globals)

        # Indirect accesses + peripheral identification per load/store.
        for inst in func.iter_instructions():
            pointer = None
            if isinstance(inst, Load):
                pointer = inst.pointer
            elif isinstance(inst, Store):
                pointer = inst.pointer
            if pointer is None:
                continue
            if not isinstance(pointer, GlobalVariable):
                res.globals_indirect |= self.andersen.pointed_globals(pointer)
            for address in self.resolver.resolve(pointer):
                peripheral = self.board.peripheral_at(address)
                if peripheral is None:
                    continue
                if peripheral.core:
                    res.core_peripherals.add(peripheral)
                else:
                    res.peripherals.add(peripheral)
        return res

    @staticmethod
    def _trace_roots(value, roots: set[GlobalVariable]) -> set[GlobalVariable]:
        """Which root globals a derived pointer chain started from."""
        from ..ir.instructions import BinOp, Cast, GEP, Select

        found: set[GlobalVariable] = set()
        stack = [value]
        seen = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, GlobalVariable):
                found.add(node)
            elif isinstance(node, (GEP, Cast, Select, BinOp)):
                stack.extend(node.operands)
        return found & roots

"""CoreMark-style benchmark (§6): list processing, matrix
manipulation, and a state machine, with CRC-checked results.

Mirrors the EEMBC CoreMark structure ("core_list_join.c",
"core_matrix.c", "core_state.c", "core_util.c") at reduced size.  This
is the one CPU-bound workload in the suite — no device waits — so it
exposes the monitor's switch cost directly (the paper's CoreMark bar
is the tallest runtime-overhead bar for the same reason).

Nine operations as in Table 1.
"""

from __future__ import annotations

from ..hw.board import stm32f4_discovery
from ..hw.machine import Machine
from ..hw.peripherals import GPIO, RCC
from ..ir import I8, I32, Module, VOID, array, define, ptr
from ..partition.operations import OperationSpec
from .base import Application
from .hal.crypto import add_crypto
from .hal.libc import add_libc
from .hal.system import add_system_hal

LIST_NODES = 32
MATRIX_N = 8
STATE_INPUT = b"0123abc 45x6 789def 0xA5 42 "
DEFAULT_ITERATIONS = 100


def build(iterations: int = DEFAULT_ITERATIONS) -> Application:
    board = stm32f4_discovery()
    module = Module("coremark")

    libc = add_libc(module)
    crypto = add_crypto(module)
    system = add_system_hal(module, board)

    node_t = module.struct("list_node", [("value", I32), ("next", I32)])
    list_pool = module.add_global("list_pool", array(node_t, LIST_NODES),
                                  source_file="core_list_join.c")
    list_head = module.add_global("list_head", I32, 0,
                                  source_file="core_list_join.c")
    matrix_a = module.add_global("matrix_a", array(I32, MATRIX_N * MATRIX_N),
                                 source_file="core_matrix.c")
    matrix_b = module.add_global("matrix_b", array(I32, MATRIX_N * MATRIX_N),
                                 source_file="core_matrix.c")
    matrix_c = module.add_global("matrix_c", array(I32, MATRIX_N * MATRIX_N),
                                 source_file="core_matrix.c")
    state_input = module.add_global("state_input",
                                    array(I8, len(STATE_INPUT)),
                                    list(STATE_INPUT), is_const=True,
                                    source_file="core_state.c")
    state_counts = module.add_global("state_counts", array(I32, 4),
                                     source_file="core_state.c")
    crc_acc = module.add_global("crc_acc", I32, 0xFFFFFFFF,
                                source_file="core_util.c")
    results = module.add_global("results", array(I32, 4),
                                source_file="core_main.c")
    # CoreMark dispatches its result check through a function pointer
    # (the benchmark's single icall in Table 3).
    verify_fn = module.add_global("verify_fn", ptr(I8),
                                  source_file="core_main.c")

    # -- core_list_join.c ------------------------------------------------
    list_init, b = define(module, "core_list_init", VOID, [I32],
                          source_file="core_list_join.c")
    (seed,) = list_init.params
    with b.for_range(0, LIST_NODES) as load_i:
        i = load_i()
        value = b.xor(b.mul(i, 1103515245 & 0xFFFF), seed)
        b.store(value, b.gep(list_pool, 0, i, 0))
        is_last = b.icmp("eq", i, LIST_NODES - 1)
        nxt = b.select(is_last, 0xFFFFFFFF, b.add(i, 1))
        b.store(nxt, b.gep(list_pool, 0, i, 1))
    b.store(0, list_head)
    b.ret_void()

    list_reverse, b = define(module, "core_list_reverse", VOID, [],
                             source_file="core_list_join.c")
    prev = b.alloca(I32, name="prev")
    cur = b.alloca(I32, name="cur")
    b.store(0xFFFFFFFF, prev)
    b.store(b.load(list_head), cur)
    with b.while_loop(lambda: b.icmp("ne", b.load(cur), 0xFFFFFFFF)):
        node = b.load(cur)
        nxt = b.load(b.gep(list_pool, 0, node, 1))
        b.store(b.load(prev), b.gep(list_pool, 0, node, 1))
        b.store(node, prev)
        b.store(nxt, cur)
    b.store(b.load(prev), list_head)
    b.ret_void()

    list_sum, b = define(module, "core_list_sum", I32, [],
                         source_file="core_list_join.c")
    total = b.alloca(I32, name="total")
    cur = b.alloca(I32, name="cur")
    b.store(0, total)
    b.store(b.load(list_head), cur)
    with b.while_loop(lambda: b.icmp("ne", b.load(cur), 0xFFFFFFFF)):
        node = b.load(cur)
        b.store(b.add(b.load(total), b.load(b.gep(list_pool, 0, node, 0))),
                total)
        b.store(b.load(b.gep(list_pool, 0, node, 1)), cur)
    b.ret(b.load(total))

    list_find, b = define(module, "core_list_find", I32, [I32],
                          source_file="core_list_join.c")
    (needle,) = list_find.params
    cur = b.alloca(I32, name="cur")
    b.store(b.load(list_head), cur)
    with b.while_loop(lambda: b.icmp("ne", b.load(cur), 0xFFFFFFFF)):
        node = b.load(cur)
        value = b.load(b.gep(list_pool, 0, node, 0))
        with b.if_then(b.icmp("eq", value, needle)):
            b.ret(node)
        b.store(b.load(b.gep(list_pool, 0, node, 1)), cur)
    b.ret(0xFFFFFFFF)

    # -- core_matrix.c --------------------------------------------------------
    matrix_init, b = define(module, "core_matrix_init", VOID, [I32],
                            source_file="core_matrix.c")
    (seed,) = matrix_init.params
    with b.for_range(0, MATRIX_N * MATRIX_N) as load_i:
        i = load_i()
        b.store(b.and_(b.add(b.mul(i, 7), seed), 0xFF),
                b.gep(matrix_a, 0, i))
        b.store(b.and_(b.add(b.mul(i, 13), seed), 0xFF),
                b.gep(matrix_b, 0, i))
        b.store(0, b.gep(matrix_c, 0, i))
    b.ret_void()

    matrix_mul, b = define(module, "core_matrix_mul", VOID, [],
                           source_file="core_matrix.c")
    with b.for_range(0, MATRIX_N) as load_row:
        row = load_row()
        with b.for_range(0, MATRIX_N) as load_col:
            col = load_col()
            acc = b.alloca(I32, name="acc")
            b.store(0, acc)
            with b.for_range(0, MATRIX_N) as load_k:
                k = load_k()
                a = b.load(b.gep(matrix_a, 0, b.add(b.mul(row, MATRIX_N), k)))
                bb = b.load(b.gep(matrix_b, 0, b.add(b.mul(k, MATRIX_N), col)))
                b.store(b.add(b.load(acc), b.mul(a, bb)), acc)
            b.store(b.load(acc),
                    b.gep(matrix_c, 0, b.add(b.mul(row, MATRIX_N), col)))
    b.ret_void()

    matrix_sum, b = define(module, "core_matrix_sum", I32, [],
                           source_file="core_matrix.c")
    total = b.alloca(I32, name="total")
    b.store(0, total)
    with b.for_range(0, MATRIX_N * MATRIX_N) as load_i:
        b.store(b.add(b.load(total), b.load(b.gep(matrix_c, 0, load_i()))),
                total)
    b.ret(b.load(total))

    # -- core_state.c ------------------------------------------------------------
    # Classify each input byte: digit / alpha / space / other.
    state_classify, b = define(module, "core_state_classify", I32, [I32],
                               source_file="core_state.c")
    (byte,) = state_classify.params
    is_digit = b.and_(b.icmp("uge", byte, ord("0")),
                      b.icmp("ule", byte, ord("9")))
    with b.if_then(is_digit):
        b.ret(0)
    is_alpha = b.and_(b.icmp("uge", byte, ord("a")),
                      b.icmp("ule", byte, ord("z")))
    with b.if_then(is_alpha):
        b.ret(1)
    with b.if_then(b.icmp("eq", byte, ord(" "))):
        b.ret(2)
    b.ret(3)

    state_machine, b = define(module, "core_state_machine", VOID, [],
                              source_file="core_state.c")
    with b.for_range(0, len(STATE_INPUT)) as load_i:
        i = load_i()
        byte = b.zext(b.load(b.gep(state_input, 0, i)))
        kind = b.call(state_classify, byte)
        slot = b.gep(state_counts, 0, kind)
        b.store(b.add(b.load(slot), 1), slot)
    b.ret_void()

    # -- core_util.c ----------------------------------------------------------------
    crc_fold, b = define(module, "core_crc_fold", VOID, [I32],
                         source_file="core_util.c")
    (value,) = crc_fold.params
    acc = b.load(crc_acc)
    step1 = b.call(crypto.crc32_update, acc, b.and_(value, 0xFF))
    step2 = b.call(crypto.crc32_update, step1, b.and_(b.lshr(value, 8), 0xFF))
    step3 = b.call(crypto.crc32_update, step2, b.and_(b.lshr(value, 16), 0xFF))
    step4 = b.call(crypto.crc32_update, step3, b.and_(b.lshr(value, 24), 0xFF))
    b.store(step4, crc_acc)
    b.ret_void()

    core_verify, b = define(module, "core_verify_results", I32, [],
                            source_file="core_main.c")
    # The list checksum must be non-zero after a completed run.
    list_sum_ok = b.icmp("ne", b.load(b.gep(results, 0, 1)), 0)
    b.ret(b.select(list_sum_ok, 0, 1))

    # -- the eight task entries ----------------------------------------------------
    init_task, b = define(module, "Init_Task", VOID, [],
                          source_file="core_main.c")
    b.call(list_init, 0x55)
    b.call(matrix_init, 3)
    with b.for_range(0, 4) as load_i:
        b.store(0, b.gep(state_counts, 0, load_i()))
    b.store(0xFFFFFFFF, crc_acc)
    b.store(b.inttoptr(b.ptrtoint(core_verify), I8), verify_fn)
    b.ret_void()

    # Like real CoreMark, each kernel iterates *inside* its task: the
    # operation switch happens once per kernel, not once per iteration,
    # and the compute dominates the run.
    bench_list_task, b = define(module, "Bench_List_Task", VOID, [I32],
                                source_file="core_main.c")
    (reps,) = bench_list_task.params
    with b.for_range(0, reps):
        b.call(list_reverse)
        b.call(list_reverse)
    b.call(list_reverse)  # odd total: the list ends up reversed
    found = b.call(list_find, 0x55)  # node 0's value (i=0: 0 ^ seed)
    b.store(found, b.gep(results, 0, 0))
    b.ret_void()

    list_verify_task, b = define(module, "List_Verify_Task", VOID, [],
                                 source_file="core_main.c")
    b.call(list_reverse)  # restore original order
    b.store(b.call(list_sum), b.gep(results, 0, 1))
    b.ret_void()

    bench_matrix_task, b = define(module, "Bench_Matrix_Task", VOID, [I32],
                                  source_file="core_main.c")
    (reps,) = bench_matrix_task.params
    with b.for_range(0, reps):
        b.call(matrix_mul)
    b.ret_void()

    matrix_verify_task, b = define(module, "Matrix_Verify_Task", VOID, [],
                                   source_file="core_main.c")
    b.store(b.call(matrix_sum), b.gep(results, 0, 2))
    b.ret_void()

    bench_state_task, b = define(module, "Bench_State_Task", VOID, [I32],
                                 source_file="core_main.c")
    (reps,) = bench_state_task.params
    with b.for_range(0, reps):
        b.call(state_machine)
    b.ret_void()

    crc_task, b = define(module, "Crc_Task", VOID, [],
                         source_file="core_util.c")
    with b.for_range(0, 3) as load_i:
        b.call(crc_fold, b.load(b.gep(results, 0, load_i())))
    with b.for_range(0, 4) as load_i:
        b.call(crc_fold, b.load(b.gep(state_counts, 0, load_i())))
    b.ret_void()

    report_task, b = define(module, "Report_Task", I32, [],
                            source_file="core_main.c")
    from ..ir import FunctionType

    checker = b.load(verify_fn)
    failures = b.icall(b.ptrtoint(checker), FunctionType(I32, []))
    b.ret(b.add(b.load(crc_acc), failures))  # failures == 0 on success

    main, b = define(module, "main", I32, [], source_file="core_main.c")
    b.call(system.system_clock_config)
    b.call(init_task)
    b.call(bench_list_task, iterations)
    b.call(list_verify_task)
    b.call(bench_matrix_task, iterations)
    b.call(matrix_verify_task)
    b.call(bench_state_task, iterations)
    b.call(crc_task)
    b.halt(b.call(report_task))

    specs = [
        OperationSpec("Init_Task"),
        OperationSpec("Bench_List_Task"),
        OperationSpec("List_Verify_Task"),
        OperationSpec("Bench_Matrix_Task"),
        OperationSpec("Matrix_Verify_Task"),
        OperationSpec("Bench_State_Task"),
        OperationSpec("Crc_Task"),
        OperationSpec("Report_Task"),
    ]

    def setup(machine: Machine) -> None:
        machine.attach_device("RCC", RCC())
        machine.attach_device("GPIOA", GPIO())

    def check(machine: Machine, halt_code: int) -> None:
        assert halt_code == expected_crc(iterations), (
            f"CoreMark CRC mismatch: 0x{halt_code:08X}"
        )

    return Application(
        name="CoreMark",
        module=module,
        board=board,
        specs=specs,
        setup=setup,
        check=check,
        max_instructions=300_000_000,
        description="CoreMark-style list/matrix/state kernels, CRC-checked.",
    )


# -- host-side oracle ----------------------------------------------------------


def _crc32_update(crc: int, byte: int) -> int:
    crc = (crc ^ byte) & 0xFFFFFFFF
    for _ in range(8):
        crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
    return crc


def expected_crc(iterations: int = DEFAULT_ITERATIONS) -> int:
    """Python mirror of the firmware's CRC-folded results."""
    values = [0] * LIST_NODES
    for i in range(LIST_NODES):
        values[i] = (i * (1103515245 & 0xFFFF)) ^ 0x55
    found = values.index(0x55)

    a = [((i * 7 + 3) & 0xFF) for i in range(MATRIX_N * MATRIX_N)]
    b = [((i * 13 + 3) & 0xFF) for i in range(MATRIX_N * MATRIX_N)]
    c_sum = 0
    for row in range(MATRIX_N):
        for col in range(MATRIX_N):
            acc = sum(
                a[row * MATRIX_N + k] * b[k * MATRIX_N + col]
                for k in range(MATRIX_N)
            ) & 0xFFFFFFFF
            c_sum = (c_sum + acc) & 0xFFFFFFFF

    counts = [0, 0, 0, 0]
    for ch in STATE_INPUT:
        if ord("0") <= ch <= ord("9"):
            counts[0] += 1
        elif ord("a") <= ch <= ord("z"):
            counts[1] += 1
        elif ch == ord(" "):
            counts[2] += 1
        else:
            counts[3] += 1
    counts = [c * iterations for c in counts]  # one sweep per iteration

    results = [found, sum(values) & 0xFFFFFFFF, c_sum]
    crc = 0xFFFFFFFF
    # Only the final iteration's CRC survives (Init_Task resets it).
    for value in results + counts:
        for shift in (0, 8, 16, 24):
            crc = _crc32_update(crc, (value >> shift) & 0xFF)
    return crc

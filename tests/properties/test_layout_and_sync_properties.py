"""Property-based tests on link-time invariants and data sync.

Random firmwares — random global sizes, random sharing patterns across
a random number of tasks — are partitioned and linked; the resulting
OPEC image must always satisfy the layout invariants of DESIGN.md, and
a run must always produce the same result as the vanilla build.
"""

from hypothesis import given, settings, strategies as st

import repro.ir as ir
from repro import build_opec, build_vanilla, run_image
from repro.hw import stm32f4_discovery
from repro.ir import I32, VOID, array
from repro.partition import OperationSpec


@st.composite
def firmware(draw):
    """A random module: N tasks, M globals, random access matrix."""
    num_tasks = draw(st.integers(min_value=1, max_value=5))
    num_globals = draw(st.integers(min_value=1, max_value=8))
    sizes = [draw(st.sampled_from([4, 8, 16, 64, 256]))
             for _ in range(num_globals)]
    # access[t] = set of globals task t increments.
    access = [
        draw(st.sets(st.integers(0, num_globals - 1), max_size=num_globals))
        for _ in range(num_tasks)
    ]

    module = ir.Module("random_fw")
    gvars = []
    for i, size in enumerate(sizes):
        gvars.append(module.add_global(f"g{i}", array(ir.I8, size)))

    tasks = []
    for t, touched in enumerate(access):
        func, b = ir.define(module, f"task{t}", VOID, [],
                            source_file=f"t{t}.c")
        for gi in sorted(touched):
            slot = b.gep(gvars[gi], 0, 0)
            b.store(b.trunc(b.add(b.zext(b.load(slot)), 1)), slot)
        b.ret_void()
        tasks.append(func)

    _m, b = ir.define(module, "main", I32, [], source_file="main.c")
    total_calls = 0
    for func in tasks:
        b.call(func)
        total_calls += 1
    # Sum first bytes of all globals as the observable result.
    acc = b.alloca(I32)
    b.store(0, acc)
    for gvar in gvars:
        byte = b.zext(b.load(b.gep(gvar, 0, 0)))
        b.store(b.add(b.load(acc), byte), acc)
    b.halt(b.load(acc))
    specs = [OperationSpec(f.name) for f in tasks]
    return module, specs


@given(firmware())
@settings(max_examples=40, deadline=None)
def test_layout_invariants_hold_for_random_firmware(fw):
    module, specs = fw
    board = stm32f4_discovery()
    artifacts = build_opec(module, board, specs)
    image = artifacts.image

    # 1. No two sections overlap.
    ordered = sorted(image.sections, key=lambda s: s.base)
    for a, b in zip(ordered, ordered[1:]):
        assert a.end <= b.base, f"{a.name} overlaps {b.name}"

    # 2. Every shadow lies inside its operation's section.
    for (op_index, gvar), address in image.shadow_addresses.items():
        section = image.op_layouts[op_index].section
        assert section.base <= address
        assert address + gvar.size <= section.end

    # 3. Distinct shadows never overlap.
    spans = sorted(
        (addr, addr + gvar.size)
        for (_op, gvar), addr in image.shadow_addresses.items()
    )
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2

    # 4. The data-zone region covers every operation section and never
    #    reaches down over the relocation table.
    zone_end = image.zone_start + image.zone_size
    for layout in image.op_layouts.values():
        assert image.zone_start <= layout.section.base
        assert layout.section.end <= zone_end
    assert image.zone_start >= image.section("reloc").end

    # 5. Section MPU templates are legal by construction (validated in
    #    MPURegion.__post_init__ when instantiated).
    for layout in image.op_layouts.values():
        for template in layout.templates:
            template.instantiate()


@given(firmware())
@settings(max_examples=25, deadline=None)
def test_opec_run_equals_vanilla_run(fw):
    module, specs = fw
    board = stm32f4_discovery()
    vanilla = run_image(build_vanilla(module, board))
    artifacts = build_opec(module, board, specs)
    opec = run_image(artifacts.image)
    assert opec.halt_code == vanilla.halt_code


@given(firmware())
@settings(max_examples=25, deadline=None)
def test_shadow_classification_is_consistent(fw):
    module, specs = fw
    board = stm32f4_discovery()
    artifacts = build_opec(module, board, specs)
    policy = artifacts.policy
    for gvar, placement in policy.placements.items():
        accessors = policy.accessors_of(gvar)
        if placement.is_external:
            assert len(accessors) >= 2
            # Every accessor has exactly one shadow.
            for op in accessors:
                assert (op.index, gvar) in artifacts.image.shadow_addresses
        elif placement.is_internal:
            assert len(accessors) == 1
            assert gvar in policy.internal_vars(accessors[0])

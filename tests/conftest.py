"""Shared fixtures and mini-firmware builders for the test suite."""

from __future__ import annotations

import os

import pytest

# Tests always run the downscaled workload profiles.
os.environ.setdefault("REPRO_PROFILE", "quick")

import repro.ir as ir
from repro.hw import Machine, stm32f4_discovery
from repro.partition import OperationSpec


@pytest.fixture(scope="session", autouse=True)
def session_cache_dir(tmp_path_factory):
    """Point the artifact cache at a session-scoped directory.

    Every test in the session shares one store — expensive app builds
    and runs are paid for once — while the repository's ``.repro-cache``
    stays untouched.  An externally provided ``REPRO_CACHE`` (CI's
    persisted directory, or ``off``) takes precedence.
    """
    if "REPRO_CACHE" not in os.environ:
        os.environ["REPRO_CACHE"] = str(
            tmp_path_factory.mktemp("repro-cache"))
    yield os.environ["REPRO_CACHE"]


@pytest.fixture
def no_artifact_store(monkeypatch):
    """Disable the persistent store for tests that assert cold-compile
    counters — the closure cache would otherwise satisfy them warmly
    from a bundle some earlier test (or CI run) saved."""
    monkeypatch.setenv("REPRO_CACHE", "off")


def build_mini_module(*, shared_value: int = 7) -> ir.Module:
    """Two tasks sharing a counter; task_a owns a secret, task_b a blob.

    The canonical test firmware: main calls task_a, task_b, task_a and
    halts with the final counter value (3 * shared_value * ... see
    body).  Used across partition/image/runtime tests.
    """
    module = ir.Module("mini")
    counter = module.add_global("counter", ir.I32, 0)
    secret = module.add_global("secret", ir.I32, shared_value)
    module.add_global("blob", ir.array(ir.I32, 8))

    task_a, b = ir.define(module, "task_a", ir.VOID, [], source_file="a.c")
    value = b.load(counter)
    bump = b.load(secret)
    b.store(b.add(value, bump), counter)
    b.ret_void()

    task_b, b = ir.define(module, "task_b", ir.VOID, [], source_file="b.c")
    value = b.load(counter)
    slot = b.gep(module.get_global("blob"), 0, 0)
    b.store(value, slot)
    b.ret_void()

    main, b = ir.define(module, "main", ir.I32, [], source_file="main.c")
    b.call(task_a)
    b.call(task_b)
    b.call(task_a)
    b.halt(b.load(counter))
    return module


MINI_SPECS = [OperationSpec("task_a"), OperationSpec("task_b")]
MINI_HALT_CODE = 14  # counter after two task_a increments of 7


@pytest.fixture
def mini_module() -> ir.Module:
    return build_mini_module()


@pytest.fixture
def board():
    return stm32f4_discovery()


@pytest.fixture
def machine(board) -> Machine:
    return Machine(board)


@pytest.fixture
def builder():
    """A fresh function + IRBuilder in a throwaway module."""
    module = ir.Module("t")
    func, b = ir.define(module, "f", ir.I32, [])
    return module, func, b

"""Memory layout primitives and the baseline (vanilla) image.

An :class:`Image` is what the interpreter executes: the module plus
concrete addresses for every function and global, the stack/heap
bounds, and section bookkeeping for the flash/SRAM overhead metrics
(Figure 9).  The vanilla image is the paper's baseline build — no
monitor, no MPU, everything privileged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hw.board import Board
from ..ir.function import Function
from ..ir.module import Module
from ..ir.values import GlobalVariable

VECTOR_TABLE_SIZE = 0x400
DEFAULT_STACK_SIZE = 16 * 1024
DEFAULT_HEAP_SIZE = 8 * 1024
_WORD_ALIGN = 4


def align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def function_code_size(func: Function) -> int:
    """Flash bytes a function occupies: ~4 bytes per IR instruction."""
    return max(4, func.instruction_count() * 4)


@dataclass
class Section:
    """A named contiguous range in the final image."""

    name: str
    base: int
    size: int
    kind: str  # code | rodata | metadata | monitor | data | opdata |
    #            public | reloc | heap | stack

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class Image:
    """Base image: address assignment shared by all build flavours."""

    kind = "vanilla"

    def __init__(self, module: Module, board: Board,
                 stack_size: int = DEFAULT_STACK_SIZE,
                 heap_size: int = DEFAULT_HEAP_SIZE):
        self.module = module
        self.board = board
        self.stack_size = stack_size
        self.heap_size = heap_size
        self.sections: list[Section] = []
        self._function_addresses: dict[Function, int] = {}
        self._functions_by_address: dict[int, Function] = {}
        self._global_addresses: dict[GlobalVariable, int] = {}
        self.stack_top = 0
        self.stack_limit = 0
        self.heap_base = 0
        # Interrupt vector table: exception number -> handler function.
        self.irq_handlers: dict[int, Function] = {
            f.irq_number: f
            for f in module.iter_functions()
            if f.irq_number is not None and not f.is_declaration
        }

    # -- interpreter interface ------------------------------------------

    def function_address(self, func: Function) -> int:
        return self._function_addresses[func]

    def function_at(self, address: int) -> Optional[Function]:
        return self._functions_by_address.get(address)

    def global_address(self, gvar: GlobalVariable) -> int:
        return self._global_addresses[gvar]

    # -- layout helpers -------------------------------------------------

    def add_section(self, name: str, base: int, size: int, kind: str) -> Section:
        section = Section(name, base, size, kind)
        self.sections.append(section)
        return section

    def section(self, name: str) -> Section:
        for section in self.sections:
            if section.name == name:
                return section
        raise KeyError(f"no section named {name!r}")

    def _layout_code(self, cursor: int) -> int:
        """Place every defined function; returns the new flash cursor."""
        for func in self.module.defined_functions():
            address = align_up(cursor, _WORD_ALIGN)
            self._function_addresses[func] = address
            self._functions_by_address[address] = func
            cursor = address + function_code_size(func)
        return cursor

    def _layout_rodata(self, cursor: int) -> int:
        """Place const globals in flash; returns the new flash cursor."""
        for gvar in self.module.iter_globals():
            if not gvar.is_const:
                continue
            address = align_up(cursor, gvar.value_type.alignment)
            self._global_addresses[gvar] = address
            cursor = address + gvar.size
        return cursor

    def code_bytes(self) -> int:
        return sum(
            function_code_size(f) for f in self.module.defined_functions()
        )

    # -- overhead metrics (Figure 9 inputs) ---------------------------------

    def flash_used(self) -> int:
        return sum(s.size for s in self.sections
                   if s.base >= self.board.flash_base
                   and s.end <= self.board.flash_base + self.board.flash_size)

    def sram_used(self) -> int:
        return sum(s.size for s in self.sections
                   if s.base >= self.board.sram_base
                   and s.end <= self.board.sram_base + self.board.sram_size)

    def initialize_memory(self, machine) -> None:
        """Program flash and set globals' initial SRAM contents."""
        for gvar, address in self._global_addresses.items():
            blob = gvar.encode_initializer()
            if gvar.is_const:
                machine.program_flash(address, blob)
            else:
                machine.write_bytes(address, blob)


class VanillaImage(Image):
    """The unprotected baseline: one data blob, full-privilege."""

    kind = "vanilla"


def build_vanilla_image(module: Module, board: Board,
                        stack_size: int = DEFAULT_STACK_SIZE,
                        heap_size: int = DEFAULT_HEAP_SIZE) -> VanillaImage:
    image = VanillaImage(module, board, stack_size, heap_size)

    # Flash: vector table, code, read-only data.
    flash_cursor = board.flash_base
    image.add_section("vectors", flash_cursor, VECTOR_TABLE_SIZE, "code")
    flash_cursor += VECTOR_TABLE_SIZE
    code_start = flash_cursor
    flash_cursor = image._layout_code(flash_cursor)
    image.add_section("text", code_start, flash_cursor - code_start, "code")
    rodata_start = flash_cursor
    flash_cursor = image._layout_rodata(flash_cursor)
    if flash_cursor > rodata_start:
        image.add_section("rodata", rodata_start,
                          flash_cursor - rodata_start, "rodata")
    if flash_cursor > board.flash_base + board.flash_size:
        raise ValueError("image does not fit in flash")

    # SRAM: .data/.bss, heap, stack at the top.
    sram_cursor = board.sram_base
    data_start = sram_cursor
    for gvar in module.writable_globals():
        address = align_up(sram_cursor, max(gvar.value_type.alignment, 4))
        image._global_addresses[gvar] = address
        sram_cursor = address + align_up(gvar.size, _WORD_ALIGN)
    image.add_section("data", data_start, sram_cursor - data_start, "data")

    image.heap_base = align_up(sram_cursor, 8)
    image.add_section("heap", image.heap_base, heap_size, "heap")

    sram_end = board.sram_base + board.sram_size
    image.stack_top = sram_end
    image.stack_limit = sram_end - stack_size
    image.add_section("stack", image.stack_limit, stack_size, "stack")
    if image.heap_base + heap_size > image.stack_limit:
        raise ValueError("SRAM layout overflow: heap collides with stack")
    return image

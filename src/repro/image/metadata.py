"""Operation-metadata size model (§4.4).

The metadata the compiler emits per operation — MPU configurations,
stack information, sanitisation values, the peripheral allow-list, and
the variable-relocation-table descriptors — lives in flash and is the
dominant part of OPEC's flash overhead in the paper ("the operation
metadata … accounts for the most flash overhead").  The byte model
below mirrors the natural packed encodings of those records.
"""

from __future__ import annotations

from ..ir.instructions import Call
from ..ir.module import Module
from ..partition.policy import SystemPolicy

# Per-record encoded sizes (bytes).
MPU_DESCRIPTOR_BYTES = 8          # RBAR + RASR words
MPU_DESCRIPTORS_PER_OP = 8
STACK_INFO_ENTRY_BYTES = 8        # (param index, buffer size)
SANITIZE_ENTRY_BYTES = 12         # (var, lo, hi)
PERIPHERAL_ENTRY_BYTES = 8        # (window base, window size)
RELOC_DESCRIPTOR_BYTES = 8        # (slot, shadow address)
OPERATION_HEADER_BYTES = 16
MONITOR_BASE_CODE_BYTES = 8200    # the monitor's fixed code footprint
MONITOR_PER_OP_CODE_BYTES = 24    # switch-table glue per operation
MONITOR_DATA_BYTES = 512          # privileged monitor state in SRAM
SVC_STUB_BYTES = 8                # SVC before + after one call site


def monitor_code_size(num_operations: int) -> int:
    """Flash bytes of OPEC-Monitor (the privileged code of Table 1)."""
    return MONITOR_BASE_CODE_BYTES + MONITOR_PER_OP_CODE_BYTES * num_operations


def metadata_size(policy: SystemPolicy) -> int:
    """Flash bytes of all operation metadata."""
    total = 0
    for operation in policy.operations:
        externals = policy.external_vars(operation)
        sanitized = [g for g in externals if g.sanitize_range is not None]
        total += (
            OPERATION_HEADER_BYTES
            + MPU_DESCRIPTOR_BYTES * MPU_DESCRIPTORS_PER_OP
            + STACK_INFO_ENTRY_BYTES * len(operation.stack_info)
            + SANITIZE_ENTRY_BYTES * len(sanitized)
            + PERIPHERAL_ENTRY_BYTES * len(operation.windows)
            + RELOC_DESCRIPTOR_BYTES * len(externals)
        )
    return total


def instrumentation_size(module: Module, policy: SystemPolicy) -> int:
    """Flash bytes of the inserted SVC pairs (§4.4)."""
    entries = {op.entry for op in policy.operations if not op.is_default}
    sites = 0
    for func in module.iter_functions():
        for inst in func.iter_instructions():
            if isinstance(inst, Call) and inst.callee in entries:
                sites += 1
    return SVC_STUB_BYTES * sites

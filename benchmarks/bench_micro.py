"""Microbenchmarks and ablations for the design choices DESIGN.md
calls out.

* operation-switch latency — in simulated cycles (the quantity the
  monitor's costs model) and in host wall-clock;
* sync volume ablation — switch cost as a function of how many bytes of
  shared globals need synchronising;
* relocation-table indirection — per-access cost of external-global
  resolution;
* MPU arbitration throughput — the hot path of every load/store;
* interpreter throughput — instructions per second of the substrate.
"""

from __future__ import annotations

import pytest

import repro.ir as ir
from repro import build_opec, build_vanilla, run_image
from repro.hw import MPU, MPURegion, Machine, stm32f4_discovery
from repro.image import build_vanilla_image
from repro.interp import Interpreter
from repro.ir import I32, VOID, array
from repro.partition import OperationSpec


def _switch_module(shared_bytes: int, calls: int = 50):
    """main repeatedly enters a trivial op sharing `shared_bytes`."""
    module = ir.Module("switchbench")
    shared = module.add_global("shared", array(ir.I8, shared_bytes))
    task, b = ir.define(module, "task", VOID, [])
    slot = b.gep(shared, 0, 0)
    b.store(b.trunc(b.add(b.zext(b.load(slot)), 1)), slot)
    b.ret_void()
    _m, b = ir.define(module, "main", I32, [])
    first = b.gep(shared, 0, 0)
    b.store(b.trunc(b.zext(b.load(first))), first)  # main shares it too
    with b.for_range(0, calls):
        b.call(task)
    b.halt(b.zext(b.load(first)))
    return module


@pytest.mark.parametrize("shared_bytes", [4, 64, 1024])
def test_switch_cost_scales_with_sync_volume(benchmark, shared_bytes):
    """Ablation: the shadowing design pays per synchronised byte."""
    board = stm32f4_discovery()
    module = _switch_module(shared_bytes)
    artifacts = build_opec(module, board, [OperationSpec("task")])

    def run():
        return run_image(artifacts.image)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    vanilla = run_image(build_vanilla(_switch_module(shared_bytes), board))
    extra = result.cycles - vanilla.cycles
    switches = result.hooks.switch_count
    per_switch = extra / switches
    benchmark.extra_info["cycles_per_switch"] = round(per_switch, 1)
    benchmark.extra_info["switches"] = switches
    assert per_switch > 0


def test_mpu_arbitration_throughput(benchmark):
    """The per-access MPU check: the hot path of the whole simulator."""
    mpu = MPU(enabled=True, privdefena=True)
    mpu.set_region(MPURegion(number=0, base=0x0, size=0x40000000,
                             priv="RW", unpriv="RO"))
    mpu.set_region(MPURegion(number=3, base=0x20000000, size=0x4000,
                             priv="RW", unpriv="RW",
                             subregion_disable=0xF0))
    mpu.set_region(MPURegion(number=4, base=0x20008000, size=0x400,
                             priv="RW", unpriv="RW"))

    def arbitrate():
        allowed = 0
        for address in range(0x20000000, 0x20000000 + 64 * 32, 32):
            if mpu.allows(address, 4, False, True):
                allowed += 1
        return allowed

    assert benchmark(arbitrate) > 0


def test_interpreter_throughput(benchmark):
    """Substrate speed: interpreted instructions per benchmark round."""
    module = ir.Module("throughput")
    _m, b = ir.define(module, "main", I32, [])
    acc = b.alloca(I32)
    b.store(0, acc)
    with b.for_range(0, 20_000) as load_i:
        b.store(b.add(b.load(acc), load_i()), acc)
    b.halt(b.load(acc))
    board = stm32f4_discovery()
    image = build_vanilla_image(module, board)

    def run():
        machine = Machine(board)
        image.initialize_memory(machine)
        interp = Interpreter(machine, image)
        interp.run()
        return interp.instructions_executed

    executed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["instructions"] = executed
    assert executed > 100_000


def test_reloc_indirection_ablation(benchmark):
    """External-global access cost: reloc-slot load is hoisted per
    operation, so a tight loop pays it once, not per iteration."""
    board = stm32f4_discovery()
    module = _switch_module(4, calls=1)
    artifacts = build_opec(module, board, [OperationSpec("task")])

    def run():
        return run_image(artifacts.image)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # One enter/exit pair: exactly two switches worth of SVC traffic.
    assert result.machine.stats.svc_calls == 2

"""Physical memory map: flash, SRAM, and memory-mapped I/O.

The map mirrors Figure 2 of the paper: code in flash, data/stack in
SRAM, peripherals at fixed bus addresses, core peripherals on the
Private Peripheral Bus.  Accesses that hit no mapped range raise
:class:`HardFault` (the real bus would raise a fault too); MPU and
privilege checks happen one layer up, in :class:`repro.hw.machine.Machine`.
"""

from __future__ import annotations

from typing import Optional, Protocol

from .exceptions import HardFault


class MMIODevice(Protocol):
    """Interface of a memory-mapped device model."""

    def mmio_read(self, offset: int, size: int) -> int: ...

    def mmio_write(self, offset: int, size: int, value: int) -> None: ...


class Region:
    """A contiguous mapped address range."""

    def __init__(self, name: str, base: int, size: int):
        self.name = name
        self.base = base
        self.size = size

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def read(self, address: int, size: int) -> int:
        raise NotImplementedError

    def write(self, address: int, size: int, value: int) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} 0x{self.base:08X}+0x{self.size:X}>"


class RamRegion(Region):
    """Plain byte-addressable RAM."""

    def __init__(self, name: str, base: int, size: int):
        super().__init__(name, base, size)
        self.data = bytearray(size)

    def read(self, address: int, size: int) -> int:
        off = address - self.base
        return int.from_bytes(self.data[off : off + size], "little")

    def write(self, address: int, size: int, value: int) -> None:
        off = address - self.base
        self.data[off : off + size] = (value & ((1 << (size * 8)) - 1)).to_bytes(
            size, "little"
        )

    def read_bytes(self, address: int, length: int) -> bytes:
        if address < self.base or address + length > self.end:
            # Slicing past the bytearray end would silently return
            # short data; bulk reads must stay within the region.
            raise HardFault(
                f"bulk read of 0x{length:X} bytes at 0x{address:08X} "
                f"leaves region {self.name}"
            )
        off = address - self.base
        return bytes(self.data[off : off + length])

    def write_bytes(self, address: int, blob: bytes) -> None:
        if address < self.base or address + len(blob) > self.end:
            # Slice assignment past the end would *grow* the backing
            # bytearray — memory the bus does not have.
            raise HardFault(
                f"bulk write of 0x{len(blob):X} bytes at 0x{address:08X} "
                f"leaves region {self.name}"
            )
        off = address - self.base
        self.data[off : off + len(blob)] = blob


class FlashRegion(RamRegion):
    """Flash: writable only through the programmer (image load)."""

    def write(self, address: int, size: int, value: int) -> None:
        raise HardFault(f"write to flash at 0x{address:08X}")

    def program(self, address: int, blob: bytes) -> None:
        """Burn bytes into flash (used by the image loader only)."""
        off = address - self.base
        self.data[off : off + len(blob)] = blob


class MMIORegion(Region):
    """A device's register window."""

    def __init__(self, name: str, base: int, size: int, device: MMIODevice):
        super().__init__(name, base, size)
        self.device = device

    def read(self, address: int, size: int) -> int:
        return self.device.mmio_read(address - self.base, size)

    def write(self, address: int, size: int, value: int) -> None:
        self.device.mmio_write(address - self.base, size, value)


class MemoryMap:
    """The full physical address space of the simulated SoC."""

    def __init__(self):
        self.regions: list[Region] = []
        self._cache: Optional[Region] = None

    def map(self, region: Region) -> Region:
        for existing in self.regions:
            if region.base < existing.end and existing.base < region.end:
                raise ValueError(
                    f"region {region.name} overlaps {existing.name}"
                )
        self.regions.append(region)
        self.regions.sort(key=lambda r: r.base)
        self._cache = None
        return region

    def find(self, address: int) -> Optional[Region]:
        cached = self._cache
        if cached is not None and cached.contains(address):
            return cached
        for region in self.regions:
            if region.contains(address):
                self._cache = region
                return region
        return None

    def region_for(self, address: int) -> Region:
        region = self.find(address)
        if region is None:
            raise HardFault(f"access to unmapped address 0x{address:08X}")
        return region

    def read(self, address: int, size: int) -> int:
        # Last-region fast path: the common SRAM access skips the scan.
        region = self._cache
        if (region is None or address < region.base
                or address + size > region.end):
            region = self.region_for(address)
            if address + size > region.end:
                raise HardFault(
                    f"access crosses region end at 0x{address:08X}"
                )
        return region.read(address, size)

    def write(self, address: int, size: int, value: int) -> None:
        region = self._cache
        if (region is None or address < region.base
                or address + size > region.end):
            region = self.region_for(address)
            if address + size > region.end:
                raise HardFault(
                    f"access crosses region end at 0x{address:08X}"
                )
        region.write(address, size, value)

    def read_bytes(self, address: int, length: int) -> bytes:
        """Bulk read (DMA / monitor use); must stay within one region."""
        region = self.region_for(address)
        if address + length > region.end:
            raise HardFault(
                f"bulk read crosses region end at 0x{address:08X}"
                f"+0x{length:X}"
            )
        if isinstance(region, RamRegion):
            return region.read_bytes(address, length)
        return bytes(
            region.read(address + i, 1) for i in range(length)
        )

    def write_bytes(self, address: int, blob: bytes) -> None:
        """Bulk write (DMA / monitor use); must stay within one region."""
        region = self.region_for(address)
        if isinstance(region, FlashRegion):
            raise HardFault(f"bulk write to flash at 0x{address:08X}")
        if address + len(blob) > region.end:
            raise HardFault(
                f"bulk write crosses region end at 0x{address:08X}"
                f"+0x{len(blob):X}"
            )
        if isinstance(region, RamRegion):
            region.write_bytes(address, blob)
            return
        for i, byte in enumerate(blob):
            region.write(address + i, 1, byte)

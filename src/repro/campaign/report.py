"""Corpus-level campaign report (text + TSV rows).

Everything rendered here derives from simulated outcomes and static
analysis only — no host wall-clock anywhere — so the report joins the
byte-identity sweep of ``tools/check_determinism.py`` unmasked.
"""

from __future__ import annotations

from .engine import CampaignResult, FirmwareReport, LaneOutcome

_OUTCOMES = ("blocked", "succeeded", "survived", "error")


def _cells(result: CampaignResult):
    for report in result.reports:
        for (kind, flavour, backend), outcome in sorted(
                report.cells.items()):
            yield report, kind, flavour, backend, outcome


def _containment(result: CampaignResult) -> dict[tuple[str, str],
                                                 dict[str, int]]:
    table: dict[tuple[str, str], dict[str, int]] = {}
    for flavour in result.config.flavours:
        for backend in result.config.backends:
            table[(flavour, backend)] = {name: 0 for name in _OUTCOMES}
    for _report, _kind, flavour, backend, outcome in _cells(result):
        table[(flavour, backend)][outcome.outcome] += 1
    return table


def _by_attack(result: CampaignResult) -> dict[tuple[str, str],
                                               tuple[int, int]]:
    """(attack, flavour) → (blocked, total) over firmwares+backends."""
    table: dict[tuple[str, str], list[int]] = {
        (kind, flavour): [0, 0]
        for kind in result.config.attacks
        for flavour in result.config.flavours
    }
    for _report, kind, flavour, _backend, outcome in _cells(result):
        cell = table[(kind, flavour)]
        cell[1] += 1
        if outcome.outcome == "blocked":
            cell[0] += 1
    return {key: (blocked, total)
            for key, (blocked, total) in table.items()}


def _pt_pool(result: CampaignResult) -> dict[str, list[float]]:
    pool: dict[str, list[float]] = {}
    for report in result.reports:
        for flavour, values in report.pt.items():
            pool.setdefault(flavour, []).extend(values)
    return pool


def _switch_stats(result: CampaignResult) -> dict[tuple[str, str],
                                                  tuple[int, int]]:
    """(flavour, backend) → (switches, switch_cycles) over baselines."""
    stats: dict[tuple[str, str], list[int]] = {}
    for report in result.reports:
        for (flavour, backend), outcome in report.baseline.items():
            cell = stats.setdefault((flavour, backend), [0, 0])
            cell[0] += outcome.switches
            cell[1] += outcome.switch_cycles
    return {key: (switches, cycles)
            for key, (switches, cycles) in stats.items()}


def _blocked_total(result: CampaignResult,
                   flavour: str) -> tuple[int, int]:
    blocked = total = 0
    for _report, _kind, cell_flavour, _backend, outcome in _cells(result):
        if cell_flavour != flavour:
            continue
        total += 1
        if outcome.outcome == "blocked":
            blocked += 1
    return blocked, total


def render_report(result: CampaignResult) -> str:
    config = result.config
    lanes = (len(result.reports) * len(config.flavours)
             * len(config.backends) * (len(config.attacks) + 1))
    lines = [
        f"== Differential security campaign — seed {config.seed} ==",
        f"corpus: {len(result.reports)} firmwares x "
        f"{len(config.attacks)} attacks "
        f"({', '.join(config.attacks)}) x "
        f"{len(config.flavours)} flavours x "
        f"{len(config.backends)} backends = {lanes} lanes",
        "",
        "-- containment (injected-attack lanes) --",
        f"{'flavour':9s} {'backend':8s} {'blocked':>7s} {'succeeded':>9s} "
        f"{'survived':>8s} {'error':>5s} {'containment':>11s}",
    ]
    containment = _containment(result)
    for flavour in config.flavours:
        for backend in config.backends:
            counts = containment[(flavour, backend)]
            total = sum(counts.values())
            rate = counts["blocked"] / total * 100.0 if total else 0.0
            lines.append(
                f"{flavour:9s} {backend:8s} {counts['blocked']:7d} "
                f"{counts['succeeded']:9d} {counts['survived']:8d} "
                f"{counts['error']:5d} {rate:10.1f}%")

    lines += ["", "-- containment by attack kind "
                  "(all firmwares, all backends) --",
              f"{'attack':11s} " + " ".join(
                  f"{flavour:>14s}" for flavour in config.flavours)]
    by_attack = _by_attack(result)
    for kind in config.attacks:
        cells = []
        for flavour in config.flavours:
            blocked, total = by_attack[(kind, flavour)]
            cells.append(f"{f'{blocked}/{total} blocked':>14s}")
        lines.append(f"{kind:11s} " + " ".join(cells))

    lines += ["", "-- partition-time over-privilege "
                  "(Eq. 1, per protection domain) --",
              f"{'flavour':9s} {'domains':>7s} {'mean':>8s} {'max':>8s}"]
    pool = _pt_pool(result)
    for flavour in config.flavours:
        values = pool.get(flavour, [])
        mean = sum(values) / len(values) if values else 0.0
        peak = max(values) if values else 0.0
        lines.append(f"{flavour:9s} {len(values):7d} "
                     f"{mean:8.4f} {peak:8.4f}")

    lines += ["", "-- operation-switch cost "
                  "(attack-free baseline lanes) --",
              f"{'flavour':9s} {'backend':8s} {'switches':>8s} "
              f"{'switch_cycles':>13s} {'avg':>8s}"]
    switch_stats = _switch_stats(result)
    for flavour in config.flavours:
        for backend in config.backends:
            switches, cycles = switch_stats.get((flavour, backend), (0, 0))
            avg = cycles / switches if switches else 0.0
            lines.append(f"{flavour:9s} {backend:8s} {switches:8d} "
                         f"{cycles:13d} {avg:8.2f}")

    lines += ["", "-- verdicts --"]
    opec_blocked, opec_total = _blocked_total(result, "opec")
    vanilla_blocked, vanilla_total = _blocked_total(result, "vanilla")
    if "opec" in config.flavours and "vanilla" in config.flavours:
        ok = opec_blocked > vanilla_blocked
        lines.append(
            f"containment: OPEC blocked {opec_blocked}/{opec_total}, "
            f"vanilla blocked {vanilla_blocked}/{vanilla_total} -> "
            f"{'PASS' if ok else 'FAIL'} (OPEC strictly more)")
    if "opec" in config.flavours and "aces" in config.flavours:
        opec_pt = pool.get("opec", [])
        aces_pt = pool.get("aces", [])
        opec_mean = sum(opec_pt) / len(opec_pt) if opec_pt else 0.0
        aces_mean = sum(aces_pt) / len(aces_pt) if aces_pt else 0.0
        ok = opec_mean < aces_mean
        lines.append(
            f"over-privilege: OPEC mean PT {opec_mean:.4f}, "
            f"ACES mean PT {aces_mean:.4f} -> "
            f"{'PASS' if ok else 'FAIL'} (OPEC strictly lower)")
    return "\n".join(lines)


def report_rows(result: CampaignResult) -> list[list[object]]:
    """Flat TSV rows: every lane outcome plus the PT distributions."""
    rows: list[list[object]] = [[
        "record", "firmware", "attack", "flavour", "backend", "outcome",
        "detail", "halt_code", "cycles", "switches", "switch_cycles",
    ]]

    def lane_row(record: str, report: FirmwareReport, kind: str,
                 flavour: str, backend: str,
                 outcome: LaneOutcome) -> list[object]:
        return [record, report.name, kind, flavour, backend,
                outcome.outcome, outcome.detail or "-",
                outcome.halt_code, outcome.cycles, outcome.switches,
                outcome.switch_cycles]

    for report in result.reports:
        for flavour in result.config.flavours:
            for backend in result.config.backends:
                rows.append(lane_row(
                    "baseline", report, "-", flavour, backend,
                    report.baseline[(flavour, backend)]))
                for kind in result.config.attacks:
                    rows.append(lane_row(
                        "cell", report, kind, flavour, backend,
                        report.cells[(kind, flavour, backend)]))
        for flavour in result.config.flavours:
            for domain, value in enumerate(report.pt.get(flavour, [])):
                rows.append(["pt", report.name, str(domain), flavour,
                             "-", f"{value:.4f}", "-", -1, 0, 0, 0])
    return rows


__all__ = ["render_report", "report_rows"]

"""Camera: button-triggered photo capture saved to a USB disk (§6).

"Uses the camera on the STM32479I-EVAL board to take a photo after the
user presses the button.  The picture is saved to a USB flash disk."

Nine operations as in Table 1: sensor init, DCMI capture, a simple
image-processing pass, USB save, LED feedback, button polling, plus
the init tasks and the default ``main``.
"""

from __future__ import annotations

from ..hw.board import stm32479i_eval
from ..hw.machine import Machine
from ..hw.peripherals import DCMI, GPIO, RCC, RegisterFile, USBMassStorage
from ..ir import I8, I32, Module, VOID, array, define, ptr
from ..partition.operations import OperationSpec
from .base import Application
from .hal.camera import add_camera_hal
from .hal.libc import add_libc
from .hal.storage import add_usb_hal
from .hal.system import add_system_hal

FRAME_BYTES = 2048  # one QQVGA-ish synthetic frame
FRAME_WORDS = FRAME_BYTES // 4
BUTTON_PIN = 0  # PA0: the user button
LED_PIN = 6


def frame_bytes() -> bytes:
    """Host-side synthetic sensor frame."""
    return bytes((3 * i + 1) & 0xFF for i in range(FRAME_BYTES))


def processed_frame() -> bytes:
    """What the firmware's Process_Task should produce (bytes + 1)."""
    return bytes((b + 1) & 0xFF for b in frame_bytes())


def build() -> Application:
    board = stm32479i_eval()
    module = Module("camera")

    libc = add_libc(module)
    system = add_system_hal(module, board)
    cam = add_camera_hal(module, board)
    usb = add_usb_hal(module, board)
    p32 = ptr(I32)

    frame_buffer = module.add_global("frame_buffer", array(I32, FRAME_WORDS),
                                     source_file="main.c")
    photo_saved = module.add_global("photo_saved", I32, 0,
                                    source_file="main.c",
                                    sanitize_range=(0, 1))
    captures = module.add_global("captures", I32, 0, source_file="main.c")
    # The image-processing pass is registered as a callback, like the
    # HAL's frame-event callbacks (one of Camera's icalls in Table 3).
    frame_filter = module.add_global("frame_filter", ptr(I8),
                                     source_file="process.c")

    brighten, b = define(module, "brighten_pixels", VOID, [ptr(I8), I32],
                         source_file="process.c")
    pixels, count = brighten.params
    with b.for_range(0, count) as load_i:
        i = load_i()
        slot = b.gep(pixels, i)
        b.store(b.trunc(b.add(b.zext(b.load(slot)), 1)), slot)
    b.ret_void()

    sensor_init_task, b = define(module, "Sensor_Init_Task", VOID, [],
                                 source_file="sensor.c")
    b.call(system.rcc_enable_apb1, 1 << 21)  # I2C1
    b.call(cam.sensor_init)
    b.ret_void()

    dcmi_init_task, b = define(module, "Dcmi_Init_Task", VOID, [],
                               source_file="dcmi_task.c")
    b.call(system.rcc_enable_apb2, 1 << 0)
    b.store(b.inttoptr(b.ptrtoint(brighten), I8), frame_filter)
    b.ret_void()

    usb_init_task, b = define(module, "Usb_Init_Task", VOID, [],
                              source_file="usb_task.c")
    b.call(usb.init)
    b.ret_void()

    button_task, b = define(module, "Button_Task", VOID, [],
                            source_file="button.c")
    with b.while_loop(
        lambda: b.icmp("eq", b.call(system.gpio["GPIOA"].read, BUTTON_PIN), 0)
    ):
        pass
    b.ret_void()

    capture_task, b = define(module, "Capture_Task", VOID, [],
                             source_file="capture.c")
    b.call(cam.snapshot, b.gep(frame_buffer, 0, 0), FRAME_WORDS)
    b.store(b.add(b.load(captures), 1), captures)
    b.ret_void()

    # Brighten every byte by one — a stand-in for the demosaic pass,
    # dispatched through the registered frame callback.
    process_task, b = define(module, "Process_Task", VOID, [],
                             source_file="process.c")
    from ..ir import FunctionType, VOID as VOID_T

    bytes_view = b.bitcast(b.gep(frame_buffer, 0, 0), ptr(I8))
    handler = b.load(frame_filter)
    b.icall(b.ptrtoint(handler), FunctionType(VOID_T, [ptr(I8), I32]),
            bytes_view, FRAME_BYTES)
    b.ret_void()

    save_task, b = define(module, "Save_Task", VOID, [],
                          source_file="save.c")
    with b.for_range(0, FRAME_WORDS // 128) as load_blk:
        blk = load_blk()
        chunk = b.gep(frame_buffer, 0, b.mul(blk, 128))
        b.call(usb.write_block, blk, chunk)
    b.store(1, photo_saved)
    b.ret_void()

    led_task, b = define(module, "Led_Task", VOID, [],
                         source_file="led.c")
    b.call(system.gpio["GPIOD"].write, LED_PIN, b.load(photo_saved))
    b.ret_void()

    main, b = define(module, "main", I32, [], source_file="main.c")
    b.call(system.system_clock_config)
    b.call(system.rcc_enable_gpio, 0xF)
    b.call(system.gpio["GPIOA"].init, BUTTON_PIN, 0)  # input
    b.call(system.gpio["GPIOD"].init, LED_PIN, 1)     # output
    b.call(sensor_init_task)
    b.call(dcmi_init_task)
    b.call(usb_init_task)
    b.call(button_task)
    b.call(capture_task)
    b.call(process_task)
    b.call(save_task)
    b.call(led_task)
    b.halt(b.load(photo_saved))

    specs = [
        OperationSpec("Sensor_Init_Task"),
        OperationSpec("Dcmi_Init_Task"),
        OperationSpec("Usb_Init_Task"),
        OperationSpec("Button_Task"),
        OperationSpec("Capture_Task"),
        OperationSpec("Process_Task"),
        OperationSpec("Save_Task"),
        OperationSpec("Led_Task"),
    ]

    def setup(machine: Machine) -> None:
        machine.attach_device("RCC", RCC())
        machine.attach_device("I2C1", RegisterFile())
        gpio_a = GPIO()
        machine.attach_device("GPIOA", gpio_a)
        for port in ("GPIOB", "GPIOC", "GPIOD"):
            machine.attach_device(port, GPIO())
        dcmi = DCMI()
        dcmi.set_frame(frame_bytes())
        machine.attach_device("DCMI", dcmi)
        machine.attach_device("USB_OTG", USBMassStorage())
        gpio_a.set_input(BUTTON_PIN, True)  # the user presses the button

    def check(machine: Machine, halt_code: int) -> None:
        assert halt_code == 1, "photo was not saved"
        usb_dev = machine.device("USB_OTG")
        saved = b"".join(usb_dev.disk[i] for i in sorted(usb_dev.disk))
        assert saved == processed_frame(), "saved photo is corrupted"
        assert machine.device("DCMI").captures == 1
        assert machine.device("GPIOD").pin_is_high(LED_PIN)

    return Application(
        name="Camera",
        module=module,
        board=board,
        specs=specs,
        setup=setup,
        check=check,
        description="Button press -> DCMI capture -> USB flash disk.",
    )

"""Unit + integration tests for OPEC-Monitor enforcement."""

import pytest

import repro.ir as ir
from repro import build_opec, build_vanilla, run_image
from repro.hw import SecurityAbort, stm32f4_discovery
from repro.ir import I8, I32, VOID, array
from repro.partition import OperationSpec

from ..conftest import MINI_HALT_CODE, MINI_SPECS, build_mini_module


class TestEndToEnd:
    def test_opec_preserves_functional_behaviour(self, board):
        module = build_mini_module()
        vanilla = run_image(build_vanilla(module, board))
        module2 = build_mini_module()
        artifacts = build_opec(module2, board, MINI_SPECS)
        opec = run_image(artifacts.image)
        assert vanilla.halt_code == opec.halt_code == MINI_HALT_CODE

    def test_switch_count(self, board):
        artifacts = build_opec(build_mini_module(), board, MINI_SPECS)
        result = run_image(artifacts.image)
        assert result.hooks.switch_count == 3  # a, b, a

    def test_privilege_dropped_for_application(self, board):
        artifacts = build_opec(build_mini_module(), board, MINI_SPECS)
        result = run_image(artifacts.image)
        assert not result.machine.base_privilege
        assert result.machine.mpu.enabled


class TestIsolation:
    def _attack_module(self, target_address):
        module = build_mini_module()
        victim = module.get_function("task_b")
        b = ir.IRBuilder(victim, victim.blocks[0])
        # Rebuild task_b with an arbitrary write at a leaked address.
        module2 = ir.Module("attack")
        counter = module2.add_global("counter", ir.I32, 0)
        secret = module2.add_global("secret", ir.I32, 7)
        module2.add_global("blob", ir.array(ir.I32, 8))
        task_a, b = ir.define(module2, "task_a", VOID, [])
        b.store(b.add(b.load(counter), b.load(secret)), counter)
        b.ret_void()
        task_b, b = ir.define(module2, "task_b", VOID, [])
        b.store(b.load(counter),
                b.gep(module2.get_global("blob"), 0, 0))
        b.store(0xBAD, b.inttoptr(target_address, I32))
        b.ret_void()
        _m, b = ir.define(module2, "main", I32, [])
        b.call(task_a)
        b.call(task_b)
        b.halt(b.load(counter))
        return module2

    def test_cross_operation_write_blocked(self, board):
        probe = build_opec(self._attack_module(0), board, MINI_SPECS)
        secret = probe.module.get_global("secret")
        leaked = probe.image.global_address(secret)
        armed = build_opec(self._attack_module(leaked), board, MINI_SPECS)
        with pytest.raises(SecurityAbort, match="outside its policy"):
            run_image(armed.image)

    def test_same_attack_succeeds_on_vanilla(self, board):
        probe = build_vanilla(self._attack_module(0), board)
        secret = self._attack_module(0).get_global("secret")
        # Rebuild to find the address in the vanilla layout.
        module = self._attack_module(0)
        image = build_vanilla(module, board)
        leaked = image.global_address(image.module.get_global("secret"))
        armed = self._attack_module(leaked)
        result = run_image(build_vanilla(armed, board))
        assert result.halt_code == 7  # attack silently corrupted secret

    def test_write_to_reloc_table_blocked(self, board):
        probe = build_opec(self._attack_module(0), board, MINI_SPECS)
        counter = probe.module.get_global("counter")
        slot = probe.image.reloc_slots[counter]
        armed = build_opec(self._attack_module(slot), board, MINI_SPECS)
        with pytest.raises(SecurityAbort):
            run_image(armed.image)

    def test_write_to_public_original_blocked(self, board):
        probe = build_opec(self._attack_module(0), board, MINI_SPECS)
        counter = probe.module.get_global("counter")
        public = probe.image.public_addresses[counter]
        armed = build_opec(self._attack_module(public), board, MINI_SPECS)
        with pytest.raises(SecurityAbort):
            run_image(armed.image)


class TestSanitization:
    def _module(self, bad_value):
        module = ir.Module("san")
        state = module.add_global("state", I32, 0, sanitize_range=(0, 1))
        watcher, b = ir.define(module, "watcher", VOID, [])
        b.load(state)
        b.ret_void()
        setter, b = ir.define(module, "setter", VOID, [])
        b.store(bad_value, state)
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        b.call(setter)
        b.call(watcher)
        b.halt(b.load(state))
        return module

    def test_in_range_write_back_ok(self, board):
        artifacts = build_opec(self._module(1), board,
                               [OperationSpec("setter"),
                                OperationSpec("watcher")])
        assert run_image(artifacts.image).halt_code == 1

    def test_out_of_range_write_back_aborts(self, board):
        artifacts = build_opec(self._module(2), board,
                               [OperationSpec("setter"),
                                OperationSpec("watcher")])
        with pytest.raises(SecurityAbort, match="sanitisation failed"):
            run_image(artifacts.image)


class TestCorePeripheralEmulation:
    def _module(self, touch_systick_in):
        module = ir.Module("core")
        sink = module.add_global("sink", I32, 0)
        toucher, b = ir.define(module, touch_systick_in, VOID, [])
        b.store(0x3FF, b.mmio(0xE000E014))  # SysTick RVR
        b.store(b.load(b.mmio(0xE000E014)), sink)
        b.ret_void()
        other, b = ir.define(module, "other", VOID, [])
        b.store(b.add(b.load(sink), 0), sink)
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        b.call(module.get_function(touch_systick_in))
        b.call(other)
        b.halt(b.load(sink))
        return module

    def test_allowed_core_access_emulated(self, board):
        module = self._module("timer_task")
        artifacts = build_opec(module, board,
                               [OperationSpec("timer_task"),
                                OperationSpec("other")])
        result = run_image(artifacts.image)
        assert result.halt_code == 0x3FF
        assert result.machine.stats.emulated_core_accesses == 2
        # Application never ran privileged.
        assert not result.machine.base_privilege


class TestPeripheralVirtualization:
    def test_more_windows_than_regions_round_robin(self, board):
        """An operation touching five scattered peripherals only has
        three static windows; the rest fault in via virtualisation."""
        module = ir.Module("many")
        bases = [board.peripheral(n).base
                 for n in ("TIM2", "USART2", "SDIO", "RCC", "DMA1")]
        busy, b = ir.define(module, "busy_task", VOID, [])
        with b.for_range(0, 3):
            for base in bases:
                b.store(1, b.mmio(base))
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        b.call(busy)
        b.halt(0)
        artifacts = build_opec(module, board, [OperationSpec("busy_task")])
        op = artifacts.policy.operation_by_entry("busy_task")
        assert len(op.windows) == 5

        def setup(machine):
            from repro.hw.peripherals import RegisterFile

            for name in ("TIM2", "USART2", "SDIO", "RCC", "DMA1"):
                machine.attach_device(name, RegisterFile())

        result = run_image(artifacts.image, setup=setup)
        assert result.machine.stats.peripheral_region_switches > 0

    def test_unlisted_peripheral_access_aborts(self, board):
        module = ir.Module("deny")
        task, b = ir.define(module, "task", VOID, [])
        b.store(1, b.mmio(board.peripheral("TIM2").base))
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        b.call(task)
        b.halt(0)
        artifacts = build_opec(module, board, [OperationSpec("task")])
        # Strip the window to simulate an out-of-policy access.
        op = artifacts.policy.operation_by_entry("task")
        op.windows.clear()
        artifacts.image.layout_of(op).static_windows.clear()

        def setup(machine):
            from repro.hw.peripherals import RegisterFile

            machine.attach_device("TIM2", RegisterFile())

        with pytest.raises(SecurityAbort):
            run_image(artifacts.image, setup=setup)

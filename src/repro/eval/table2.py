"""Table 2: OPEC vs ACES on the five shared applications (§6.4).

Per (application × policy): runtime-overhead ratio RO(×), flash
overhead FO(%), SRAM overhead SO(%), and the privileged application
code percentage PAC(%).  Unlike the paper — which quotes ACES' numbers
from the ACES paper — every cell here is measured by actually building
and running the corresponding image on the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apps import ACES_APPS
from ..baselines.aces.compartments import ALL_STRATEGIES
from ..image.layout import build_vanilla_image
from .report import render_table
from .workloads import aces_artifacts, build_app, opec_artifacts, run_build


@dataclass
class Table2Row:
    app: str
    policy: str
    runtime_ratio: float
    flash_pct: float
    sram_pct: float
    privileged_app_pct: float


def _overheads(name: str, image, vanilla_image, run, vanilla_run,
               privileged_app_bytes: int) -> tuple[float, float, float, float]:
    app = build_app(name)
    ro = run.cycles / vanilla_run.cycles
    fo = 100.0 * (image.flash_used() - vanilla_image.flash_used()) \
        / app.board.flash_size
    so = 100.0 * (image.sram_used() - vanilla_image.sram_used()) \
        / app.board.sram_size
    pac = 100.0 * privileged_app_bytes / vanilla_image.code_bytes()
    return ro, fo, so, pac


def compute_rows(name: str,
                 backend: Optional[str] = None) -> list[Table2Row]:
    app = build_app(name)
    vanilla_image = build_vanilla_image(app.module, app.board)
    vanilla_run = run_build(name, "vanilla", backend=backend)
    rows = []

    opec = opec_artifacts(name)
    opec_run = run_build(name, "opec", backend=backend)
    ro, fo, so, pac = _overheads(
        name, opec.image, vanilla_image, opec_run, vanilla_run,
        privileged_app_bytes=0,  # OPEC never lifts application code
    )
    rows.append(Table2Row(name, "OPEC", ro, fo, so, pac))

    for strategy in ALL_STRATEGIES:
        artifacts = aces_artifacts(name, strategy)
        run = run_build(name, strategy, backend=backend)
        ro, fo, so, pac = _overheads(
            name, artifacts.image, vanilla_image, run, vanilla_run,
            privileged_app_bytes=artifacts.image.privileged_code_bytes(),
        )
        rows.append(Table2Row(name, strategy, ro, fo, so, pac))
    return rows


def compute_table(apps: tuple[str, ...] = ACES_APPS,
                  backend: Optional[str] = None) -> list[Table2Row]:
    rows = []
    for name in apps:
        rows.extend(compute_rows(name, backend=backend))
    return rows


def render(rows: list[Table2Row]) -> str:
    return render_table(
        ["Application", "Policy", "RO(X)", "FO(%)", "SO(%)", "PAC(%)"],
        [
            (r.app, r.policy, f"{r.runtime_ratio:.2f}",
             f"{r.flash_pct:.2f}", f"{r.sram_pct:.2f}",
             f"{r.privileged_app_pct:.2f}")
            for r in rows
        ],
        title="Table 2: OPEC vs ACES (runtime/flash/SRAM overhead, "
              "privileged application code)",
    )


def main() -> None:
    print(render(compute_table()))


if __name__ == "__main__":
    main()

"""IR instructions.

The instruction set is the minimal subset needed to express real
firmware the way clang emits it at -O0: locals are ``alloca`` slots,
every variable access is an explicit ``load``/``store``, address
arithmetic is ``gep``, and control flow is ``br``/``jump``/``ret``.

Two instructions exist specifically for OPEC:

* :class:`SVC` — the supervisor call the instrumentation pass inserts
  before/after operation entry call sites (§4.4); it traps into the
  monitor.
* :class:`Halt` — stops the machine (end of firmware / profiling stop).
"""

from __future__ import annotations

from typing import Optional, Sequence

from .types import (
    ArrayType,
    FunctionType,
    PointerType,
    StructType,
    Type,
    I32,
    VOID,
)
from .values import Constant, Value

BINARY_OPS = ("add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
              "and", "or", "xor", "shl", "lshr", "ashr")
ICMP_PREDICATES = ("eq", "ne", "ult", "ule", "ugt", "uge",
                   "slt", "sle", "sgt", "sge")
CAST_KINDS = ("zext", "sext", "trunc", "ptrtoint", "inttoptr", "bitcast")


class Instruction(Value):
    """Base class: an operation inside a basic block, also a value."""

    opcode = "?"

    def __init__(self, type_: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type_, name)
        self.operands = list(operands)
        self.parent = None  # set when appended to a BasicBlock

    @property
    def is_terminator(self) -> bool:
        return False

    @property
    def function(self):
        return self.parent.parent if self.parent is not None else None

    def __repr__(self) -> str:
        ops = ", ".join(op.short() for op in self.operands)
        return f"<{self.opcode} {ops}>"


class Alloca(Instruction):
    """Reserve ``count`` objects of ``allocated_type`` on the stack."""

    opcode = "alloca"

    def __init__(self, allocated_type: Type, count: int = 1, name: str = ""):
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type
        self.count = count

    @property
    def byte_size(self) -> int:
        if isinstance(self.allocated_type, (ArrayType, StructType)):
            stride = self.allocated_type.size
        else:
            stride = max(self.allocated_type.size, 1)
        # Keep the stack word-aligned like the AAPCS requires.
        stride = (stride + 3) // 4 * 4
        return stride * self.count


class Load(Instruction):
    """Read a scalar from memory through a pointer operand."""

    opcode = "load"

    def __init__(self, pointer: Value, name: str = ""):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"load from non-pointer {pointer.type}")
        result = pointer.type.pointee
        if not result.is_scalar:
            raise TypeError(f"load of non-scalar type {result}")
        super().__init__(result, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """Write a scalar value to memory through a pointer operand."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"store to non-pointer {pointer.type}")
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class GEP(Instruction):
    """Get-element-pointer: typed address arithmetic.

    Follows LLVM semantics: the first index scales by the pointee size;
    subsequent indices step into arrays/structs.  Struct indices must be
    constants.
    """

    opcode = "gep"

    def __init__(self, pointer: Value, indices: Sequence[Value], name: str = ""):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"gep on non-pointer {pointer.type}")
        result = _gep_result_type(pointer.type, indices)
        super().__init__(result, [pointer, *indices], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> list[Value]:
        return self.operands[1:]


def _gep_result_type(ptr_type: PointerType, indices: Sequence[Value]) -> PointerType:
    current: Type = ptr_type.pointee
    for index in indices[1:]:
        if isinstance(current, ArrayType):
            current = current.element
        elif isinstance(current, StructType):
            if not isinstance(index, Constant):
                raise TypeError("struct gep index must be a constant")
            current = current.field_type(index.value)
        else:
            raise TypeError(f"cannot index into {current}")
    return PointerType(current)


class BinOp(Instruction):
    """Two-operand integer arithmetic / bitwise operation."""

    opcode = "binop"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.op = op

    def __repr__(self) -> str:
        return f"<{self.op} {self.operands[0].short()}, {self.operands[1].short()}>"


class ICmp(Instruction):
    """Integer comparison producing 0/1 as an i32."""

    opcode = "icmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = ""):
        if pred not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {pred!r}")
        super().__init__(I32, [lhs, rhs], name)
        self.pred = pred


class Cast(Instruction):
    """Width/kind conversion between scalars."""

    opcode = "cast"

    def __init__(self, kind: str, value: Value, to_type: Type, name: str = ""):
        if kind not in CAST_KINDS:
            raise ValueError(f"unknown cast kind {kind!r}")
        super().__init__(to_type, [value], name)
        self.kind = kind


class Select(Instruction):
    """``cond ? a : b`` on scalars."""

    opcode = "select"

    def __init__(self, cond: Value, a: Value, b: Value, name: str = ""):
        super().__init__(a.type, [cond, a, b], name)


class Call(Instruction):
    """Direct call to a known function."""

    opcode = "call"

    def __init__(self, callee, args: Sequence[Value], name: str = ""):
        ftype: FunctionType = callee.type
        super().__init__(ftype.ret, list(args), name)
        self.callee = callee

    def __repr__(self) -> str:
        return f"<call @{self.callee.name}>"


class ICall(Instruction):
    """Indirect call through a function-pointer value."""

    opcode = "icall"

    def __init__(self, target: Value, callee_type: FunctionType,
                 args: Sequence[Value], name: str = ""):
        super().__init__(callee_type.ret, [target, *args], name)
        self.callee_type = callee_type

    @property
    def target(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> list[Value]:
        return self.operands[1:]


class Br(Instruction):
    """Conditional branch (non-zero condition takes ``then``)."""

    opcode = "br"

    def __init__(self, cond: Value, then_block, else_block):
        super().__init__(VOID, [cond])
        self.then_block = then_block
        self.else_block = else_block

    @property
    def is_terminator(self) -> bool:
        return True

    @property
    def successors(self) -> list:
        return [self.then_block, self.else_block]


class Jump(Instruction):
    """Unconditional branch."""

    opcode = "jump"

    def __init__(self, target):
        super().__init__(VOID, [])
        self.target = target

    @property
    def is_terminator(self) -> bool:
        return True

    @property
    def successors(self) -> list:
        return [self.target]


class Ret(Instruction):
    """Return from the current function."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def is_terminator(self) -> bool:
        return True

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    @property
    def successors(self) -> list:
        return []


class SVC(Instruction):
    """Supervisor call: traps to the privileged monitor.

    ``number`` selects the service; OPEC uses ``OP_ENTER``/``OP_EXIT``
    with the operation id as the payload.  The instrumentation pass is
    the only producer in OPEC builds; applications may also use it to
    request monitor services (none do by default).
    """

    opcode = "svc"

    OP_ENTER = 1
    OP_EXIT = 2

    def __init__(self, number: int, payload: int = 0):
        super().__init__(VOID, [])
        self.number = number
        self.payload = payload


class Halt(Instruction):
    """Stop the machine; carries the firmware's exit code."""

    opcode = "halt"

    def __init__(self, code: Value):
        super().__init__(VOID, [code])

    @property
    def is_terminator(self) -> bool:
        return True

    @property
    def successors(self) -> list:
        return []


class Unreachable(Instruction):
    """Marks a point control flow must never reach (traps if executed)."""

    opcode = "unreachable"

    def __init__(self):
        super().__init__(VOID, [])

    @property
    def is_terminator(self) -> bool:
        return True

    @property
    def successors(self) -> list:
        return []

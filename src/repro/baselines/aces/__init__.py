"""ACES baseline (USENIX Security '18): the comparator of §6.4."""

from .compartments import (
    ALL_STRATEGIES,
    Compartment,
    STRATEGY_FILENAME,
    STRATEGY_FILENAME_NO_OPT,
    STRATEGY_PERIPHERAL,
    compartment_of,
    partition_aces,
    partition_by_filename,
    partition_by_peripheral,
)
from .image import AcesImage, build_aces_image
from .regions import MAX_DATA_REGIONS, RegionAssignment, VarGroup, assign_regions
from .runtime import AcesRuntime

__all__ = [
    "ALL_STRATEGIES", "Compartment", "STRATEGY_FILENAME",
    "STRATEGY_FILENAME_NO_OPT", "STRATEGY_PERIPHERAL", "compartment_of",
    "partition_aces", "partition_by_filename", "partition_by_peripheral",
    "AcesImage", "build_aces_image",
    "MAX_DATA_REGIONS", "RegionAssignment", "VarGroup", "assign_regions",
    "AcesRuntime",
]

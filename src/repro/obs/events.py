"""Typed event taxonomy for the deterministic flight recorder.

Every observable the monitor, interpreter, machine, or build pipeline
emits is one of the kinds below.  Kinds are dotted strings so exporters
can group by prefix (``op.*`` — operation switching, ``fault.*`` —
exception handling, ``build.*``/``cache.*`` — host-side compilation).

Events live in one of two *domains*:

* ``sim`` — produced by the simulated machine and timestamped with the
  DWT cycle counter.  Simulated execution is deterministic, so a sim
  event stream is byte-identical across runs, hash seeds, and cache
  temperatures; it is the stream the determinism check compares.
* ``host`` — produced by the build pipeline and the artifact cache on
  the host.  Host events are timestamped with the recorder's sequence
  counter (never wall clock) but their *content* legitimately varies
  with cache temperature (hit vs. miss), so they are excluded from the
  deterministic exports by default.
"""

from __future__ import annotations

from typing import Optional

# -- phase markers (Chrome trace-event ``ph`` values) --------------------

BEGIN = "B"
END = "E"
INSTANT = "i"

# -- domains -------------------------------------------------------------

DOMAIN_SIM = "sim"
DOMAIN_HOST = "host"

# -- simulated-machine event kinds ---------------------------------------

#: Operation switch on entry-function call (§5.3); spans the whole
#: monitor sequence.  Nested inside: the four phase spans below.
OP_SWITCH = "op.switch"
#: Operation switch on entry-function return (§5.3).
OP_RETURN = "op.return"
#: Range-checking the exiting operation's shadows (§5.2).
OP_SANITISE = "op.sanitise"
#: Shared-global shadow write-back/refresh + relocation table +
#: pointer redirection (Figure 7).
OP_SYNC = "op.sync"
#: Stack-argument relocation / copy-back (Figure 8).
OP_STACK = "op.stack"
#: MPU reconfiguration for the entered operation.
OP_MPU = "op.mpu"

#: An explicit ``svc`` instruction executed by firmware.
SVC = "svc"
#: SVC entry for an instrumented operation call (the §4.4 stub).
SVC_ENTER = "svc.enter"
#: SVC return on the exit side of an instrumented call.
SVC_RETURN = "svc.return"

#: Interrupt dispatch: spans handler entry to exception return.
IRQ = "irq"

#: MemManage handling (MPU-region virtualisation round, §5.2).
FAULT_MEMMANAGE = "fault.memmanage"
#: BusFault-driven core-peripheral (PPB) load/store emulation (§5.2).
PPB_EMULATE = "ppb.emulate"
#: Round-robin eviction: one reserved MPU region remapped onto the
#: faulting peripheral window piece.
REGION_EVICT = "mpu.region_evict"

#: Firmware executed ``halt``.
HALT = "run.halt"
#: A terminal fault escaped the run (crash-context marker).
CRASH = "run.crash"

# -- host-side event kinds -----------------------------------------------

#: One compiler stage of ``build_opec``/``build_vanilla``.
BUILD_STAGE = "build.stage"
#: Artifact-cache traffic.
CACHE_HIT = "cache.hit"
CACHE_MISS = "cache.miss"
CACHE_STORE = "cache.store"

# -- fleet host-side event kinds (wall-clock microsecond spans) ----------
#
# Unlike the seq-stamped host kinds above, ``fleet.*`` spans carry real
# wall-clock timestamps (epoch microseconds, normalised to the earliest
# span at fusion time): they exist precisely to show scheduling and
# idle gaps, which sequence numbers cannot.  They never enter the
# deterministic exports — the fleet fuser keeps them on host-domain
# pids that the determinism masking drops.

#: One worker process's whole assigned slice of fleet lanes.
FLEET_CHUNK = "fleet.chunk"
#: Image acquisition for one lane (cache lookup + build on miss).
FLEET_BUILD = "fleet.build"
#: One lane's fresh simulation under its dedicated recorder.
FLEET_RUN = "fleet.run"
#: Parent-side pool dispatch of one worker (submit → result).
FLEET_DISPATCH = "fleet.dispatch"
#: Campaign: one firmware's full differential evaluation.
FLEET_FIRMWARE = "fleet.firmware"


class Event:
    """One recorded event.

    ``ts`` is the DWT cycle count for sim-domain events and the
    recorder sequence number for host-domain events — never wall clock.
    """

    __slots__ = ("seq", "ts", "ph", "kind", "name", "domain", "args")

    def __init__(self, seq: int, ts: int, ph: str, kind: str, name: str,
                 domain: str = DOMAIN_SIM,
                 args: Optional[dict] = None):
        self.seq = seq
        self.ts = ts
        self.ph = ph
        self.kind = kind
        self.name = name
        self.domain = domain
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Event #{self.seq} {self.ph} {self.kind} {self.name!r} "
                f"ts={self.ts} {self.domain}>")

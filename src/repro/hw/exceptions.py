"""Hardware exception model.

The simulated machine signals faults as Python exceptions.  The
interpreter catches them at its dispatch loop and routes them to the
registered privileged handlers, mirroring the ARMv7-M exception entry
the paper relies on (§2.2, §5.2): SVC for operation switches,
MemManage for MPU violations (and peripheral-region virtualisation),
BusFault for unprivileged PPB access (core-peripheral emulation).
"""

from __future__ import annotations


class MachineError(Exception):
    """Base class for everything the machine can raise."""


class MachineHalt(MachineError):
    """The firmware executed ``halt`` — normal end of simulation."""

    def __init__(self, code: int = 0):
        self.code = code
        super().__init__(f"halt({code})")


class MemManageFault(MachineError):
    """MPU denied a data access (§2.2).

    ``value`` carries the store data so a handler can emulate the
    access (the ACES micro-emulator path).
    """

    def __init__(self, address: int, size: int, is_write: bool,
                 value: int = 0):
        self.address = address
        self.size = size
        self.is_write = is_write
        self.value = value
        kind = "write" if is_write else "read"
        super().__init__(f"MemManage: {kind} of {size}B at 0x{address:08X}")


class BusFault(MachineError):
    """Bus error — notably unprivileged access to the PPB (§2.1)."""

    def __init__(self, address: int, size: int, is_write: bool,
                 value: int = 0, is_ppb: bool = False):
        self.address = address
        self.size = size
        self.is_write = is_write
        self.value = value
        self.is_ppb = is_ppb
        kind = "write" if is_write else "read"
        super().__init__(f"BusFault: {kind} of {size}B at 0x{address:08X}")


class HardFault(MachineError):
    """Unrecoverable fault (unmapped memory, fault-in-handler, …)."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(f"HardFault: {reason}")


class SecurityAbort(MachineError):
    """The monitor aborted the program on a policy violation.

    Raised on: access to a resource outside the current operation's
    policy, or a sanitisation failure during global write-back (§5.2).
    """

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(f"SecurityAbort: {reason}")

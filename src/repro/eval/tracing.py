"""Per-task execution tracing (§6.4).

The paper single-steps the firmware under GDB to learn which functions
each task actually executes; here the interpreter's function-entry/exit
callbacks provide the same information without the debugger.  A *task
window* opens when a task entry function is entered from outside any
window and closes when that activation returns; every function entered
while the window is open belongs to the task.

Traces record function *names*, not :class:`Function` objects: names
are stable across module copies (the artifact cache rehydrates builds
as fresh objects) and across processes, so a trace taken against one
build can be joined with artifacts of any build of the same firmware
via :meth:`TaskTrace.functions_of`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..image.layout import Image
from ..interp.interpreter import Interpreter
from ..ir.function import Function
from ..obs.recorder import FlightRecorder, trace_capacity
from ..pipeline import RunResult, run_image


@dataclass
class TaskTrace:
    """Executed-function sets per task (unioned over invocations)."""

    executed: dict[str, set[str]] = field(default_factory=dict)
    invocations: dict[str, int] = field(default_factory=dict)

    def names_of(self, task: str) -> set[str]:
        """The names of the functions the task executed."""
        return set(self.executed.get(task, set()))

    def functions_of(self, task: str, module) -> set[Function]:
        """The task's executed functions, resolved *in* ``module``.

        Functions traced under one build are looked up by name in
        whichever module the caller is analysing, so identity-keyed
        queries (resource sets, compartment maps) stay valid.
        """
        return {module.functions[name]
                for name in self.executed.get(task, set())
                if name in module.functions}


class TaskTracer:
    """Installs entry/exit callbacks and collects task windows."""

    def __init__(self, task_entries: list[str]):
        self.entries = set(task_entries)
        self.trace = TaskTrace()
        self._window_task: Optional[str] = None
        self._window_depth = 0
        self._depth = 0

    def install(self, interp: Interpreter) -> None:
        interp.on_function_enter = self._on_enter
        interp.on_function_exit = self._on_exit

    def _on_enter(self, func: Function) -> None:
        self._depth += 1
        if self._window_task is None and func.name in self.entries:
            self._window_task = func.name
            self._window_depth = self._depth
            self.trace.invocations[func.name] = (
                self.trace.invocations.get(func.name, 0) + 1
            )
        if self._window_task is not None:
            self.trace.executed.setdefault(
                self._window_task, set()).add(func.name)

    def _on_exit(self, func: Function) -> None:
        if (self._window_task is not None
                and self._depth == self._window_depth
                and func.name == self._window_task):
            self._window_task = None
        self._depth -= 1


def record_app_trace(name: str, kind: str = "opec", *,
                     profile: Optional[str] = None,
                     capacity: Optional[int] = None,
                     backend: Optional[str] = None
                     ) -> tuple[FlightRecorder, RunResult]:
    """Build ``name`` and run it under a dedicated flight recorder.

    The build may be served from the artifact store, but the simulation
    always executes fresh — a cached :class:`RunResult` carries no
    event stream — so the returned recorder holds the complete
    deterministic trace of the run.  ``capacity`` defaults to the
    ``REPRO_TRACE_BUF`` setting; ``backend`` to the ambient
    ``REPRO_BACKEND``.
    """
    from .workloads import (
        aces_artifacts,
        active_profile,
        build_app,
        opec_artifacts,
    )

    profile = profile or active_profile()
    app = build_app(name, profile)
    if kind == "vanilla":
        from ..pipeline import build_vanilla

        image = build_vanilla(app.module, app.board)
    elif kind == "opec":
        image = opec_artifacts(name, profile).image
    else:
        image = aces_artifacts(name, kind, profile).image
    recorder = FlightRecorder(capacity if capacity is not None
                              else trace_capacity())
    result = run_image(image, setup=app.setup,
                       max_instructions=app.max_instructions,
                       recorder=recorder, backend=backend)
    app.verify_run(result.machine, result.halt_code)
    return recorder, result


def trace_tasks(image: Image, task_entries: list[str], *,
                setup=None, max_instructions: int = 200_000_000
                ) -> tuple[TaskTrace, RunResult]:
    """Run ``image`` (typically the vanilla build) and trace tasks."""
    tracer = TaskTracer(task_entries)

    from ..hw.machine import Machine
    from ..interp.hooks import RuntimeHooks

    machine = Machine(image.board)
    if setup is not None:
        setup(machine)
    image.initialize_memory(machine)
    interp = Interpreter(machine, image, RuntimeHooks(),
                         max_instructions=max_instructions)
    tracer.install(interp)
    code = interp.run()
    result = RunResult(halt_code=code, cycles=machine.cycles,
                       machine=machine, interpreter=interp,
                       hooks=interp.hooks)
    return tracer.trace, result

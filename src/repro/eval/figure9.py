"""Figure 9: runtime / flash / SRAM overhead of OPEC vs the baseline
(§6.3).

* runtime — DWT cycle count ratio between the OPEC and vanilla builds
  under the paper's stop conditions;
* flash — increased flash bytes over the board's flash size;
* SRAM — increased SRAM bytes (operation data sections + fragments)
  over the board's SRAM size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..image.layout import build_vanilla_image
from .report import render_table
from .workloads import APP_NAMES, build_app, opec_artifacts, run_build


@dataclass
class Figure9Row:
    app: str
    runtime_pct: float
    flash_pct: float
    sram_pct: float


def compute_row(name: str, backend: Optional[str] = None) -> Figure9Row:
    app = build_app(name)
    vanilla_image = build_vanilla_image(app.module, app.board)
    opec_image = opec_artifacts(name).image

    vanilla_run = run_build(name, "vanilla", backend=backend)
    opec_run = run_build(name, "opec", backend=backend)
    runtime_pct = 100.0 * (opec_run.cycles / vanilla_run.cycles - 1.0)

    flash_delta = opec_image.flash_used() - vanilla_image.flash_used()
    flash_pct = 100.0 * flash_delta / app.board.flash_size

    sram_delta = opec_image.sram_used() - vanilla_image.sram_used()
    sram_pct = 100.0 * sram_delta / app.board.sram_size

    return Figure9Row(app=name, runtime_pct=runtime_pct,
                      flash_pct=flash_pct, sram_pct=sram_pct)


def compute_figure(apps: tuple[str, ...] = APP_NAMES,
                   backend: Optional[str] = None) -> list[Figure9Row]:
    return finalize_rows([compute_row(name, backend=backend)
                          for name in apps])


def finalize_rows(rows: list[Figure9Row]) -> list[Figure9Row]:
    """Append the paper's Average row to per-app rows."""
    rows = list(rows)
    rows.append(Figure9Row(
        app="Average",
        runtime_pct=sum(r.runtime_pct for r in rows) / len(rows),
        flash_pct=sum(r.flash_pct for r in rows) / len(rows),
        sram_pct=sum(r.sram_pct for r in rows) / len(rows),
    ))
    return rows


def render(rows: list[Figure9Row]) -> str:
    return render_table(
        ["Application", "Runtime Overhead(%)", "Flash Overhead(%)",
         "SRAM Overhead(%)"],
        [(r.app, f"{r.runtime_pct:.3f}", f"{r.flash_pct:.2f}",
          f"{r.sram_pct:.2f}") for r in rows],
        title="Figure 9: performance overhead of OPEC",
    )


def main() -> None:
    print(render(compute_figure()))


if __name__ == "__main__":
    main()

"""Ethernet MAC model for the TCP-Echo workload.

Real STM32 MACs move frames through DMA descriptor rings; the model
keeps the same software-visible shape — poll for a frame, read its
length, drain data words, release the buffer — through a compact
register protocol so the IR network stack exercises genuine
MMIO-per-word receive/transmit paths.
"""

from __future__ import annotations

from collections import deque


class EthernetMAC:
    """MAC with host-fed RX frames and captured TX frames."""

    MACCR = 0x00
    RX_STAT = 0x10   # number of frames waiting
    RX_LEN = 0x14    # byte length of the head frame
    RX_DATA = 0x18   # pop 4 bytes of the head frame
    RX_RELEASE = 0x1C  # writing 1 drops the head frame
    TX_DATA = 0x20   # push 4 bytes into the TX staging buffer
    TX_LEN = 0x24    # set outgoing frame length
    TX_GO = 0x28     # writing 1 sends the staged frame

    def __init__(self, frame_interval_cycles: int = 120_000):
        # Frames arrive at line-rate-ish pacing: the next queued frame
        # becomes visible `frame_interval_cycles` after the previous one
        # is released, keeping the echo server I/O-bound (§6.3).
        self.machine = None
        self.frame_interval_cycles = frame_interval_cycles
        self._next_ready = 0
        self.maccr = 0
        self.rx_frames: deque[bytes] = deque()
        self._rx_cursor = 0
        self.tx_frames: list[bytes] = []
        self._tx_buffer = bytearray()
        self._tx_len = 0

    # -- host side ---------------------------------------------------

    def enqueue_frame(self, frame: bytes) -> None:
        self.rx_frames.append(bytes(frame))

    def sent_frames(self) -> list[bytes]:
        return list(self.tx_frames)

    # -- device side ---------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == self.MACCR:
            return self.maccr
        if offset == self.RX_STAT:
            if not self.rx_frames:
                return 0
            if self.machine is not None and self.machine.cycles < self._next_ready:
                return 0
            return len(self.rx_frames)
        if offset == self.RX_LEN:
            return len(self.rx_frames[0]) if self.rx_frames else 0
        if offset == self.RX_DATA:
            if not self.rx_frames:
                return 0
            frame = self.rx_frames[0]
            chunk = frame[self._rx_cursor : self._rx_cursor + 4]
            self._rx_cursor += 4
            return int.from_bytes(chunk.ljust(4, b"\x00"), "little")
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == self.MACCR:
            self.maccr = value
        elif offset == self.RX_RELEASE:
            if value & 1 and self.rx_frames:
                self.rx_frames.popleft()
                self._rx_cursor = 0
                if self.machine is not None:
                    self._next_ready = (
                        self.machine.cycles + self.frame_interval_cycles
                    )
        elif offset == self.TX_DATA:
            self._tx_buffer.extend((value & 0xFFFFFFFF).to_bytes(4, "little"))
        elif offset == self.TX_LEN:
            self._tx_len = value
        elif offset == self.TX_GO:
            if value & 1:
                self.tx_frames.append(bytes(self._tx_buffer[: self._tx_len]))
                self._tx_buffer = bytearray()
                self._tx_len = 0


class DCMI:
    """Digital camera interface: capture fills a FIFO the HAL drains.

    The host installs a frame with :meth:`set_frame`; the firmware sets
    the capture bit in CR and pulls 32-bit words from DR until SR's
    FIFO-not-empty flag clears (same polling structure as the real
    snapshot mode).
    """

    CR = 0x00
    SR = 0x04
    DR = 0x28

    CR_CAPTURE = 1 << 0
    SR_FNE = 1 << 2

    def __init__(self, capture_latency_cycles: int = 2_000_000):
        self.machine = None
        self.capture_latency_cycles = capture_latency_cycles
        self.frame = b""
        self._fifo: deque[int] = deque()
        self.captures = 0

    # -- host side ---------------------------------------------------

    def set_frame(self, frame: bytes) -> None:
        padded = frame + bytes((-len(frame)) % 4)
        self.frame = padded

    # -- device side ---------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == self.SR:
            return self.SR_FNE if self._fifo else 0
        if offset == self.DR:
            return self._fifo.popleft() if self._fifo else 0
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == self.CR and value & self.CR_CAPTURE:
            if self.machine is not None:
                self.machine.consume(self.capture_latency_cycles)
            self._fifo = deque(
                int.from_bytes(self.frame[i : i + 4], "little")
                for i in range(0, len(self.frame), 4)
            )
            self.captures += 1

"""Peripheral device models for the simulated boards."""

from .basic import GPIO, RCC, RegisterFile, UART
from .core import DWT, SCB, SysTick
from .display import DMA2D, LTDC
from .network import DCMI, EthernetMAC
from .storage import BLOCK_SIZE, SDCard, USBMassStorage

__all__ = [
    "GPIO", "RCC", "RegisterFile", "UART",
    "DWT", "SCB", "SysTick",
    "DMA2D", "LTDC",
    "DCMI", "EthernetMAC",
    "BLOCK_SIZE", "SDCard", "USBMassStorage",
]

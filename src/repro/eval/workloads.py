"""Workload profiles and build/run caching for the evaluation harness.

Two profiles:

* ``paper`` — the paper's stop conditions (100 un/locks, 11 pictures,
  5 + 45 TCP packets, …); used by the benchmark suite;
* ``quick`` — scaled-down rounds for fast test runs.

Set ``REPRO_PROFILE=quick`` in the environment to downscale everything.
Builds and runs are memoised per process: several table/figure
generators share the same artifacts.
"""

from __future__ import annotations

import os
from typing import Optional

from ..apps import ALL_APPS, Application
from ..apps import coremark, pinlock
from ..baselines import AcesArtifacts, build_aces
from ..pipeline import BuildArtifacts, RunResult, build_opec, build_vanilla, run_image

APP_NAMES = tuple(ALL_APPS)


def active_profile() -> str:
    return os.environ.get("REPRO_PROFILE", "paper")


_app_cache: dict[tuple[str, str], Application] = {}
_opec_cache: dict[tuple[str, str], BuildArtifacts] = {}
_aces_cache: dict[tuple[str, str, str], AcesArtifacts] = {}
_run_cache: dict[tuple[str, str, str], RunResult] = {}


def clear_caches() -> None:
    _app_cache.clear()
    _opec_cache.clear()
    _aces_cache.clear()
    _run_cache.clear()


def build_app(name: str, profile: Optional[str] = None) -> Application:
    profile = profile or active_profile()
    key = (name, profile)
    if key not in _app_cache:
        if name == "PinLock":
            rounds = 100 if profile == "paper" else 5
            _app_cache[key] = pinlock.build(rounds=rounds)
        elif name == "CoreMark":
            iterations = 100 if profile == "paper" else 10
            _app_cache[key] = coremark.build(iterations=iterations)
        else:
            _app_cache[key] = ALL_APPS[name]()
    return _app_cache[key]


def opec_artifacts(name: str, profile: Optional[str] = None) -> BuildArtifacts:
    profile = profile or active_profile()
    key = (name, profile)
    if key not in _opec_cache:
        app = build_app(name, profile)
        _opec_cache[key] = build_opec(app.module, app.board, app.specs)
    return _opec_cache[key]


def aces_artifacts(name: str, strategy: str,
                   profile: Optional[str] = None) -> AcesArtifacts:
    profile = profile or active_profile()
    key = (name, strategy, profile)
    if key not in _aces_cache:
        app = build_app(name, profile)
        _aces_cache[key] = build_aces(app.module, app.board, strategy)
    return _aces_cache[key]


def run_build(name: str, kind: str,
              profile: Optional[str] = None) -> RunResult:
    """Run one build flavour ("vanilla", "opec", "ACES1/2/3")."""
    profile = profile or active_profile()
    key = (name, kind, profile)
    if key in _run_cache:
        return _run_cache[key]
    app = build_app(name, profile)
    if kind == "vanilla":
        image = build_vanilla(app.module, app.board)
    elif kind == "opec":
        image = opec_artifacts(name, profile).image
    else:
        image = aces_artifacts(name, kind, profile).image
    result = run_image(image, setup=app.setup,
                       max_instructions=app.max_instructions)
    app.verify_run(result.machine, result.halt_code)
    _run_cache[key] = result
    return result

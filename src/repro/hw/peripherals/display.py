"""Display pipeline models: LTDC (LCD controller) and DMA2D (blitter).

The Animation and LCD-uSD workloads draw SD-card pictures to the LCD
with fade effects (§6); Animation additionally uses the DMA2D blitter,
which — like real hardware DMA — bypasses the MPU when it copies.
"""

from __future__ import annotations


class LTDC:
    """LCD-TFT display controller.

    The HAL configures a framebuffer address (layer CFBAR) and pokes
    the shadow-reload register (SRCR) once per presented frame.  The
    model counts frames and lets the host snapshot the framebuffer.
    """

    GCR = 0x18
    SRCR = 0x24
    BCCR = 0x2C
    L1CFBAR = 0x84
    L1CFBLR = 0x90

    def __init__(self, width: int = 240, height: int = 320,
                 vsync_cycles: int = 150_000):
        self.machine = None
        self.width = width
        self.height = height
        self.vsync_cycles = vsync_cycles
        self.gcr = 0
        self.framebuffer_address = 0
        self.frames_shown = 0
        self.registers: dict[int, int] = {}

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == self.GCR:
            return self.gcr
        if offset == self.L1CFBAR:
            return self.framebuffer_address
        return self.registers.get(offset, 0)

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == self.GCR:
            self.gcr = value
        elif offset == self.L1CFBAR:
            self.framebuffer_address = value
        elif offset == self.SRCR:
            if value & 1:
                self.frames_shown += 1
                if self.machine is not None:
                    # Shadow reload latches at the next vertical blank.
                    self.machine.consume(self.vsync_cycles)
        else:
            self.registers[offset] = value

    def snapshot(self, length: int) -> bytes:
        """Host-side: read the current framebuffer contents."""
        return self.machine.read_bytes(self.framebuffer_address, length)


class DMA2D:
    """Chrom-ART blitter: memory-to-memory copies that bypass the MPU.

    CR bit 0 starts the transfer; FGMAR/OMAR hold source/destination,
    NLR packs (lines << 16 | bytes-per-line).  ISR bit 1 signals
    transfer complete.
    """

    CR = 0x00
    ISR = 0x04
    FGMAR = 0x0C
    OMAR = 0x3C
    NLR = 0x44

    ISR_TCIF = 1 << 1

    def __init__(self):
        self.machine = None
        self.source = 0
        self.destination = 0
        self.nlr = 0
        self.complete = False
        self.transfers = 0

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == self.ISR:
            return self.ISR_TCIF if self.complete else 0
        if offset == self.FGMAR:
            return self.source
        if offset == self.OMAR:
            return self.destination
        if offset == self.NLR:
            return self.nlr
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == self.FGMAR:
            self.source = value
        elif offset == self.OMAR:
            self.destination = value
        elif offset == self.NLR:
            self.nlr = value
        elif offset == self.CR and value & 1:
            lines = self.nlr >> 16 & 0xFFFF
            per_line = self.nlr & 0xFFFF
            length = lines * per_line
            # DMA masters are not subject to the CPU's MPU.
            blob = self.machine.read_bytes(self.source, length)
            self.machine.write_bytes(self.destination, blob)
            self.machine.consume(length // 4)
            self.complete = True
            self.transfers += 1

"""Unit tests for the IR interpreter."""

import pytest

import repro.ir as ir
from repro.hw import HardFault, Machine, MachineHalt, stm32f4_discovery
from repro.image import build_vanilla_image
from repro.interp import ExecutionLimitExceeded, Interpreter
from repro.ir import I8, I16, I32, VOID


def execute(module, entry="main", args=(), max_instructions=1_000_000):
    board = stm32f4_discovery()
    image = build_vanilla_image(module, board)
    machine = Machine(board)
    image.initialize_memory(machine)
    interp = Interpreter(machine, image, max_instructions=max_instructions)
    return interp.run(entry=entry, args=tuple(args)), interp


def expr_module(build):
    """Module whose main halts with the value ``build(b)`` produces."""
    module = ir.Module("m")
    _f, b = ir.define(module, "main", I32, [])
    b.halt(build(b))
    return module


class TestArithmetic:
    @pytest.mark.parametrize("op, a, b_, expected", [
        ("add", 3, 4, 7),
        ("sub", 3, 4, 0xFFFFFFFF),
        ("mul", 0xFFFF, 0x10001, 0xFFFFFFFF),
        ("udiv", 7, 2, 3),
        ("urem", 7, 2, 1),
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("shl", 1, 4, 16),
        ("lshr", 0x80000000, 31, 1),
        ("ashr", 0x80000000, 31, 0xFFFFFFFF),
    ])
    def test_binops(self, op, a, b_, expected):
        module = expr_module(lambda b: b.binop(op, a, b_))
        assert execute(module)[0] == expected

    def test_sdiv_truncates_toward_zero(self):
        module = expr_module(
            lambda b: b.binop("sdiv", b.const(-7 & 0xFFFFFFFF), b.const(2)))
        assert execute(module)[0] == (-3) & 0xFFFFFFFF

    def test_srem_sign(self):
        module = expr_module(
            lambda b: b.binop("srem", b.const(-7 & 0xFFFFFFFF), b.const(2)))
        assert execute(module)[0] == (-1) & 0xFFFFFFFF

    def test_division_by_zero_yields_zero(self):
        module = expr_module(lambda b: b.udiv(5, 0))
        assert execute(module)[0] == 0

    @pytest.mark.parametrize("pred, a, b_, expected", [
        ("eq", 5, 5, 1), ("ne", 5, 5, 0),
        ("ult", 1, 0xFFFFFFFF, 1), ("slt", 1, 0xFFFFFFFF, 0),
        ("uge", 0xFFFFFFFF, 1, 1), ("sge", 0xFFFFFFFF, 1, 0),
        ("sle", 0x80000000, 0, 1), ("ugt", 0x80000000, 0, 1),
    ])
    def test_icmp_signedness(self, pred, a, b_, expected):
        module = expr_module(lambda b: b.icmp(pred, a, b_))
        assert execute(module)[0] == expected


class TestCasts:
    def test_trunc(self):
        module = expr_module(lambda b: b.zext(b.trunc(b.const(0x1FF), I8)))
        assert execute(module)[0] == 0xFF

    def test_sext(self):
        module = expr_module(
            lambda b: b.cast("sext", b.const(0x80, I8), I32))
        assert execute(module)[0] == 0xFFFFFF80

    def test_ptr_roundtrip(self):
        def build(b):
            slot = b.alloca(I32)
            b.store(11, slot)
            as_int = b.ptrtoint(slot)
            back = b.inttoptr(as_int, I32)
            return b.load(back)

        assert execute(expr_module(build))[0] == 11


class TestSelectAndMemory:
    def test_select(self):
        module = expr_module(lambda b: b.select(b.icmp("eq", 1, 1), 10, 20))
        assert execute(module)[0] == 10

    def test_sub_word_store_does_not_clobber(self):
        def build(b):
            slot = b.alloca(I32)
            b.store(0xAABBCCDD, slot)
            b.store(0x11, b.bitcast(slot, ir.ptr(I8)))
            return b.load(slot)

        assert execute(expr_module(build))[0] == 0xAABBCC11

    def test_gep_struct_field_write(self):
        module = ir.Module("m")
        pair = module.struct("pair", [("a", I32), ("b", I32)])
        g = module.add_global("g", pair)
        _f, b = ir.define(module, "main", I32, [])
        b.store(5, b.gep(g, 0, 0))
        b.store(7, b.gep(g, 0, 1))
        b.halt(b.add(b.load(b.gep(g, 0, 0)), b.load(b.gep(g, 0, 1))))
        assert execute(module)[0] == 12

    def test_negative_gep_index(self):
        def build(b):
            arr = b.alloca(I32, count=4)
            second = b.gep(arr, 1)
            b.store(42, second)
            back = b.gep(second, b.sub(0, 1))
            b.store(9, back)
            return b.load(arr)

        assert execute(expr_module(build))[0] == 9


class TestCalls:
    def test_call_returns_value(self):
        module = ir.Module("m")
        double, db = ir.define(module, "double", I32, [I32])
        db.ret(db.add(double.params[0], double.params[0]))
        _f, b = ir.define(module, "main", I32, [])
        b.halt(b.call(double, 21))
        assert execute(module)[0] == 42

    def test_recursion(self):
        module = ir.Module("m")
        fib, fb = ir.define(module, "fib", I32, [I32])
        n = fib.params[0]
        small = fb.icmp("ult", n, 2)
        with fb.if_then(small):
            fb.ret(n)
        a = fb.call(fib, fb.sub(n, 1))
        c = fb.call(fib, fb.sub(n, 2))
        fb.ret(fb.add(a, c))
        _f, b = ir.define(module, "main", I32, [])
        b.halt(b.call(fib, 10))
        assert execute(module)[0] == 55

    def test_icall_through_function_address(self):
        module = ir.Module("m")
        inc, ib = ir.define(module, "inc", I32, [I32])
        ib.ret(ib.add(inc.params[0], 1))
        _f, b = ir.define(module, "main", I32, [])
        fnptr = b.ptrtoint(inc)
        b.halt(b.icall(fnptr, inc.ftype, 9))
        assert execute(module)[0] == 10

    def test_icall_to_garbage_faults(self):
        module = ir.Module("m")
        helper, hb = ir.define(module, "h", I32, [I32])
        hb.ret(helper.params[0])
        _f, b = ir.define(module, "main", I32, [])
        b.halt(b.icall(b.const(0x1234), helper.ftype, 1))
        with pytest.raises(HardFault, match="icall"):
            execute(module)

    def test_call_to_declaration_faults(self):
        module = ir.Module("m")
        ext = module.declare_function("ext", ir.FunctionType(VOID, []))
        _f, b = ir.define(module, "main", I32, [])
        b.call(ext)
        b.halt(0)
        with pytest.raises(HardFault, match="undefined function"):
            execute(module)


class TestStackAndLimits:
    def test_stack_overflow_detected(self):
        module = ir.Module("m")
        rec, rb = ir.define(module, "rec", VOID, [])
        rb.alloca(ir.array(I8, 4096))
        rb.call(rec)
        rb.ret_void()
        _f, b = ir.define(module, "main", I32, [])
        b.call(rec)
        b.halt(0)
        with pytest.raises(HardFault, match="stack overflow"):
            execute(module)

    def test_sp_restored_after_return(self):
        module = ir.Module("m")
        leaf, lb = ir.define(module, "leaf", VOID, [])
        lb.alloca(ir.array(I8, 64))
        lb.ret_void()
        _f, b = ir.define(module, "main", I32, [])
        with b.for_range(0, 10_000):
            b.call(leaf)
        b.halt(1)
        code, interp = execute(module, max_instructions=2_000_000)
        assert code == 1
        # Only main's own loop-counter alloca remains on the stack: the
        # 10k leaf frames (64 bytes each) were all popped.
        assert interp.sp == interp.image.stack_top - 4

    def test_instruction_budget(self):
        module = ir.Module("m")
        _f, b = ir.define(module, "main", I32, [])
        with b.while_loop(lambda: b.icmp("eq", 1, 1)):
            pass
        b.halt(0)
        with pytest.raises(ExecutionLimitExceeded):
            execute(module, max_instructions=1000)

    def test_unreachable_faults(self):
        module = ir.Module("m")
        _f, b = ir.define(module, "main", I32, [])
        b.unreachable()
        with pytest.raises(HardFault, match="unreachable"):
            execute(module)


class TestCycles:
    def test_cycles_advance_deterministically(self):
        module = expr_module(lambda b: b.add(1, 2))
        _code, interp_a = execute(module)
        module2 = expr_module(lambda b: b.add(1, 2))
        _code, interp_b = execute(module2)
        assert interp_a.machine.cycles == interp_b.machine.cycles > 0

    def test_div_costs_more_than_add(self):
        add_mod = expr_module(lambda b: b.add(6, 2))
        div_mod = expr_module(lambda b: b.udiv(6, 2))
        _c, ia = execute(add_mod)
        _c, ib = execute(div_mod)
        assert ib.machine.cycles > ia.machine.cycles

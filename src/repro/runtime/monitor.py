"""OPEC-Monitor: the privileged reference monitor (§5).

Plugs into the interpreter as :class:`~repro.interp.hooks.RuntimeHooks`
and enforces, at the exact hardware trap points the paper uses:

* initialisation — shadow-section setup, MPU programming, privilege
  drop (§5.1);
* operation switching on entry-function call/return — data
  synchronisation + sanitisation, relocation-table update, pointer
  redirection, stack relocation, MPU reconfiguration (§5.2–§5.3);
* MPU-region virtualisation for peripherals in the MemManage handler,
  round-robin over the reserved regions (§5.2);
* load/store emulation for core peripherals in the BusFault handler
  (§5.2) — unprivileged application code never runs privileged.
"""

from __future__ import annotations

from typing import Optional

from ..hw.exceptions import BusFault, MemManageFault, SecurityAbort
from ..hw.machine import Machine
from ..hw.mpu import MPURegion
from ..image.linker import OpecImage, OperationLayout
from ..image.mpu_config import (
    PERIPHERAL_REGIONS,
    covering_regions,
    operation_region_set,
)
from ..interp.costs import CORE_EMULATION_COST, SYNC_WORD_COST
from ..interp.hooks import RuntimeHooks
from ..ir.function import Function
from ..ir.values import GlobalVariable
from ..obs.events import (
    FAULT_MEMMANAGE,
    OP_MPU,
    OP_RETURN,
    OP_SANITISE,
    OP_STACK,
    OP_SWITCH,
    OP_SYNC,
    PPB_EMULATE,
    REGION_EVICT,
)
from ..partition.operations import Operation
from .context import SwitchContext
from .stack import StackProtector
from .sync import DataSynchronizer, SwitchPlan


class OpecMonitor(RuntimeHooks):
    """The runtime half of OPEC."""

    def __init__(self, machine: Machine, image: OpecImage):
        self.machine = machine
        self.image = image
        self.policy = image.policy
        self.sync = DataSynchronizer(machine, image)
        self.stack = StackProtector(machine, image)
        self.current: Operation = self.policy.default_operation
        self.context_stack: list[SwitchContext] = []
        self.current_stack_mask = 0
        self._victim_rotation = 0
        self._n_switches = machine.metrics.counter(
            "monitor.operation_switches")
        self._h_switch = machine.metrics.histogram("monitor.switch_cycles")
        self._h_memmanage = machine.metrics.histogram(
            "monitor.memmanage_cycles")
        # Resolved reloc-table addresses are loop-invariant within an
        # operation; a compiling build hoists the slot load, so the
        # per-access cost is paid once per (operation, variable).
        self._addr_cache: dict[GlobalVariable, int] = {}
        # Switch phases (sanitise/sync/reloc/redirect) resolve only
        # policy- and layout-level data, all fixed once the image is
        # linked — so each operation's sequence is compiled to a
        # SwitchPlan on first use, with the backend's base switch cost
        # folded in.  Region sets are likewise pure in (operation,
        # stack mask): memoised, with a fresh list per load.
        self._plans: dict[int, SwitchPlan] = {}
        self._region_sets: dict[tuple[int, int], list[MPURegion]] = {}

    @property
    def switch_count(self) -> int:
        """Total operation switches (call direction), from the registry."""
        return self._n_switches.value

    # -- initialisation (§5.1) ------------------------------------------

    def on_reset(self, interp) -> None:
        machine = self.machine
        # 1. Initialise every shadow copy from its public original.
        for (op_index, gvar), shadow in self.image.shadow_addresses.items():
            public = self.image.public_addresses[gvar]
            blob = machine.read_bytes(public, gvar.size)
            machine.write_bytes(shadow, blob)
            machine.consume(SYNC_WORD_COST * ((gvar.size + 3) // 4))
        # 2. Exception handling for SVC / MemManage / BusFault is wired
        #    through the interpreter's hook dispatch (always enabled).
        # 3. Configure the MPU for the default operation and drop to the
        #    unprivileged level.
        self.sync.update_relocation_table(self.current)
        self.current_stack_mask = self.stack.mask_for(interp.sp)
        self._load_mpu(self.current, self.current_stack_mask)
        machine.enforcement.enabled = True
        machine.drop_privilege()

    # -- address resolution through the relocation table -------------------

    def global_address(self, interp, gvar: GlobalVariable) -> int:
        if interp is not None and interp._irq_depth > 0:
            # Exception context (§4.3): handlers are never part of an
            # operation and are not instrumented — they link against the
            # public originals directly.  Resolving through the
            # *suspended* operation's relocation table here would hand
            # the handler that operation's shadow copy (stale, and not
            # yet sanitised); it must also neither read nor pollute
            # ``_addr_cache``, which holds the operation's view.
            placement = self.policy.placements.get(gvar)
            if placement is not None and placement.is_external:
                return self.image.public_addresses[gvar]
            return self.image.global_address(gvar)
        cached = self._addr_cache.get(gvar)
        if cached is not None:
            return cached
        placement = self.policy.placements.get(gvar)
        if placement is not None and placement.is_external:
            # The instrumented access loads the pointer slot first; the
            # table is unprivileged-readable (Figure 6).
            self.machine.consume(2)
            address = self.machine.load(self.image.reloc_slots[gvar], 4)
        else:
            address = self.image.global_address(gvar)
        self._addr_cache[gvar] = address
        return address

    # -- operation switching (§5.3) -------------------------------------------

    def is_switch_point(self, interp, callee: Function) -> bool:
        operation = self.image.operation_for_entry(callee)
        return operation is not None and not operation.is_default

    def _plan(self, operation: Operation) -> SwitchPlan:
        plan = self._plans.get(operation.index)
        if plan is None:
            plan = self.sync.compile_plan(
                operation, self.machine.enforcement.switch_base_cost)
            self._plans[operation.index] = plan
        return plan

    def before_call(self, interp, callee: Function,
                    args: list[int]) -> list[int]:
        machine = self.machine
        if machine.recorder is not None or machine._systick_armed:
            # Span recording samples the cycle counter between phases,
            # and an armed SysTick makes the fire point depend on when
            # each charge lands — both need the interpreted sequence.
            return self._before_call_traced(interp, callee, args)
        target = self.image.operation_for_entry(callee)
        assert target is not None
        start_cycles = machine.cycles
        cur_plan = self._plan(self.current)
        tgt_plan = self._plan(target)
        machine.consume(tgt_plan.switch_base_cost)
        self._n_switches.value += 1
        self._addr_cache.clear()

        sync = self.sync
        sync.run_sanitize(cur_plan)
        sync.run_copies(cur_plan.writeback, cur_plan.sync_words,
                        cur_plan.sync_bytes)
        sync.run_copies(tgt_plan.refresh, tgt_plan.sync_words,
                        tgt_plan.sync_bytes)
        sync.run_reloc(tgt_plan)
        sync.run_redirect(tgt_plan)

        new_args, new_sp, relocations = self.stack.relocate_arguments(
            target, args, interp.sp
        )
        context = SwitchContext(
            previous=self.current,
            saved_sp=interp.sp,
            saved_stack_mask=self.current_stack_mask,
            relocations=relocations,
        )
        self.context_stack.append(context)
        interp.sp = new_sp

        boundary = self.stack.boundary_below(context.saved_sp)
        self.current_stack_mask = self.stack.mask_for(boundary)
        self.current = target
        self._load_mpu(target, self.current_stack_mask)
        self._h_switch.observe(machine.cycles - start_cycles)
        return new_args

    def _before_call_traced(self, interp, callee: Function,
                            args: list[int]) -> list[int]:
        target = self.image.operation_for_entry(callee)
        assert target is not None
        machine = self.machine
        recorder = machine.recorder
        start_cycles = machine.cycles
        switch_name = f"{self.current.name}->{target.name}"
        if recorder is not None:
            recorder.begin(OP_SWITCH, switch_name, machine.cycles,
                           args={"from": self.current.name,
                                 "to": target.name,
                                 "entry": callee.name})
        machine.consume(machine.enforcement.switch_base_cost)
        self._n_switches.value += 1
        self._addr_cache.clear()

        # Figure 7(b): sanitise the suspended operation's shadows, write
        # them back, then refresh the entered operation's shadows.
        if recorder is not None:
            recorder.begin(OP_SANITISE, self.current.name, machine.cycles)
        self.sync.sanitize_operation(self.current)
        if recorder is not None:
            recorder.end(OP_SANITISE, self.current.name, machine.cycles)
            recorder.begin(OP_SYNC, switch_name, machine.cycles)
        self.sync.write_back(self.current, sanitize=False)
        self.sync.refresh(target)
        self.sync.update_relocation_table(target)
        self.sync.redirect_pointers(target)
        if recorder is not None:
            recorder.end(OP_SYNC, switch_name, machine.cycles)
            recorder.begin(OP_STACK, target.name, machine.cycles)

        # Figure 8: relocate stack-passed buffers and mask sub-regions.
        new_args, new_sp, relocations = self.stack.relocate_arguments(
            target, args, interp.sp
        )
        context = SwitchContext(
            previous=self.current,
            saved_sp=interp.sp,
            saved_stack_mask=self.current_stack_mask,
            relocations=relocations,
        )
        self.context_stack.append(context)
        interp.sp = new_sp

        boundary = self.stack.boundary_below(context.saved_sp)
        self.current_stack_mask = self.stack.mask_for(boundary)
        self.current = target
        if recorder is not None:
            recorder.end(OP_STACK, target.name, machine.cycles,
                         args={"relocations": len(relocations)})
            recorder.begin(OP_MPU, target.name, machine.cycles)
        self._load_mpu(target, self.current_stack_mask)
        if recorder is not None:
            recorder.end(OP_MPU, target.name, machine.cycles)
            recorder.end(OP_SWITCH, switch_name, machine.cycles)
        self._h_switch.observe(machine.cycles - start_cycles)
        return new_args

    def after_return(self, interp, callee: Function) -> None:
        machine = self.machine
        if machine.recorder is not None or machine._systick_armed:
            return self._after_return_traced(interp, callee)
        if not self.context_stack:
            raise SecurityAbort("operation exit without matching entry")
        context = self.context_stack.pop()
        start_cycles = machine.cycles
        previous = context.previous
        cur_plan = self._plan(self.current)
        prev_plan = self._plan(previous)
        machine.consume(cur_plan.switch_base_cost)
        self._addr_cache.clear()

        sync = self.sync
        sync.run_sanitize(cur_plan)
        sync.run_copies(cur_plan.writeback, cur_plan.sync_words,
                        cur_plan.sync_bytes)
        sync.run_copies(prev_plan.refresh, prev_plan.sync_words,
                        prev_plan.sync_bytes)
        sync.run_reloc(prev_plan)
        sync.run_redirect(prev_plan)

        self.stack.copy_back(context.relocations)
        interp.sp = context.saved_sp
        self.current = previous
        self.current_stack_mask = context.saved_stack_mask
        self._load_mpu(previous, self.current_stack_mask)
        # General-purpose registers are cleared on exit (frame registers
        # are dropped with the frame; charge the zeroing cost).
        machine.consume(13)
        self._h_switch.observe(machine.cycles - start_cycles)

    def _after_return_traced(self, interp, callee: Function) -> None:
        if not self.context_stack:
            raise SecurityAbort("operation exit without matching entry")
        context = self.context_stack.pop()
        machine = self.machine
        recorder = machine.recorder
        start_cycles = machine.cycles
        previous = context.previous
        switch_name = f"{self.current.name}->{previous.name}"
        if recorder is not None:
            recorder.begin(OP_RETURN, switch_name, machine.cycles,
                           args={"from": self.current.name,
                                 "to": previous.name,
                                 "entry": callee.name})
        machine.consume(machine.enforcement.switch_base_cost)
        self._addr_cache.clear()

        # Figure 7(c): sanitise and write back the exiting operation,
        # refresh the resumed one, restore its relocation-table view.
        if recorder is not None:
            recorder.begin(OP_SANITISE, self.current.name, machine.cycles)
        self.sync.sanitize_operation(self.current)
        if recorder is not None:
            recorder.end(OP_SANITISE, self.current.name, machine.cycles)
            recorder.begin(OP_SYNC, switch_name, machine.cycles)
        self.sync.write_back(self.current, sanitize=False)
        self.sync.refresh(previous)
        self.sync.update_relocation_table(previous)
        self.sync.redirect_pointers(previous)
        if recorder is not None:
            recorder.end(OP_SYNC, switch_name, machine.cycles)
            recorder.begin(OP_STACK, previous.name, machine.cycles)

        # Copy relocated buffers back and restore the stack.
        self.stack.copy_back(context.relocations)
        interp.sp = context.saved_sp
        self.current = previous
        self.current_stack_mask = context.saved_stack_mask
        if recorder is not None:
            recorder.end(OP_STACK, previous.name, machine.cycles,
                         args={"relocations": len(context.relocations)})
            recorder.begin(OP_MPU, previous.name, machine.cycles)
        self._load_mpu(previous, self.current_stack_mask)
        if recorder is not None:
            recorder.end(OP_MPU, previous.name, machine.cycles)
        # General-purpose registers are cleared on exit (frame registers
        # are dropped with the frame; charge the zeroing cost).
        machine.consume(13)
        if recorder is not None:
            recorder.end(OP_RETURN, switch_name, machine.cycles)
        self._h_switch.observe(machine.cycles - start_cycles)

    # -- enforcement loading ----------------------------------------------

    def _load_mpu(self, operation: Operation, stack_mask: int) -> None:
        """Hand the operation's region plan to the machine's backend.

        Kept under its historical name (the OP_MPU trace span and the
        paper's §5.3 wording both say "MPU reconfiguration"); the
        actual substrate is whatever ``machine.enforcement`` carries.

        ``operation_region_set`` is pure in (layout, stack mask, heap)
        and MPURegion is immutable, so the set is memoised; the backend
        gets a fresh list each load in case it keeps or reorders it.
        """
        key = (operation.index, stack_mask)
        memo = self._region_sets.get(key)
        if memo is None:
            layout = self.image.layout_of(operation)
            heap = self._heap_region() if layout.uses_heap else None
            memo = operation_region_set(layout, stack_mask, heap)
            self._region_sets[key] = memo
        self.machine.enforcement.load_configuration(list(memo))

    def _heap_region(self) -> tuple[int, int]:
        pieces = covering_regions(self.image.heap_base, self.image.heap_size)
        return pieces[0]

    # -- MPU-region virtualisation (§5.2) -----------------------------------------

    def handle_memmanage(self, interp, fault: MemManageFault) -> bool:
        machine = self.machine
        recorder = machine.recorder
        start_cycles = machine.cycles
        fault_name = f"0x{fault.address:08X}"
        if recorder is not None:
            recorder.begin(FAULT_MEMMANAGE, fault_name, machine.cycles,
                           args={"address": fault.address,
                                 "write": int(fault.is_write),
                                 "operation": self.current.name})
        try:
            handled = self._virtualise_region(fault)
        finally:
            # A SecurityAbort still closes the span, so a crash trace
            # shows the fault being handled when the run died.
            if recorder is not None:
                recorder.end(FAULT_MEMMANAGE, fault_name, machine.cycles)
        self._h_memmanage.observe(machine.cycles - start_cycles)
        return handled

    def _virtualise_region(self, fault: MemManageFault) -> bool:
        address = fault.address
        layout = self.image.layout_of(self.current)

        # Heap access by a heap-using operation whose heap region was
        # evicted is re-established the same way as a peripheral window.
        for window in self.current.windows:
            if window.contains(address):
                self._map_window(layout, address, window.base, window.size)
                return True
        if (layout.uses_heap
                and self.image.heap_base <= address
                < self.image.heap_base + self.image.heap_size):
            heap_base, heap_size = self._heap_region()
            self._map_window(layout, address, heap_base, heap_size)
            return True
        raise SecurityAbort(
            f"operation {self.current.name} attempted "
            f"{'write' if fault.is_write else 'read'} at "
            f"0x{address:08X} outside its policy"
        )

    def _map_window(self, layout: OperationLayout, address: int,
                    base: int, size: int) -> None:
        """Round-robin one of the reserved regions onto the window piece
        containing the faulting address."""
        slots = list(PERIPHERAL_REGIONS)
        if layout.uses_heap:
            slots.pop(0)  # the heap's slot is never a victim
        victim = slots[self._victim_rotation % len(slots)]
        self._victim_rotation += 1
        for piece_base, piece_size in covering_regions(base, size):
            if piece_base <= address < piece_base + piece_size:
                self.machine.enforcement.set_region(MPURegion(
                    number=victim, base=piece_base, size=piece_size,
                    priv="RW", unpriv="RW",
                ))
                self.machine.stats.peripheral_region_switches += 1
                self.machine.consume(
                    self.machine.enforcement.region_switch_cost)
                recorder = self.machine.recorder
                if recorder is not None:
                    recorder.instant(
                        REGION_EVICT, f"region{victim}",
                        self.machine.cycles,
                        args={"victim": victim, "base": piece_base,
                              "size": piece_size})
                return
        raise SecurityAbort(
            f"no MPU cover for window piece at 0x{address:08X}"
        )

    # -- core-peripheral emulation (§5.2) ----------------------------------------

    def handle_busfault(self, interp, fault: BusFault) -> Optional[int]:
        if not fault.is_ppb:
            return None
        allowed = any(
            p.contains(fault.address)
            for p in self.current.resources.core_peripherals
        )
        if not allowed:
            raise SecurityAbort(
                f"operation {self.current.name} accessed core peripheral "
                f"at 0x{fault.address:08X} outside its policy"
            )
        self.machine.stats.emulated_core_accesses += 1
        self.machine.consume(CORE_EMULATION_COST)
        recorder = self.machine.recorder
        if recorder is not None:
            recorder.instant(
                PPB_EMULATE, f"0x{fault.address:08X}", self.machine.cycles,
                args={"address": fault.address,
                      "write": int(fault.is_write)})
        if fault.is_write:
            self.machine.write_direct(fault.address, fault.size, fault.value)
            return 0
        return self.machine.read_direct(fault.address, fault.size)

"""Tests for the command-line front end."""

import os

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "PinLock" in out
    assert "CoreMark" in out


def test_build_prints_partition(capsys):
    assert main(["build", "PinLock"]) == 0
    out = capsys.readouterr().out
    assert "6 operations" in out
    assert "Unlock_Task" in out


def test_build_writes_policy(tmp_path, capsys):
    path = tmp_path / "p.json"
    assert main(["build", "PinLock", "--policy", str(path)]) == 0
    assert path.exists()
    assert "opec-policy-v1" in path.read_text()


def test_run_opec(capsys):
    assert main(["run", "PinLock", "--build", "opec"]) == 0
    out = capsys.readouterr().out
    assert "overhead" in out
    assert "svc=" in out


def test_run_vanilla(capsys):
    assert main(["run", "PinLock", "--build", "vanilla"]) == 0
    out = capsys.readouterr().out
    assert "halt=" in out


def test_backend_flag_does_not_mutate_environ(capsys, monkeypatch):
    """Regression: ``--backend`` must travel as a call parameter, not
    by exporting ``REPRO_BACKEND`` — a library caller invoking the
    command twice with different backends must not leak the first
    choice into ambient state."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    before = dict(os.environ)
    assert main(["run", "PinLock", "--build", "opec",
                 "--backend", "pmp"]) == 0
    assert "REPRO_BACKEND" not in os.environ
    assert dict(os.environ) == before
    out = capsys.readouterr().out
    assert "halt=" in out


def test_backend_flag_changes_cycles(capsys):
    """The explicit parameter must actually reach the simulator: the
    PMP substrate prices switches differently from the MPU."""
    assert main(["run", "PinLock", "--build", "opec",
                 "--backend", "mpu"]) == 0
    mpu_out = capsys.readouterr().out
    assert main(["run", "PinLock", "--build", "opec",
                 "--backend", "pmp"]) == 0
    pmp_out = capsys.readouterr().out
    mpu_cycles = int(mpu_out.split("cycles=")[1].split()[0])
    pmp_cycles = int(pmp_out.split("cycles=")[1].split()[0])
    assert mpu_cycles != pmp_cycles


def test_campaign_command(capsys, tmp_path):
    base = tmp_path / "camp"
    assert main(["campaign", "--seed", "11", "--firmwares", "1",
                 "--attacks", "global", "--backends", "mpu",
                 "--jobs", "1", "--output", str(base)]) == 0
    out = capsys.readouterr().out
    assert "Differential security campaign" in out
    assert "verdicts" in out
    report = (tmp_path / "camp.txt").read_text()
    assert "seed 11" in report
    rows = (tmp_path / "camp.tsv").read_text().splitlines()
    assert rows[0].startswith("record\tfirmware\tattack")
    assert any(line.startswith("cell\t") for line in rows)


def test_campaign_prints_telemetry_footer(capsys, monkeypatch):
    """The campaign command surfaces the aggregated compile/cache
    telemetry below the report — stdout only, so the report files on
    disk stay byte-identical to the pre-telemetry format."""
    monkeypatch.setenv("REPRO_CACHE", "off")
    monkeypatch.setenv("REPRO_BLOCKCOMPILE", "on")
    assert main(["campaign", "--seed", "11", "--firmwares", "1",
                 "--attacks", "global", "--backends", "mpu",
                 "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "worker telemetry" in out
    assert "blockcompile." in out


def test_trace_buf_rejected_loudly():
    with pytest.raises(ValueError, match="invalid ring capacity"):
        main(["trace", "PinLock", "--buf", "0"])
    with pytest.raises(ValueError, match="--buf"):
        main(["trace", "PinLock", "--buf", "-8"])


def test_fleet_command(capsys, tmp_path):
    base = tmp_path / "fleet"
    assert main(["fleet", "PinLock", "--jobs", "1", "--backends", "mpu",
                 "--output", str(base)]) == 0
    out = capsys.readouterr().out
    assert "PinLock:opec:mpu" in out
    assert "host domain" in out
    trace = (tmp_path / "fleet.json").read_text()
    assert trace.startswith("{")
    dashboard = (tmp_path / "fleet.txt").read_text()
    assert "worker1" in dashboard


def test_fleet_knobs_rejected_loudly():
    with pytest.raises(ValueError, match="invalid worker count"):
        main(["fleet", "PinLock", "--jobs", "0"])
    with pytest.raises(ValueError, match="invalid ring capacity"):
        main(["fleet", "PinLock", "--jobs", "1", "--buf", "-5"])


def test_eval_table3(capsys):
    assert main(["eval", "table3"]) == 0
    out = capsys.readouterr().out
    assert "#Icall" in out


def test_dump_module(capsys, tmp_path):
    path = tmp_path / "pinlock.oir"
    assert main(["dump", "PinLock", "--output", str(path)]) == 0
    text = path.read_text()
    assert "define void @Unlock_Task()" in text
    # The dump parses back into a verifiable module.
    from repro.ir import parse_module, verify_module

    verify_module(parse_module(text))


def test_dump_single_function(capsys):
    assert main(["dump", "PinLock", "--function", "do_unlock"]) == 0
    out = capsys.readouterr().out
    assert "@do_unlock" in out


def test_profile_command(capsys):
    assert main(["profile", "PinLock", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "Cycle profile" in out
    assert "UART_Read_Byte" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])

#!/usr/bin/env python3
"""Authoring your own firmware against the public API.

Shows the full developer workflow of Figure 5 on a thermostat-style
firmware you write yourself: build the IR with the builder DSL, wire a
custom peripheral device model, provide the entry-function list with
stack information and a sanitisation range, then build and run under
OPEC.

Run:  python examples/custom_firmware.py
"""

import repro.ir as ir
from repro import build_opec, run_image
from repro.hw import Peripheral, stm32f4_discovery
from repro.partition import OperationSpec


class TemperatureSensor:
    """A custom MMIO device: reads return the current temperature."""

    SAMPLE = 0x00

    def __init__(self, samples):
        self.machine = None
        self.samples = list(samples)
        self.cursor = 0

    def mmio_read(self, offset, size):
        if offset == self.SAMPLE:
            value = self.samples[min(self.cursor, len(self.samples) - 1)]
            self.cursor += 1
            return value
        return 0

    def mmio_write(self, offset, size, value):
        pass


def build_thermostat(sensor_base: int) -> ir.Module:
    module = ir.Module("thermostat")
    setpoint = module.add_global("setpoint", ir.I32, 22,
                                 sanitize_range=(5, 35),
                                 source_file="control.c")
    reading = module.add_global("reading", ir.I32, 0, source_file="sense.c")
    heater_on = module.add_global("heater_on", ir.I32, 0,
                                  sanitize_range=(0, 1),
                                  source_file="control.c")
    history = module.add_global("history", ir.array(ir.I32, 16),
                                source_file="sense.c")

    sense_task, b = ir.define(module, "Sense_Task", ir.VOID, [ir.I32],
                              source_file="sense.c")
    (tick,) = sense_task.params
    sample = b.load(b.mmio(sensor_base))
    b.store(sample, reading)
    b.store(sample, b.gep(history, 0, b.urem(tick, 16)))
    b.ret_void()

    control_task, b = ir.define(module, "Control_Task", ir.VOID, [],
                                source_file="control.c")
    cold = b.icmp("slt", b.load(reading), b.load(setpoint))
    with b.if_else(cold) as otherwise:
        b.store(1, heater_on)
        otherwise()
        b.store(0, heater_on)
    b.ret_void()

    main, b = ir.define(module, "main", ir.I32, [], source_file="main.c")
    on_ticks = b.alloca(ir.I32)
    b.store(0, on_ticks)
    with b.for_range(0, 8) as load_tick:
        b.call(sense_task, load_tick())
        b.call(control_task)
        b.store(b.add(b.load(on_ticks), b.load(heater_on)), on_ticks)
    b.halt(b.load(on_ticks))
    return module


def main() -> None:
    # 1. Extend the board with the custom sensor's datasheet entry.
    board = stm32f4_discovery()
    sensor = board.add_peripheral(Peripheral("TSENSOR", 0x40007400, 0x400))

    # 2. Author the firmware and declare the operations.
    module = build_thermostat(sensor.base)
    specs = [OperationSpec("Sense_Task"), OperationSpec("Control_Task")]

    # 3. Compile: the pipeline discovers the sensor dependency itself.
    artifacts = build_opec(module, board, specs)
    for op in artifacts.operations:
        peripherals = sorted(p.name for p in op.resources.peripherals)
        print(f"{op.name:14s} peripherals={peripherals} "
              f"globals={sorted(g.name for g in op.resources.globals_all)}")

    # 4. Run with the device model attached; cold samples then warm.
    def setup(machine):
        machine.attach_device(
            "TSENSOR", TemperatureSensor([18, 19, 20, 21, 22, 23, 24, 25]))

    result = run_image(artifacts.image, setup=setup)
    print(f"\nheater was on for {result.halt_code}/8 ticks "
          f"(setpoint 22 degrees)")
    assert result.halt_code == 4


if __name__ == "__main__":
    main()

"""Display HAL authored in IR: LTDC driver ("stm32_hal_ltdc.c") and
DMA2D blitter driver ("stm32_hal_dma2d.c").

``LCD_Draw_Buffer`` pushes pixel words into the framebuffer with the
CPU; ``DMA2D_Copy`` programs the blitter to do it (and, like real
hardware, the blitter's transfers bypass the MPU).  ``LCD_Fade``
implements the fade-in/fade-out effect LCD-uSD shows (§6).
"""

from __future__ import annotations

from types import SimpleNamespace

from ...hw.board import Board
from ...ir import I32, Module, VOID, define, ptr

LTDC_GCR = 0x18
LTDC_SRCR = 0x24
LTDC_L1CFBAR = 0x84
DMA2D_CR = 0x00
DMA2D_ISR = 0x04
DMA2D_FGMAR = 0x0C
DMA2D_OMAR = 0x3C
DMA2D_NLR = 0x44


def add_lcd_hal(module: Module, board: Board) -> SimpleNamespace:
    base = board.peripheral("LTDC").base
    p32 = ptr(I32)

    lcd_init, b = define(module, "BSP_LCD_Init", VOID, [I32],
                         source_file="stm32_hal_ltdc.c")
    (framebuffer,) = lcd_init.params
    b.store(framebuffer, b.mmio(base + LTDC_L1CFBAR))
    b.store(1, b.mmio(base + LTDC_GCR))  # enable controller
    b.ret_void()

    lcd_reload, b = define(module, "BSP_LCD_Reload", VOID, [],
                           source_file="stm32_hal_ltdc.c")
    b.store(1, b.mmio(base + LTDC_SRCR))  # present the frame
    b.ret_void()

    draw_buffer, b = define(module, "LCD_Draw_Buffer", VOID,
                            [p32, p32, I32], source_file="stm32_hal_ltdc.c")
    framebuffer, pixels, words = draw_buffer.params
    with b.for_range(0, words) as load_i:
        i = load_i()
        b.store(b.load(b.gep(pixels, i)), b.gep(framebuffer, i))
    b.ret_void()

    # Scale every pixel word's low byte by level/8 — the fade effect.
    lcd_fade, b = define(module, "LCD_Fade", VOID, [p32, I32, I32],
                         source_file="stm32_hal_ltdc.c")
    framebuffer, words, level = lcd_fade.params
    with b.for_range(0, words) as load_i:
        i = load_i()
        slot = b.gep(framebuffer, i)
        pixel = b.load(slot)
        faded = b.udiv(b.mul(pixel, level), 8)
        b.store(faded, slot)
    b.ret_void()

    return SimpleNamespace(
        init=lcd_init, reload=lcd_reload, draw_buffer=draw_buffer,
        fade=lcd_fade,
    )


def add_dma2d_hal(module: Module, board: Board) -> SimpleNamespace:
    base = board.peripheral("DMA2D").base

    dma2d_copy, b = define(module, "DMA2D_Copy", VOID, [I32, I32, I32],
                           source_file="stm32_hal_dma2d.c")
    source, destination, byte_count = dma2d_copy.params
    b.store(source, b.mmio(base + DMA2D_FGMAR))
    b.store(destination, b.mmio(base + DMA2D_OMAR))
    b.store(b.or_(b.shl(1, 16), byte_count), b.mmio(base + DMA2D_NLR))
    b.store(1, b.mmio(base + DMA2D_CR))  # start
    with b.while_loop(
        lambda: b.icmp(
            "eq", b.and_(b.load(b.mmio(base + DMA2D_ISR)), 1 << 1), 0
        )
    ):
        pass
    b.ret_void()

    return SimpleNamespace(copy=dma2d_copy)

#!/usr/bin/env python3
"""MPU-region virtualisation in action (§5.2).

An operation that needs six peripheral windows only gets three MPU
regions; the monitor serves the rest on demand from the MemManage
handler, rotating victims round-robin.  This demo shows the fault-
driven region swaps and their cost.

Run:  python examples/peripheral_virtualization.py
"""

import repro.ir as ir
from repro import build_opec, build_vanilla, run_image
from repro.hw import stm32f4_discovery
from repro.hw.peripherals import RegisterFile
from repro.partition import OperationSpec

PERIPHERAL_NAMES = ("TIM2", "USART2", "SDIO", "RCC", "DMA1", "EXTI")


def build_firmware(board, rounds: int) -> ir.Module:
    module = ir.Module("virtdemo")
    busy, b = ir.define(module, "Busy_Task", ir.VOID, [],
                        source_file="busy.c")
    with b.for_range(0, rounds):
        for name in PERIPHERAL_NAMES:
            base = board.peripheral(name).base
            b.store(1, b.mmio(base))
    b.ret_void()
    _m, b = ir.define(module, "main", ir.I32, [], source_file="main.c")
    b.call(busy)
    b.halt(0)
    return module


def setup(machine):
    for name in PERIPHERAL_NAMES:
        machine.attach_device(name, RegisterFile())


def main() -> None:
    board = stm32f4_discovery()
    module = build_firmware(board, rounds=20)
    artifacts = build_opec(module, board, [OperationSpec("Busy_Task")])

    op = artifacts.policy.operation_by_entry("Busy_Task")
    print(f"Busy_Task needs {len(op.windows)} merged peripheral windows "
          f"but only 3 MPU regions are reserved (R5-R7):")
    for window in op.windows:
        names = "+".join(p.name for p in window.peripherals)
        print(f"  0x{window.base:08X}+0x{window.size:<6X} {names}")

    result = run_image(artifacts.image, setup=setup)
    stats = result.machine.stats
    print(f"\nMemManage-driven region swaps: "
          f"{stats.peripheral_region_switches}")
    print(f"MemManage faults taken:        {stats.memmanage_faults}")

    vanilla = run_image(build_vanilla(build_firmware(board, 20), board),
                        setup=setup)
    overhead = result.cycles / vanilla.cycles - 1
    print(f"runtime overhead of virtualisation: {overhead:.2%}")
    assert stats.peripheral_region_switches > 0


if __name__ == "__main__":
    main()

"""Seeded random firmware generator for differential campaigns.

Every generated firmware is a plausible bare-metal application in the
shape the paper's workloads share — a ``main`` super-loop calling task
entry functions, per-task private state, shared globals with varied
accessor sets, GPIO output via MMIO, and an indirect-call dispatch
table — plus two deliberately planted features the attack injector
(:mod:`.attacks`) exercises:

* the **victim task** polls a mailbox peripheral (the board's I2C1
  window) and, when commanded, performs the PinLock-style arbitrary
  write (``inttoptr`` of an attacker-supplied address, §6.1); and
* a **gadget function**, statically reachable only from its owner
  task behind an impossible guard, that stamps a magic value into an
  owner-private flag — the payload a corrupted dispatch-table slot
  diverts control into.

Determinism: all choices come from one ``random.Random`` seeded with a
string derived from ``(seed, index)`` (string seeding hashes via
SHA-512, so the stream is independent of ``PYTHONHASHSEED``), and the
module is built in one fixed pass.  The same ``(seed, index)`` always
yields a structurally identical module, so its content digest — and
every build and simulation derived from it — is stable too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..hw.board import Board, stm32f4_discovery
from ..hw.machine import Machine
from ..hw.peripherals import GPIO
from ..ir.builder import define
from ..ir.module import Module
from ..ir.types import FunctionType, I8, I32, VOID, array, ptr
from ..partition.operations import OperationSpec

#: Mailbox window the victim task polls for injected writes.  I2C1 is
#: otherwise unused by generated firmware, so attaching the attack
#: port never collides with a task peripheral.
MAILBOX_PERIPHERAL = "I2C1"
MAILBOX_CMD = 0x0
MAILBOX_ADDR = 0x4
MAILBOX_VALUE = 0x8

#: GPIO ports tasks blink; GPIOD is reserved as the *forbidden*
#: peripheral no task touches (the peripheral-abuse attack target).
TASK_GPIO_PORTS = ("GPIOA", "GPIOB", "GPIOC")
FORBIDDEN_GPIO = "GPIOD"

#: Value the gadget stamps into its owner-private flag when a
#: corrupted dispatch slot hands it control.
GADGET_MAGIC = 0x0BADF00D
#: Private-state value guarding the gadget's only static call site;
#: task state is masked to 15 bits, so the guard never fires.
GADGET_TRIGGER = 0x7FFFFFF1

#: Simulated-instruction budget every generated firmware must halt
#: within on every flavour/backend (the property suite pins this).
INSTRUCTION_BUDGET = 200_000

_VOID_FN = FunctionType(VOID, ())


@dataclass
class GeneratedFirmware:
    """One corpus member plus the metadata the injector needs."""

    seed: int
    index: int
    module: Module
    board: Board
    specs: list[OperationSpec]
    tasks: list[str]
    victim: str                      # task with the mailbox write gadget
    gadget_owner: str                # task whose file owns gadget/flag
    victim_slot: int                 # dispatch slot the victim icalls
    shared_names: list[str]
    gpio_ports: dict[str, str] = field(default_factory=dict)
    max_instructions: int = INSTRUCTION_BUDGET

    @property
    def name(self) -> str:
        return self.module.name

    def attach_devices(self, machine: Machine) -> None:
        """GPIO models for every port a task drives, plus the
        forbidden port (mapped so only an enforcement policy — never a
        missing device — decides whether writes to it land)."""
        for port in (*TASK_GPIO_PORTS, FORBIDDEN_GPIO):
            machine.attach_device(port, GPIO())

    def base_setup(self) -> Callable[[Machine], None]:
        """Machine setup for an attack-free baseline run."""
        from .attacks import AttackPort

        def setup(machine: Machine) -> None:
            self.attach_devices(machine)
            machine.attach_device(MAILBOX_PERIPHERAL, AttackPort())

        return setup


def _mailbox_base(board: Board) -> int:
    return board.peripheral(MAILBOX_PERIPHERAL).base


def generate_firmware(seed: int, index: int = 0) -> GeneratedFirmware:
    """Build corpus member ``index`` of campaign ``seed``."""
    rng = random.Random(f"repro-campaign:{seed}:{index}")
    board = stm32f4_discovery()
    module = Module(f"campaign_s{seed}_f{index}")

    ntasks = rng.randint(3, 5)
    rounds = rng.randint(2, 4)
    nshared = rng.randint(4, 6)
    victim = rng.randrange(ntasks)
    gadget_owner = (victim + 1 + rng.randrange(ntasks - 1)) % ntasks

    # -- globals -------------------------------------------------------
    shared = [
        module.add_global(f"shared{j}", I32, rng.randint(1, 50),
                          source_file="shared.c")
        for j in range(nshared)
    ]
    # Random accessor subsets; every task joins at least three so each
    # ACES compartment needs more natural variable groups than
    # MAX_DATA_REGIONS and region merging (= PT over-privilege) kicks
    # in, mirroring the paper's Figure 3 pressure.
    accessors = [set(rng.sample(range(ntasks), k=rng.randint(2, ntasks)))
                 for _ in range(nshared)]
    for i in range(ntasks):
        open_slots = [j for j in range(nshared) if i not in accessors[j]]
        rng.shuffle(open_slots)
        while sum(1 for a in accessors if i in a) < 3 and open_slots:
            accessors[open_slots.pop()].add(i)

    privates = [
        module.add_global(f"task{i}_state", I32, rng.randint(1, 9),
                          source_file=f"task{i}.c")
        for i in range(ntasks)
    ]
    secrets = [
        module.add_global(f"task{i}_secret", I32, 0x5EC0 + i,
                          source_file=f"task{i}.c")
        for i in range(ntasks)
    ]
    gadget_flag = module.add_global("gadget_flag", I32, 0,
                                    source_file=f"task{gadget_owner}.c")
    dispatch = module.add_global("dispatch_table", array(ptr(I8), ntasks),
                                 source_file="main.c")

    gpio_ports = {
        f"task{i}": TASK_GPIO_PORTS[i % len(TASK_GPIO_PORTS)]
        for i in range(ntasks)
    }

    # -- helpers (indirect-call targets) -------------------------------
    helpers = []
    for i in range(ntasks):
        func, b = define(module, f"helper{i}", VOID, (),
                         source_file=f"task{i}.c")
        mine = [j for j in range(nshared) if i in accessors[j]]
        target = shared[rng.choice(mine)]
        value = b.load(target)
        b.store(b.and_(b.add(value, i + 1), 0xFFFF), target)
        b.ret_void()
        helpers.append(func)

    # -- gadget (hijack payload) ---------------------------------------
    gadget, b = define(module, "gadget", VOID, (),
                       source_file=f"task{gadget_owner}.c")
    b.store(GADGET_MAGIC, gadget_flag)
    b.ret_void()

    # -- tasks ---------------------------------------------------------
    mailbox = _mailbox_base(board)
    task_funcs = []
    victim_slot = 0
    for i in range(ntasks):
        func, b = define(module, f"task{i}", VOID, (),
                         source_file=f"task{i}.c")
        if i == victim:
            # The planted vulnerability: an attacker-directed write,
            # fed through the mailbox device (cf. the PinLock UART
            # exploit of §6.1).  CMD self-clears on read, so the write
            # fires exactly once per injected attack.
            cmd = b.load(b.mmio(mailbox + MAILBOX_CMD))
            with b.if_then(b.icmp("ne", cmd, 0)):
                addr = b.load(b.mmio(mailbox + MAILBOX_ADDR))
                value = b.load(b.mmio(mailbox + MAILBOX_VALUE))
                b.store(value, b.inttoptr(addr, I32))
        iterations = rng.randint(2, 4)
        step = rng.randint(1, 7)
        mine = [j for j in range(nshared) if i in accessors[j]]
        gpio = board.peripheral(gpio_ports[f"task{i}"])
        with b.for_range(0, iterations):
            state = b.load(privates[i])
            b.store(b.and_(b.add(state, step), 0x7FFF), privates[i])
            for j in mine:
                value = b.load(shared[j])
                b.store(b.and_(b.add(value, rng.randint(1, 5)), 0xFFFF),
                        shared[j])
            secret = b.load(secrets[i])
            mixed = b.xor(b.load(privates[i]), secret)
            b.store(b.and_(mixed, 0x7FFF), privates[i])
            b.store(b.load(privates[i]), b.mmio(gpio.base + GPIO.ODR))
        if i == gadget_owner:
            # Keeps the gadget statically reachable (so it joins this
            # task's operation/compartment) while never firing: state
            # is masked to 15 bits, the trigger needs 31.
            armed = b.icmp("eq", b.load(privates[i]), GADGET_TRIGGER)
            with b.if_then(armed):
                b.call(gadget)
        slot = rng.randrange(ntasks)
        if i == victim:
            victim_slot = slot
        handler = b.load(b.gep(dispatch, 0, slot))
        b.icall(b.ptrtoint(handler), _VOID_FN)
        b.ret_void()
        task_funcs.append(func)

    # -- main ----------------------------------------------------------
    _main, b = define(module, "main", I32, [], source_file="main.c")
    # A canary buffer occupies the top of main's frame so the
    # stack-smash attack has a target that is never live control state:
    # corrupting it must not change vanilla's halt code.
    canary = b.alloca(array(I8, 64), name="canary")
    b.store(0xAA, b.gep(canary, 0, 0))
    for i, helper in enumerate(helpers):
        b.store(b.inttoptr(b.ptrtoint(helper), I8),
                b.gep(dispatch, 0, i))
    with b.for_range(0, rounds):
        for func in task_funcs:
            b.call(func)
    checksum = b.alloca(I32, name="checksum")
    b.store(0, checksum)
    for gvar in shared:
        b.store(b.add(b.load(checksum), b.load(gvar)), checksum)
    b.halt(b.and_(b.load(checksum), 0xFFFF))

    return GeneratedFirmware(
        seed=seed,
        index=index,
        module=module,
        board=board,
        specs=[OperationSpec(f"task{i}") for i in range(ntasks)],
        tasks=[f"task{i}" for i in range(ntasks)],
        victim=f"task{victim}",
        gadget_owner=f"task{gadget_owner}",
        victim_slot=victim_slot,
        shared_names=[g.name for g in shared],
        gpio_ports=gpio_ports,
    )


def generate_corpus(seed: int, count: int) -> list[GeneratedFirmware]:
    """The first ``count`` corpus members of campaign ``seed``."""
    return [generate_firmware(seed, index) for index in range(count)]


__all__ = [
    "FORBIDDEN_GPIO",
    "GADGET_MAGIC",
    "GADGET_TRIGGER",
    "INSTRUCTION_BUDGET",
    "MAILBOX_ADDR",
    "MAILBOX_CMD",
    "MAILBOX_PERIPHERAL",
    "MAILBOX_VALUE",
    "TASK_GPIO_PORTS",
    "GeneratedFirmware",
    "generate_corpus",
    "generate_firmware",
]

"""Tiny crypto library authored in IR ("crypto.c").

PinLock hashes the received PIN and compares against the stored key
hash (§6.1).  FNV-1a is small, real, and data-dependent enough to
exercise the ALU path; CRC32 (bitwise) backs CoreMark's result
checking.
"""

from __future__ import annotations

from types import SimpleNamespace

from ...ir import I8, I32, Module, define, ptr

FNV_OFFSET = 0x811C9DC5
FNV_PRIME = 0x01000193


def add_crypto(module: Module) -> SimpleNamespace:
    p8 = ptr(I8)

    fnv1a, b = define(module, "fnv1a_hash", I32, [p8, I32],
                      source_file="crypto.c")
    data, length = fnv1a.params
    state = b.alloca(I32, name="h")
    b.store(FNV_OFFSET, state)
    with b.for_range(0, length) as load_i:
        i = load_i()
        byte = b.zext(b.load(b.gep(data, i)))
        mixed = b.xor(b.load(state), byte)
        b.store(b.mul(mixed, FNV_PRIME), state)
    b.ret(b.load(state))

    crc32_update, b = define(module, "crc32_update", I32, [I32, I32],
                             source_file="crypto.c")
    crc_in, byte = crc32_update.params
    crc = b.alloca(I32, name="crc")
    b.store(b.xor(crc_in, byte), crc)
    with b.for_range(0, 8):
        value = b.load(crc)
        lsb = b.and_(value, 1)
        shifted = b.lshr(value, 1)
        has_bit = b.icmp("ne", lsb, 0)
        poly = b.select(has_bit, 0xEDB88320, 0)
        b.store(b.xor(shifted, poly), crc)
    b.ret(b.load(crc))

    return SimpleNamespace(fnv1a=fnv1a, crc32_update=crc32_update)


def fnv1a_host(data: bytes) -> int:
    """Host-side mirror of ``fnv1a_hash`` (for test oracles/stimuli)."""
    state = FNV_OFFSET
    for byte in data:
        state = ((state ^ byte) * FNV_PRIME) & 0xFFFFFFFF
    return state

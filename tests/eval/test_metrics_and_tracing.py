"""Unit tests for the PT/ET metrics and the task tracer."""

import repro.ir as ir
from repro.eval.metrics import cumulative_ratio, et_value, pt_value, var2size
from repro.eval.tracing import trace_tasks
from repro.image import build_vanilla_image
from repro.ir import I32, VOID, GlobalVariable, array

from ..conftest import build_mini_module


def _vars(*sizes, const=False):
    return [GlobalVariable(f"v{i}", array(ir.I8, s), is_const=const)
            for i, s in enumerate(sizes)]


class TestVar2Size:
    def test_sums_writable_only(self):
        writable = _vars(4, 8)
        const = _vars(100, const=True)
        assert var2size(set(writable) | set(const)) == 12


class TestPT:
    def test_no_over_privilege_is_zero(self):
        vs = set(_vars(4, 4))
        assert pt_value(vs, vs) == 0.0

    def test_empty_accessible_is_zero(self):
        assert pt_value(set(), set(_vars(4))) == 0.0

    def test_ratio_by_bytes(self):
        a, b, c = _vars(4, 4, 8)
        accessible = {a, b, c}
        needed = {a}
        assert pt_value(accessible, needed) == (4 + 8) / 16

    def test_fully_unneeded_is_one(self):
        accessible = set(_vars(4))
        assert pt_value(accessible, set()) == 1.0


class TestET:
    def test_all_used_is_zero(self):
        vs = set(_vars(4, 4))
        assert et_value(vs, vs) == 0.0

    def test_none_used_is_one(self):
        needed = set(_vars(4, 4))
        assert et_value(set(), needed) == 1.0

    def test_no_needed_is_zero(self):
        assert et_value(set(_vars(4)), set()) == 0.0

    def test_used_outside_needed_ignored(self):
        a, b = _vars(4, 4)
        assert et_value({a, b}, {a}) == 0.0


class TestCumulative:
    def test_thresholds(self):
        values = [0.0, 0.25, 0.5, 1.0]
        assert cumulative_ratio(values, [0.0, 0.5, 1.0]) == [0.25, 0.75, 1.0]

    def test_empty_values(self):
        assert cumulative_ratio([], [0.0, 1.0]) == [1.0, 1.0]


class TestTaskTracer:
    def test_windows_capture_nested_functions(self, board):
        module = build_mini_module()
        image = build_vanilla_image(module, board)
        trace, result = trace_tasks(image, ["task_a", "task_b"])
        assert result.halt_code == 14
        assert trace.names_of("task_a") == {"task_a"}
        assert trace.invocations["task_a"] == 2
        assert trace.invocations["task_b"] == 1

    def test_nested_helpers_attributed_to_task(self, board):
        module = ir.Module("m")
        helper, hb = ir.define(module, "helper", VOID, [])
        hb.ret_void()
        task, tb = ir.define(module, "task", VOID, [])
        tb.call(helper)
        tb.ret_void()
        _m, mb = ir.define(module, "main", I32, [])
        mb.call(task)
        mb.halt(0)
        image = build_vanilla_image(module, board)
        trace, _ = trace_tasks(image, ["task"])
        assert trace.names_of("task") == {"task", "helper"}

    def test_functions_outside_windows_not_recorded(self, board):
        module = build_mini_module()
        image = build_vanilla_image(module, board)
        trace, _ = trace_tasks(image, ["task_a"])
        for names in trace.executed.values():
            assert "main" not in names

    def test_nested_entry_does_not_open_second_window(self, board):
        """A task entry reached *inside* another task's window belongs
        to the outer window: one invocation, attributed functions."""
        module = ir.Module("m")
        inner, b = ir.define(module, "inner_task", VOID, [])
        b.ret_void()
        outer, b = ir.define(module, "outer_task", VOID, [])
        b.call(inner)
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        b.call(outer)
        b.call(inner)  # a direct, window-opening invocation too
        b.halt(0)
        image = build_vanilla_image(module, board)
        trace, _ = trace_tasks(image, ["outer_task", "inner_task"])
        assert trace.invocations["outer_task"] == 1
        assert trace.invocations["inner_task"] == 1  # only the direct call
        assert trace.names_of("outer_task") == {"outer_task", "inner_task"}
        assert trace.names_of("inner_task") == {"inner_task"}

    def test_reentered_entry_window_closes_at_matching_depth(self, board):
        """A task entry that recurses closes its window only when the
        *outermost* activation returns."""
        module = ir.Module("m")
        leaf, b = ir.define(module, "leaf", VOID, [])
        b.ret_void()
        # task(0) calls task(1) — one level of recursion — then leaf.
        task, tb = ir.define(module, "task", VOID, [I32])
        with tb.if_then(tb.icmp("eq", task.params[0], 0)):
            tb.call(task, 1)
            tb.call(leaf)
        tb.ret_void()
        _m, mb = ir.define(module, "main", I32, [])
        mb.call(task, 0)
        mb.halt(0)
        image = build_vanilla_image(module, board)
        trace, _ = trace_tasks(image, ["task"])
        assert trace.invocations["task"] == 1  # one window, not two
        # leaf runs after the inner activation returned; the window is
        # still open (outermost activation) so it belongs to the task.
        assert "leaf" in trace.names_of("task")

    def test_irq_during_window_attributed_to_open_window(self, board):
        """Everything executed while a window is open belongs to the
        task — the GDB single-step semantics — including an interrupt
        handler that happens to fire mid-window."""
        module = ir.Module("m")
        ticks = module.add_global("uwTick", I32, 0)
        handler, b = ir.define(module, "SysTick_Handler", VOID, [],
                               irq_number=15)
        b.store(b.add(b.load(ticks), 1), ticks)
        b.ret_void()
        task, b = ir.define(module, "task", VOID, [])
        with b.for_range(0, 2000):  # ~14k cycles: several tick periods
            pass
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        b.store(999, b.mmio(0xE000E014))   # RVR: tick every 1000 cycles
        b.store(7, b.mmio(0xE000E010))     # CSR: ENABLE | TICKINT
        b.call(task)
        b.halt(b.load(ticks))
        image = build_vanilla_image(module, board)
        trace, result = trace_tasks(image, ["task"])
        assert result.halt_code >= 1  # the handler really fired
        # The first tick lands well inside task's loop, so the handler
        # executed with the window open and is attributed to the task.
        assert "SysTick_Handler" in trace.names_of("task")
        assert trace.invocations["task"] == 1
        # The handler is not an entry, so no window of its own.
        assert "SysTick_Handler" not in trace.invocations

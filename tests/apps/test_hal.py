"""Unit tests for the IR HAL drivers."""

import pytest

import repro.ir as ir
from repro.apps.hal.system import add_system_hal
from repro.apps.hal.uart import add_uart_hal
from repro.hw import Machine, stm32f4_discovery, stm32479i_eval
from repro.hw.peripherals import GPIO, RCC, UART
from repro.image import build_vanilla_image
from repro.interp import Interpreter
from repro.ir import I32, VOID


def run_main(module, board, setup=None, max_instructions=5_000_000):
    machine = Machine(board)
    if setup:
        setup(machine)
    image = build_vanilla_image(module, board)
    image.initialize_memory(machine)
    interp = Interpreter(machine, image, max_instructions=max_instructions)
    return interp.run(), machine


class TestSystemHal:
    def test_clock_config_updates_system_core_clock(self):
        board = stm32f4_discovery()
        module = ir.Module("m")
        system = add_system_hal(module, board)
        _m, b = ir.define(module, "main", I32, [])
        b.call(system.system_clock_config)
        b.halt(b.load(system.globals.system_core_clock))
        code, machine = run_main(
            module, board, lambda m: m.attach_device("RCC", RCC()))
        assert code == 168_000_000

    def test_systick_config_derives_reload_from_clock(self):
        board = stm32f4_discovery()
        module = ir.Module("m")
        system = add_system_hal(module, board)
        _m, b = ir.define(module, "main", I32, [])
        b.call(system.system_clock_config)
        b.call(system.systick_config, 1000)
        b.halt(b.load(b.mmio(0xE000E014)))  # RVR
        code, machine = run_main(
            module, board, lambda m: m.attach_device("RCC", RCC()))
        assert code == 168_000_000 // 1000 - 1

    def test_hal_tick_functions(self):
        board = stm32f4_discovery()
        module = ir.Module("m")
        system = add_system_hal(module, board)
        _m, b = ir.define(module, "main", I32, [])
        b.call(system.hal_delay, 25)
        b.halt(b.call(system.hal_get_tick))
        code, _ = run_main(module, board)
        assert code == 25

    def test_error_handler_halts_with_code(self):
        board = stm32f4_discovery()
        module = ir.Module("m")
        system = add_system_hal(module, board)
        _m, b = ir.define(module, "main", I32, [])
        b.call(system.error_handler, 0x42)
        b.halt(0)
        code, machine = run_main(module, board)
        assert code == 0xEE
        address = build_vanilla_image(module, board).global_address(
            system.globals.error_code)
        # Separate run shares no state; assert via a fresh execution.

    def test_gpio_write_read_roundtrip(self):
        board = stm32f4_discovery()
        module = ir.Module("m")
        system = add_system_hal(module, board)
        _m, b = ir.define(module, "main", I32, [])
        b.call(system.gpio["GPIOD"].init, 5, 1)
        b.call(system.gpio["GPIOD"].write, 5, 1)
        b.halt(0)
        gpio = GPIO()
        code, machine = run_main(
            module, board, lambda m: m.attach_device("GPIOD", gpio))
        assert gpio.pin_is_high(5)


class TestUartHal:
    def test_receive_fills_buffer(self):
        board = stm32f4_discovery()
        module = ir.Module("m")
        uart = add_uart_hal(module, board)
        buf = module.add_global("buf", ir.array(ir.I8, 4))
        _m, b = ir.define(module, "main", I32, [])
        b.call(uart.init)
        b.call(uart.receive_it, b.gep(buf, 0, 0), 4)
        b.halt(b.zext(b.load(b.gep(buf, 0, 3))))
        dev = UART(cycles_per_byte=10)
        dev.feed(b"wxyz")
        code, _ = run_main(
            module, board, lambda m: m.attach_device("USART2", dev))
        assert code == ord("z")

    def test_handle_counts_traffic(self):
        board = stm32f4_discovery()
        module = ir.Module("m")
        uart = add_uart_hal(module, board)
        _m, b = ir.define(module, "main", I32, [])
        b.call(uart.init)
        rx = b.call(uart.read_byte)
        b.call(uart.write_byte, rx)
        b.call(uart.write_byte, rx)
        b.halt(b.load(b.gep(uart.handle, 0, 4)))  # tx_count
        dev = UART(cycles_per_byte=10)
        dev.feed(b"!")
        code, machine = run_main(
            module, board, lambda m: m.attach_device("USART2", dev))
        assert code == 2
        assert machine.device("USART2").transmitted() == b"!!"

    def test_vulnerable_receive_normal_path_unchanged(self):
        board = stm32f4_discovery()
        module = ir.Module("m")
        uart = add_uart_hal(module, board, with_vulnerability=True)
        buf = module.add_global("buf", ir.array(ir.I8, 4))
        _m, b = ir.define(module, "main", I32, [])
        b.call(uart.init)
        b.call(uart.receive_it, b.gep(buf, 0, 0), 4)
        b.halt(b.zext(b.load(b.gep(buf, 0, 0))))
        dev = UART(cycles_per_byte=10)
        dev.feed(b"1234")
        code, _ = run_main(
            module, board, lambda m: m.attach_device("USART2", dev))
        assert code == ord("1")

"""On-disk store behaviour: round-trips, corruption, configuration."""

import hashlib

import pytest

from repro.cache.store import (
    ArtifactStore,
    CacheCounters,
    active_store,
    cache_root,
    reset_store_state,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(root=tmp_path / "cache")


def _digest(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


def test_put_get_roundtrip(store):
    payload = {"rows": [1, 2, 3], "name": "PinLock"}
    size = store.put(_digest("a"), payload)
    assert size > 0
    assert store.get(_digest("a")) == payload
    assert store.counters.stores == 1
    assert store.counters.hits == 1
    assert store.counters.bytes_written == size


def test_miss_on_absent_entry(store):
    assert store.get(_digest("absent")) is None
    assert store.counters.misses == 1
    assert store.counters.corrupt == 0


def test_corrupted_entry_falls_back_to_miss(store):
    digest = _digest("corrupt-me")
    store.put(digest, [1, 2, 3])
    path = store.path_for(digest)
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF  # flip a payload bit: hash check must catch it
    path.write_bytes(bytes(raw))
    assert store.get(digest) is None
    assert store.counters.corrupt == 1
    assert not path.exists()  # corrupt entries are evicted
    # The caller's cold rebuild repopulates the slot.
    store.put(digest, [1, 2, 3])
    assert store.get(digest) == [1, 2, 3]


def test_truncated_entry_falls_back_to_miss(store):
    digest = _digest("truncate-me")
    store.put(digest, {"x": 1})
    path = store.path_for(digest)
    path.write_bytes(path.read_bytes()[:10])
    assert store.get(digest) is None
    assert store.counters.corrupt == 1


def test_bad_magic_is_corrupt(store):
    digest = _digest("magic")
    store.put(digest, 42)
    store.path_for(digest).write_bytes(b"not-a-cache-entry\njunk\n")
    assert store.get(digest) is None
    assert store.counters.corrupt == 1


def test_verify_and_prune(store):
    for tag in ("a", "b", "c"):
        store.put(_digest(tag), tag)
    bad_path = store.path_for(_digest("b"))
    bad_path.write_bytes(b"garbage")
    ok, bad = store.verify()
    assert ok == 2 and bad == [bad_path]
    assert bad_path.exists()  # verify alone does not delete
    ok, bad = store.verify(prune=True)
    assert ok == 2 and not bad_path.exists()


def test_entry_count_bytes_and_clear(store):
    assert store.entry_count() == 0 and store.total_bytes() == 0
    store.put(_digest("a"), list(range(100)))
    store.put(_digest("b"), "text")
    assert store.entry_count() == 2
    assert store.total_bytes() > 0
    assert store.clear() == 2
    assert store.entry_count() == 0


def test_fingerprint_partitions_the_store(tmp_path):
    old = ArtifactStore(root=tmp_path, fingerprint="0" * 64)
    new = ArtifactStore(root=tmp_path, fingerprint="f" * 64)
    old.put(_digest("shared"), "stale")
    assert new.get(_digest("shared")) is None  # different version dir
    assert new.clear() == 1  # clear sweeps every fingerprint


def test_cache_root_configuration(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "/some/dir")
    assert str(cache_root()) == "/some/dir"
    for off in ("off", "OFF", "0", "none", "disabled", "false"):
        monkeypatch.setenv("REPRO_CACHE", off)
        assert cache_root() is None
        assert active_store() is None
    monkeypatch.delenv("REPRO_CACHE")
    assert cache_root() is not None  # default .repro-cache


def test_active_store_memoised_per_root(tmp_path, monkeypatch):
    reset_store_state()
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "one"))
    a = active_store()
    assert a is active_store()  # counters accumulate on one instance
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "two"))
    b = active_store()
    assert b is not a
    reset_store_state()


def test_counters_merge():
    total = CacheCounters()
    total.merge(CacheCounters(hits=2, bytes_read=10))
    total.merge({"hits": 1, "misses": 4, "bytes_written": 7})
    assert total.as_dict() == {
        "hits": 3, "misses": 4, "stores": 0, "corrupt": 0,
        "bytes_read": 10, "bytes_written": 7,
    }

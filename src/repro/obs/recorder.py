"""The flight recorder: a bounded ring buffer of structured events.

One :class:`FlightRecorder` instance collects the event stream of a
run (and, when installed as the ambient recorder, the host-side build
and cache events too).  The buffer is bounded — old events fall off
the front, like a hardware ETB — so it is always safe to leave
recording on; the tail is what a crash context needs.

Enablement is an *object-identity* question, not a flag check: code at
an emit seam reads ``machine.recorder`` (or :func:`active_recorder`)
and skips emission entirely when it is ``None``.  With tracing off the
hot interpreter loop executes no observability code at all — the
guards live only on cold seams (operation switches, faults, IRQ
dispatch), which is how the disabled-mode overhead stays near zero
(see ``benchmarks/bench_obs.py``).

Environment knobs (validated loudly, like ``REPRO_PROFILE``):

* ``REPRO_TRACE`` — ``off`` (default) or ``on``: whether runs started
  without an explicit recorder record events;
* ``REPRO_TRACE_BUF`` — ring capacity in events (default 65536);
  must parse as a positive integer.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Optional

from .events import (
    BEGIN,
    CRASH,
    DOMAIN_HOST,
    DOMAIN_SIM,
    END,
    Event,
    INSTANT,
)

DEFAULT_CAPACITY = 65536

#: Accepted ``REPRO_TRACE`` spellings.  Anything else raises.
TRACE_ON_VALUES = frozenset({"on", "1", "true", "yes", "enabled"})
TRACE_OFF_VALUES = frozenset({"", "off", "0", "none", "false", "disabled"})


def trace_enabled() -> bool:
    """Whether ``REPRO_TRACE`` asks for ambient recording.

    An unknown value fails loudly instead of silently recording (or
    silently not recording) — the same contract ``REPRO_PROFILE`` has.
    """
    raw = os.environ.get("REPRO_TRACE", "").strip().lower()
    if raw in TRACE_ON_VALUES:
        return True
    if raw in TRACE_OFF_VALUES:
        return False
    raise ValueError(
        f"unknown trace mode {raw!r} (REPRO_TRACE): expected one of "
        f"{', '.join(sorted(TRACE_ON_VALUES | (TRACE_OFF_VALUES - {''})))}")


def validate_capacity(value, source: str = "REPRO_TRACE_BUF") -> int:
    """Parse a ring capacity, failing loudly on non-positive values.

    Shared by the environment knob, ``repro trace --buf``, and the
    ``repro fleet`` knobs so every entry point rejects a bad capacity
    with the same wording instead of silently truncating (or crashing
    deep inside the deque constructor).
    """
    try:
        capacity = int(value)
    except (TypeError, ValueError):
        capacity = 0
    if capacity <= 0:
        raise ValueError(
            f"invalid ring capacity {value!r} ({source}): "
            "expected a positive integer")
    return capacity


def trace_capacity() -> int:
    """The configured ring capacity (``REPRO_TRACE_BUF``)."""
    raw = os.environ.get("REPRO_TRACE_BUF", "").strip()
    if not raw:
        return DEFAULT_CAPACITY
    return validate_capacity(raw, "REPRO_TRACE_BUF")


class FlightRecorder:
    """Bounded, deterministic structured-event sink."""

    __slots__ = ("capacity", "seq", "dropped", "_events")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.seq = 0
        self.dropped = 0
        self._events: deque[Event] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._events)

    # -- emission -----------------------------------------------------

    def emit(self, ph: str, kind: str, name: str, ts: Optional[int],
             domain: str = DOMAIN_SIM,
             args: Optional[dict] = None) -> Event:
        """Record one event.  ``ts`` is the DWT cycle count; pass
        ``None`` for host-domain events to timestamp with the sequence
        counter (deterministic ordering, no wall clock)."""
        seq = self.seq
        self.seq += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        event = Event(seq, seq if ts is None else ts, ph, kind, name,
                      domain, args)
        self._events.append(event)
        return event

    def begin(self, kind: str, name: str, ts: Optional[int],
              domain: str = DOMAIN_SIM,
              args: Optional[dict] = None) -> Event:
        return self.emit(BEGIN, kind, name, ts, domain, args)

    def end(self, kind: str, name: str, ts: Optional[int],
            domain: str = DOMAIN_SIM,
            args: Optional[dict] = None) -> Event:
        return self.emit(END, kind, name, ts, domain, args)

    def instant(self, kind: str, name: str, ts: Optional[int],
                domain: str = DOMAIN_SIM,
                args: Optional[dict] = None) -> Event:
        return self.emit(INSTANT, kind, name, ts, domain, args)

    # -- inspection ---------------------------------------------------

    def events(self, domain: Optional[str] = None) -> list[Event]:
        """A snapshot of the buffered events, optionally one domain."""
        if domain is None:
            return list(self._events)
        return [e for e in self._events if e.domain == domain]

    def tail(self, count: int) -> list[Event]:
        """The most recent ``count`` events (the crash window)."""
        if count <= 0:
            return []
        events = self._events
        if count >= len(events):
            return list(events)
        return list(events)[-count:]

    def clear(self) -> None:
        self._events.clear()
        self.seq = 0
        self.dropped = 0

    # -- crash context ------------------------------------------------

    def crash_context(self, count: int = 32) -> str:
        """The last ``count`` events, formatted for a fault report."""
        lines = [f"flight recorder: last {min(count, len(self._events))} "
                 f"of {self.seq} events ({self.dropped} dropped)"]
        for event in self.tail(count):
            args = "" if not event.args else " " + " ".join(
                f"{k}={event.args[k]}" for k in sorted(event.args))
            lines.append(
                f"  #{event.seq:<6d} ts={event.ts:<12d} {event.ph} "
                f"{event.kind:<16s} {event.name}{args}")
        return "\n".join(lines)


# -- ambient recorder -----------------------------------------------------
#
# The process-global recorder host-side seams (pipeline stages, cache
# traffic) and recorder-less runs emit into.  Configured lazily from
# the environment; ``install()`` overrides it (the CLI trace verb and
# tests use this), ``reset_active()`` forgets the memo so the
# environment is re-read.

_UNSET = object()
_active = _UNSET


def active_recorder() -> Optional[FlightRecorder]:
    """The ambient recorder, or ``None`` when tracing is off."""
    global _active
    if _active is _UNSET:
        _active = FlightRecorder(trace_capacity()) if trace_enabled() \
            else None
    return _active


def install(recorder: Optional[FlightRecorder]) -> Optional[FlightRecorder]:
    """Set the ambient recorder; returns the previous one (which may
    be ``None``, or the unset sentinel collapsed to ``None``)."""
    global _active
    previous = None if _active is _UNSET else _active
    _active = recorder
    return previous


def reset_active() -> None:
    """Forget the ambient recorder so the environment is re-read."""
    global _active
    _active = _UNSET


def attach_crash_context(error: BaseException,
                         recorder: Optional[FlightRecorder],
                         ts: Optional[int] = None,
                         count: int = 32) -> None:
    """Dump the recorder tail onto ``error`` as ``crash_context``.

    Called when a terminal fault escapes a run: the exception carries
    the last-N event window so the failure is diagnosable without
    re-running under a debugger.  No-op without a recorder.
    """
    if recorder is None:
        return
    recorder.instant(CRASH, type(error).__name__, ts,
                     args={"reason": str(error)})
    error.crash_context = recorder.crash_context(count)


__all__ = [
    "DEFAULT_CAPACITY", "DOMAIN_HOST", "DOMAIN_SIM", "FlightRecorder",
    "TRACE_OFF_VALUES", "TRACE_ON_VALUES", "active_recorder",
    "attach_crash_context", "install", "reset_active", "trace_capacity",
    "trace_enabled", "validate_capacity",
]

"""Unit tests for the metrics registry and the MachineStats shim."""

import pickle

import pytest

from repro.hw import Machine, MachineStats, stm32f4_discovery
from repro.obs.metrics import Counter, CycleHistogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        cell = Counter("n")
        cell.add()
        cell.add(4)
        cell.value += 2
        assert cell.value == 7
        assert cell.name == "n"


class TestCycleHistogram:
    def test_empty_histogram(self):
        hist = CycleHistogram("h")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.as_dict()["buckets"] == {}

    def test_observations_land_in_power_of_two_buckets(self):
        hist = CycleHistogram("h")
        for value in (0, 1, 2, 3, 4, 1000):
            hist.observe(value)
        assert hist.count == 6
        assert hist.total == 1010
        assert hist.min == 0
        assert hist.max == 1000
        data = hist.as_dict()
        # 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 1000 -> 10.
        assert data["buckets"] == {"<2^0": 1, "<2^1": 1, "<2^2": 2,
                                   "<2^3": 1, "<2^10": 1}
        assert data["mean"] == round(1010 / 6, 2)

    def test_huge_value_clamps_to_last_bucket(self):
        hist = CycleHistogram("h")
        hist.observe(1 << 40)
        assert hist.buckets[-1] == 1


class TestRegistry:
    def test_counter_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_sorted_and_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("z.last").value = 2
        registry.counter("a.first").value = 1
        registry.histogram("h").observe(5)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        assert snap["counters"]["z.last"] == 2
        assert snap["histograms"]["h"]["count"] == 1

    def test_render_contains_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("machine.loads").value = 42
        registry.histogram("monitor.switch_cycles").observe(100)
        text = registry.render("My title")
        assert text.startswith("My title")
        assert "machine.loads" in text and "42" in text
        assert "monitor.switch_cycles" in text


class TestRegistryMerge:
    """The roll-up path worker telemetry envelopes travel through."""

    @staticmethod
    def _registry(counters: dict, observations: dict) -> MetricsRegistry:
        registry = MetricsRegistry()
        for name, value in counters.items():
            registry.counter(name).value = value
        for name, values in observations.items():
            for value in values:
                registry.histogram(name).observe(value)
        return registry

    def test_merge_disjoint_histogram_keys(self):
        left = self._registry({}, {"a": [10, 20]})
        right = self._registry({}, {"b": [7]})
        left.merge(right)
        assert set(left.histograms) == {"a", "b"}
        assert left.histograms["a"].count == 2
        assert left.histograms["b"].count == 1
        assert left.histograms["b"].min == 7
        assert left.histograms["b"].max == 7

    def test_three_way_merge_is_order_independent(self):
        def parts():
            return [
                self._registry({"c": 1, "x": 5}, {"h": [3, 100]}),
                self._registry({"c": 2}, {"h": [0], "other": [9]}),
                self._registry({"x": 7}, {"other": [1 << 20]}),
            ]

        import itertools

        snapshots = []
        for order in itertools.permutations(range(3)):
            registries = parts()
            merged = MetricsRegistry()
            for index in order:
                merged.merge(registries[index])
            snapshots.append(merged.snapshot())
        assert all(snap == snapshots[0] for snap in snapshots[1:])
        assert snapshots[0]["counters"] == {"c": 3, "x": 12}
        assert snapshots[0]["histograms"]["h"]["min"] == 0
        assert snapshots[0]["histograms"]["h"]["max"] == 100

    def test_merge_after_pickle_round_trip(self):
        """The exact path worker envelopes take: registries pickled in
        the worker, unpickled and merged in the parent."""
        source = self._registry({"c": 4}, {"h": [2, 8, 32]})
        clone = pickle.loads(pickle.dumps(source))
        merged = MetricsRegistry()
        merged.merge(clone)
        merged.merge(source)
        assert merged.snapshot()["counters"] == {"c": 8}
        hist = merged.snapshot()["histograms"]["h"]
        assert hist["count"] == 6
        assert hist["total"] == 84
        assert clone.snapshot() == source.snapshot()


class TestMachineStatsShim:
    """The dataclass-era interface must keep working over the registry."""

    def test_attribute_reads_and_writes_hit_the_registry(self):
        machine = Machine(stm32f4_discovery())
        assert machine.stats.svc_calls == 0
        machine.stats.svc_calls += 1
        machine.stats.svc_calls += 1
        assert machine.stats.svc_calls == 2
        assert machine.metrics.counter("machine.svc_calls").value == 2

    def test_machine_counters_flow_through(self):
        machine = Machine(stm32f4_discovery())
        ram = machine.board.sram_base
        machine.store(ram, 4, 7)
        machine.load(ram, 4)
        assert machine.stats.stores == 1
        assert machine.stats.loads == 1
        assert machine.metrics.counter("machine.loads").value == 1

    def test_as_dict_covers_every_field(self):
        stats = MachineStats(MetricsRegistry())
        data = stats.as_dict()
        assert set(data) == set(MachineStats.FIELDS)
        assert all(v == 0 for v in data.values())

    def test_unknown_field_rejected(self):
        stats = MachineStats(MetricsRegistry())
        with pytest.raises(KeyError):
            stats.counter("not_a_field")

    def test_pickled_machine_keeps_counter_identity(self):
        machine = Machine(stm32f4_discovery())
        machine.stats.svc_calls += 3
        clone = pickle.loads(pickle.dumps(machine))
        # The shim and the registry must still share cells after a
        # pickle round-trip (cached RunResults are served this way).
        assert clone.stats.svc_calls == 3
        clone.stats.svc_calls += 1
        assert clone.metrics.counter("machine.svc_calls").value == 4
        assert machine.stats.svc_calls == 3  # clone is independent

    def test_recorder_never_pickled(self):
        from repro.obs import FlightRecorder

        machine = Machine(stm32f4_discovery())
        machine.recorder = FlightRecorder()
        machine.recorder.instant("k", "e", 0)
        clone = pickle.loads(pickle.dumps(machine))
        assert clone.recorder is None

"""Property-based tests for the MPU model and region math."""

from hypothesis import given, settings, strategies as st

from repro.hw import (
    MPU,
    MPURegion,
    align_base,
    is_power_of_two,
    region_size_for,
)
from repro.image import covering_regions

sizes = st.sampled_from([32 << i for i in range(20)])  # 32B .. 16MB
addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)


@st.composite
def regions(draw, number=None):
    size = draw(sizes)
    base = align_base(draw(addresses), size)
    return MPURegion(
        number=draw(st.integers(0, 7)) if number is None else number,
        base=base,
        size=size,
        priv=draw(st.sampled_from(["NA", "RO", "RW"])),
        unpriv=draw(st.sampled_from(["NA", "RO", "RW"])),
        subregion_disable=draw(st.integers(0, 255)),
    )


@given(st.integers(min_value=1, max_value=1 << 26))
def test_region_size_for_is_legal_and_minimal(length):
    size = region_size_for(length)
    assert is_power_of_two(size)
    assert size >= 32
    assert size >= length
    assert size == 32 or size // 2 < length


@given(addresses, sizes)
def test_align_base_produces_legal_base(address, size):
    base = align_base(address, size)
    assert base % size == 0
    assert base <= address < base + size


@given(regions(), addresses)
def test_matches_iff_inside_with_enabled_subregion(region, address):
    expected = (
        region.base <= address < region.end
        and not (region.subregion_disable >> region.subregion_of(address)) & 1
        if region.contains(address)
        else False
    )
    assert region.matches(address) == expected


@given(st.lists(regions(), min_size=1, max_size=8), addresses)
@settings(max_examples=200)
def test_highest_numbered_region_decides(region_list, address):
    mpu = MPU(enabled=True, privdefena=False)
    for region in region_list:
        mpu.set_region(region)
    winner = mpu.matching_region(address)
    matching = [r for r in mpu.regions if r is not None and r.matches(address)]
    if matching:
        assert winner is max(matching, key=lambda r: r.number)
        # Permission decision comes from the winner alone.
        assert mpu.allows(address, 1, False, False) == winner.permits(
            False, False)
    else:
        assert winner is None
        assert not mpu.allows(address, 1, False, False)


@given(regions())
def test_subregions_partition_the_region(region):
    total = sum(
        1 for a in range(region.base, region.end, region.subregion_size)
        if region.matches(a)
    )
    assert total == 8 - bin(region.subregion_disable).count("1")


@given(st.integers(min_value=0x40000000, max_value=0x5FFFF000),
       st.integers(min_value=1, max_value=0x4000))
@settings(max_examples=300)
def test_covering_regions_cover_and_are_legal(base, length):
    base &= ~3
    try:
        pieces = covering_regions(base, length)
    except ValueError:
        return  # explicitly reported as uncoverable within the budget
    assert pieces
    for piece_base, piece_size in pieces:
        assert is_power_of_two(piece_size)
        assert piece_size >= 32
        assert piece_base % piece_size == 0
    covered_start = min(b for b, _ in pieces)
    covered_end = max(b + s for b, s in pieces)
    assert covered_start <= base
    assert covered_end >= base + length


@given(st.lists(regions(), max_size=8))
def test_snapshot_restore_identity(region_list):
    mpu = MPU(enabled=True)
    for region in region_list:
        mpu.set_region(region)
    snap = mpu.snapshot()
    mpu.load_configuration([])
    mpu.restore(snap)
    assert mpu.regions == snap

"""The simulated machine: memories + MPU + privilege + cycle counter.

Every load/store the interpreter performs goes through
:meth:`Machine.load` / :meth:`Machine.store`, which apply the exact
checks the hardware would (§2):

1. PPB addresses are privileged-only — unprivileged access raises
   :class:`BusFault` (the hook OPEC uses for core-peripheral emulation);
2. the MPU arbitrates everything else — a denial raises
   :class:`MemManageFault` (the hook for peripheral-region
   virtualisation);
3. the access then reaches flash / SRAM / a device model.

The DWT-style cycle counter is advanced by the interpreter per
instruction and by the monitor for its own (privileged) work, so
runtime-overhead numbers (Figure 9) are deterministic.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Optional

from ..obs.metrics import Counter, MetricsRegistry
from .backend import BackendSpec, DEFAULT_BACKEND, create_backend
from .board import Board, PPB_BASE as _PPB_BASE, PPB_END as _PPB_END
from .exceptions import BusFault, MemManageFault
from .memory import FlashRegion, MemoryMap, MMIODevice, MMIORegion, RamRegion

# ARMv7-M exception number of the SysTick interrupt.
SYSTICK_IRQ = 15


class MachineStats:
    """Counters exposed to the evaluation harness.

    Historically a plain dataclass of ints; the values now live in the
    machine's :class:`~repro.obs.metrics.MetricsRegistry` (under
    ``machine.<field>``) and this class is the compatibility shim: the
    old attribute reads and ``stats.field += 1`` writes keep working,
    and ``as_dict()`` replaces ``dataclasses.asdict``.  Hot paths hold
    the underlying :class:`Counter` cells directly.
    """

    FIELDS = (
        "loads",
        "stores",
        "memmanage_faults",
        "bus_faults",
        "svc_calls",
        "peripheral_region_switches",
        "emulated_core_accesses",
        "micro_emulated_accesses",
    )

    __slots__ = ("registry", "_counters")

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = MetricsRegistry() if registry is None else registry
        self._counters = {field: self.registry.counter(f"machine.{field}")
                          for field in self.FIELDS}

    def counter(self, field: str) -> Counter:
        """The underlying registry cell for ``field`` (hot-path refs)."""
        return self._counters[field]

    def as_dict(self) -> dict[str, int]:
        return {field: self._counters[field].value for field in self.FIELDS}

    def __repr__(self) -> str:
        inner = ", ".join(f"{f}={self._counters[f].value}"
                          for f in self.FIELDS)
        return f"MachineStats({inner})"


def _stat_property(field: str) -> property:
    def _get(self: MachineStats) -> int:
        return self._counters[field].value

    def _set(self: MachineStats, value: int) -> None:
        self._counters[field].value = value

    return property(_get, _set)


for _field in MachineStats.FIELDS:
    setattr(MachineStats, _field, _stat_property(_field))
del _field


class Machine:
    """One simulated microcontroller.

    ``backend`` selects the memory-isolation substrate — a registry
    name (``"mpu"`` / ``"pmp"`` / ``"overlay"``) or a ready
    :class:`~repro.hw.backend.EnforcementBackend` instance.  It lives
    in ``machine.enforcement``; ``machine.mpu`` remains as a
    read/write alias because the MPU was the only substrate for most
    of this codebase's life.
    """

    def __init__(self, board: Board, backend: BackendSpec = DEFAULT_BACKEND):
        self.board = board
        self.memory = MemoryMap()
        self.flash = FlashRegion("flash", board.flash_base, board.flash_size)
        self.sram = RamRegion("sram", board.sram_base, board.sram_size)
        self.memory.map(self.flash)
        self.memory.map(self.sram)
        self.enforcement = create_backend(backend)
        self.privileged = True
        self.base_privilege = True
        self.cycles = 0
        # A deque: the interpreter delivers from the left once per
        # instruction boundary, devices latch on the right.
        self.pending_irqs: deque[int] = deque()
        self._systick_armed = False
        self._systick_period = 0
        self._systick_next = 0
        self.metrics = MetricsRegistry()
        self.stats = MachineStats(self.metrics)
        # Flight recorder, or None (the default): emit seams check
        # identity, so disabled tracing costs nothing on hot paths.
        self.recorder = None
        # Hot-path counter cells — load/store fire per instruction.
        self._n_loads = self.stats.counter("loads")
        self._n_stores = self.stats.counter("stores")
        self._n_bus_faults = self.stats.counter("bus_faults")
        self._n_memmanage = self.stats.counter("memmanage_faults")
        # Epoch-scoped arbitration fast path: the block compiler's
        # inlined accesses call ``_fp_allows`` after validating that
        # ``(_fp_backend, _fp_epoch)`` still matches the live backend
        # (see ``_refresh_fast_path``).
        self._fp_backend = None
        self._fp_epoch = -1
        self._fp_allows = None
        self.devices: dict[str, MMIODevice] = {}
        # Core PPB peripherals exist on every ARMv7-M part.
        from .peripherals.core import DWT, SCB, SysTick

        self.attach_device("DWT", DWT())
        self.attach_device("SysTick", SysTick())
        self.attach_device("SCB", SCB())

    # -- device attachment -------------------------------------------

    def attach_device(self, peripheral_name: str, device: MMIODevice) -> MMIODevice:
        """Map a device model at its board-defined window."""
        peripheral = self.board.peripheral(peripheral_name)
        self.memory.map(
            MMIORegion(peripheral.name, peripheral.base, peripheral.size, device)
        )
        self.devices[peripheral_name] = device
        setattr(device, "machine", self)
        return device

    def device(self, name: str) -> MMIODevice:
        return self.devices[name]

    # -- enforcement backend alias ------------------------------------
    #
    # Historical name: every caller said `machine.mpu` when the MPU was
    # the only substrate.  The property keeps that spelling working
    # (including `use_pmp`-style swaps) over the generic attribute.

    @property
    def mpu(self):
        return self.enforcement

    @mpu.setter
    def mpu(self, backend) -> None:
        self.enforcement = backend

    # -- privilege ----------------------------------------------------
    #
    # `privileged` is the effective level; `base_privilege` is the
    # thread level execution returns to after an exception handler.  A
    # handler may change `base_privilege` (ACES' compartment lifting);
    # OPEC never does.

    def drop_privilege(self) -> None:
        """Enter unprivileged execution (monitor init, §5.1)."""
        self.base_privilege = False
        self.privileged = False

    def set_base_privilege(self, privileged: bool) -> None:
        """Set the thread privilege level execution resumes at."""
        self.base_privilege = privileged

    @contextmanager
    def privileged_mode(self):
        """Run a block at the privileged level (exception entry)."""
        self.privileged = True
        try:
            yield
        finally:
            self.privileged = self.base_privilege

    # -- cycle accounting and interrupt timing ---------------------------

    def consume(self, cycles: int) -> None:
        self.cycles += cycles
        if self._systick_armed and self.cycles >= self._systick_next:
            self._systick_fire()

    def _systick_fire(self) -> None:
        """Pend a SysTick and re-arm past the current time.

        Shared by :meth:`consume` and the block compiler's inlined
        cycle charging, so coalescing behaves identically: a long
        stall produces one tick, not an interrupt storm.
        """
        self.pending_irqs.append(SYSTICK_IRQ)
        period = self._systick_period
        self._systick_next += (
            (self.cycles - self._systick_next) // period + 1
        ) * period

    # -- interrupts ------------------------------------------------------

    def raise_irq(self, number: int) -> None:
        """Device-side: latch an interrupt for the CPU."""
        self.pending_irqs.append(number)

    def arm_systick(self, reload: int) -> None:
        """SysTick device hook: periodic tick every ``reload+1`` cycles."""
        self._systick_period = max(reload + 1, 32)
        self._systick_next = self.cycles + self._systick_period
        self._systick_armed = True

    def disarm_systick(self) -> None:
        self._systick_armed = False

    # -- checked accesses ------------------------------------------------

    def _refresh_fast_path(self):
        """(Re)bind the epoch-scoped arbitration fast path.

        Called whenever a compiled access finds the cached
        ``(_fp_backend, _fp_epoch)`` token stale — after a
        configuration epoch bump, a backend swap, or on first use.
        Returns the fresh callable so callers can use it in place.
        """
        enforcement = self.enforcement
        fast = enforcement.fast_allows()
        self._fp_backend = enforcement
        self._fp_epoch = enforcement.epoch
        self._fp_allows = fast
        return fast

    def load(self, address: int, size: int) -> int:
        """A data read issued by executing code (MPU/PPB-checked)."""
        self._n_loads.value += 1
        privileged = self.privileged
        if not privileged and _PPB_BASE <= address < _PPB_END:
            self._n_bus_faults.value += 1
            raise BusFault(address, size, False, value=0, is_ppb=True)
        if not self.enforcement.allows(address, size, privileged, False):
            self._n_memmanage.value += 1
            raise MemManageFault(address, size, False, value=0)
        return self.memory.read(address, size)

    def store(self, address: int, size: int, value: int) -> None:
        """A data write issued by executing code (MPU/PPB-checked)."""
        self._n_stores.value += 1
        privileged = self.privileged
        if not privileged and _PPB_BASE <= address < _PPB_END:
            self._n_bus_faults.value += 1
            raise BusFault(address, size, True, value=value, is_ppb=True)
        if not self.enforcement.allows(address, size, privileged, True):
            self._n_memmanage.value += 1
            raise MemManageFault(address, size, True, value=value)
        self.memory.write(address, size, value)

    def _check(self, address: int, size: int, write: bool, value: int = 0) -> None:
        if Board.is_ppb(address) and not self.privileged:
            self._n_bus_faults.value += 1
            raise BusFault(address, size, write, value=value, is_ppb=True)
        if not self.enforcement.allows(address, size, self.privileged, write):
            self._n_memmanage.value += 1
            raise MemManageFault(address, size, write, value=value)

    # -- unchecked accesses (privileged monitor / DMA / loader) ----------

    def read_direct(self, address: int, size: int) -> int:
        return self.memory.read(address, size)

    def write_direct(self, address: int, size: int, value: int) -> None:
        self.memory.write(address, size, value)

    def read_bytes(self, address: int, length: int) -> bytes:
        return self.memory.read_bytes(address, length)

    def write_bytes(self, address: int, blob: bytes) -> None:
        self.memory.write_bytes(address, blob)

    def program_flash(self, address: int, blob: bytes) -> None:
        """Burn the firmware image (loader path, not a runtime store)."""
        self.flash.program(address, blob)

    def __getstate__(self) -> dict:
        # The recorder is a live observation buffer, not machine state:
        # cached RunResults must not carry one run's event stream into
        # another's (it would also defeat cache-temperature determinism).
        state = dict(self.__dict__)
        state["recorder"] = None
        # The arbitration fast path is a closure (unpicklable) and is
        # epoch-scoped anyway: a rehydrated machine rebinds on demand.
        state["_fp_backend"] = None
        state["_fp_epoch"] = -1
        state["_fp_allows"] = None
        return state

    def __repr__(self) -> str:
        mode = "priv" if self.privileged else "unpriv"
        return f"<Machine {self.board.name} [{mode}] cycles={self.cycles}>"

"""Persistent compiled-closure cache: warm runs skip codegen entirely.

PR 7's superinstruction compiler and this PR's trace fuser both spend
their one-time cost on Python codegen — emitting source and running
``compile()``/``exec`` for every executed block.  That cost repeats in
every process, which is exactly the shape the PR 3 artifact store was
built for.  This module persists the *metadata* needed to rebuild each
closure — never the closure object itself:

* the closure's code object, via :mod:`marshal` (versioned by the
  CPython cache tag inside :func:`repro.cache.digest.closures_digest`);
* a locator per namespace binding — instructions, parameters, blocks,
  globals and functions are named by ``(function name, indexes)``
  within the module, and re-resolved against the freshly built module
  on load.  Static bindings (exception types, helpers) are re-added
  from the live tree.

Entries are keyed by the module digest and live inside the store's
pipeline-fingerprint directory, so any source change — including to
the compilers whose output is being cached — invalidates the bundle
wholesale.  A ``None`` entry records a rejected block/trace so warm
runs skip the rejection work too.  Anything unserialisable (an exotic
value bound via the escape path) is simply omitted and recompiles on
the warm run.

State is tracked per module in a :class:`weakref.WeakKeyDictionary` —
deliberately not a module attribute, so nothing rides along when a
module is pickled into the artifact store by the build cache.
"""

from __future__ import annotations

import builtins
import marshal
import types
import weakref
from typing import Any, Optional

from ..cache.digest import closures_digest
from ..cache.store import active_store
from ..hw.exceptions import BusFault, HardFault, MemManageFault
from ..ir.function import BasicBlock, Function
from ..ir.instructions import Instruction
from ..ir.module import Module
from ..ir.values import GlobalVariable, Parameter

#: Namespace entries that are process state, not module references —
#: skipped on serialisation and re-bound from the live tree on load.
_STATIC_NAMES = frozenset({
    "BusFault", "MemManageFault", "HardFault", "ExecutionLimitExceeded",
    "_ts", "_tdiv", "_undef", "__builtins__", "__block", "__trace",
})

_MISSING = object()

_states: "weakref.WeakKeyDictionary[Module, _CacheState]" = \
    weakref.WeakKeyDictionary()


class _Unserializable(Exception):
    """A namespace binding has no stable locator within the module."""


class _CacheState:
    """Per-module bookkeeping: one load, save-on-halt when dirty."""

    __slots__ = ("digest", "dirty", "blocks_loaded", "traces_loaded")

    def __init__(self, digest: str):
        self.digest = digest
        self.dirty = False
        self.blocks_loaded = 0
        self.traces_loaded = 0


def _static_ns() -> dict:
    from .blockcompile import _undef  # runtime import: no module cycle
    from .interpreter import (
        ExecutionLimitExceeded,
        _to_signed,
        _trunc_div,
    )

    return {
        "BusFault": BusFault,
        "MemManageFault": MemManageFault,
        "HardFault": HardFault,
        "ExecutionLimitExceeded": ExecutionLimitExceeded,
        "_ts": _to_signed,
        "_tdiv": _trunc_div,
        "_undef": _undef,
        "__builtins__": builtins,
    }


# -- locators ------------------------------------------------------------


def _index_of(seq, item) -> int:
    """Identity-based index (Value subclasses may define ``__eq__``)."""
    for i, candidate in enumerate(seq):
        if candidate is item:
            return i
    raise _Unserializable(repr(item))


def _block_key(block: BasicBlock) -> tuple[str, int]:
    function = block.parent
    if function is None:
        raise _Unserializable(repr(block))
    return function.name, _index_of(function.blocks, block)


def _encode_binding(name: str, value: Any, home: Function) -> tuple:
    if isinstance(value, GlobalVariable):
        return name, "global", value.name
    if isinstance(value, Function):
        return name, "function", value.name
    if isinstance(value, BasicBlock):
        return name, "block", _block_key(value)
    if isinstance(value, Parameter):
        # Operand binding only ever reaches the enclosing function's
        # parameters; anything else has no locator.
        return name, "param", (home.name, _index_of(home.params, value))
    if isinstance(value, Instruction):
        block = value.parent
        if block is None:
            raise _Unserializable(name)
        fname, bidx = _block_key(block)
        return name, "inst", (fname, bidx,
                              _index_of(block.instructions, value))
    raise _Unserializable(name)


def _decode_binding(kind: str, locator, module: Module) -> Any:
    if kind == "global":
        return module.get_global(locator)
    if kind == "function":
        return module.get_function(locator)
    if kind == "block":
        fname, bidx = locator
        return module.get_function(fname).blocks[bidx]
    if kind == "param":
        fname, pidx = locator
        return module.get_function(fname).params[pidx]
    if kind == "inst":
        fname, bidx, iidx = locator
        return module.get_function(fname).blocks[bidx].instructions[iidx]
    raise ValueError(f"unknown binding kind {kind!r}")


# -- closure <-> entry ---------------------------------------------------


def _encode_closure(fn, home: Function) -> dict:
    bindings = []
    for name, value in fn.__globals__.items():
        if name in _STATIC_NAMES:
            continue
        bindings.append(_encode_binding(name, value, home))
    return {
        "code": marshal.dumps(fn.__code__),
        "bindings": bindings,
        "source": getattr(fn, "__repro_source__", ""),
        "batched": bool(getattr(fn, "__repro_batched__", False)),
    }


def _decode_closure(entry: dict, module: Module, name: str):
    ns = _static_ns()
    for bname, kind, locator in entry["bindings"]:
        ns[bname] = _decode_binding(kind, locator, module)
    fn = types.FunctionType(marshal.loads(entry["code"]), ns, name)
    ns[name] = fn  # mirror what exec left behind
    fn.__repro_source__ = entry["source"]
    fn.__repro_batched__ = entry["batched"]
    return fn


# -- public API ----------------------------------------------------------


def preload(module: Module) -> tuple[int, int]:
    """Apply the module's cached closures, once per module instance.

    Returns ``(blocks, traces)`` applied on the call that actually
    loaded; subsequent calls (further interpreters, batch lanes) are
    ``(0, 0)`` no-ops.  With no active store the module stays
    untracked so a store appearing later can still load.
    """
    if _states.get(module) is not None:
        return 0, 0
    store = active_store()
    if store is None:
        return 0, 0
    state = _CacheState(closures_digest(module))
    _states[module] = state
    payload = store.get(state.digest)
    if not isinstance(payload, dict):
        return 0, 0
    blocks = traces = 0
    for (fname, bidx), entry in payload.get("blocks", {}).items():
        block = _resolve_block(module, fname, bidx)
        if block is None or getattr(block, "_compiled", _MISSING) \
                is not _MISSING:
            continue
        if entry is None:
            block._compiled = None
            blocks += 1
            continue
        fn = _try_decode(entry, module, "__block")
        if fn is not None:
            block._compiled = fn
            blocks += 1
    for (fname, bidx), entry in payload.get("traces", {}).items():
        block = _resolve_block(module, fname, bidx)
        if block is None:
            continue
        current = getattr(block, "_trace", _MISSING)
        if current is not _MISSING and current.__class__ is not int:
            continue
        if entry is None:
            block._trace = None
            traces += 1
            continue
        fn = _try_decode(entry, module, "__trace")
        if fn is None:
            continue
        try:
            chain = tuple(
                module.get_function(cf).blocks[cb]
                for cf, cb in entry["chain"])
        except Exception:
            continue
        fn.__repro_chain__ = chain
        block._trace = fn
        traces += 1
    state.blocks_loaded = blocks
    state.traces_loaded = traces
    return blocks, traces


def _resolve_block(module: Module, fname: str,
                   bidx: int) -> Optional[BasicBlock]:
    try:
        return module.get_function(fname).blocks[bidx]
    except Exception:
        return None


def _try_decode(entry: dict, module: Module, name: str):
    try:
        return _decode_closure(entry, module, name)
    except Exception:
        # A stale or hand-damaged entry degrades to a recompile, never
        # to a failed run (the store already hash-verifies payloads).
        return None


def note_compiled(module: Module) -> None:
    """Mark the module's bundle stale; save() persists it at halt."""
    state = _states.get(module)
    if state is not None:
        state.dirty = True


def save(module: Module) -> int:
    """Persist every cached closure of ``module``; returns entry bytes.

    No-op unless :func:`note_compiled` ran since the last save and a
    store is active.  Serialisation walks the module (not a journal of
    compilations) so lanes sharing the module all contribute.
    """
    state = _states.get(module)
    if state is None or not state.dirty:
        return 0
    store = active_store()
    if store is None:
        return 0
    payload: dict = {"blocks": {}, "traces": {}}
    for function in module.functions.values():
        for bidx, block in enumerate(function.blocks):
            key = (function.name, bidx)
            fn = getattr(block, "_compiled", _MISSING)
            if fn is not _MISSING:
                if fn is None:
                    payload["blocks"][key] = None
                else:
                    try:
                        payload["blocks"][key] = _encode_closure(
                            fn, function)
                    except _Unserializable:
                        pass
            tr = getattr(block, "_trace", _MISSING)
            if tr is _MISSING or tr.__class__ is int:
                continue  # heat counters are run state, not artifacts
            if tr is None:
                payload["traces"][key] = None
                continue
            try:
                entry = _encode_closure(tr, function)
                entry["chain"] = [_block_key(b)
                                  for b in tr.__repro_chain__]
                payload["traces"][key] = entry
            except _Unserializable:
                pass
    state.dirty = False
    return store.put(state.digest, payload)


__all__ = ["preload", "note_compiled", "save"]

"""Unit tests for the textual IR printer."""

import repro.ir as ir
from repro.ir import I32, VOID, print_function, print_module


def test_print_function_contains_opcodes(mini_module):
    text = print_function(mini_module.get_function("task_a"))
    assert "define void @task_a()" in text
    assert "load" in text
    assert "store" in text
    assert "ret void" in text


def test_print_module_lists_globals_and_structs():
    module = ir.Module("m")
    module.struct("pair", [("a", I32), ("b", I32)])
    module.add_global("g", I32, 1)
    module.add_global("k", I32, 2, is_const=True)
    _f, b = ir.define(module, "f", VOID, [])
    b.ret_void()
    text = print_module(module)
    assert "%pair = type" in text
    assert "@g = global i32" in text
    assert "@k = constant i32" in text


def test_print_declaration():
    module = ir.Module("m")
    module.declare_function("ext", ir.FunctionType(VOID, [I32]))
    text = print_module(module)
    assert "declare void @ext(i32 %arg0)" in text


def test_print_control_flow(mini_module):
    text = print_function(mini_module.get_function("main"))
    assert "call void @task_a()" in text
    assert "halt i32" in text


def test_print_branches():
    module = ir.Module("m")
    _f, b = ir.define(module, "f", I32, [])
    with b.if_then(b.icmp("eq", 1, 1)):
        pass
    b.halt(0)
    text = print_function(module.get_function("f"))
    assert "br" in text
    assert "label %then" in text
    assert "icmp eq" in text

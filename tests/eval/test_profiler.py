"""Tests for the per-function cycle profiler."""

import repro.ir as ir
from repro import build_opec, build_vanilla
from repro.eval.profiler import profile_image
from repro.hw import stm32f4_discovery
from repro.ir import I32, VOID

from ..conftest import MINI_SPECS, build_mini_module


def _heavy_module():
    module = ir.Module("prof")
    light, b = ir.define(module, "light", VOID, [])
    b.ret_void()
    heavy, b = ir.define(module, "heavy", VOID, [])
    with b.for_range(0, 500):
        pass
    b.ret_void()
    _m, b = ir.define(module, "main", I32, [])
    b.call(light)
    b.call(heavy)
    b.call(light)
    b.halt(0)
    return module


class TestProfiler:
    def test_attribution_shape(self, board):
        profile = profile_image(build_vanilla(_heavy_module(), board))
        heavy = profile.functions["heavy"]
        light = profile.functions["light"]
        assert heavy.self_cycles > light.self_cycles * 10
        assert heavy.calls == 1
        assert light.calls == 2

    def test_total_includes_callees(self, board):
        profile = profile_image(build_vanilla(_heavy_module(), board))
        main = profile.functions["main"]
        heavy = profile.functions["heavy"]
        assert main.total_cycles >= heavy.total_cycles
        assert main.self_cycles < main.total_cycles

    def test_cycles_sum_to_run_total(self, board):
        profile = profile_image(build_vanilla(_heavy_module(), board))
        total_self = sum(p.self_cycles for p in profile.functions.values())
        assert total_self == profile.total_cycles

    def test_opec_run_shows_switch_overhead_in_main(self, board):
        """Under OPEC, the SVC/switch cost lands in the caller's self
        time — visible as main's self-cycles growing vs the baseline."""
        vanilla = profile_image(build_vanilla(build_mini_module(), board))
        artifacts = build_opec(build_mini_module(), board, MINI_SPECS)
        opec = profile_image(artifacts.image)
        assert opec.halt_code == vanilla.halt_code
        assert opec.functions["main"].self_cycles > \
            vanilla.functions["main"].self_cycles

    def test_render(self, board):
        profile = profile_image(build_vanilla(_heavy_module(), board))
        text = profile.render()
        assert "heavy" in text
        assert "Self %" in text

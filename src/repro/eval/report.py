"""Plain-text rendering helpers for the evaluation harness.

All tables/figures are printed as aligned text (the environment has no
plotting stack); figures additionally expose their raw series so tests
and downstream tooling can consume the data directly.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(series: dict[str, float], width: int = 50,
                unit: str = "%") -> str:
    """A horizontal ASCII bar chart (one bar per labelled value)."""
    if not series:
        return "(no data)"
    peak = max(abs(v) for v in series.values()) or 1.0
    label_width = max(len(k) for k in series)
    lines = []
    for label, value in series.items():
        bar = "#" * max(1, round(abs(value) / peak * width))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)

"""Evaluation harness: every table and figure of §6.

Run any generator directly::

    python -m repro.eval.table1
    python -m repro.eval.figure9
    python -m repro.eval.table2
    python -m repro.eval.figure10
    python -m repro.eval.figure11
    python -m repro.eval.table3

or everything at once: ``python -m repro.eval.report_all``.
Set ``REPRO_PROFILE=quick`` to downscale the workloads.
"""

from . import (
    export,
    figure9,
    figure10,
    figure11,
    metrics,
    profiler,
    report,
    table1,
    table2,
    table3,
)
from .profiler import CycleProfiler, Profile, profile_image
from .tracing import TaskTrace, TaskTracer, trace_tasks
from .workloads import (
    APP_NAMES,
    aces_artifacts,
    build_app,
    clear_caches,
    opec_artifacts,
    run_build,
)

__all__ = [
    "export", "figure9", "figure10", "figure11", "metrics", "profiler",
    "report", "table1", "table2", "table3",
    "CycleProfiler", "Profile", "profile_image",
    "TaskTrace", "TaskTracer", "trace_tasks",
    "APP_NAMES", "aces_artifacts", "build_app", "clear_caches",
    "opec_artifacts", "run_build",
]

"""Tests for backend selection in the evaluation harness and the
comparative backend matrix."""

import pytest

from repro.cache.digest import run_digest
from repro.cli import BACKEND_CHOICES, build_parser
from repro.hw.backend import (
    DEFAULT_BACKEND,
    KNOWN_BACKENDS,
    active_backend,
    create_backend,
)
from repro.hw.mpu import MPU
from repro.hw.overlay import OverlayProtection
from repro.hw.pmp import PmpProtection
from repro.eval import backends as backends_mod
from repro.eval.workloads import run_build


class TestBackendRegistry:
    def test_create_backend_by_name(self):
        assert isinstance(create_backend("mpu"), MPU)
        assert isinstance(create_backend("pmp"), PmpProtection)
        assert isinstance(create_backend("overlay"), OverlayProtection)

    def test_create_backend_passes_instances_through(self):
        overlay = OverlayProtection()
        assert create_backend(overlay) is overlay

    def test_unknown_backend_fails_loudly(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown enforcement backend"):
            create_backend("mmu")
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError, match="bogus"):
            active_backend()

    def test_ambient_backend_defaults_and_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert active_backend() == DEFAULT_BACKEND
        monkeypatch.setenv("REPRO_BACKEND", "overlay")
        assert active_backend() == "overlay"

    def test_cli_choices_match_known_backends(self):
        """The CLI spells the choices out (parser construction must not
        import the package); this pins the parity."""
        assert BACKEND_CHOICES == list(KNOWN_BACKENDS)

    def test_eval_parser_accepts_backends_target(self):
        args = build_parser().parse_args(
            ["eval", "backends", "--backend", "pmp"])
        assert args.target == "backends"
        assert args.backend == "pmp"


class TestRunCacheSeparation:
    def test_run_digest_differs_per_backend(self):
        digests = {run_digest("b" * 64, "PinLock", "quick", backend=b)
                   for b in KNOWN_BACKENDS}
        assert len(digests) == len(KNOWN_BACKENDS)

    def test_run_build_memoises_per_backend(self):
        mpu = run_build("PinLock", "opec", profile="quick", backend="mpu")
        overlay = run_build("PinLock", "opec", profile="quick",
                            backend="overlay")
        assert mpu is not overlay
        assert mpu is run_build("PinLock", "opec", profile="quick",
                                backend="mpu")

    def test_vanilla_cycles_are_backend_independent(self):
        cycles = {run_build("PinLock", "vanilla", profile="quick",
                            backend=b).cycles for b in KNOWN_BACKENDS}
        assert len(cycles) == 1


class TestMatrix:
    @pytest.fixture(scope="class")
    def cells(self):
        return {b: backends_mod.compute_cell("PinLock", b, "quick")
                for b in KNOWN_BACKENDS}

    def test_policy_properties_are_backend_invariant(self, cells):
        assert len({c.switches for c in cells.values()}) == 1
        assert len({c.memmanage_faults for c in cells.values()}) == 1
        assert len({c.region_swaps for c in cells.values()}) == 1
        assert len({c.pt_avg for c in cells.values()}) == 1

    def test_switch_costs_order_the_backends(self, cells):
        assert (cells["overlay"].switch_cycles
                < cells["mpu"].switch_cycles
                < cells["pmp"].switch_cycles)
        assert (cells["overlay"].cycles
                < cells["mpu"].cycles
                < cells["pmp"].cycles)

    def test_render_is_deterministic_and_complete(self):
        rows = backends_mod.compute_matrix(apps=("PinLock",), jobs=1)
        text = backends_mod.render(rows)
        assert text == backends_mod.render(rows)
        for backend in KNOWN_BACKENDS:
            assert backend in text
        assert "Average" in text

"""Differential security campaigns (ROADMAP item 4).

A campaign takes a seed, generates a corpus of random-but-plausible
firmwares (:mod:`.generator`), injects attacks through a host-side
mailbox device (:mod:`.attacks`), runs every (firmware, attack) pair
under vanilla / OPEC / ACES on each enforcement backend
(:mod:`.engine`, fanned out over ``REPRO_JOBS`` worker processes with
``BatchRunner`` lanes inside each), and renders a corpus-level
containment / over-privilege / switch-cost report (:mod:`.report`).

Same seed ⇒ byte-identical report, regardless of job or lane count —
the same contract every other subsystem in this repository is held to
(``tools/check_determinism.py`` covers the committed smoke report).
"""

from .attacks import ATTACK_KINDS, AttackPort, resolve_attack
from .engine import (
    CampaignConfig,
    CampaignResult,
    SMOKE_CONFIG,
    run_campaign,
)
from .generator import GeneratedFirmware, generate_corpus, generate_firmware
from .report import render_report, report_rows

__all__ = [
    "ATTACK_KINDS",
    "AttackPort",
    "CampaignConfig",
    "CampaignResult",
    "GeneratedFirmware",
    "SMOKE_CONFIG",
    "generate_corpus",
    "generate_firmware",
    "render_report",
    "report_rows",
    "resolve_attack",
    "run_campaign",
]

"""Tests for the OPEC-IR parser: round trips and error reporting."""

import pytest

import repro.ir as ir
from repro.ir import ParseError, parse_module, print_module, verify_module

from ..conftest import build_mini_module


def roundtrip(module):
    text = print_module(module)
    parsed = parse_module(text)
    verify_module(parsed)
    assert print_module(parsed) == text
    return parsed


def execute(module, setup=None, board=None, max_instructions=50_000_000):
    from repro.hw import Machine, stm32f4_discovery
    from repro.image import build_vanilla_image
    from repro.interp import Interpreter

    board = board or stm32f4_discovery()
    image = build_vanilla_image(module, board)
    machine = Machine(board)
    if setup:
        setup(machine)
    image.initialize_memory(machine)
    return Interpreter(machine, image,
                       max_instructions=max_instructions).run(), machine


class TestRoundTrip:
    def test_mini_module_text_identity(self):
        roundtrip(build_mini_module())

    def test_mini_module_execution_identity(self):
        original = build_mini_module()
        code_a, _ = execute(original)
        parsed = parse_module(print_module(build_mini_module()))
        code_b, _ = execute(parsed)
        assert code_a == code_b == 14

    def test_pinlock_roundtrip_and_run(self):
        """The flagship app — structs, MMIO, icalls, IRQ handlers,
        sanitize ranges, const data — survives a text round trip and
        still unlocks."""
        from repro.apps import pinlock

        app = pinlock.build(rounds=2)
        parsed = roundtrip(app.module)
        # The parsed module is a *new* module: run it end to end.
        from repro import build_vanilla, run_image

        result = run_image(build_vanilla(parsed, app.board),
                           setup=app.setup,
                           max_instructions=app.max_instructions)
        assert result.halt_code == 2

    def test_parsed_pinlock_partitions_identically(self):
        from repro import build_opec
        from repro.apps import pinlock

        app = pinlock.build(rounds=1)
        original = build_opec(app.module, app.board, app.specs)
        parsed_module = parse_module(print_module(pinlock.build(1).module))
        parsed = build_opec(parsed_module, app.board, app.specs)
        for op_a, op_b in zip(original.operations, parsed.operations):
            assert op_a.name == op_b.name
            assert len(op_a.functions) == len(op_b.functions)
            assert {g.name for g in op_a.resources.globals_all} == \
                {g.name for g in op_b.resources.globals_all}
            assert {p.name for p in op_a.resources.peripherals} == \
                {p.name for p in op_b.resources.peripherals}

    def test_coremark_roundtrip(self):
        from repro.apps import coremark

        app = coremark.build(iterations=1)
        parsed = roundtrip(app.module)
        code, machine = execute(
            parsed, setup=app.setup, board=app.board,
            max_instructions=app.max_instructions)
        assert code == coremark.expected_crc(1)


class TestPieces:
    def test_struct_and_global_attrs(self):
        text = """
; module t
%pair = type { i32 a, i8* link }
@g = global %pair zeroinitializer, file "x.c"
@s = global i32 7, sanitize 0 9
@k = constant [2 x i8] c"4142"
"""
        module = parse_module(text)
        assert module.structs["pair"].fields[1][0] == "link"
        assert module.get_global("g").source_file == "x.c"
        assert module.get_global("s").sanitize_range == (0, 9)
        assert module.get_global("k").is_const
        assert module.get_global("k").encode_initializer() == b"AB"

    def test_declaration(self):
        module = parse_module("declare void @ext(i32 %arg0)\n")
        assert module.get_function("ext").is_declaration

    def test_function_attributes(self):
        text = """
define void @H() file "it.c" irq 15 {
entry:
  ret void
}
"""
        module = parse_module(text)
        handler = module.get_function("H")
        assert handler.irq_number == 15
        assert handler.is_interrupt_handler
        assert handler.source_file == "it.c"

    def test_comments_and_blank_lines_ignored(self):
        text = """
; a comment
define i32 @main() {   ; trailing comment
entry:
  ; full-line comment
  ret i32 5
}
"""
        code, _ = execute(parse_module(text))
        assert code == 5  # main's return value becomes the halt code


class TestErrors:
    def test_unknown_opcode(self):
        text = "define void @f() {\nentry:\n  frobnicate\n}\n"
        with pytest.raises(ParseError, match="unknown opcode"):
            parse_module(text)

    def test_undefined_value(self):
        text = "define void @f() {\nentry:\n  halt i32 %nope\n}\n"
        with pytest.raises(ParseError, match="undefined value"):
            parse_module(text)

    def test_unknown_block(self):
        text = "define void @f() {\nentry:\n  jump label %missing\n}\n"
        with pytest.raises(ParseError, match="unknown block"):
            parse_module(text)

    def test_unterminated_function(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse_module("define void @f() {\nentry:\n  ret void\n")

    def test_unknown_struct(self):
        with pytest.raises(ParseError, match="unknown struct"):
            parse_module("@g = global %nope zeroinitializer\n")

    def test_unknown_callee(self):
        text = "define void @f() {\nentry:\n  call void @ghost()\n  ret void\n}\n"
        with pytest.raises(ParseError, match="unknown @ghost"):
            parse_module(text)

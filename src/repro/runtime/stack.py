"""Stack protection via MPU sub-regions and data relocation (§5.2).

The stack occupies one MPU region split into eight sub-regions.  When
an operation is entered, the monitor (Figure 8):

1. moves the stack pointer down to the enclosing sub-region boundary —
   the "first available sub-region";
2. copies the buffers pointed to by the entry's pointer-type arguments
   (sizes come from the developer-provided stack information) onto the
   new operation's stack and redirects the arguments to the copies;
3. disables every sub-region at or above the boundary, so the previous
   operations' frames fall through to R0 and become unwritable.

On exit the copies are written back to the originals and the previous
stack pointer and sub-region mask are restored.
"""

from __future__ import annotations

from ..hw.machine import Machine
from ..image.linker import OpecImage
from ..image.mpu_config import subregion_disable_for_free_range
from ..interp.costs import STACK_RELOCATE_WORD_COST
from ..partition.operations import Operation
from .context import StackRelocation


class StackProtector:
    """Implements Figure 8's relocation and masking for one image."""

    def __init__(self, machine: Machine, image: OpecImage):
        self.machine = machine
        self.image = image
        self.base = image.stack_base
        self.size = image.stack_size
        self.subregion = image.subregion_size
        self._bytes_relocated = machine.metrics.counter(
            "monitor.stack_bytes_relocated")

    def boundary_below(self, sp: int) -> int:
        """Start address of the sub-region containing ``sp``."""
        return sp & ~(self.subregion - 1)

    def mask_for(self, watermark: int) -> int:
        """Sub-region disable mask hiding frames at/above ``watermark``."""
        return subregion_disable_for_free_range(self.base, self.size, watermark)

    def relocate_arguments(
        self,
        operation: Operation,
        args: list[int],
        sp: int,
    ) -> tuple[list[int], int, list[StackRelocation]]:
        """Copy pointer-argument buffers onto the new operation's stack.

        Returns the (possibly rewritten) argument list, the new stack
        pointer, and the relocation records needed for copy-back.
        """
        new_sp = self.boundary_below(sp)
        relocations: list[StackRelocation] = []
        new_args = list(args)
        for index, size in sorted(operation.stack_info.items()):
            if index >= len(new_args):
                continue
            original = new_args[index]
            new_sp = (new_sp - size) & ~0x3
            blob = self.machine.read_bytes(original, size)
            self.machine.write_bytes(new_sp, blob)
            self._bytes_relocated.value += size
            self.machine.consume(STACK_RELOCATE_WORD_COST * ((size + 3) // 4))
            relocations.append(
                StackRelocation(
                    original_address=original, copy_address=new_sp, size=size
                )
            )
            new_args[index] = new_sp
        return new_args, new_sp, relocations

    def copy_back(self, relocations: list[StackRelocation]) -> None:
        """Write relocated buffers back to their original frames."""
        for record in relocations:
            blob = self.machine.read_bytes(record.copy_address, record.size)
            self.machine.write_bytes(record.original_address, blob)
            self.machine.consume(
                STACK_RELOCATE_WORD_COST * ((record.size + 3) // 4)
            )

"""Textual printer for IR modules.

Emits the OPEC-IR assembly format — an LLVM-flavoured, fully typed
syntax that :mod:`repro.ir.parser` parses back.  ``parse_module ∘
print_module`` is the identity on semantics (and on text after one
round trip), so firmware can live in ``.oir`` files.

Format sketch::

    ; module pinlock
    %UART_Handle = type { i32 instance, i32 baudrate }
    @KEY = global i32 0, file "main.c"
    @pin = constant [4 x i8] c"31323334"

    define void @Unlock_Task() file "main.c" {
    entry:
      %0 = load i32, i32* @KEY
      %1 = icmp eq i32 %0, i32 5
      br i32 %1, label %then, label %endif
    then:
      ...
    }
"""

from __future__ import annotations

from .function import Function
from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    GEP,
    Halt,
    ICall,
    ICmp,
    Instruction,
    Jump,
    Load,
    Ret,
    Select,
    Store,
    SVC,
    Unreachable,
)
from .module import Module
from .values import (
    Constant,
    ConstantNull,
    ConstantPointer,
    GlobalVariable,
    Parameter,
)


def print_module(module: Module) -> str:
    """Render the whole module as OPEC-IR text."""
    lines = [f"; module {module.name}"]
    for struct in module.structs.values():
        fields = ", ".join(f"{t} {n}" for n, t in struct.fields)
        lines.append(f"%{struct.name} = type {{ {fields} }}")
    for gvar in module.iter_globals():
        lines.append(_render_global(gvar))
    lines.append("")
    for func in module.iter_functions():
        lines.append(print_function(func))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _render_global(gvar: GlobalVariable) -> str:
    kind = "constant" if gvar.is_const else "global"
    init = gvar.encode_initializer()
    if gvar.value_type.is_scalar:
        value = str(int.from_bytes(init, "little"))
    elif any(init):
        value = f'c"{init.hex().upper()}"'
    else:
        value = "zeroinitializer"
    text = f"@{gvar.name} = {kind} {gvar.value_type} {value}"
    if gvar.source_file:
        text += f', file "{gvar.source_file}"'
    if gvar.sanitize_range is not None:
        lo, hi = gvar.sanitize_range
        text += f", sanitize {lo} {hi}"
    return text


def print_function(func: Function) -> str:
    params = ", ".join(f"{p.type} %{p.name}" for p in func.params)
    header = f"define {func.return_type} @{func.name}({params})"
    if func.source_file:
        header += f' file "{func.source_file}"'
    if func.irq_number is not None:
        header += f" irq {func.irq_number}"
    elif func.is_interrupt_handler:
        header += " interrupt"
    if func.is_monitor:
        header += " monitor"
    if func.is_declaration:
        return header.replace("define", "declare", 1)
    names = _assign_names(func)
    lines = [header + " {"]
    for block in func.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {_render(inst, names)}")
    lines.append("}")
    return "\n".join(lines)


def _assign_names(func: Function) -> dict[Instruction, str]:
    names: dict[Instruction, str] = {}
    counter = 0
    for inst in func.iter_instructions():
        if inst.type.size > 0:
            names[inst] = f"%v{counter}"
            counter += 1
    return names


def _operand(value, names) -> str:
    """``<type> <ref>`` for any operand."""
    return f"{value.type} {_ref(value, names)}"


def _ref(value, names) -> str:
    if isinstance(value, Instruction):
        return names[value]
    if isinstance(value, Parameter):
        return f"%{value.name}"
    if isinstance(value, GlobalVariable):
        return f"@{value.name}"
    if isinstance(value, Function):
        return f"@{value.name}"
    if isinstance(value, ConstantPointer):
        return f"0x{value.address:08X}"
    if isinstance(value, ConstantNull):
        return "null"
    if isinstance(value, Constant):
        return str(value.value)
    raise TypeError(f"unprintable operand {value!r}")


def _render(inst: Instruction, names) -> str:
    out = names.get(inst)
    prefix = f"{out} = " if out else ""
    if isinstance(inst, Alloca):
        return f"{prefix}alloca {inst.allocated_type} x {inst.count}"
    if isinstance(inst, Load):
        return f"{prefix}load {inst.type}, {_operand(inst.pointer, names)}"
    if isinstance(inst, Store):
        return (
            f"store {_operand(inst.value, names)}, "
            f"{_operand(inst.pointer, names)}"
        )
    if isinstance(inst, GEP):
        parts = [_operand(inst.pointer, names)]
        parts.extend(_operand(i, names) for i in inst.indices)
        return f"{prefix}gep {', '.join(parts)}"
    if isinstance(inst, BinOp):
        return (
            f"{prefix}{inst.op} {_operand(inst.operands[0], names)}, "
            f"{_operand(inst.operands[1], names)}"
        )
    if isinstance(inst, ICmp):
        return (
            f"{prefix}icmp {inst.pred} {_operand(inst.operands[0], names)}, "
            f"{_operand(inst.operands[1], names)}"
        )
    if isinstance(inst, Cast):
        return (
            f"{prefix}{inst.kind} {_operand(inst.operands[0], names)} "
            f"to {inst.type}"
        )
    if isinstance(inst, Select):
        ops = ", ".join(_operand(o, names) for o in inst.operands)
        return f"{prefix}select {ops}"
    if isinstance(inst, Call):
        args = ", ".join(_operand(a, names) for a in inst.operands)
        return (
            f"{prefix}call {inst.callee.return_type} "
            f"@{inst.callee.name}({args})"
        )
    if isinstance(inst, ICall):
        args = ", ".join(_operand(a, names) for a in inst.args)
        return (
            f"{prefix}icall {inst.callee_type} "
            f"{_operand(inst.target, names)}({args})"
        )
    if isinstance(inst, Br):
        return (
            f"br {_operand(inst.operands[0], names)}, "
            f"label %{inst.then_block.name}, label %{inst.else_block.name}"
        )
    if isinstance(inst, Jump):
        return f"jump label %{inst.target.name}"
    if isinstance(inst, Ret):
        if inst.value is None:
            return "ret void"
        return f"ret {_operand(inst.value, names)}"
    if isinstance(inst, SVC):
        return f"svc #{inst.number}, {inst.payload}"
    if isinstance(inst, Halt):
        return f"halt {_operand(inst.operands[0], names)}"
    if isinstance(inst, Unreachable):
        return "unreachable"
    raise TypeError(f"unprintable instruction {inst.opcode}")

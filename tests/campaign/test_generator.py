"""Property suite for the seeded random firmware generator.

Every corpus member — whatever the seed — must be a *valid* firmware:
it passes the IR verifier, builds under all three flavours, and runs
to a normal halt within the instruction budget on the MPU backend,
with identical halt codes across flavours (enforcement never changes
functional behaviour when nothing attacks).
"""

from __future__ import annotations

import pytest

from repro.baselines import build_aces
from repro.campaign.generator import (
    INSTRUCTION_BUDGET,
    generate_firmware,
)
from repro.interp.batch import BatchRunner
from repro.ir import print_module, verify_module
from repro.pipeline import build_opec, build_vanilla

SEEDS = [(2026, 0), (2026, 1), (7, 0), (1234, 2)]


@pytest.fixture(scope="module", params=SEEDS,
                ids=[f"s{s}f{i}" for s, i in SEEDS])
def firmware(request):
    seed, index = request.param
    return generate_firmware(seed, index)


def test_verifier_passes(firmware):
    verify_module(firmware.module)


def test_structure(firmware):
    module = firmware.module
    assert 3 <= len(firmware.tasks) <= 5
    assert firmware.victim in firmware.tasks
    assert firmware.gadget_owner in firmware.tasks
    assert firmware.victim != firmware.gadget_owner
    assert module.get_function("gadget") is not None
    assert module.get_global("dispatch_table") is not None
    assert 0 <= firmware.victim_slot < len(firmware.tasks)
    # The planted arbitrary write is present in the victim only.
    text = print_module(module)
    assert text.count("inttoptr") >= len(firmware.tasks) + 1


def test_builds_and_halts_identically_under_all_flavours(firmware):
    vanilla = build_vanilla(firmware.module, firmware.board)
    opec = build_opec(firmware.module, firmware.board,
                      firmware.specs).image
    aces = build_aces(firmware.module, firmware.board, "ACES2").image

    runner = BatchRunner()
    for name, image in (("vanilla", vanilla), ("opec", opec),
                        ("aces", aces)):
        runner.add(image, name=name, setup=firmware.base_setup(),
                   max_instructions=INSTRUCTION_BUDGET, backend="mpu")
    result = runner.run()
    assert not result.failed, [str(lane.error)
                               for lane in result.failed]
    codes = {lane.name: lane.halt_code for lane in result.lanes}
    assert codes["vanilla"] == codes["opec"] == codes["aces"]
    assert codes["vanilla"] is not None
    for lane in result.lanes:
        assert (lane.interpreter.instructions_executed
                <= INSTRUCTION_BUDGET)


def test_same_seed_same_module():
    one = generate_firmware(99, 3)
    two = generate_firmware(99, 3)
    assert print_module(one.module) == print_module(two.module)
    assert one.victim == two.victim
    assert one.victim_slot == two.victim_slot


def test_different_index_different_module():
    one = generate_firmware(99, 0)
    two = generate_firmware(99, 1)
    assert print_module(one.module) != print_module(two.module)

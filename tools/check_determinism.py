#!/usr/bin/env python
"""Scripted determinism check for the committed evaluation outputs.

Re-runs the full evaluation export (``repro.eval.export``) under the
same profile the committed ``results/`` were produced with
(``REPRO_PROFILE=quick``) **five times** — once against an empty
artifact cache (cold, populating it), once against the now-populated
cache (every build/run rehydrated from disk), once with
``REPRO_CACHE=off``, once with ``REPRO_BLOCKCOMPILE=off`` (the
single-step reference interpreter), and once with
``REPRO_TRACEFUSE=off`` (per-block execution without loop fusion) —
and compares every file of every pass byte-for-byte against the
committed tree.  That is the whole contract of the fast paths: a cache
hit may only ever change *when* you get the bytes, and block
compilation / trace fusion only *how fast* the simulated machine is
stepped — never *which* bytes you get.

The single tolerated exception is the analysis wall-clock column of
Table 3 (``time_s`` / ``Time(s)``): it measures the host machine, not
the simulated one, so it is masked before comparison.  Everything else
— every simulated-cycle figure, every counter — must be bit-identical,
which is the invariant the hot-path fast paths are held to (see
DESIGN.md, "Performance & determinism" and "Build caching").

Additionally, the compile-side benchmark snapshot
(``BENCH_analysis.json``) is regenerated and its *derived* fields —
Andersen iteration/propagation/constraint counters, icall resolution
counts, operation counts — are diffed against the committed snapshot,
with every host measurement (solve wall-clock, per-stage timings, the
harness section, platform info) masked, mirroring the table3 rule.

Usage:  PYTHONPATH=src python tools/check_determinism.py [results_dir]
Exit status 0 = deterministic, 1 = divergence (diff printed).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

# Host-wall-clock column index, by filename, dropped before comparing.
MASKED_COLUMNS = {"table3.tsv": 3, "table3.txt": 3}

# Host-measurement keys pruned from BENCH_analysis.json (any depth).
MASKED_BENCH_KEYS = {"solve_wall_s", "stages_wall_ms", "harness",
                     "python", "machine"}


def normalise(path: Path) -> list[tuple[str, ...]]:
    if path.name == "fleet_pinlock.json":
        # Fused fleet trace: host-domain pids carry wall clock, so
        # only the sim-domain section is part of the contract.
        from repro.obs.fleet import sim_trace_section

        return [(sim_trace_section(path.read_text()),)]
    if path.name == "fleet_pinlock.txt":
        # Fleet dashboard: compare everything above the host marker.
        from repro.obs.fleet import sim_dashboard_section

        return [tuple(line.split()) for line in
                sim_dashboard_section(path.read_text()).splitlines()]
    if path.suffix == ".json":
        # Trace exports are canonical JSON: compare raw bytes, no
        # whitespace-tolerant splitting.
        return [(path.read_text(),)]
    masked = MASKED_COLUMNS.get(path.name)
    rows = []
    for line in path.read_text().splitlines():
        fields = line.split("\t") if path.suffix == ".tsv" else line.split()
        if masked is not None and len(fields) > masked:
            fields = fields[:masked] + fields[masked + 1:]
        rows.append(tuple(fields))
    return rows


def mask_bench(node):
    """Recursively drop host-measurement keys from a bench report."""
    if isinstance(node, dict):
        return {key: mask_bench(value) for key, value in node.items()
                if key not in MASKED_BENCH_KEYS}
    if isinstance(node, list):
        return [mask_bench(item) for item in node]
    return node


def check_bench_analysis(env: dict, failures: list[str]) -> None:
    committed_path = REPO / "BENCH_analysis.json"
    if not committed_path.exists():
        failures.append("BENCH_analysis.json: not committed")
        return
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        fresh_path = Path(tmp) / "BENCH_analysis.json"
        subprocess.run(
            [sys.executable, "benchmarks/bench_analysis.py",
             str(fresh_path), "--no-harness"],
            cwd=REPO, env=env, check=True, stdout=subprocess.DEVNULL,
        )
        want = mask_bench(json.loads(committed_path.read_text()))
        got = mask_bench(json.loads(fresh_path.read_text()))
    if want != got:
        failures.append("BENCH_analysis.json: derived fields diverged")
        for app in sorted(set(want.get("apps", {})) | set(got.get("apps", {}))):
            if want.get("apps", {}).get(app) != got.get("apps", {}).get(app):
                failures.append(
                    f"  {app}: {want.get('apps', {}).get(app)!r} != "
                    f"{got.get('apps', {}).get(app)!r}")


def check_export(committed: Path, env: dict, label: str,
                 failures: list[str]) -> int:
    """Run one full export and diff it against the committed tree.
    Returns the number of committed files (for the summary line)."""
    names = sorted(p.name for p in committed.iterdir())
    with tempfile.TemporaryDirectory(prefix="repro-determinism-") as tmp:
        subprocess.run(
            [sys.executable, "-m", "repro.eval.export", tmp],
            cwd=REPO, env=env, check=True,
        )
        fresh_dir = Path(tmp)
        for name in names:
            fresh = fresh_dir / name
            if not fresh.exists():
                failures.append(f"[{label}] {name}: not regenerated")
                continue
            want = normalise(committed / name)
            got = normalise(fresh)
            if want != got:
                failures.append(f"[{label}] {name}: content diverged")
                for i, (w, g) in enumerate(zip(want, got)):
                    if w != g:
                        failures.append(
                            f"  line {i + 1}: {w!r} != {g!r}")
        extra = sorted(p.name for p in fresh_dir.iterdir()
                       if p.name not in names)
        for name in extra:
            failures.append(
                f"[{label}] {name}: produced by export but not committed")
    return len(names)


def check_fleet(env: dict, failures: list[str]) -> None:
    """``repro fleet`` worker-count parity: the fused trace's
    sim-domain section and the dashboard above the host marker must be
    byte-identical between ``--jobs 1`` and ``--jobs 2``, and the
    two-worker trace must actually contain at least two worker pids."""
    from repro.obs.fleet import sim_dashboard_section, sim_trace_section

    sections: dict[int, tuple[str, str]] = {}
    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmp:
        for jobs in (1, 2):
            base = Path(tmp) / f"fleet_j{jobs}"
            subprocess.run(
                [sys.executable, "-m", "repro.cli", "fleet", "PinLock",
                 "--jobs", str(jobs), "--backends", "mpu", "pmp",
                 "overlay", "--output", str(base)],
                cwd=REPO, env=env, check=True, stdout=subprocess.DEVNULL,
            )
            trace_text = base.with_suffix(".json").read_text()
            sections[jobs] = (
                sim_trace_section(trace_text),
                sim_dashboard_section(base.with_suffix(".txt").read_text()),
            )
            if jobs == 2:
                document = json.loads(trace_text)
                worker_pids = {entry.get("pid")
                               for entry in document["traceEvents"]} - {0, 1}
                if len(worker_pids) < 2:
                    failures.append(
                        f"[fleet] jobs=2 trace has worker pids "
                        f"{sorted(worker_pids)}: expected at least 2")
    if sections[1][0] != sections[2][0]:
        failures.append(
            "[fleet] sim trace section diverged between --jobs 1 and 2")
    if sections[1][1] != sections[2][1]:
        failures.append(
            "[fleet] sim dashboard diverged between --jobs 1 and 2")


def main() -> int:
    committed = Path(sys.argv[1]) if len(sys.argv) > 1 else REPO / "results"
    env = dict(os.environ)
    env["REPRO_PROFILE"] = "quick"
    env.setdefault("PYTHONPATH", str(REPO / "src"))
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        # Pass 1: empty store — every artifact cold-built, then stored.
        env["REPRO_CACHE"] = cache_dir
        count = check_export(committed, env, "cache-cold", failures)
        entries = sum(1 for _ in Path(cache_dir).glob("*/*/*.bin"))
        if entries == 0:
            failures.append(
                "[cache-cold] export populated no cache entries")
        # Pass 2: same store, now warm — every artifact rehydrated.
        check_export(committed, env, "cache-warm", failures)
        # Pass 3: store bypassed entirely.
        env["REPRO_CACHE"] = "off"
        check_export(committed, env, "cache-off", failures)
        # Pass 4: single-step reference interpreter (no
        # superinstructions).  Same bytes or the block compiler is
        # changing simulated behaviour.
        env["REPRO_BLOCKCOMPILE"] = "off"
        check_export(committed, env, "blockcompile-off", failures)
        del env["REPRO_BLOCKCOMPILE"]
        # Pass 5: per-block tier without loop fusion.  Same bytes or
        # the trace fuser's batched charging is changing simulated
        # behaviour.
        env["REPRO_TRACEFUSE"] = "off"
        check_export(committed, env, "tracefuse-off", failures)
        del env["REPRO_TRACEFUSE"]
        # Pass 6: fleet worker-count parity, against the warm store.
        env["REPRO_CACHE"] = cache_dir
        check_fleet(env, failures)
    check_bench_analysis(env, failures)
    if failures:
        print("DETERMINISM CHECK FAILED")
        print("\n".join(failures))
        return 1
    print(f"determinism check passed: {count} files bit-identical across "
          f"cold-cache, warm-cache ({entries} entries), cache-off, "
          "blockcompile-off and tracefuse-off exports (table3 host "
          "wall-clock column and fleet host sections masked), fleet "
          "sim domain byte-identical across --jobs 1/2, and "
          "BENCH_analysis.json derived fields unchanged (host timings "
          "masked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

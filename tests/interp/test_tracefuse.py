"""Unit tests for the fused-loop trace compiler (tier 3).

The fuser's contract is bit-identity with both lower tiers — same halt
codes, same simulated cycles, same stats, same memory image, same
fault messages whether a hot loop runs fused, per-block, or
single-stepped — plus structural guarantees: traces are cached on the
IR block (``None`` for rejected heads), dropped on pickle, and the
``REPRO_TRACEFUSE`` / ``REPRO_TRACEFUSE_THRESHOLD`` knobs validate
loudly.
"""

import pickle

import pytest

import repro.ir as ir
from repro.hw import Machine, stm32f4_discovery
from repro.hw.exceptions import MachineError
from repro.image import build_vanilla_image
from repro.interp import (
    DEFAULT_TRACE_THRESHOLD,
    TRACEFUSE_OFF_VALUES,
    TRACEFUSE_ON_VALUES,
    ExecutionLimitExceeded,
    Interpreter,
    compile_trace,
    trace_fuse_enabled,
    trace_threshold,
)
from repro.ir import I32, VOID

#: (block_compile, trace_fuse) per execution tier, hottest first.
MODES = {"fused": (True, True), "blocks": (True, False),
         "step": (False, False)}


def _loop_module(iterations: int = 500):
    module = ir.Module("loop")
    _m, b = ir.define(module, "main", I32, [])
    acc = b.alloca(I32)
    b.store(0, acc)
    with b.for_range(0, iterations) as load_i:
        b.store(b.add(b.load(acc), load_i()), acc)
    b.halt(b.load(acc))
    return module


def _alu_loop_module(iterations: int = 300):
    """A loop whose body is dominated by pure register compute — the
    shape where fusing pays most, and where the batched cycle charges
    cover the longest pure runs."""
    module = ir.Module("alu")
    _m, b = ir.define(module, "main", I32, [])
    acc = b.alloca(I32)
    b.store(7, acc)
    with b.for_range(0, iterations) as load_i:
        v = b.load(acc)
        v = b.add(v, load_i())
        v = b.xor(v, 0x5A5A5A5A)
        v = b.shl(v, 1)
        v = b.sub(v, 3)
        v = b.lshr(v, 1)
        v = b.mul(v, 3)
        v = b.and_(v, 0x00FFFFFF)
        b.store(v, acc)
    b.halt(b.load(acc))
    return module


def _run(module, mode, *, max_instructions=10_000_000, raise_irqs=()):
    block_compile, trace_fuse = MODES[mode]
    board = stm32f4_discovery()
    image = build_vanilla_image(module, board)
    machine = Machine(board)
    image.initialize_memory(machine)
    for number in raise_irqs:
        machine.raise_irq(number)
    interp = Interpreter(machine, image, max_instructions=max_instructions,
                         block_compile=block_compile, trace_fuse=trace_fuse)
    try:
        outcome = interp.run()
    except MachineError as error:
        outcome = error
    return interp, machine, outcome


def _compare_modes(module, *, max_instructions=10_000_000, raise_irqs=()):
    """Run all three tiers and assert identical simulated outcomes."""
    results = {}
    for mode in MODES:
        interp, machine, outcome = _run(
            module, mode, max_instructions=max_instructions,
            raise_irqs=raise_irqs)
        results[mode] = {
            "outcome": (type(outcome).__name__, str(outcome))
            if isinstance(outcome, MachineError) else outcome,
            "cycles": machine.cycles,
            "instructions": interp.instructions_executed,
            "stats": machine.stats.as_dict(),
            "sram": machine.read_bytes(machine.sram.base,
                                       machine.sram.size),
        }
    assert results["fused"] == results["blocks"] == results["step"]
    return results["fused"]


@pytest.fixture
def hot(monkeypatch):
    """Force a low hot threshold so short test loops actually fuse."""
    monkeypatch.setenv("REPRO_TRACEFUSE_THRESHOLD", "2")


class TestEnvKnob:
    @pytest.mark.parametrize("raw", sorted(TRACEFUSE_ON_VALUES))
    def test_on_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACEFUSE", raw)
        assert trace_fuse_enabled() is True

    @pytest.mark.parametrize("raw", sorted(TRACEFUSE_OFF_VALUES))
    def test_off_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACEFUSE", raw)
        assert trace_fuse_enabled() is False

    def test_unset_defaults_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACEFUSE", raising=False)
        assert trace_fuse_enabled() is True

    def test_misspelling_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACEFUSE", "fastish")
        with pytest.raises(ValueError, match="REPRO_TRACEFUSE"):
            trace_fuse_enabled()

    def test_threshold_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACEFUSE_THRESHOLD", raising=False)
        assert trace_threshold() == DEFAULT_TRACE_THRESHOLD

    def test_threshold_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACEFUSE_THRESHOLD", " 3 ")
        assert trace_threshold() == 3

    def test_threshold_not_an_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACEFUSE_THRESHOLD", "soon")
        with pytest.raises(ValueError, match="not an integer"):
            trace_threshold()

    def test_threshold_out_of_range(self, monkeypatch):
        # An integer, but not a usable one: distinct diagnostic.
        monkeypatch.setenv("REPRO_TRACEFUSE_THRESHOLD", "0")
        with pytest.raises(ValueError, match="not a positive"):
            trace_threshold()

    def test_interpreter_consults_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACEFUSE", "off")
        module = _loop_module(5)
        board = stm32f4_discovery()
        image = build_vanilla_image(module, board)
        machine = Machine(board)
        image.initialize_memory(machine)
        assert Interpreter(machine, image).trace_fuse is False
        # Explicit constructor argument overrides the environment
        # (block compilation pinned on: without it fusion is forced
        # off regardless, e.g. under the CI matrix's ambient
        # REPRO_BLOCKCOMPILE=off).
        assert Interpreter(machine, image, block_compile=True,
                           trace_fuse=True).trace_fuse is True

    def test_block_compile_off_forces_fusion_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACEFUSE", raising=False)
        module = _loop_module(5)
        board = stm32f4_discovery()
        image = build_vanilla_image(module, board)
        machine = Machine(board)
        image.initialize_memory(machine)
        interp = Interpreter(machine, image, block_compile=False,
                             trace_fuse=True)
        assert interp.trace_fuse is False


class TestTraceCache:
    def test_trace_cached_and_shared_across_machines(
            self, hot, no_artifact_store):
        module = _loop_module(200)
        interp1, _, code1 = _run(module, "fused")
        first = interp1.compile_metrics.snapshot()["counters"]
        assert first["tracefuse.traces_compiled"] > 0
        assert first["tracefuse.trace_entries"] > 0
        traced = [b for b in module.get_function("main").blocks
                  if callable(getattr(b, "_trace", None))]
        assert traced
        # A second run over the same IR reuses the fused closure.
        interp2, _, code2 = _run(module, "fused")
        second = interp2.compile_metrics.snapshot()["counters"]
        assert second["tracefuse.traces_compiled"] == 0
        assert second["tracefuse.trace_entries"] > 0
        assert code1 == code2

    def test_unfusible_head_caches_none(self):
        class Broken:
            """Not a BasicBlock: detection dies, compile_trace must
            degrade to a cached rejection, never raise."""
            instructions = None

        broken = Broken()
        assert compile_trace(broken) is None
        assert broken._trace is None

    def test_pickle_drops_traces(self, hot):
        module = _loop_module(50)
        _run(module, "fused")
        main = module.get_function("main")
        assert any(callable(getattr(b, "_trace", None))
                   for b in main.blocks)
        clone = pickle.loads(pickle.dumps(module))
        for block in clone.get_function("main").blocks:
            assert not hasattr(block, "_trace")

    def test_generated_source_and_chain_attached(self, hot):
        module = _loop_module(50)
        _run(module, "fused")
        traced = [b for b in module.get_function("main").blocks
                  if callable(getattr(b, "_trace", None))]
        fn = traced[0]._trace
        assert "while True:" in fn.__repro_source__
        assert all(isinstance(b, ir.BasicBlock)
                   for b in fn.__repro_chain__)


class TestEquivalence:
    def test_arith_loop_bit_identical(self, hot):
        result = _compare_modes(_loop_module(500))
        assert result["outcome"] == sum(range(500)) & 0xFFFFFFFF

    def test_alu_loop_bit_identical(self, hot):
        _compare_modes(_alu_loop_module(300))

    def test_zero_divisor_identical(self, hot):
        # The divisor reaches zero mid-loop; hardware division by zero
        # yields 0 (no fault), and the fused UDiv body must produce
        # exactly that, on exactly the same cycle count.
        module = ir.Module("div")
        _m, b = ir.define(module, "main", I32, [])
        acc = b.alloca(I32)
        b.store(100, acc)
        with b.for_range(0, 50) as load_i:
            b.store(b.add(b.udiv(1000, b.sub(10, load_i())), b.load(acc)),
                    acc)
        b.halt(b.load(acc))
        result = _compare_modes(module)
        assert isinstance(result["outcome"], int)

    def test_budget_exhaustion_identical(self, hot):
        module = _loop_module(100_000)
        outcomes = []
        for mode in MODES:
            board = stm32f4_discovery()
            image = build_vanilla_image(module, board)
            machine = Machine(board)
            image.initialize_memory(machine)
            block_compile, trace_fuse = MODES[mode]
            interp = Interpreter(machine, image, max_instructions=7_777,
                                 block_compile=block_compile,
                                 trace_fuse=trace_fuse)
            with pytest.raises(ExecutionLimitExceeded) as excinfo:
                interp.run()
            outcomes.append((str(excinfo.value), machine.cycles,
                             interp.instructions_executed))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_faulting_store_identical(self, hot):
        # A store into unmapped space mid-loop: the sync point must
        # commit the preceding pure run, then fault identically.
        module = ir.Module("crash")
        _m, b = ir.define(module, "main", I32, [])
        acc = b.alloca(I32)
        b.store(0, acc)
        with b.for_range(0, 50) as load_i:
            b.store(b.add(b.load(acc), 1), acc)
            b.store(load_i(), b.mmio(0x60000000))
        b.halt(b.load(acc))
        result = _compare_modes(module)
        kind, message = result["outcome"]
        assert message

    def test_mid_run_systick_identical(self, hot):
        # SysTick armed mid-run: the per-iteration guard must suspend
        # the trace so the handler fires on exactly the same cycle as
        # the lower tiers deliver it.
        module = ir.Module("ticks")
        ticks = module.add_global("uwTick", I32, 0)
        _h, b = ir.define(module, "SysTick_Handler", VOID, [],
                          irq_number=15)
        b.store(b.add(b.load(ticks), 1), ticks)
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        b.store(99, b.mmio(0xE000E014))   # RVR: tick every 100 cycles
        b.store(7, b.mmio(0xE000E010))    # CSR: ENABLE | TICKINT
        with b.for_range(0, 2000):
            pass
        b.halt(b.load(ticks))
        result = _compare_modes(module)
        assert result["outcome"] > 10  # the handler really fired

    def test_mid_run_external_irq_identical(self, hot):
        module = ir.Module("irq")
        flag = module.add_global("flag", I32, 0)
        _h, b = ir.define(module, "H", VOID, [], irq_number=40)
        b.store(1, flag)
        b.ret_void()
        _m, b = ir.define(module, "main", I32, [])
        with b.for_range(0, 200):
            pass
        b.halt(b.load(flag))
        result = _compare_modes(module, raise_irqs=[40])
        assert result["outcome"] == 1

    def test_undefined_value_in_loop_identical(self, hot):
        # A value defined only on a never-executed path, used inside
        # the loop: the fused pure-run KeyError must roll back and
        # replay to the canonical HardFault.
        module = ir.Module("undef")
        main = ir.Function("main", ir.FunctionType(I32, []))
        module.add_function(main)
        b = ir.IRBuilder(main)
        dead = main.add_block("dead")
        live = main.add_block("live")
        b.jump(live)
        b.position_at_end(dead)
        phantom = b.add(1, 2)
        b.jump(live)
        b.position_at_end(live)
        with b.for_range(0, 20):
            b.add(phantom, 1)
        b.halt(0)
        result = _compare_modes(module)
        kind, message = result["outcome"]
        assert kind == "HardFault"
        assert "use of undefined value" in message

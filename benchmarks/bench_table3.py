"""Benchmark + regeneration of Table 3 (icall analysis, §6.5).

The timed quantity is the Andersen points-to solve per application —
the paper's "Time(s)" column measured directly.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_andersen
from repro.eval import table3
from repro.eval.workloads import APP_NAMES, build_app


@pytest.mark.parametrize("app_name", APP_NAMES)
def test_table3_andersen_solve(benchmark, app_name):
    app = build_app(app_name)
    result = benchmark(run_andersen, app.module)
    assert result.iterations > 0


def test_print_table3(benchmark):
    rows = benchmark.pedantic(table3.compute_table, rounds=1, iterations=1)
    print()
    print(table3.render(rows))
    by_app = {r.app: r for r in rows}
    # Every icall in the suite is resolved (sound call graph).
    for row in rows:
        assert row.svf_resolved + row.type_resolved == row.icalls
    # TCP-Echo carries indirect calls through its PCB callback, and the
    # points-to analysis resolves them (the paper's dominant case).
    assert by_app["TCP-Echo"].icalls >= 1
    assert by_app["TCP-Echo"].svf_resolved >= 1

"""Global-variable synchronisation and sanitisation (§5.2, Figure 7).

External (shared) globals have one *public* original plus a shadow copy
per accessing operation.  On a switch the monitor writes the suspended
operation's shadows back to the public copies — after checking each
value against its developer-provided valid range — then refreshes the
resumed/entered operation's shadows from the public copies, and finally
redirects any pointer fields that still point into another operation's
data section (§5.3).
"""

from __future__ import annotations

from typing import Optional

from ..hw.exceptions import SecurityAbort
from ..hw.machine import Machine
from ..image.linker import OpecImage
from ..interp.costs import SANITIZE_CHECK_COST, SYNC_WORD_COST
from ..ir.values import GlobalVariable
from ..partition.operations import Operation


class DataSynchronizer:
    """Performs the Figure-7 data movement for one image."""

    def __init__(self, machine: Machine, image: OpecImage):
        self.machine = machine
        self.image = image
        self.policy = image.policy
        # Address index over every shadow copy and public original so
        # pointer fields can be retargeted across sections (§5.3).
        self._intervals: list[tuple[int, int, Optional[int], GlobalVariable]] = []
        for (op_index, gvar), addr in image.shadow_addresses.items():
            self._intervals.append((addr, addr + gvar.size, op_index, gvar))
        for gvar, addr in image.public_addresses.items():
            self._intervals.append((addr, addr + gvar.size, None, gvar))
        self._intervals.sort()
        self._bytes_copied = machine.metrics.counter("monitor.sync_bytes_copied")

    # -- words ------------------------------------------------------------

    def _copy(self, src: int, dst: int, size: int) -> None:
        blob = self.machine.read_bytes(src, size)
        self.machine.write_bytes(dst, blob)
        self._bytes_copied.value += size
        self.machine.consume(SYNC_WORD_COST * ((size + 3) // 4))

    # -- sanitisation -------------------------------------------------------

    def sanitize(self, operation: Operation, gvar: GlobalVariable) -> None:
        """Abort if a scalar shadow value left its declared range."""
        if gvar.sanitize_range is None or gvar.size > 4:
            return
        shadow = self.image.shadow_address(operation, gvar)
        value = self.machine.read_direct(shadow, gvar.size)
        self.machine.consume(SANITIZE_CHECK_COST)
        lo, hi = gvar.sanitize_range
        if not lo <= value <= hi:
            raise SecurityAbort(
                f"sanitisation failed for @{gvar.name} in operation "
                f"{operation.name}: value {value} outside [{lo}, {hi}]"
            )

    def sanitize_operation(self, operation: Operation) -> None:
        """Range-check every external shadow of ``operation``.

        The monitor runs this as its own switch phase (so it traces as a
        distinct span) and then copies with ``sanitize=False``; checking
        all shadows before copying any is equivalent to the interleaved
        order because a failed check aborts the run.
        """
        for gvar in self.policy.external_vars(operation):
            self.sanitize(operation, gvar)

    # -- Figure 7 steps ------------------------------------------------------

    def write_back(self, operation: Operation, *,
                   sanitize: bool = True) -> None:
        """Shadows of ``operation`` → public copies (sanitised)."""
        for gvar in self.policy.external_vars(operation):
            if sanitize:
                self.sanitize(operation, gvar)
            shadow = self.image.shadow_address(operation, gvar)
            self._copy(shadow, self.image.public_addresses[gvar], gvar.size)

    def refresh(self, operation: Operation) -> None:
        """Public copies → shadows of ``operation``."""
        for gvar in self.policy.external_vars(operation):
            shadow = self.image.shadow_address(operation, gvar)
            self._copy(self.image.public_addresses[gvar], shadow, gvar.size)

    def update_relocation_table(self, operation: Operation) -> None:
        """Point every external's slot at ``operation``'s shadow, or at
        the public original when the operation does not access it."""
        accessible = set(self.policy.external_vars(operation))
        for gvar, slot in self.image.reloc_slots.items():
            if gvar in accessible:
                target = self.image.shadow_address(operation, gvar)
            else:
                target = self.image.public_addresses[gvar]
            self.machine.write_direct(slot, 4, target)
            self.machine.consume(1)

    # -- pointer-field redirection (§5.3) --------------------------------------

    def _locate(self, address: int) -> Optional[tuple[Optional[int],
                                                      GlobalVariable, int]]:
        for start, end, op_index, gvar in self._intervals:
            if start <= address < end:
                return op_index, gvar, address - start
        return None

    def redirect_pointers(self, operation: Operation) -> None:
        """Rewrite pointer fields in ``operation``'s section that point
        at another operation's shadow (or a public original) of a
        variable this operation holds its own shadow of."""
        own_shadows = {
            gvar: self.image.shadow_address(operation, gvar)
            for gvar in self.policy.external_vars(operation)
        }
        section_vars = self.policy.section_vars(operation)
        for gvar in section_vars:
            if not gvar.pointer_field_offsets:
                continue
            base = self._home_address(operation, gvar)
            for offset in gvar.pointer_field_offsets:
                pointer = self.machine.read_direct(base + offset, 4)
                self.machine.consume(2)
                located = self._locate(pointer)
                if located is None:
                    continue
                target_op, target_var, delta = located
                if target_op == operation.index:
                    continue
                if target_var in own_shadows:
                    self.machine.write_direct(
                        base + offset, 4, own_shadows[target_var] + delta
                    )
                    self.machine.consume(1)

    def _home_address(self, operation: Operation, gvar: GlobalVariable) -> int:
        key = (operation.index, gvar)
        if key in self.image.shadow_addresses:
            return self.image.shadow_addresses[key]
        return self.image.global_address(gvar)

"""Integration test of the Figure 7 data-synchronisation semantics.

Scenario from the paper: operations B and C share variables; entering
C from B writes B's shadows back to the public copies and refreshes
C's shadows; returning restores B's view.  A variable B and C both
never touch stays untouched.
"""

import repro.ir as ir
from repro import build_opec, run_image
from repro.ir import I32, VOID
from repro.partition import OperationSpec


def build_nested_module():
    """main -> B -> C, sharing `d`/`e`; `a` is untouched by B and C."""
    module = ir.Module("fig7")
    a = module.add_global("a", I32, 100)   # main + op_d only
    d = module.add_global("d", I32, 10)    # B and C
    e = module.add_global("e", I32, 20)    # C and main

    op_c, b = ir.define(module, "op_c", VOID, [])
    b.store(b.add(b.load(d), 1), d)        # C increments d
    b.store(b.add(b.load(e), 2), e)        # C increments e
    b.ret_void()

    op_b, b = ir.define(module, "op_b", VOID, [])
    b.store(b.add(b.load(d), 5), d)        # B bumps d before entering C
    b.call(op_c)
    b.store(b.add(b.load(d), 5), d)        # and again after C returns
    b.ret_void()

    op_d, b = ir.define(module, "op_d", VOID, [])
    b.store(b.add(b.load(a), 1), a)
    b.ret_void()

    _m, b = ir.define(module, "main", I32, [])
    b.call(op_b)
    b.call(op_d)
    total = b.add(b.load(a), b.add(b.load(d), b.load(e)))
    b.halt(total)
    return module


SPECS = [OperationSpec("op_b"), OperationSpec("op_c"), OperationSpec("op_d")]


def test_nested_switch_synchronises_shared_values(board):
    artifacts = build_opec(build_nested_module(), board, SPECS)
    result = run_image(artifacts.image)
    # a=101, d=10+5+1+5=21, e=22 -> 144.  Any missed write-back or
    # refresh (Fig. 7 arrows) breaks this.
    assert result.halt_code == 101 + 21 + 22


def test_unshared_variable_not_synchronised_between_b_and_c(board):
    """`a` has no shadow in B's or C's section (Fig. 7: "does not
    synchronise a")."""
    artifacts = build_opec(build_nested_module(), board, SPECS)
    policy = artifacts.policy
    a = artifacts.module.get_global("a")
    op_b = policy.operation_by_entry("op_b")
    op_c = policy.operation_by_entry("op_c")
    assert a not in policy.section_vars(op_b)
    assert a not in policy.section_vars(op_c)


def test_shadow_values_synchronised_at_each_boundary(board):
    artifacts = build_opec(build_nested_module(), board, SPECS)
    result = run_image(artifacts.image)
    machine = result.machine
    image = artifacts.image
    policy = artifacts.policy
    d = artifacts.module.get_global("d")
    # After the run, the public copy holds the final value and every
    # accessor's shadow was refreshed on its last sync.
    assert machine.read_direct(image.public_addresses[d], 4) == 21
    op_c = policy.operation_by_entry("op_c")
    assert machine.read_direct(image.shadow_address(op_c, d), 4) in (16, 21)

"""Ablation benchmarks for the design choices DESIGN.md calls out.

* peripheral-window merging (§4.3): MPU regions needed with and
  without the merge-by-adjacency optimisation;
* protection backend (§7): the same OPEC image enforced by the ARM MPU
  vs the RISC-V PMP adapter;
* sanitisation (§5.2): switch cost with and without declared ranges.
"""

from __future__ import annotations

import pytest

import repro.ir as ir
from repro import build_opec, run_image
from repro.apps import ACES_APPS
from repro.eval.workloads import build_app, opec_artifacts
from repro.hw.pmp import use_pmp
from repro.image.mpu_config import covering_regions
from repro.partition import OperationSpec
from repro.partition.operations import merge_peripheral_windows


def test_window_merging_ablation(benchmark):
    """§4.3: merging adjacent peripherals saves MPU regions."""
    savings = {}

    def sweep():
        for app_name in ACES_APPS:
            artifacts = opec_artifacts(app_name)
            merged = 0
            unmerged = 0
            for op in artifacts.operations:
                windows = merge_peripheral_windows(op.resources.peripherals)
                merged += sum(
                    len(covering_regions(w.base, w.size)) for w in windows)
                unmerged += sum(
                    len(covering_regions(p.base, p.size))
                    for p in op.resources.peripherals)
            savings[app_name] = (unmerged, merged)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for app_name, (before, after) in savings.items():
        print(f"{app_name:10s} MPU pieces: unmerged={before} merged={after}")
    assert all(after <= before for before, after in savings.values())

    # The suite's operations touch scattered peripherals, so the win
    # shows on a driver sweeping adjacent ports (GPIOA..GPIOE):
    from repro.hw import stm32f4_discovery

    board = stm32f4_discovery()
    adjacent = [board.peripheral(n)
                for n in ("GPIOA", "GPIOB", "GPIOC", "GPIOD", "GPIOE")]
    windows = merge_peripheral_windows(adjacent)
    merged_pieces = sum(
        len(covering_regions(w.base, w.size)) for w in windows)
    unmerged_pieces = sum(
        len(covering_regions(p.base, p.size)) for p in adjacent)
    print(f"adjacent GPIO sweep: unmerged={unmerged_pieces} "
          f"merged={merged_pieces}")
    assert merged_pieces < unmerged_pieces


@pytest.mark.parametrize("backend", ["mpu", "pmp"])
def test_protection_backend_ablation(benchmark, backend):
    """§7: OPEC runs unchanged on MPU or PMP; compare enforced runs."""
    app = build_app("PinLock")
    artifacts = opec_artifacts("PinLock")

    def setup(machine):
        if backend == "pmp":
            use_pmp(machine)
        app.setup(machine)

    def run():
        return run_image(artifacts.image, setup=setup,
                         max_instructions=app.max_instructions)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    app.verify_run(result.machine, result.halt_code)
    benchmark.extra_info["cycles"] = result.cycles


def _sanitize_module(with_ranges: bool):
    module = ir.Module("sanbench")
    for i in range(6):
        module.add_global(
            f"g{i}", ir.I32, i,
            sanitize_range=(0, 1000) if with_ranges else None)
    task, b = ir.define(module, "task", ir.VOID, [])
    for i in range(6):
        g = module.get_global(f"g{i}")
        b.store(b.add(b.load(g), 1), g)
    b.ret_void()
    _m, b = ir.define(module, "main", ir.I32, [])
    acc = b.alloca(ir.I32)
    b.store(0, acc)
    with b.for_range(0, 40):
        b.call(task)
    b.halt(b.load(module.get_global("g0")))
    return module


@pytest.mark.parametrize("with_ranges", [False, True],
                         ids=["no-sanitize", "sanitize"])
def test_sanitization_cost_ablation(benchmark, with_ranges):
    """§5.2: per-switch cost of the developer-provided range checks."""
    from repro.hw import stm32f4_discovery

    board = stm32f4_discovery()
    artifacts = build_opec(_sanitize_module(with_ranges), board,
                           [OperationSpec("task")])

    def run():
        return run_image(artifacts.image)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cycles"] = result.cycles
    assert result.halt_code == 40

"""RISC-V Physical Memory Protection (PMP) backend (§7).

The paper lists RISC-V PMP as the porting target for OPEC beyond the
ARM MPU: "the target hardware platform is required to have a memory
protection unit, which has enough regions enforcing the physical
memory permissions similar to the ARM MPU, e.g., RISC-V PMP".

PMP differs from the MPU in exactly the ways that matter to OPEC:

* 16 entries instead of 8 regions;
* NAPOT (naturally aligned power-of-two) matching, no sub-regions;
* the **lowest-numbered** matching entry decides (the MPU's is the
  highest);
* M-mode (the monitor) bypasses entries unless they are locked —
  playing the role of ``PRIVDEFENA``.

:class:`PmpProtection` adapts OPEC's MPU-oriented region sets onto PMP
entries — sub-region masks become runs of NAPOT entries, region
priority becomes entry order — so :class:`repro.runtime.monitor.OpecMonitor`
runs unmodified on a PMP machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .backend import EnforcementBackend
from .mpu import ACCESS_READ, ACCESS_READWRITE, MPURegion

NUM_PMP_ENTRIES = 16
MIN_GRAIN = 4  # NA4: the architectural minimum


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class PMPEntry:
    """One NAPOT-mode PMP entry."""

    base: int
    size: int
    readable: bool = False
    writable: bool = False
    executable: bool = False
    locked: bool = False

    def __post_init__(self) -> None:
        if not is_power_of_two(self.size) or self.size < MIN_GRAIN:
            raise ValueError(f"illegal NAPOT size {self.size}")
        if self.base % self.size != 0:
            raise ValueError(
                f"base 0x{self.base:08X} not naturally aligned to "
                f"0x{self.size:X}"
            )

    def matches(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    def permits(self, write: bool) -> bool:
        return self.writable if write else self.readable


@dataclass
class PMP:
    """The PMP unit: 16 prioritised entries."""

    entries: list[Optional[PMPEntry]] = field(
        default_factory=lambda: [None] * NUM_PMP_ENTRIES
    )
    enabled: bool = False

    def set_entry(self, index: int, entry: PMPEntry) -> None:
        if not 0 <= index < NUM_PMP_ENTRIES:
            raise ValueError(f"PMP entry index {index} out of range")
        self.entries[index] = entry

    def first_match(self, address: int) -> Optional[PMPEntry]:
        """Lowest-numbered matching entry — PMP priority order."""
        for entry in self.entries:
            if entry is not None and entry.matches(address):
                return entry
        return None

    def allows(self, address: int, size: int, privileged: bool,
               write: bool, privdefena: bool = True) -> bool:
        """Arbitrate first and last probe byte against the entry list.

        ``privdefena`` plays ``mstatus``'s default-map role for the
        adapter: with it clear, M-mode accesses that match no entry are
        denied, mirroring the MPU's ``PRIVDEFENA=0`` behaviour.
        """
        if not self.enabled:
            return True
        last = address + size - 1
        for probe in (address, last) if last != address else (address,):
            entry = self.first_match(probe)
            if entry is None:
                # No match: M-mode succeeds only on the default map.
                if privileged and privdefena:
                    continue
                return False
            if privileged and not entry.locked:
                continue  # M-mode bypasses unlocked entries
            if not entry.permits(write):
                return False
        return True


def napot_cover(base: int, length: int) -> list[tuple[int, int]]:
    """Exactly cover an aligned range with NAPOT (base, size) pieces.

    ``base`` and ``length`` must be multiples of the minimum grain;
    greedy largest-aligned-chunk decomposition is exact for such
    ranges.
    """
    if base % MIN_GRAIN or length % MIN_GRAIN or length <= 0:
        raise ValueError("range not representable at PMP granularity")
    pieces: list[tuple[int, int]] = []
    cursor = base
    remaining = length
    while remaining > 0:
        size = MIN_GRAIN
        while (size << 1) <= remaining and cursor % (size << 1) == 0:
            size <<= 1
        pieces.append((cursor, size))
        cursor += size
        remaining -= size
    return pieces


def _entry_permissions(region: MPURegion) -> tuple[bool, bool]:
    if region.unpriv == ACCESS_READWRITE:
        return True, True
    if region.unpriv == ACCESS_READ:
        return True, False
    return False, False


def compile_regions_to_pmp(
    regions: list[Optional[MPURegion]],
) -> list[PMPEntry]:
    """Translate an MPU region set into an equivalent PMP entry list.

    MPU priority is highest-number-wins; PMP is lowest-index-wins, so
    regions are emitted in descending number order.  Sub-region disable
    masks have no PMP analogue: each region is decomposed into its
    enabled sub-region runs, each covered exactly by NAPOT pieces.

    Disabled regions never reach the entry list: ``MPURegion.matches``
    ignores them, so compiling them would grant accesses the MPU
    arbitrates to lower-numbered regions (or denies outright).
    """
    entries: list[PMPEntry] = []
    for region in sorted(
        (r for r in regions if r is not None and r.enabled),
        key=lambda r: r.number, reverse=True,
    ):
        readable, writable = _entry_permissions(region)
        sub = region.subregion_size
        run_start: Optional[int] = None
        for i in range(9):
            enabled = i < 8 and not (region.subregion_disable >> i) & 1
            if enabled and run_start is None:
                run_start = region.base + i * sub
            elif not enabled and run_start is not None:
                run_end = region.base + i * sub
                for base, size in napot_cover(run_start, run_end - run_start):
                    entries.append(PMPEntry(
                        base=base, size=size,
                        readable=readable, writable=writable,
                        executable=region.executable,
                    ))
                run_start = None
    if len(entries) > NUM_PMP_ENTRIES:
        raise ValueError(
            f"region set needs {len(entries)} PMP entries "
            f"(> {NUM_PMP_ENTRIES})"
        )
    return entries


class PmpProtection(EnforcementBackend):
    """The PMP :class:`~repro.hw.backend.EnforcementBackend` (§7 port).

    Consumes the same :class:`MPURegion` policy language as the MPU —
    ``set_region`` / ``clear_region`` / ``load_configuration`` /
    ``allows`` / ``snapshot`` / ``restore`` — while enforcing through
    compiled PMP entries, so the monitor runs unchanged.

    Arbitration verdicts are memoised exactly like the MPU's: every
    PMP entry boundary is NAPOT-aligned (≥ 4 bytes), so a verdict is
    constant across an aligned 4-byte word and is cached under
    ``(first-word, last-word, privileged, write, privdefena)`` until
    the next configuration epoch.  Without this cache every PMP run
    re-scanned up to 16 entries per access — structurally slower than
    the MPU backend for reasons that have nothing to do with the
    modelled hardware.
    """

    # Cost model: a full reconfiguration writes up to 16 pmpaddr CSRs
    # plus the four packed pmpcfg CSRs (the MPU writes 8 RBAR/RASR
    # pairs), so switches are dearer; a fault-driven remap recompiles
    # one region's NAPOT run into its entries.
    name = "pmp"
    switch_base_cost = 84
    region_switch_cost = 52

    def __init__(self):
        self.enabled = False
        self.privdefena = True  # M-mode default map == unlocked bypass
        self.regions: list[Optional[MPURegion]] = [None] * 8
        self.pmp = PMP()
        self.epoch = 0
        self._decisions: dict = {}
        self._recompile()

    def invalidate(self) -> None:
        """Start a new configuration epoch, dropping cached verdicts."""
        self.epoch += 1
        self._decisions = {}

    # -- configuration -----------------------------------------------------

    def set_region(self, region: MPURegion) -> None:
        self.regions[region.number] = region
        self._recompile()

    def clear_region(self, number: int) -> None:
        self.regions[number] = None
        self._recompile()

    def get_region(self, number: int) -> Optional[MPURegion]:
        return self.regions[number]

    def load_configuration(self, regions: list[MPURegion]) -> None:
        self.regions = [None] * 8
        for region in regions:
            self.regions[region.number] = region
        self._recompile()

    def allows(self, address: int, size: int, privileged: bool,
               write: bool) -> bool:
        if not self.enabled:
            return True
        privdefena = self.privdefena
        key = (address >> 2, (address + size - 1) >> 2, privileged, write,
               privdefena)
        verdict = self._decisions.get(key)
        if verdict is None:
            verdict = self.pmp.allows(address, size, privileged, write,
                                      privdefena)
            self._decisions[key] = verdict
        return verdict

    def fast_allows(self):
        """Epoch-scoped arbitration closure (base-class contract).

        ``_recompile`` both rebuilds ``self.pmp`` and calls
        ``invalidate``, so capturing the entry scanner alongside the
        verdict memo is epoch-safe; ``enabled``/``privdefena`` are
        read live (they flip without an epoch bump).
        """
        def fast(address, size, privileged, write, _self=self,
                 _decisions=self._decisions, _scan=self.pmp.allows):
            if not _self.enabled:
                return True
            privdefena = _self.privdefena
            key = (address >> 2, (address + size - 1) >> 2, privileged,
                   write, privdefena)
            verdict = _decisions.get(key)
            if verdict is None:
                verdict = _scan(address, size, privileged, write,
                                privdefena)
                _decisions[key] = verdict
            return verdict

        return fast

    def snapshot(self) -> list[Optional[MPURegion]]:
        return list(self.regions)

    def restore(self, snapshot: list[Optional[MPURegion]]) -> None:
        self.regions = list(snapshot)
        self._recompile()

    # -- internals ---------------------------------------------------------------

    def _recompile(self) -> None:
        entries = compile_regions_to_pmp(self.regions)
        self.pmp = PMP(enabled=True)
        for index, entry in enumerate(entries):
            self.pmp.set_entry(index, entry)
        self.invalidate()


def use_pmp(machine) -> PmpProtection:
    """Swap a machine's MPU for the PMP backend (RISC-V port demo)."""
    pmp = PmpProtection()
    machine.mpu = pmp
    return pmp

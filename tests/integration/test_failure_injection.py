"""Failure-injection tests: corrupted media, hostile input, and
monitor robustness under misuse."""

import pytest

import repro.ir as ir
from repro import build_opec, build_vanilla, run_image
from repro.apps import fatfs_usd, tcp_echo
from repro.apps.lib.fatfs import make_disk_image
from repro.apps.lib.netstack import make_tcp_frame
from repro.hw import Machine, SecurityAbort, stm32479i_eval
from repro.hw.peripherals import EthernetMAC, GPIO, RCC, SDCard
from repro.ir import I32, VOID
from repro.partition import OperationSpec

from ..conftest import MINI_SPECS, build_mini_module


class TestCorruptedMedia:
    def test_fatfs_app_fails_cleanly_on_unformatted_card(self):
        """A blank card: mount fails, the firmware halts on its status
        check instead of corrupting memory."""
        app = fatfs_usd.build()

        def setup(machine):
            machine.attach_device("RCC", RCC())
            for port in ("GPIOA", "GPIOB", "GPIOC"):
                machine.attach_device(port, GPIO())
            machine.attach_device("SDIO", SDCard(image=b"\xFF" * 4096))

        result = run_image(build_vanilla(app.module, app.board),
                           setup=setup,
                           max_instructions=app.max_instructions)
        assert result.halt_code == 0xDEAD  # explicit failure path

    def test_fatfs_app_same_failure_under_opec(self):
        app = fatfs_usd.build()
        artifacts = build_opec(app.module, app.board, app.specs)

        def setup(machine):
            machine.attach_device("RCC", RCC())
            for port in ("GPIOA", "GPIOB", "GPIOC"):
                machine.attach_device(port, GPIO())
            machine.attach_device("SDIO", SDCard(image=b"\xFF" * 4096))

        result = run_image(artifacts.image, setup=setup,
                           max_instructions=app.max_instructions)
        assert result.halt_code == 0xDEAD

    def test_truncated_directory_entry_reads_zero_bytes(self):
        """A directory that names a file whose chain is free: reads
        return no data but never crash."""
        image = bytearray(make_disk_image({b"GOOD    ": b"payload"}))
        # Zero the FAT: the chain vanishes while the dirent stays.
        image[512:1024] = bytes(512)
        app = fatfs_usd.build()
        # Not the app's flow; exercise the library directly instead.
        from repro.apps.hal.libc import add_libc
        from repro.apps.hal.storage import add_sd_hal
        from repro.apps.lib import fatfs as fatfs_lib

        board = stm32479i_eval()
        module = ir.Module("t")
        libc = add_libc(module)
        sd = add_sd_hal(module, board)
        fs = fatfs_lib.add_fatfs(module, sd, libc)
        fsobj = module.add_global("fsobj", fs.fatfs_t)
        fil = module.add_global("fil", fs.fil_t)
        name = module.add_global("name", ir.array(ir.I8, 8), b"GOOD    ",
                                 is_const=True)
        out = module.add_global("out", ir.array(ir.I8, 16))
        _m, b = ir.define(module, "main", I32, [])
        b.call(fs.f_mount, fsobj)
        b.call(fs.f_open, fil, fsobj, b.gep(name, 0, 0), 0)
        b.halt(b.call(fs.f_read, fil, fsobj, b.gep(out, 0, 0), 16))
        machine = Machine(board)
        machine.attach_device("SDIO", SDCard(image=bytes(image)))
        vanilla = build_vanilla(module, board)
        vanilla.initialize_memory(machine)
        from repro.interp import Interpreter

        code = Interpreter(machine, vanilla,
                           max_instructions=10_000_000).run()
        assert code <= 16  # no crash; bounded read


class TestHostilePackets:
    def _run_with_frames(self, frames):
        app = tcp_echo.build(valid=1, invalid=len(frames))

        def setup(machine):
            machine.attach_device("RCC", RCC())
            for port in ("GPIOA", "GPIOB"):
                machine.attach_device(port, GPIO())
            mac = machine.attach_device("ETH", EthernetMAC())
            for frame in frames:
                mac.enqueue_frame(frame)
            mac.enqueue_frame(make_tcp_frame(b"legit payload!"))

        artifacts = build_opec(app.module, app.board, app.specs)
        return run_image(artifacts.image, setup=setup,
                         max_instructions=app.max_instructions)

    def test_runt_frame_survived(self):
        result = self._run_with_frames([b"\x00" * 16])
        assert result.halt_code == 1  # the legit packet still echoed

    def test_giant_frame_clamped(self):
        giant = make_tcp_frame(b"A" * 250)
        result = self._run_with_frames([giant[:60] + b"B" * 400])
        assert result.halt_code >= 1

    def test_garbage_frames_counted_invalid(self):
        result = self._run_with_frames(
            [bytes(range(60)), b"\xFF" * 60, b"\x08\x00" * 30])
        mac = result.machine.device("ETH")
        assert len(mac.sent_frames()) == 1  # only the legit echo


class TestMonitorMisuse:
    def test_icall_into_monitored_garbage_faults_not_escapes(self, board):
        """A hijacked function pointer to a non-function address must
        hard-fault, never execute as code."""
        from repro.hw import HardFault

        module = build_mini_module()
        task_b = module.get_function("task_b")
        block = task_b.blocks[0]
        ret = block.instructions.pop()
        b = ir.IRBuilder(task_b, block)
        b.icall(b.const(0x20000000), ir.FunctionType(VOID, []))
        block.instructions.append(ret)
        artifacts = build_opec(module, board, MINI_SPECS)
        with pytest.raises(HardFault, match="icall"):
            run_image(artifacts.image)

    def test_deep_nested_switches_exhaust_stack_cleanly(self, board):
        """Ten nested operation entries: every switch takes a stack
        sub-region; past eight the monitor-relocated SP underflows the
        stack region and the access faults — contained, not silent."""
        module = ir.Module("deep")
        shared = module.add_global("shared", I32, 0)
        ops = []
        for i in reversed(range(10)):
            func, b = ir.define(module, f"level{i}", VOID, [])
            b.store(b.add(b.load(shared), 1), shared)
            slot = b.alloca(ir.array(ir.I8, 1600))
            b.store(b.const(1, ir.I8), b.gep(slot, 0, 0))
            if ops:
                b.call(ops[-1])
            b.ret_void()
            ops.append(func)
        _m, b = ir.define(module, "main", I32, [])
        b.call(ops[-1])
        b.halt(b.load(shared))
        artifacts = build_opec(
            module, board, [OperationSpec(f.name) for f in ops])
        from repro.hw import HardFault

        with pytest.raises((SecurityAbort, HardFault)):
            run_image(artifacts.image)

    def test_sanitizer_stops_corruption_before_publication(self, board):
        """Even when the in-operation write is legal, an out-of-range
        value never reaches the public copy."""
        module = ir.Module("san")
        level = module.add_global("speed", I32, 1, sanitize_range=(0, 10))
        setter, b = ir.define(module, "setter", VOID, [I32])
        b.store(setter.params[0], level)
        b.ret_void()
        reader, b = ir.define(module, "reader", I32, [])
        b.ret(b.load(level))
        _m, b = ir.define(module, "main", I32, [])
        b.call(setter, 9999)  # "move the robot arm at speed 9999"
        b.halt(b.call(reader))
        artifacts = build_opec(module, board, [OperationSpec("setter"),
                                               OperationSpec("reader")])
        image = artifacts.image
        with pytest.raises(SecurityAbort, match="sanitisation"):
            run_image(artifacts.image)
        # The public copy still holds the initial, safe value.
        machine = Machine(board)
        image2 = build_opec(_rebuild_san(), board,
                            [OperationSpec("setter"),
                             OperationSpec("reader")]).image
        image2.initialize_memory(machine)
        public = image2.public_addresses[
            image2.module.get_global("speed")]
        assert machine.read_direct(public, 4) == 1


def _rebuild_san():
    module = ir.Module("san")
    level = module.add_global("speed", I32, 1, sanitize_range=(0, 10))
    setter, b = ir.define(module, "setter", VOID, [I32])
    b.store(setter.params[0], level)
    b.ret_void()
    reader, b = ir.define(module, "reader", I32, [])
    b.ret(b.load(level))
    _m, b = ir.define(module, "main", I32, [])
    b.call(setter, 9999)
    b.halt(b.call(reader))
    return module

"""Deterministic observability: flight recorder + metrics registry.

``repro.obs`` is the instrument every other layer reports into:

* :mod:`repro.obs.events` — the typed event taxonomy (operation-switch
  phases, SVC/IRQ, fault handling, build stages, cache traffic);
* :mod:`repro.obs.recorder` — the bounded ring-buffer
  :class:`FlightRecorder` and the ambient-recorder plumbing
  (``REPRO_TRACE`` / ``REPRO_TRACE_BUF``);
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of counters
  and cycle histograms (the machine's ``stats`` shim sits on top);
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto), TSV
  event log, summaries.

Everything here is timestamped with simulated DWT cycles or sequence
numbers — never wall clock — so enabled-mode output is byte-identical
across runs; disabled mode (the default) emits nothing and costs one
``is None`` check per cold seam.  See DESIGN.md, "Observability".
"""

from .events import (
    BEGIN,
    DOMAIN_HOST,
    DOMAIN_SIM,
    END,
    Event,
    INSTANT,
)
from .export import chrome_trace, event_tsv, span_pairs, trace_summary
from .metrics import Counter, CycleHistogram, MetricsRegistry
from .recorder import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    active_recorder,
    attach_crash_context,
    install,
    reset_active,
    trace_capacity,
    trace_enabled,
)

__all__ = [
    "BEGIN", "DOMAIN_HOST", "DOMAIN_SIM", "END", "Event", "INSTANT",
    "chrome_trace", "event_tsv", "span_pairs", "trace_summary",
    "Counter", "CycleHistogram", "MetricsRegistry",
    "DEFAULT_CAPACITY", "FlightRecorder", "active_recorder",
    "attach_crash_context", "install", "reset_active",
    "trace_capacity", "trace_enabled",
]

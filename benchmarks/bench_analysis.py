#!/usr/bin/env python
"""Compiler-side performance regression harness.

The compile-time counterpart of ``bench_regress.py``: snapshots the
OPEC-Compiler analysis pipeline into ``BENCH_analysis.json`` so the
compile-side perf trajectory is tracked like the interpreter's.

Per application (paper profile — builds only, nothing is simulated):

* Andersen solver cost counters — worklist ``iterations``,
  ``propagated_objects``, ``peak_delta``, final ``constraints`` sizes —
  all *deterministic*: they are part of the determinism contract and
  diffed by ``tools/check_determinism.py``;
* derived call-graph facts (icall counts and how each was resolved,
  operation/function counts) — deterministic too;
* the per-stage wall-clock breakdown from ``BuildArtifacts.stage_times``
  and the Andersen solve time — host measurements, masked from the
  determinism diff.

The ``harness`` section times full evaluation-row passes
(``compute_all_rows``) under the quick profile against a fresh
artifact cache: a cold serial pass (populating the store), a warm
serial pass (everything rehydrated), and — when ``REPRO_JOBS`` > 1 —
cold and warm passes through the process pool.  Each pass records its
wall-clock and the store's hit/miss counters, so the snapshot proves
both the warm speedup and that pool workers actually shared the store.
Skip it with ``--no-harness`` (the determinism checker does: the whole
section is host wall-clock).

Usage:  PYTHONPATH=src python benchmarks/bench_analysis.py [out.json] [--no-harness]
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.eval.workloads import APP_NAMES, build_app, repro_jobs  # noqa: E402
from repro.pipeline import build_opec  # noqa: E402


def bench_app(name: str) -> dict:
    app = build_app(name, profile="paper")
    artifacts = build_opec(app.module, app.board, app.specs)
    andersen = artifacts.andersen
    graph = artifacts.callgraph
    return {
        "functions": len(app.module.functions),
        "operations": len(artifacts.operations),
        "andersen": {
            "iterations": andersen.iterations,
            "propagated_objects": andersen.propagated_objects,
            "peak_delta": andersen.peak_delta,
            "constraints": dict(andersen.constraint_counts),
            "solve_wall_s": round(andersen.solve_time, 4),
        },
        "icalls": {
            "total": graph.icall_count(),
            "svf": graph.resolved_by("svf"),
            "type": graph.resolved_by("type"),
        },
        "stages_wall_ms": {
            stage: round(seconds * 1000, 2)
            for stage, seconds in artifacts.stage_times.items()
        },
    }


def _timed_rows(jobs: int, cache_dir: str) -> tuple[float, dict]:
    """Time one full compute_all_rows pass in a fresh subprocess
    against ``cache_dir`` (in-process memos always start cold; the
    on-disk store carries whatever previous passes put there).
    Returns (wall seconds, cache hit/miss counters of the pass)."""
    env = dict(os.environ)
    env["REPRO_PROFILE"] = "quick"
    env["REPRO_JOBS"] = str(jobs)
    env["REPRO_CACHE"] = cache_dir
    env.setdefault("PYTHONPATH", str(REPO / "src"))
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-c",
         "import json\n"
         "from repro.eval.workloads import compute_all_rows\n"
         "print(json.dumps(compute_all_rows()['cache']))"],
        cwd=REPO, env=env, check=True, capture_output=True, text=True,
    )
    elapsed = time.perf_counter() - start
    counters = json.loads(proc.stdout.splitlines()[-1])
    return elapsed, counters


def _pass_report(wall: float, counters: dict) -> dict:
    return {
        "wall_s": round(wall, 2),
        "cache_hits": counters["hits"],
        "cache_misses": counters["misses"],
    }


def bench_harness() -> dict:
    import tempfile

    jobs = repro_jobs()
    report = {"profile": "quick", "jobs": jobs}
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold, cold_counters = _timed_rows(1, tmp)
        warm, warm_counters = _timed_rows(1, tmp)
        report["serial_cold"] = _pass_report(cold, cold_counters)
        report["serial_warm"] = _pass_report(warm, warm_counters)
        report["serial_warm_speedup"] = round(cold / warm, 2)
    if jobs > 1:
        with tempfile.TemporaryDirectory(
                prefix="repro-bench-cache-") as tmp:
            cold, cold_counters = _timed_rows(jobs, tmp)
            warm, warm_counters = _timed_rows(jobs, tmp)
            report["parallel_cold"] = _pass_report(cold, cold_counters)
            report["parallel_warm"] = _pass_report(warm, warm_counters)
            report["parallel_warm_speedup"] = round(cold / warm, 2)
    return report


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--no-harness"]
    run_harness = "--no-harness" not in sys.argv[1:]
    out = Path(args[0]) if args else REPO / "BENCH_analysis.json"
    # The apps section exists to track real per-stage compile timings;
    # an ambient warm store would replace them with one "cache_load"
    # entry.  (The harness subprocesses pin their own REPRO_CACHE.)
    os.environ["REPRO_CACHE"] = "off"
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "apps": {name: bench_app(name) for name in APP_NAMES},
    }
    if run_harness:
        report["harness"] = bench_harness()
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""ACES compartmentalisation strategies (USENIX Security '18, §6.4).

ACES partitions *code* into compartments by a compartmentalisation
policy; the paper's comparison (§6.4) uses three:

* **ACES1** — "filename": one compartment per source file, then the
  optimisation pass merges the most chatty compartment pairs to reduce
  switch overhead (coarser isolation, fewer switches);
* **ACES2** — "filename without optimisation": one compartment per
  source file, unmerged;
* **ACES3** — "peripheral": functions grouped by the set of
  peripherals they access.

A compartment that needs core (PPB) peripherals is *lifted to the
privileged level* — the behaviour OPEC criticises and Table 2's PAC
column quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...analysis.resources import FunctionResources, ResourceAnalysis
from ...ir.function import Function
from ...ir.instructions import Call
from ...ir.module import Module

STRATEGY_FILENAME = "ACES1"
STRATEGY_FILENAME_NO_OPT = "ACES2"
STRATEGY_PERIPHERAL = "ACES3"
ALL_STRATEGIES = (STRATEGY_FILENAME, STRATEGY_FILENAME_NO_OPT,
                  STRATEGY_PERIPHERAL)


@dataclass
class Compartment:
    """One ACES code compartment."""

    index: int
    name: str
    functions: set[Function]
    resources: FunctionResources = field(default_factory=FunctionResources)
    privileged: bool = False

    def code_bytes(self) -> int:
        from ...image.layout import function_code_size

        return sum(function_code_size(f) for f in self.functions
                   if not f.is_declaration)

    def __hash__(self) -> int:
        return self.index

    def __repr__(self) -> str:
        return f"<Compartment {self.index} {self.name}: {len(self.functions)} funcs>"


def _merge_resources(functions: set[Function],
                     resources: ResourceAnalysis) -> FunctionResources:
    merged = FunctionResources()
    for func in functions:
        merged.merge(resources.function_resources(func))
    return merged


def _finalize(groups: dict[str, set[Function]],
              resources: ResourceAnalysis) -> list[Compartment]:
    compartments = []
    for index, (name, funcs) in enumerate(sorted(groups.items())):
        compartment = Compartment(index=index, name=name, functions=funcs)
        compartment.resources = _merge_resources(funcs, resources)
        compartment.privileged = bool(compartment.resources.core_peripherals)
        compartments.append(compartment)
    return compartments


def partition_by_filename(module: Module, resources: ResourceAnalysis,
                          optimize: bool = False) -> list[Compartment]:
    """ACES1/ACES2: group by ``source_file``; optionally merge."""
    groups: dict[str, set[Function]] = {}
    for func in module.defined_functions():
        key = func.source_file or "unknown.c"
        groups.setdefault(key, set()).add(func)
    if optimize:
        groups = _merge_chatty(module, groups)
    return _finalize(groups, resources)


def _merge_chatty(module: Module,
                  groups: dict[str, set[Function]]) -> dict[str, set[Function]]:
    """ACES' optimisation: merge the compartment pairs with the most
    cross-compartment call edges until the count halves."""
    groups = {k: set(v) for k, v in groups.items()}
    target = max(2, (len(groups) + 1) // 2)
    while len(groups) > target:
        owner = {f: name for name, funcs in groups.items() for f in funcs}
        edge_count: dict[tuple[str, str], int] = {}
        for func in module.defined_functions():
            for inst in func.iter_instructions():
                if isinstance(inst, Call):
                    src = owner.get(func)
                    dst = owner.get(inst.callee)
                    if src is None or dst is None or src == dst:
                        continue
                    key = tuple(sorted((src, dst)))
                    edge_count[key] = edge_count.get(key, 0) + 1
        if not edge_count:
            break
        (a, name_b), _ = max(edge_count.items(), key=lambda kv: (kv[1], kv[0]))
        groups[a] |= groups.pop(name_b)
    return groups


def partition_by_peripheral(module: Module,
                            resources: ResourceAnalysis) -> list[Compartment]:
    """ACES3: group functions by the peripheral set they touch."""
    groups: dict[str, set[Function]] = {}
    for func in module.defined_functions():
        res = resources.function_resources(func)
        names = sorted(p.name for p in res.peripherals)
        key = "periph:" + "+".join(names) if names else "periph:none"
        groups.setdefault(key, set()).add(func)
    return _finalize(groups, resources)


def partition_aces(module: Module, resources: ResourceAnalysis,
                   strategy: str) -> list[Compartment]:
    """Dispatch on the strategy name used throughout §6.4."""
    if strategy == STRATEGY_FILENAME:
        return partition_by_filename(module, resources, optimize=True)
    if strategy == STRATEGY_FILENAME_NO_OPT:
        return partition_by_filename(module, resources, optimize=False)
    if strategy == STRATEGY_PERIPHERAL:
        return partition_by_peripheral(module, resources)
    raise ValueError(f"unknown ACES strategy {strategy!r}")


def compartment_of(compartments: list[Compartment],
                   func: Function) -> Compartment | None:
    for compartment in compartments:
        if func in compartment.functions:
            return compartment
    return None

"""Differential campaign executor.

One campaign = one seed.  For each corpus member the engine builds all
requested flavours (vanilla / OPEC / ACES — served by the
content-addressed artifact store like every other build), resolves
each attack against each concrete image, and drives one
:class:`~repro.interp.batch.BatchRunner` fleet per firmware: a
baseline lane plus one lane per attack, for every (flavour, backend)
pair, all sharing the flavour images and their compiled blocks.

Firmwares fan out over ``REPRO_JOBS`` worker processes
(``ProcessPoolExecutor``, like :func:`repro.eval.workloads.
compute_all_rows`); the per-firmware reports are merged in corpus
index order, and each finished :class:`FirmwareReport` is itself
persisted in the artifact store, so re-running a campaign with a warm
store replays no simulation at all.  Either way the merged
:class:`CampaignResult` — and the report rendered from it — is
byte-identical: same seed, same bytes, regardless of job count, lane
interleaving, cache temperature, or ``PYTHONHASHSEED``.

Outcome classification per attack lane:

* **blocked**   — the run died on a simulated fault / security abort
  (the enforcement substrate contained the attack);
* **succeeded** — the run halted normally and the attack's evidence
  cell holds the planted value;
* **survived**  — the run halted normally but the payload left no
  trace (injected stimulus was absorbed);
* **error**     — the lane died on a host-side defect
  (:class:`~repro.interp.batch.LaneFailure`), kept from killing
  sibling lanes by the batch runner's fault isolation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from .. import cache
from ..baselines import build_aces
from ..eval.metrics import pt_value
from ..interp.batch import BatchRunner, LaneFailure
from ..obs import fleet
from ..obs.events import FLEET_FIRMWARE
from ..obs.recorder import FlightRecorder, active_recorder, install, \
    trace_capacity
from ..pipeline import build_opec, build_vanilla
from .attacks import ATTACK_KINDS, attack_setup, resolve_attack
from .generator import GeneratedFirmware, generate_firmware

#: Build flavours a campaign can run, in report order.
KNOWN_FLAVOURS = ("vanilla", "opec", "aces")


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign's full parameterisation (a pure-primitive frozen
    dataclass: picklable for the process pool, hashable for the report
    cache digest)."""

    seed: int = 2026
    firmwares: int = 8
    attacks: tuple[str, ...] = ATTACK_KINDS
    flavours: tuple[str, ...] = KNOWN_FLAVOURS
    backends: tuple[str, ...] = ("mpu", "pmp", "overlay")
    # ACES2 (filename, no compartment-merge optimisation) keeps one
    # compartment per source file; the merge optimisation of ACES1
    # collapses these small generated firmwares into 2–3 compartments
    # whose region groups degenerate to accessor-pure sets (PT = 0),
    # hiding exactly the over-privilege the campaign measures.
    aces_strategy: str = "ACES2"
    jobs: Optional[int] = None          # None → REPRO_JOBS
    # Install a host-side flight recorder in every worker so the
    # telemetry envelopes carry ``fleet.firmware`` wall-clock spans
    # (``repro fleet campaign`` turns this on).  Not part of the
    # report digest: tracing never changes a simulated outcome.
    telemetry_trace: bool = False

    def validate(self) -> None:
        if self.firmwares < 1:
            raise ValueError("campaign needs at least one firmware")
        for kind in self.attacks:
            if kind not in ATTACK_KINDS:
                raise ValueError(
                    f"unknown attack kind {kind!r}: expected one of "
                    f"{', '.join(ATTACK_KINDS)}")
        for flavour in self.flavours:
            if flavour not in KNOWN_FLAVOURS:
                raise ValueError(
                    f"unknown flavour {flavour!r}: expected one of "
                    f"{', '.join(KNOWN_FLAVOURS)}")


#: The committed-results configuration: small enough for CI, large
#: enough that the containment differential is unambiguous.
SMOKE_CONFIG = CampaignConfig(seed=2026, firmwares=8,
                              attacks=("global", "icall"))


@dataclass
class LaneOutcome:
    """One (attack, flavour, backend) lane's classified result."""

    outcome: str                 # succeeded | blocked | survived | error | ok
    detail: str = ""             # fault class, for blocked/error lanes
    halt_code: int = -1
    cycles: int = 0
    switches: int = 0
    switch_cycles: int = 0


@dataclass
class FirmwareReport:
    """Everything the corpus report needs about one firmware — plain
    primitives only, so it crosses process and cache boundaries."""

    name: str
    index: int
    tasks: int
    victim: str
    # baseline (attack-free) and attack lanes, keyed by primitives:
    # baseline[(flavour, backend)]; cells[(attack, flavour, backend)].
    baseline: dict[tuple[str, str], LaneOutcome] = field(default_factory=dict)
    cells: dict[tuple[str, str, str], LaneOutcome] = field(
        default_factory=dict)
    # Per-domain partition-time over-privilege values per flavour.
    pt: dict[str, list[float]] = field(default_factory=dict)


@dataclass
class CampaignResult:
    config: CampaignConfig
    reports: list[FirmwareReport]
    # One WorkerTelemetry envelope per firmware evaluation (corpus
    # index order), aggregated by ``repro campaign``'s footer and
    # ``repro fleet campaign``.  Diagnostic: cache/compile content
    # varies with cache temperature; never rendered into the report.
    telemetry: list = field(default_factory=list)


def _classify(lane, plan) -> LaneOutcome:
    """Map one finished batch lane to its reported outcome."""
    if lane.error is not None:
        kind = "error" if isinstance(lane.error, LaneFailure) else "blocked"
        return LaneOutcome(outcome=kind,
                           detail=type(lane.error).__name__,
                           cycles=lane.cycles)
    hist = lane.machine.metrics.histogram("monitor.switch_cycles")
    switches, switch_cycles = hist.count, hist.total
    if switches == 0:
        # The ACES runtime counts compartment entries on the hooks
        # object instead of the monitor histogram; it charges the
        # backend's base cost once on entry and once on return.
        entries = getattr(lane.hooks, "switch_count", 0)
        if entries:
            switches = entries
            switch_cycles = (2 * entries
                             * lane.machine.enforcement.switch_base_cost)
    outcome = "ok"
    if plan is not None:
        evidence = lane.machine.read_direct(plan.evidence_address, 4)
        outcome = ("succeeded" if evidence == plan.evidence_value
                   else "survived")
    return LaneOutcome(outcome=outcome, halt_code=lane.halt_code,
                       cycles=lane.cycles, switches=switches,
                       switch_cycles=switch_cycles)


def _build_images(config: CampaignConfig,
                  firmware: GeneratedFirmware) -> dict[str, object]:
    images: dict[str, object] = {}
    for flavour in config.flavours:
        if flavour == "vanilla":
            images[flavour] = build_vanilla(firmware.module, firmware.board)
        elif flavour == "opec":
            images[flavour] = build_opec(firmware.module, firmware.board,
                                         firmware.specs).image
        else:
            images[flavour] = build_aces(firmware.module, firmware.board,
                                         config.aces_strategy).image
    return images


def _pt_values(config: CampaignConfig, firmware: GeneratedFirmware,
               images: dict[str, object]) -> dict[str, list[float]]:
    """Equation-1 over-privilege per protection domain, per flavour.

    OPEC domains are operations over their shadowed sections (PT = 0
    by construction); ACES domains are compartments over their merged
    region assignment; the vanilla "domain" per task is the entire
    writable data segment — everything is accessible to everyone.
    """
    values: dict[str, list[float]] = {}
    opec = images.get("opec")
    if opec is not None:
        policy = opec.policy
        values["opec"] = [
            pt_value(
                {v for v in policy.section_vars(op) if not v.is_const},
                {v for v in op.resources.globals_all if not v.is_const},
            )
            for op in policy.operations
        ]
        all_writable = {v for v in firmware.module.iter_globals()
                        if not v.is_const}
        if "vanilla" in config.flavours:
            values["vanilla"] = [
                pt_value(
                    all_writable,
                    {v for v in op.resources.globals_all
                     if not v.is_const},
                )
                for op in policy.operations
            ]
    aces = images.get("aces")
    if aces is not None:
        values["aces"] = [
            pt_value(
                {v for v in aces.assignment.accessible_vars(compartment)
                 if not v.is_const},
                {v for v in compartment.resources.globals_all
                 if not v.is_const},
            )
            for compartment in aces.compartments
        ]
    return values


def evaluate_firmware(config: CampaignConfig, index: int) -> FirmwareReport:
    """Generate, build, attack, and classify one corpus member."""
    firmware = generate_firmware(config.seed, index)
    store = cache.active_store()
    digest = ""
    if store is not None:
        digest = _report_digest(config, firmware)
        cached = store.get(digest)
        if cached is not None:
            return cached

    with fleet.wall_span(active_recorder(), FLEET_FIRMWARE,
                         firmware.name, index=index):
        images = _build_images(config, firmware)
        plans = {
            (kind, flavour): resolve_attack(kind, firmware,
                                            images[flavour])
            for flavour in config.flavours
            for kind in config.attacks
        }

        runner = BatchRunner()
        lane_plans = []
        for flavour in config.flavours:
            image = images[flavour]
            for backend in config.backends:
                runner.add(
                    image,
                    name=f"{firmware.name}:{flavour}:{backend}:baseline",
                    setup=firmware.base_setup(),
                    max_instructions=firmware.max_instructions,
                    backend=backend,
                )
                lane_plans.append((None, flavour, backend, None))
                for kind in config.attacks:
                    plan = plans[(kind, flavour)]
                    runner.add(
                        image,
                        name=f"{firmware.name}:{flavour}:{backend}:{kind}",
                        setup=attack_setup(firmware, plan),
                        max_instructions=firmware.max_instructions,
                        backend=backend,
                    )
                    lane_plans.append((kind, flavour, backend, plan))
        result = runner.run()

    fleet.record_simulation(compile_metrics=result.compile_metrics)
    report = FirmwareReport(
        name=firmware.name, index=index, tasks=len(firmware.tasks),
        victim=firmware.victim, pt=_pt_values(config, firmware, images),
    )
    for lane, (kind, flavour, backend, plan) in zip(result.lanes,
                                                    lane_plans):
        fleet.record_simulation(lane.machine.metrics)
        outcome = _classify(lane, plan)
        if kind is None:
            report.baseline[(flavour, backend)] = outcome
        else:
            report.cells[(kind, flavour, backend)] = outcome
    if store is not None:
        store.put(digest, report)
    return report


def _report_digest(config: CampaignConfig,
                   firmware: GeneratedFirmware) -> str:
    """Content key for one firmware's finished report: the firmware's
    structural digest plus every config axis that shapes the lanes.
    The store itself is scoped by the pipeline fingerprint, so source
    changes invalidate these entries like any build."""
    key = hashlib.sha256()
    key.update(b"campaign-report-v1\n")
    key.update(repr((config.seed, firmware.index, config.attacks,
                     config.flavours, config.backends,
                     config.aces_strategy)).encode())
    key.update(cache.module_digest(firmware.module).encode())
    return key.hexdigest()


def _firmware_worker(
        job: tuple[CampaignConfig, int],
) -> tuple[FirmwareReport, fleet.WorkerTelemetry]:
    """Process-pool entry point.  No environment pinning: every
    parameter the lanes depend on travels inside ``config``, and the
    artifact store location is inherited.  Each firmware evaluates
    inside its own telemetry capture window, so the returned envelope
    carries exactly that firmware's cache traffic, compile activity,
    simulated metrics, and — under ``config.telemetry_trace`` — its
    ``fleet.firmware`` wall-clock span."""
    config, index = job
    recorder = FlightRecorder(trace_capacity()) \
        if config.telemetry_trace else None
    previous = install(recorder) if recorder is not None else None
    token = fleet.begin_capture()
    try:
        report = evaluate_firmware(config, index)
    finally:
        if recorder is not None:
            install(previous)
        envelope = fleet.end_capture(
            token,
            host_events=recorder.events() if recorder is not None else ())
    return report, envelope


def run_campaign(config: CampaignConfig) -> CampaignResult:
    """Run the whole corpus, fanned out over ``REPRO_JOBS`` workers."""
    from ..eval.workloads import repro_jobs

    config.validate()
    jobs = repro_jobs() if config.jobs is None else max(1, config.jobs)
    indices = list(range(config.firmwares))
    if jobs > 1 and len(indices) > 1:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(jobs, len(indices))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Contiguous chunks (not one task per firmware) keep each
            # worker on one long-lived slice: the per-process build
            # memos and the warm closure cache amortise across the
            # chunk instead of being re-proven per pickled task.
            pairs = list(pool.map(
                _firmware_worker,
                [(config, index) for index in indices],
                chunksize=-(-len(indices) // workers)))
    else:
        pairs = [_firmware_worker((config, index)) for index in indices]
    # Workers return in map order (= corpus index order) already, but
    # sort defensively so the merge is order-independent by contract.
    pairs.sort(key=lambda pair: pair[0].index)
    reports = [report for report, _ in pairs]
    telemetry = []
    for position, (report, envelope) in enumerate(pairs):
        envelope.worker = position + 1
        envelope.label = report.name
        telemetry.append(envelope)
    return CampaignResult(config=config, reports=reports,
                          telemetry=telemetry)


__all__ = [
    "KNOWN_FLAVOURS",
    "SMOKE_CONFIG",
    "CampaignConfig",
    "CampaignResult",
    "FirmwareReport",
    "LaneOutcome",
    "evaluate_firmware",
    "run_campaign",
]

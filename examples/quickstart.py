#!/usr/bin/env python3
"""Quickstart: protect a tiny firmware with OPEC in ~60 lines.

Builds a two-task firmware in the IR, runs it unprotected, then runs
the same firmware partitioned into operations with the monitor
enforcing isolation — and shows that a cross-operation write is
blocked.

Run:  python examples/quickstart.py
"""

import repro.ir as ir
from repro import build_opec, build_vanilla, run_image
from repro.hw import SecurityAbort, stm32f4_discovery
from repro.partition import OperationSpec


def build_firmware(attack_address: int = 0) -> ir.Module:
    module = ir.Module("quickstart")
    counter = module.add_global("counter", ir.I32, 0)     # shared
    secret = module.add_global("secret", ir.I32, 1234)    # sensor_task only

    sensor_task, b = ir.define(module, "sensor_task", ir.VOID, [])
    b.store(b.add(b.load(counter), b.load(secret)), counter)
    b.ret_void()

    log_task, b = ir.define(module, "log_task", ir.VOID, [])
    b.store(b.add(b.load(counter), 1), counter)
    if attack_address:
        # A compromised log_task using an arbitrary-write primitive.
        b.store(0, b.inttoptr(attack_address, ir.I32))
    b.ret_void()

    main, b = ir.define(module, "main", ir.I32, [])
    b.call(sensor_task)
    b.call(log_task)
    b.halt(b.load(counter))
    return module


def main() -> None:
    board = stm32f4_discovery()
    specs = [OperationSpec("sensor_task"), OperationSpec("log_task")]

    # 1. Baseline: no isolation.
    vanilla = run_image(build_vanilla(build_firmware(), board))
    print(f"vanilla : halt={vanilla.halt_code}  cycles={vanilla.cycles}")

    # 2. OPEC: partition, link, enforce.
    artifacts = build_opec(build_firmware(), board, specs)
    print("\noperations:")
    for op in artifacts.operations:
        globals_ = sorted(g.name for g in op.resources.globals_all)
        print(f"  {op.name:12s} functions={len(op.functions)} "
              f"globals={globals_}")
    protected = run_image(artifacts.image)
    print(f"\nopec    : halt={protected.halt_code}  "
          f"cycles={protected.cycles}  "
          f"switches={protected.hooks.switch_count}")
    overhead = protected.cycles / vanilla.cycles - 1
    print(f"runtime overhead: {overhead:.2%} (a 27-cycle toy amplifies "
          f"the fixed switch cost; see `python -m repro.eval.figure9` "
          f"for the real workloads)")

    # 3. The security payoff: log_task writing sensor_task's secret.
    secret_addr = artifacts.image.global_address(
        artifacts.module.get_global("secret"))
    armed = build_opec(build_firmware(secret_addr), board, specs)
    try:
        run_image(armed.image)
        print("\nATTACK SUCCEEDED (this should not happen)")
    except SecurityAbort as abort:
        print(f"\nattack blocked by the monitor:\n  {abort}")


if __name__ == "__main__":
    main()

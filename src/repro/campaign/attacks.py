"""Attack injection for generated firmware.

Attacks are *host-side stimuli*, not IR edits: every generated
firmware carries the same planted arbitrary-write primitive (the
victim task's mailbox poll, :mod:`.generator`), and an attack is one
``(address, value)`` payload programmed into the :class:`AttackPort`
device before the run.  What differs per attack kind is only *where*
the write lands — and that address is resolved against the concrete
image under test, exactly the way ``examples/pinlock_attack.py``
resolves ``KEY`` per build flavour:

* ``global`` — another operation's private ``secret`` variable;
* ``stack`` — a suspended caller frame (``main``'s canary buffer, 32
  bytes below the stack top);
* ``peripheral`` — the forbidden GPIO port's ODR, a peripheral no
  task's policy includes;
* ``icall`` — the dispatch-table slot the victim indirect-calls
  through, redirected to the ``gadget`` function (corrupted-icall
  control flow); the gadget's flag shows whether the payload ran.

Each plan also carries an **evidence** address/value pair: after a run
halts normally, the executor reads the evidence cell to classify the
outcome as *succeeded* (payload landed) or *survived* (run finished
but the payload left no trace); a terminal fault classifies as
*blocked*.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.machine import Machine
from ..hw.peripherals import GPIO
from ..image.layout import Image
from ..image.linker import OpecImage
from .generator import (
    FORBIDDEN_GPIO,
    GADGET_MAGIC,
    MAILBOX_ADDR,
    MAILBOX_CMD,
    MAILBOX_PERIPHERAL,
    MAILBOX_VALUE,
    GeneratedFirmware,
)

#: The four injected attack classes (§6.1 generalized).
ATTACK_KINDS = ("global", "stack", "peripheral", "icall")

#: Payload planted by the global-corruption and stack-smash attacks.
PLANTED_VALUE = 0x5EADBEEF & 0x7FFFFFFF
#: Payload the peripheral-abuse attack drives onto the forbidden port.
PLANTED_ODR = 0xA5A


class AttackPort:
    """One-shot mailbox the victim task polls.

    ``CMD`` self-clears on read, so an armed port fires the planted
    write exactly once; an unarmed port (the baseline lanes) always
    reads zero and the victim's poll falls through.
    """

    def __init__(self) -> None:
        self.machine = None
        self.command = 0
        self.address = 0
        self.value = 0
        self.fired = 0

    def program(self, address: int, value: int) -> None:
        self.command = 1
        self.address = address & 0xFFFFFFFF
        self.value = value & 0xFFFFFFFF

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == MAILBOX_CMD:
            command, self.command = self.command, 0
            if command:
                self.fired += 1
            return command
        if offset == MAILBOX_ADDR:
            return self.address
        if offset == MAILBOX_VALUE:
            return self.value
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        return None


@dataclass(frozen=True)
class AttackPlan:
    """A resolved attack: the write payload plus its evidence cell."""

    kind: str
    address: int
    value: int
    evidence_address: int
    evidence_value: int


def _dispatch_slot_address(firmware: GeneratedFirmware,
                           image: Image) -> int:
    """Where the victim task's dispatch-table load actually reads."""
    table = image.module.get_global("dispatch_table")
    slot_offset = 4 * firmware.victim_slot
    if isinstance(image, OpecImage):
        # The victim reads (and the planted write corrupts) its own
        # relocated shadow of the table — writable from inside the
        # operation, which is exactly why the *payload*, not the
        # corruption, is what OPEC must contain.
        operation = image.policy.operation_by_entry(firmware.victim)
        shadow = image.shadow_addresses.get((operation.index, table))
        if shadow is not None:
            return shadow + slot_offset
        public = image.public_addresses.get(table)
        if public is not None:
            return public + slot_offset
    return image.global_address(table) + slot_offset


def _secret_address(firmware: GeneratedFirmware, image: Image) -> int:
    """The gadget owner's secret, where it lives in this image."""
    secret = image.module.get_global(f"{firmware.gadget_owner}_secret")
    if isinstance(image, OpecImage):
        public = image.public_addresses.get(secret)
        if public is not None:
            return public
    return image.global_address(secret)


def resolve_attack(kind: str, firmware: GeneratedFirmware,
                   image: Image) -> AttackPlan:
    """Resolve attack ``kind`` against a concrete build of
    ``firmware`` (addresses differ per flavour, like PinLock's
    ``KEY``)."""
    if kind == "global":
        address = _secret_address(firmware, image)
        return AttackPlan(kind, address, PLANTED_VALUE,
                          address, PLANTED_VALUE)
    if kind == "stack":
        address = image.stack_top - 32
        return AttackPlan(kind, address, PLANTED_VALUE,
                          address, PLANTED_VALUE)
    if kind == "peripheral":
        port = image.board.peripheral(FORBIDDEN_GPIO)
        address = port.base + GPIO.ODR
        return AttackPlan(kind, address, PLANTED_ODR,
                          address, PLANTED_ODR)
    if kind == "icall":
        gadget = image.module.get_function("gadget")
        flag = image.module.get_global("gadget_flag")
        return AttackPlan(
            kind,
            _dispatch_slot_address(firmware, image),
            image.function_address(gadget),
            image.global_address(flag),
            GADGET_MAGIC,
        )
    raise ValueError(
        f"unknown attack kind {kind!r}: expected one of "
        f"{', '.join(ATTACK_KINDS)}")


def attack_setup(firmware: GeneratedFirmware, plan: AttackPlan):
    """Machine setup attaching the firmware's devices plus an armed
    attack port."""

    def setup(machine: Machine) -> None:
        firmware.attach_devices(machine)
        port = AttackPort()
        port.program(plan.address, plan.value)
        machine.attach_device(MAILBOX_PERIPHERAL, port)

    return setup


__all__ = [
    "ATTACK_KINDS",
    "PLANTED_ODR",
    "PLANTED_VALUE",
    "AttackPlan",
    "AttackPort",
    "attack_setup",
    "resolve_attack",
]

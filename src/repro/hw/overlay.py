"""Permission-overlay enforcement backend (Complets-style, PAPERS.md).

Arm's Permission Overlay Extension (POE) — and Intel MPK before it —
decouple *which* memory a domain may touch from *how fast* the domain
boundary is crossed: page/region permissions are tagged with an
overlay index once, and switching domains is a single overlay-select
register write instead of a run of MPU region-register pairs.
Complets builds thread-level compartments for Cortex-M on exactly this
primitive.

:class:`OverlayProtection` models that substrate for OPEC:

* ``load_configuration`` *compiles* the backend-neutral
  :class:`~repro.hw.mpu.MPURegion` set into one flat permission table —
  disjoint address intervals, each carrying the resolved
  (privileged, unprivileged) access pair of the highest-priority
  claiming region.  This is the overlay-tagging step; in hardware it
  happens once per operation at image-load time, so the modelled
  *switch* cost is a single register write plus a barrier;
* ``allows`` arbitrates by binary search over the interval table —
  semantically identical to the MPU's highest-region-wins scan
  (including sub-region fall-through and ``PRIVDEFENA``), which the
  differential property suite pins across all backends;
* verdicts are memoised under the same word-granular key as the other
  backends and dropped on every configuration epoch.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional

from .backend import EnforcementBackend
from .mpu import ACCESS_NONE, ACCESS_READWRITE, MPURegion, NUM_REGIONS


def compile_regions_to_overlay(
    regions: list[Optional[MPURegion]],
) -> tuple[list[int], list[Optional[tuple[str, str]]]]:
    """Flatten a prioritised region set into a disjoint interval table.

    Returns parallel lists: sorted interval start addresses and, for
    each interval, the winning region's ``(priv, unpriv)`` access pair
    — or ``None`` where no enabled region (sub-region) claims the
    interval, i.e. the default-map fall-through.

    Every region edge is a sub-region edge (base + i·size/8), so
    within one interval the winning region — and therefore the verdict
    — is constant; probing the interval start decides the whole span.
    """
    live = [r for r in regions if r is not None and r.enabled]
    edges: set[int] = {0}
    for region in live:
        sub = region.subregion_size
        edges.update(region.base + i * sub for i in range(9))
    starts = sorted(edges)
    perms: list[Optional[tuple[str, str]]] = []
    for start in starts:
        winner: Optional[MPURegion] = None
        for region in live:
            if region.matches(start) and (
                    winner is None or region.number > winner.number):
                winner = region
        perms.append(None if winner is None
                     else (winner.priv, winner.unpriv))
    return starts, perms


class OverlayProtection(EnforcementBackend):
    """A POE/MPK-style permission-overlay backend.

    Same policy language and arbitration semantics as the MPU; a
    different lowering (flat interval table instead of prioritised
    region registers) and a much cheaper switch-cost model.
    """

    # Cost model: switching overlays is one POR-style register write
    # plus a context-synchronising barrier; a fault-driven remap
    # re-tags one window's intervals.
    name = "overlay"
    switch_base_cost = 16
    region_switch_cost = 12

    def __init__(self):
        self.enabled = False
        self.privdefena = True
        self.regions: list[Optional[MPURegion]] = [None] * NUM_REGIONS
        self.epoch = 0
        self._decisions: dict = {}
        self._starts: list[int] = [0]
        self._perms: list[Optional[tuple[str, str]]] = [None]
        self._recompile()

    def invalidate(self) -> None:
        """Start a new configuration epoch, dropping cached verdicts."""
        self.epoch += 1
        self._decisions = {}

    # -- configuration -----------------------------------------------------

    def set_region(self, region: MPURegion) -> None:
        self.regions[region.number] = region
        self._recompile()

    def clear_region(self, number: int) -> None:
        self.regions[number] = None
        self._recompile()

    def get_region(self, number: int) -> Optional[MPURegion]:
        return self.regions[number]

    def load_configuration(self, regions: list[MPURegion]) -> None:
        self.regions = [None] * NUM_REGIONS
        for region in regions:
            self.regions[region.number] = region
        self._recompile()

    # -- arbitration ----------------------------------------------------

    def allows(self, address: int, size: int, privileged: bool,
               write: bool) -> bool:
        if not self.enabled:
            return True
        key = (address >> 2, (address + size - 1) >> 2, privileged, write,
               self.privdefena)
        verdict = self._decisions.get(key)
        if verdict is None:
            verdict = self._arbitrate(address, size, privileged, write)
            self._decisions[key] = verdict
        return verdict

    def fast_allows(self):
        """Epoch-scoped arbitration closure (base-class contract).

        ``_recompile`` replaces the interval table and invalidates, so
        the captured memo and table are epoch-safe; ``enabled`` and
        ``privdefena`` are read live.
        """
        def fast(address, size, privileged, write, _self=self,
                 _decisions=self._decisions, _arbitrate=self._arbitrate):
            if not _self.enabled:
                return True
            key = (address >> 2, (address + size - 1) >> 2, privileged,
                   write, _self.privdefena)
            verdict = _decisions.get(key)
            if verdict is None:
                verdict = _arbitrate(address, size, privileged, write)
                _decisions[key] = verdict
            return verdict

        return fast

    def _arbitrate(self, address: int, size: int, privileged: bool,
                   write: bool) -> bool:
        starts, perms = self._starts, self._perms
        last = address + size - 1
        for probe in (address, last) if last != address else (address,):
            pair = perms[bisect_right(starts, probe) - 1]
            if pair is None:
                if privileged and self.privdefena:
                    continue
                return False
            access = pair[0] if privileged else pair[1]
            if access == ACCESS_NONE:
                return False
            if write and access != ACCESS_READWRITE:
                return False
        return True

    # -- context capsule ------------------------------------------------

    def snapshot(self) -> list[Optional[MPURegion]]:
        return list(self.regions)

    def restore(self, snapshot: list[Optional[MPURegion]]) -> None:
        self.regions = list(snapshot)
        self._recompile()

    # -- internals ------------------------------------------------------

    def _recompile(self) -> None:
        self._starts, self._perms = compile_regions_to_overlay(self.regions)
        self.invalidate()


def use_overlay(machine) -> OverlayProtection:
    """Swap a machine's enforcement for the overlay backend."""
    overlay = OverlayProtection()
    machine.enforcement = overlay
    return overlay

"""OPEC-Monitor: hardware-assisted operation isolation at runtime (§5)."""

from .context import StackRelocation, SwitchContext
from .monitor import OpecMonitor
from .stack import StackProtector
from .sync import DataSynchronizer
from .threads import ThreadContext, ThreadSupport

__all__ = [
    "StackRelocation", "SwitchContext", "OpecMonitor",
    "StackProtector", "DataSynchronizer",
    "ThreadContext", "ThreadSupport",
]

"""Call-graph construction (§4.1).

Direct edges come straight from ``call`` instructions.  Indirect edges
are resolved by the Andersen points-to analysis first; sites it cannot
resolve fall back to type-based matching, and the union keeps the graph
sound (over-approximate) as the paper requires — "an unsound call graph
will bring dependency miss to operations".

The per-icall bookkeeping feeds Table 3 (efficiency of the icall
analysis): which analysis resolved each site and how many targets it
has.

Reachability queries (the partitioner's §4.3 DFS-with-backtracking)
run on a lazily built SCC condensation: strongly connected components
are collapsed once per graph, so each ``reachable_from`` walks the
component DAG and unions pre-grouped member lists instead of popping
every function and allocating difference sets per pop.  Results are
cached per ``(entry, stops)`` — the graph is frozen after
:func:`build_call_graph` returns, which keeps both caches valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..ir.function import Function
from ..ir.instructions import Call, ICall
from ..ir.module import Module
from .andersen import AndersenResult, run_andersen
from .typeanalysis import TypeBasedResolver


@dataclass
class IcallSite:
    """Resolution record for one indirect call site."""

    instruction: ICall
    function: Function
    targets: set[Function] = field(default_factory=set)
    resolved_by: str = "unresolved"  # "svf" | "type" | "unresolved"


@dataclass
class _Condensation:
    """SCC condensation of the call graph (Tarjan, iterative)."""

    comp_of: dict[Function, int]
    members: list[tuple[Function, ...]]
    successors: list[tuple[int, ...]]  # DAG edges between components


@dataclass
class CallGraph:
    """Adjacency over module functions with icall metadata."""

    module: Module
    successors: dict[Function, set[Function]] = field(default_factory=dict)
    icall_sites: list[IcallSite] = field(default_factory=list)
    andersen: Optional[AndersenResult] = None
    _condensed: Optional[_Condensation] = field(
        default=None, repr=False, compare=False)
    _reach_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def callees(self, func: Function) -> set[Function]:
        return self.successors.get(func, set())

    # -- SCC condensation ---------------------------------------------

    def condensation(self) -> _Condensation:
        if self._condensed is None:
            self._condensed = self._condense()
        return self._condensed

    def _condense(self) -> _Condensation:
        index: dict[Function, int] = {}
        lowlink: dict[Function, int] = {}
        on_stack: set[Function] = set()
        scc_stack: list[Function] = []
        comp_of: dict[Function, int] = {}
        members: list[tuple[Function, ...]] = []
        counter = 0

        for root in self.module.iter_functions():
            if root in index:
                continue
            # Iterative Tarjan: (node, iterator over its callees).
            work = [(root, iter(self.successors.get(root, ())))]
            index[root] = lowlink[root] = counter
            counter += 1
            scc_stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter
                        counter += 1
                        scc_stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(self.successors.get(succ, ()))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    comp: list[Function] = []
                    while True:
                        member = scc_stack.pop()
                        on_stack.discard(member)
                        comp_of[member] = len(members)
                        comp.append(member)
                        if member is node:
                            break
                    members.append(tuple(comp))

        comp_succ: list[set[int]] = [set() for _ in members]
        for func, callees in self.successors.items():
            cid = comp_of[func]
            for callee in callees:
                tid = comp_of.get(callee)
                if tid is not None and tid != cid:
                    comp_succ[cid].add(tid)
        return _Condensation(
            comp_of=comp_of,
            members=members,
            successors=[tuple(s) for s in comp_succ],
        )

    # -- reachability -------------------------------------------------

    def reachable_from(
        self,
        entry: Function,
        stop_at: Iterable[Function] = (),
    ) -> set[Function]:
        """DFS from ``entry``; backtrack at other operation entries
        (§4.3) — the entry itself is included, stops are excluded."""
        stops = frozenset(set(stop_at) - {entry})
        key = (entry, stops)
        cached = self._reach_cache.get(key)
        if cached is None:
            cached = frozenset(self._reachable(entry, stops))
            self._reach_cache[key] = cached
        return set(cached)

    def _reachable(self, entry: Function,
                   stops: frozenset[Function]) -> set[Function]:
        cond = self.condensation()
        # Components where only *some* members are stops can't be
        # skipped or taken whole; fall back to the function-level walk
        # for exact semantics (entries are not normally in cycles).
        blocked: set[int] = set()
        for stop in stops:
            cid = cond.comp_of.get(stop)
            if cid is None:
                continue
            if len(cond.members[cid]) > 1 and any(
                    m not in stops for m in cond.members[cid]):
                return self._reachable_functions(entry, stops)
            blocked.add(cid)

        start = cond.comp_of.get(entry)
        if start is None or start in blocked:
            return self._reachable_functions(entry, stops)
        seen_comps: set[int] = {start}
        stack = [start]
        result: set[Function] = set()
        while stack:
            cid = stack.pop()
            result.update(cond.members[cid])
            for tid in cond.successors[cid]:
                if tid not in seen_comps and tid not in blocked:
                    seen_comps.add(tid)
                    stack.append(tid)
        return result

    def _reachable_functions(self, entry: Function,
                             stops: frozenset[Function]) -> set[Function]:
        """Plain function-level DFS (exact fallback)."""
        seen: set[Function] = set()
        stack = [entry]
        while stack:
            func = stack.pop()
            if func in seen or func in stops:
                continue
            seen.add(func)
            for callee in self.successors.get(func, ()):
                if callee not in seen and callee not in stops:
                    stack.append(callee)
        return seen

    # -- Table 3 statistics -------------------------------------------

    def icall_count(self) -> int:
        return len(self.icall_sites)

    def resolved_by(self, kind: str) -> int:
        return sum(1 for site in self.icall_sites if site.resolved_by == kind)

    def target_counts(self) -> list[int]:
        return [len(site.targets) for site in self.icall_sites if site.targets]


def build_call_graph(
    module: Module,
    andersen: Optional[AndersenResult] = None,
    use_type_fallback: bool = True,
) -> CallGraph:
    """Build the sound call graph for ``module``."""
    if andersen is None:
        andersen = run_andersen(module)
    type_resolver = TypeBasedResolver(module) if use_type_fallback else None

    graph = CallGraph(module=module, andersen=andersen)
    for func in module.iter_functions():
        edges: set[Function] = set()
        for inst in func.iter_instructions():
            if isinstance(inst, Call):
                edges.add(inst.callee)
            elif isinstance(inst, ICall):
                site = IcallSite(instruction=inst, function=func)
                svf_targets = andersen.icall_targets(inst)
                if svf_targets:
                    site.targets = svf_targets
                    site.resolved_by = "svf"
                elif type_resolver is not None:
                    type_targets = type_resolver.targets(inst)
                    if type_targets:
                        site.targets = type_targets
                        site.resolved_by = "type"
                edges |= site.targets
                graph.icall_sites.append(site)
        graph.successors[func] = edges
    return graph

"""FatFs-uSD: FAT filesystem exercise on the SD card (§6).

"Implements a FAT file system on an SD card.  Then it writes some
fixed content to a newly created file in the file system.  After that,
it reads the file and checks whether the content is correct."

Ten operations as in Table 1: the default ``main`` plus nine file-
system tasks.  ``SDFatFs`` and ``MyFile`` are the two large structure
globals shared among several operations that the paper calls out as
the source of this app's high average-accessible-globals percentage.
"""

from __future__ import annotations

from ..hw.board import stm32479i_eval
from ..hw.machine import Machine
from ..hw.peripherals import GPIO, RCC, SDCard
from ..ir import I8, I32, Module, VOID, array, define
from ..partition.operations import OperationSpec
from .base import Application
from .hal.libc import add_libc
from .hal.storage import add_sd_hal
from .hal.system import add_system_hal
from .lib.fatfs import MODE_CREATE_FLAG, add_fatfs, make_disk_image

MESSAGE = b"This is STM32 working with FatFs + OPEC isolation!!!"
FILE_NAME = b"LOG.TXT "


def build() -> Application:
    board = stm32479i_eval()
    module = Module("fatfs_usd")

    libc = add_libc(module)
    system = add_system_hal(module, board)
    sd = add_sd_hal(module, board)
    fatfs = add_fatfs(module, sd, libc)

    sd_fatfs = module.add_global("SDFatFs", fatfs.fatfs_t, source_file="main.c")
    my_file = module.add_global("MyFile", fatfs.fil_t, source_file="main.c")
    wtext = module.add_global("wtext", array(I8, 64), list(MESSAGE),
                              source_file="main.c")
    rtext = module.add_global("rtext", array(I8, 64), source_file="main.c")
    file_name = module.add_global("file_name", array(I8, 8), list(FILE_NAME),
                                  is_const=True, source_file="main.c")
    verify_result = module.add_global("verify_result", I32, 1,
                                      source_file="main.c",
                                      sanitize_range=(0, 1))
    bytes_read = module.add_global("bytes_read", I32, 0, source_file="main.c")
    sd_ready = module.add_global("sd_ready", I32, 0, source_file="sd_task.c")
    # Progress phase, advanced by the filesystem tasks and read by main
    # and the verifier (real demo shape).
    fs_phase = module.add_global("fs_phase", I32, 0, source_file="fs_task.c")

    # -- the nine tasks --------------------------------------------------
    sd_init_task, b = define(module, "Sd_Init_Task", VOID, [],
                             source_file="sd_task.c")
    b.call(system.rcc_enable_apb2, 1 << 11)  # SDIOEN
    b.call(sd.init)
    b.store(1, sd_ready)
    b.ret_void()

    mount_task, b = define(module, "Mount_Task", VOID, [],
                           source_file="fs_task.c")
    status = b.call(fatfs.f_mount, sd_fatfs)
    mounted = b.icmp("eq", status, 0)
    b.store(b.select(mounted, 1, 0), fs_phase)
    b.ret_void()

    create_task, b = define(module, "Create_Task", VOID, [],
                            source_file="fs_task.c")
    b.call(fatfs.f_open, my_file, sd_fatfs, b.gep(file_name, 0, 0),
           MODE_CREATE_FLAG)
    b.ret_void()

    write_task, b = define(module, "Write_Task", VOID, [],
                           source_file="fs_task.c")
    b.call(fatfs.f_write, my_file, sd_fatfs, b.gep(wtext, 0, 0),
           len(MESSAGE))
    b.store(2, fs_phase)
    b.ret_void()

    close_write_task, b = define(module, "CloseWrite_Task", VOID, [],
                                 source_file="fs_task.c")
    b.call(fatfs.f_close, my_file, sd_fatfs)
    b.ret_void()

    open_task, b = define(module, "Open_Task", VOID, [],
                          source_file="fs_task.c")
    b.call(fatfs.f_open, my_file, sd_fatfs, b.gep(file_name, 0, 0), 0)
    b.ret_void()

    read_task, b = define(module, "Read_Task", VOID, [],
                          source_file="fs_task.c")
    count = b.call(fatfs.f_read, my_file, sd_fatfs, b.gep(rtext, 0, 0), 64)
    b.store(count, bytes_read)
    b.ret_void()

    verify_task, b = define(module, "Verify_Task", VOID, [],
                            source_file="verify.c")
    diff = b.call(libc.memcmp, b.gep(wtext, 0, 0), b.gep(rtext, 0, 0),
                  b.load(bytes_read))
    length_ok = b.icmp("eq", b.load(bytes_read), len(MESSAGE))
    content_ok = b.icmp("eq", diff, 0)
    phase_ok = b.icmp("uge", b.load(fs_phase), 2)
    both = b.and_(b.and_(content_ok, length_ok), phase_ok)
    with b.if_else(both) as otherwise:
        b.store(0, verify_result)
        otherwise()
        b.store(1, verify_result)
    b.ret_void()

    close_read_task, b = define(module, "CloseRead_Task", VOID, [],
                                source_file="fs_task.c")
    b.call(fatfs.f_close, my_file, sd_fatfs)
    b.ret_void()

    main, b = define(module, "main", I32, [], source_file="main.c")
    b.call(system.system_clock_config)
    b.call(system.rcc_enable_gpio, 0x7)
    b.call(sd_init_task)
    with b.if_then(b.icmp("eq", b.load(sd_ready), 0)):
        b.halt(0xDEAD)
    b.call(mount_task)
    with b.if_then(b.icmp("eq", b.load(fs_phase), 0)):
        b.halt(0xDEAD)
    b.call(create_task)
    b.call(write_task)
    b.call(close_write_task)
    b.call(open_task)
    b.call(read_task)
    b.call(verify_task)
    b.call(close_read_task)
    ok = b.icmp("eq", b.load(verify_result), 0)
    b.halt(b.select(ok, b.load(bytes_read), 0))

    specs = [
        OperationSpec("Sd_Init_Task"),
        OperationSpec("Mount_Task"),
        OperationSpec("Create_Task"),
        OperationSpec("Write_Task"),
        OperationSpec("CloseWrite_Task"),
        OperationSpec("Open_Task"),
        OperationSpec("Read_Task"),
        OperationSpec("Verify_Task"),
        OperationSpec("CloseRead_Task"),
    ]

    def setup(machine: Machine) -> None:
        machine.attach_device("RCC", RCC())
        for port in ("GPIOA", "GPIOB", "GPIOC"):
            machine.attach_device(port, GPIO())
        # An empty formatted card: the file is created by the firmware.
        machine.attach_device("SDIO", SDCard(image=make_disk_image({})))

    def check(machine: Machine, halt_code: int) -> None:
        assert halt_code == len(MESSAGE), (
            f"read-back verification failed (halt={halt_code})"
        )
        card = machine.device("SDIO")
        assert card.writes > 0, "nothing was written to the card"

    return Application(
        name="FatFs-uSD",
        module=module,
        board=board,
        specs=specs,
        setup=setup,
        check=check,
        description="Create/write/read/verify a file on a FAT SD card.",
    )

"""Benchmark + regeneration of Figure 9 (performance overhead, §6.3).

For every application, the vanilla and OPEC builds run to the paper's
stop condition on the simulated board; the timed quantity is the OPEC
run (the enforced execution).  The printed series is Figure 9's
runtime / flash / SRAM overhead.
"""

from __future__ import annotations

import pytest

from repro.eval import figure9
from repro.eval.workloads import APP_NAMES, build_app, opec_artifacts, run_build
from repro.pipeline import run_image


@pytest.mark.parametrize("app_name", APP_NAMES)
def test_figure9_row(benchmark, app_name):
    app = build_app(app_name)
    image = opec_artifacts(app_name).image

    def run_opec():
        return run_image(image, setup=app.setup,
                         max_instructions=app.max_instructions)

    result = benchmark.pedantic(run_opec, rounds=1, iterations=1)
    app.verify_run(result.machine, result.halt_code)
    row = figure9.compute_row(app_name)
    # Shape: "negligible runtime overhead" — single digits at worst.
    assert row.runtime_pct < 8.0
    assert 0.0 < row.flash_pct < 8.0
    assert 0.0 <= row.sram_pct < 10.0


def test_print_figure9(benchmark):
    rows = benchmark.pedantic(figure9.compute_figure, rounds=1, iterations=1)
    print()
    print(figure9.render(rows))
    average = rows[-1]
    assert average.app == "Average"
    # Paper shape: avg runtime ~0.23%, flash ~1.79%, SRAM ~5.35% — we
    # assert the bands, not the exact testbed numbers.
    assert average.runtime_pct < 3.0
    assert average.flash_pct < 5.0
    assert average.sram_pct < 8.0
    # SRAM (shadow copies + fragments) dominates flash overhead.
    assert average.sram_pct > average.flash_pct

"""Intra-procedural slicing utilities (§4.2).

Two primitives back the resource-dependency analysis:

* :func:`forward_derived` — forward slice: the set of values derived
  from a root value through pointer-preserving operations (gep, casts,
  selects).  Used to find loads/stores that touch a global directly.
* :func:`resolve_constant_addresses` — backward slice: walk a pointer
  operand back to constant machine addresses.  Used to identify
  memory-mapped peripheral accesses; follows constants through
  ``inttoptr``/``gep``/``add`` chains, through formal parameters to the
  constants passed at direct call sites (bounded depth), and through
  loads of constant-initialised scalar globals (the "HAL handle holds
  the peripheral base" pattern).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..ir.function import Function
from ..ir.instructions import BinOp, Call, Cast, GEP, Load, Select
from ..ir.module import Module
from ..ir.values import Constant, ConstantPointer, GlobalVariable, Parameter, Value

_MAX_PARAM_DEPTH = 3


def forward_derived(func: Function, roots: Iterable[Value]) -> set[Value]:
    """All values in ``func`` transitively derived from ``roots``."""
    derived: set[Value] = set(roots)
    changed = True
    while changed:
        changed = False
        for inst in func.iter_instructions():
            if inst in derived:
                continue
            if isinstance(inst, (GEP, Cast)):
                if inst.operands[0] in derived:
                    derived.add(inst)
                    changed = True
            elif isinstance(inst, Select):
                if inst.operands[1] in derived or inst.operands[2] in derived:
                    derived.add(inst)
                    changed = True
            elif isinstance(inst, BinOp):
                if any(op in derived for op in inst.operands):
                    derived.add(inst)
                    changed = True
    return derived


class ConstantAddressResolver:
    """Backward-slices pointer operands to constant addresses."""

    def __init__(self, module: Module):
        self.module = module
        self._call_sites: dict[Function, list[Call]] = {}
        self._param_owner: dict[Parameter, Function] = {}
        for func in module.iter_functions():
            for param in func.params:
                self._param_owner[param] = func
            for inst in func.iter_instructions():
                if isinstance(inst, Call):
                    self._call_sites.setdefault(inst.callee, []).append(inst)

    def resolve(self, value: Value, depth: int = 0) -> set[int]:
        """Constant addresses ``value`` may evaluate to, or empty."""
        if isinstance(value, ConstantPointer):
            return {value.address}
        if isinstance(value, Constant):
            return {value.value}
        if isinstance(value, Cast):
            return self.resolve(value.operands[0], depth)
        if isinstance(value, GEP):
            bases = self.resolve(value.pointer, depth)
            if not bases:
                return set()
            offset = _constant_gep_offset(value)
            if offset is None:
                return set()
            return {base + offset for base in bases}
        if isinstance(value, BinOp) and value.op == "add":
            lhs = self.resolve(value.operands[0], depth)
            rhs = self.resolve(value.operands[1], depth)
            if lhs and rhs:
                return {a + b for a in lhs for b in rhs}
            return set()
        if isinstance(value, Load):
            pointer = value.pointer
            if isinstance(pointer, GlobalVariable) and pointer.is_const:
                init = pointer.initializer
                if isinstance(init, int):
                    return {init}
            return set()
        if isinstance(value, Parameter) and depth < _MAX_PARAM_DEPTH:
            func = self._param_owner.get(value)
            if func is None:
                return set()
            addresses: set[int] = set()
            for call in self._call_sites.get(func, ()):  # direct calls only
                if value.index < len(call.operands):
                    resolved = self.resolve(call.operands[value.index], depth + 1)
                    if not resolved:
                        return set()  # one unresolvable caller → unknown
                    addresses |= resolved
            return addresses
        return set()


def _constant_gep_offset(gep: GEP) -> Optional[int]:
    """Byte offset of a GEP with all-constant indices, else ``None``."""
    from ..ir.types import ArrayType, StructType

    pointee = gep.pointer.type.pointee
    indices = gep.indices
    first = indices[0]
    if not isinstance(first, Constant):
        return None
    offset = first.value * pointee.size
    current = pointee
    for index in indices[1:]:
        if isinstance(current, ArrayType):
            if not isinstance(index, Constant):
                return None
            offset += index.value * current.stride
            current = current.element
        elif isinstance(current, StructType):
            if not isinstance(index, Constant):
                return None
            offset += current.offset_of(index.value)
            current = current.field_type(index.value)
        else:
            return None
    return offset



"""Region-plan synthesis (§4.4, §5.2) — the backend-neutral policy.

Computes the per-operation region set the monitor loads on a switch.
:class:`~repro.hw.mpu.MPURegion` descriptors are the policy *language*
shared by every :class:`~repro.hw.backend.EnforcementBackend`: the MPU
programs them into region registers verbatim, the PMP backend lowers
them onto NAPOT entries, and the overlay backend flattens them into a
permission table.  Nothing here is MPU-specific beyond the descriptor
shape (power-of-two sizes, eight sub-regions) — that shape is the
lingua franca the other substrates are strictly more expressive than.

Region plan (adapted from Figure 6; see DESIGN.md for the one
deliberate delta):

* **R0** — background: flash + SRAM (the lower 1 GB of the address
  map), unprivileged read-only.  Peripheral space is *not* covered, so
  unprivileged peripheral access faults by default.
* **R1** — application code in flash: unprivileged RO + execute.
* **R2** — the operation-data zone (heap + every operation data
  section): unprivileged no-access.  This overlay is what makes *other*
  operations' sections and the heap inaccessible, matching Figure 6's
  colouring.
* **R3** — the stack, with a dynamic sub-region disable mask (§5.2).
* **R4** — the current operation's data section, read-write.
* **R5–R7** — windows onto the operation's merged peripherals (plus
  the heap if the operation uses it); operations needing more windows
  are served by MPU-region virtualisation at fault time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.mpu import (
    ACCESS_NONE,
    ACCESS_READ,
    ACCESS_READWRITE,
    MIN_REGION_SIZE,
    MPURegion,
    align_base,
    region_size_for,
)

BACKGROUND_REGION = 0
CODE_REGION = 1
DATA_ZONE_REGION = 2
STACK_REGION = 3
OPDATA_REGION = 4
PERIPHERAL_REGIONS = (5, 6, 7)


def covering_regions(base: int, length: int, max_regions: int = 4) -> list[tuple[int, int]]:
    """Minimal list of legal (base, size) MPU regions covering a range.

    A single power-of-two region whose aligned base still covers the
    range is preferred; otherwise the range is covered left-to-right
    with the largest aligned regions that fit — this is the "one
    peripheral may need two more MPU regions due to the alignment
    requirement" case of §5.2.
    """
    if length <= 0:
        raise ValueError("cannot cover an empty range")
    size = region_size_for(length)
    aligned = align_base(base, size)
    if aligned + size >= base + length:
        return [(aligned, size)]

    regions: list[tuple[int, int]] = []
    cursor = base
    end = base + length
    while cursor < end and len(regions) < max_regions:
        size = MIN_REGION_SIZE
        # Largest power-of-two region starting at an address <= cursor
        # that begins exactly at cursor when aligned.
        while True:
            bigger = size << 1
            if align_base(cursor, bigger) != cursor or bigger > region_size_for(end - cursor):
                break
            size = bigger
        if align_base(cursor, size) != cursor:
            # Mis-aligned cursor: fall back to the smallest region.
            size = MIN_REGION_SIZE
            cursor = align_base(cursor, size)
        regions.append((cursor, size))
        cursor += size
    if cursor < end:
        raise ValueError(
            f"range 0x{base:08X}+0x{length:X} needs more than "
            f"{max_regions} MPU regions"
        )
    return regions


def subregion_disable_for_free_range(region_base: int, region_size: int,
                                     low_watermark: int) -> int:
    """Disable mask exposing only sub-regions below ``low_watermark``.

    The stack grows down; the current operation may use sub-regions
    strictly below its entry boundary, while sub-regions holding
    previous operations' frames (at and above the boundary) are
    disabled so they fall through to R0's read-only background (§5.2).
    """
    sub = region_size // 8
    mask = 0
    for i in range(8):
        sub_base = region_base + i * sub
        if sub_base >= low_watermark:
            mask |= 1 << i
    return mask


@dataclass
class RegionTemplate:
    """A pre-computed region descriptor (base/size/permissions)."""

    number: int
    base: int
    size: int
    priv: str
    unpriv: str
    executable: bool = False
    subregion_disable: int = 0

    def instantiate(self, subregion_disable: int | None = None) -> MPURegion:
        return MPURegion(
            number=self.number,
            base=self.base,
            size=self.size,
            priv=self.priv,
            unpriv=self.unpriv,
            executable=self.executable,
            subregion_disable=(
                self.subregion_disable
                if subregion_disable is None
                else subregion_disable
            ),
        )


def background_region() -> RegionTemplate:
    """R0: flash + SRAM (0x0 .. 0x3FFFFFFF) readable, never writable."""
    return RegionTemplate(
        number=BACKGROUND_REGION, base=0x0, size=0x40000000,
        priv=ACCESS_READWRITE, unpriv=ACCESS_READ,
    )


def code_region(flash_base: int, flash_size: int) -> RegionTemplate:
    """R1: the whole flash, unprivileged read/execute."""
    size = region_size_for(flash_size)
    return RegionTemplate(
        number=CODE_REGION, base=align_base(flash_base, size), size=size,
        priv=ACCESS_READ, unpriv=ACCESS_READ, executable=True,
    )


def data_zone_region(zone_base: int, zone_size: int) -> RegionTemplate:
    """R2: all operation data sections + heap, unprivileged NA."""
    size = region_size_for(zone_size)
    base = align_base(zone_base, size)
    if base + size < zone_base + zone_size:
        size <<= 1
        base = align_base(zone_base, size)
    return RegionTemplate(
        number=DATA_ZONE_REGION, base=base, size=size,
        priv=ACCESS_READWRITE, unpriv=ACCESS_NONE,
    )


def stack_region(stack_base: int, stack_size: int,
                 subregion_disable: int = 0) -> RegionTemplate:
    return RegionTemplate(
        number=STACK_REGION, base=stack_base, size=stack_size,
        priv=ACCESS_READWRITE, unpriv=ACCESS_READWRITE,
        subregion_disable=subregion_disable,
    )


def opdata_region(section_base: int, section_size: int) -> RegionTemplate:
    size = region_size_for(max(section_size, MIN_REGION_SIZE))
    return RegionTemplate(
        number=OPDATA_REGION, base=align_base(section_base, size), size=size,
        priv=ACCESS_READWRITE, unpriv=ACCESS_READWRITE,
    )


def peripheral_region(number: int, base: int, size: int) -> MPURegion:
    return MPURegion(
        number=number, base=base, size=size,
        priv=ACCESS_READWRITE, unpriv=ACCESS_READWRITE,
    )


def operation_region_set(
    layout, stack_mask: int,
    heap_region: "tuple[int, int] | None" = None,
) -> list[MPURegion]:
    """Instantiate one operation's full region set (switch time, §5.3).

    ``layout`` is an :class:`~repro.image.linker.OperationLayout`;
    ``stack_mask`` is the live sub-region disable mask for R3;
    ``heap_region`` is the covering (base, size) when the operation
    uses the heap.  The result is what the monitor hands to whichever
    :class:`~repro.hw.backend.EnforcementBackend` the machine carries.
    """
    regions: list[MPURegion] = []
    for template in layout.templates:
        if template.number == STACK_REGION:
            regions.append(template.instantiate(subregion_disable=stack_mask))
        else:
            regions.append(template.instantiate())
    slots = list(PERIPHERAL_REGIONS)
    if layout.uses_heap:
        number = slots.pop(0)
        heap_base, heap_size = heap_region
        regions.append(MPURegion(
            number=number, base=heap_base, size=heap_size,
            priv=ACCESS_READWRITE, unpriv=ACCESS_READWRITE,
        ))
    for (base, size), number in zip(layout.static_windows, slots):
        regions.append(MPURegion(
            number=number, base=base, size=size,
            priv=ACCESS_READWRITE, unpriv=ACCESS_READWRITE,
        ))
    return regions

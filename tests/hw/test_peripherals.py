"""Unit tests for the peripheral device models."""

import pytest

from repro.hw import HardFault, Machine, stm32479i_eval, stm32f4_discovery
from repro.hw.peripherals import (
    DCMI,
    DMA2D,
    EthernetMAC,
    GPIO,
    LTDC,
    RCC,
    SDCard,
    UART,
    USBMassStorage,
)


class FakeMachine:
    def __init__(self):
        self.cycles = 0

    def consume(self, n):
        self.cycles += n


class TestUART:
    def test_rx_pacing(self):
        uart = UART(cycles_per_byte=100)
        uart.machine = FakeMachine()
        uart.feed(b"ab")
        assert uart.mmio_read(UART.SR, 4) & UART.SR_RXNE
        assert uart.mmio_read(UART.DR, 4) == ord("a")
        # Next byte not ready until 100 cycles elapse.
        assert not uart.mmio_read(UART.SR, 4) & UART.SR_RXNE
        uart.machine.cycles = 100
        assert uart.mmio_read(UART.SR, 4) & UART.SR_RXNE
        assert uart.mmio_read(UART.DR, 4) == ord("b")

    def test_tx_captured(self):
        uart = UART()
        uart.mmio_write(UART.DR, 4, ord("X"))
        assert uart.transmitted() == b"X"

    def test_empty_poll_limit_faults(self):
        uart = UART()
        uart.machine = FakeMachine()
        with pytest.raises(HardFault):
            for _ in range(3_000_000):
                uart.mmio_read(UART.SR, 4)

    def test_txe_always_set(self):
        uart = UART()
        uart.machine = FakeMachine()
        assert uart.mmio_read(UART.SR, 4) & UART.SR_TXE


class TestGPIO:
    def test_bsrr_set_reset(self):
        gpio = GPIO()
        gpio.mmio_write(GPIO.BSRR, 4, 1 << 5)
        assert gpio.pin_is_high(5)
        gpio.mmio_write(GPIO.BSRR, 4, 1 << (5 + 16))
        assert not gpio.pin_is_high(5)

    def test_idr_host_controlled(self):
        gpio = GPIO()
        gpio.set_input(3, True)
        assert gpio.mmio_read(GPIO.IDR, 4) == 1 << 3
        gpio.set_input(3, False)
        assert gpio.mmio_read(GPIO.IDR, 4) == 0


class TestRCC:
    def test_ready_flags_read_as_set(self):
        rcc = RCC()
        assert rcc.mmio_read(RCC.CR, 4) & (1 << 17)
        assert rcc.mmio_read(RCC.CR, 4) & (1 << 25)

    def test_write_log(self):
        rcc = RCC()
        rcc.mmio_write(RCC.AHB1ENR, 4, 0xF)
        assert (RCC.AHB1ENR, 0xF) in rcc.write_log


class TestSDCard:
    def test_read_block_protocol(self):
        card = SDCard(image=b"\x11" * 512 + b"\x22" * 512)
        card.machine = FakeMachine()
        card.mmio_write(SDCard.ARG, 4, 1)
        card.mmio_write(SDCard.CMD, 4, SDCard.CMD_READ_BLOCK)
        words = [card.mmio_read(SDCard.FIFO, 4) for _ in range(128)]
        assert all(w == 0x22222222 for w in words)
        assert card.reads == 1
        assert card.machine.cycles == card.block_latency_cycles

    def test_write_block_commits_after_128_words(self):
        card = SDCard()
        card.machine = FakeMachine()
        card.mmio_write(SDCard.ARG, 4, 3)
        card.mmio_write(SDCard.CMD, 4, SDCard.CMD_WRITE_BLOCK)
        for _ in range(128):
            card.mmio_write(SDCard.FIFO, 4, 0xAABBCCDD)
        assert card.read_block_host(3) == b"\xDD\xCC\xBB\xAA" * 128
        assert card.writes == 1

    def test_status_always_ready(self):
        card = SDCard()
        assert card.mmio_read(SDCard.STA, 4) & SDCard.STA_CMDREND

    def test_fifo_drains_in_word_order(self):
        """Regression: the FIFO must pop from the front (oldest word
        first), not from the tail — each word of a block comes out in
        storage order."""
        blob = b"".join(i.to_bytes(4, "little") for i in range(128))
        card = SDCard(image=blob)
        card.machine = FakeMachine()
        card.mmio_write(SDCard.ARG, 4, 0)
        card.mmio_write(SDCard.CMD, 4, SDCard.CMD_READ_BLOCK)
        words = [card.mmio_read(SDCard.FIFO, 4) for _ in range(128)]
        assert words == list(range(128))
        assert card.mmio_read(SDCard.FIFO, 4) == 0  # drained


class TestDisplay:
    def test_ltdc_counts_frames(self):
        ltdc = LTDC()
        ltdc.machine = FakeMachine()
        ltdc.mmio_write(LTDC.SRCR, 4, 1)
        ltdc.mmio_write(LTDC.SRCR, 4, 0)  # no reload bit: not counted
        assert ltdc.frames_shown == 1

    def test_dma2d_copies_and_bypasses_mpu(self):
        board = stm32479i_eval()
        machine = Machine(board)
        dma = machine.attach_device("DMA2D", DMA2D())
        src, dst = board.sram_base, board.sram_base + 0x100
        machine.write_bytes(src, b"\x01\x02\x03\x04" * 4)
        machine.mpu.enabled = True  # no regions: CPU unpriv would fault
        machine.drop_privilege()
        base = board.peripheral("DMA2D").base
        with machine.privileged_mode():
            # Program registers directly (device-level test).
            dma.mmio_write(DMA2D.FGMAR, 4, src)
            dma.mmio_write(DMA2D.OMAR, 4, dst)
            dma.mmio_write(DMA2D.NLR, 4, (1 << 16) | 16)
            dma.mmio_write(DMA2D.CR, 4, 1)
        assert machine.read_bytes(dst, 16) == b"\x01\x02\x03\x04" * 4
        assert dma.mmio_read(DMA2D.ISR, 4) & DMA2D.ISR_TCIF


class TestNetwork:
    def test_rx_frame_stream_and_release(self):
        mac = EthernetMAC(frame_interval_cycles=10)
        mac.machine = FakeMachine()
        mac.enqueue_frame(b"ABCDEFGH")
        assert mac.mmio_read(EthernetMAC.RX_STAT, 4) == 1
        assert mac.mmio_read(EthernetMAC.RX_LEN, 4) == 8
        assert mac.mmio_read(EthernetMAC.RX_DATA, 4) == int.from_bytes(
            b"ABCD", "little")
        mac.mmio_write(EthernetMAC.RX_RELEASE, 4, 1)
        # Pacing: next frame hidden until the interval passes.
        mac.enqueue_frame(b"XY")
        assert mac.mmio_read(EthernetMAC.RX_STAT, 4) == 0
        mac.machine.cycles = 10
        assert mac.mmio_read(EthernetMAC.RX_STAT, 4) == 1

    def test_tx_frame_assembled(self):
        mac = EthernetMAC()
        mac.machine = FakeMachine()
        mac.mmio_write(EthernetMAC.TX_DATA, 4, int.from_bytes(b"ping", "little"))
        mac.mmio_write(EthernetMAC.TX_LEN, 4, 4)
        mac.mmio_write(EthernetMAC.TX_GO, 4, 1)
        assert mac.sent_frames() == [b"ping"]

    def test_dcmi_capture_fifo(self):
        dcmi = DCMI(capture_latency_cycles=5)
        dcmi.machine = FakeMachine()
        dcmi.set_frame(b"\x01\x00\x00\x00\x02\x00\x00\x00")
        dcmi.mmio_write(DCMI.CR, 4, DCMI.CR_CAPTURE)
        assert dcmi.machine.cycles == 5
        assert dcmi.mmio_read(DCMI.SR, 4) & DCMI.SR_FNE
        assert dcmi.mmio_read(DCMI.DR, 4) == 1
        assert dcmi.mmio_read(DCMI.DR, 4) == 2
        assert not dcmi.mmio_read(DCMI.SR, 4) & DCMI.SR_FNE

    def test_dcmi_fifo_drains_in_frame_order(self):
        """Regression: DR pops the oldest captured word first, so the
        drained stream reproduces the frame byte-for-byte."""
        dcmi = DCMI(capture_latency_cycles=0)
        dcmi.machine = FakeMachine()
        frame = b"".join(i.to_bytes(4, "little") for i in range(64))
        dcmi.set_frame(frame)
        dcmi.mmio_write(DCMI.CR, 4, DCMI.CR_CAPTURE)
        words = [dcmi.mmio_read(DCMI.DR, 4) for _ in range(64)]
        assert words == list(range(64))
        assert not dcmi.mmio_read(DCMI.SR, 4) & DCMI.SR_FNE


class TestUSB:
    def test_block_write_commits(self):
        usb = USBMassStorage()
        usb.machine = FakeMachine()
        usb.mmio_write(USBMassStorage.BLK, 4, 0)
        for i in range(128):
            usb.mmio_write(USBMassStorage.DATA, 4, i)
        assert 0 in usb.disk
        assert usb.disk[0][:4] == b"\x00\x00\x00\x00"
        assert usb.disk[0][4:8] == b"\x01\x00\x00\x00"

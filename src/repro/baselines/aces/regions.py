"""ACES data-region assignment under the MPU limit (§3.1, Figure 3).

ACES places global variables in memory regions and lets each
compartment map at most :data:`MAX_DATA_REGIONS` of them.  Variables
start in *natural* groups — one group per distinct accessor set — and
whenever a compartment needs more groups than it has MPU slots, its two
smallest groups are merged.  A merged group is accessible to the
**union** of the original accessors, which grants some compartments
variables they never needed: the partition-time over-privilege OPEC's
shadowing eliminates (the PT metric of Figure 10 measures exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...ir.values import GlobalVariable
from ...partition.policy import _padded
from .compartments import Compartment

# ACES spends its eight MPU regions on the default maps, the
# compartment's code, the stack, and a peripheral window before data;
# two data regions per compartment is the budget that remains in its
# tightest configurations.  Our IR workloads also carry roughly an
# order of magnitude fewer globals than the paper's vendor-HAL
# firmwares, so this scaled budget reproduces the merge pressure (and
# hence the Figure 3 over-privilege) the paper measures at full scale.
MAX_DATA_REGIONS = 2


@dataclass
class VarGroup:
    """One mergeable region of global variables."""

    variables: list[GlobalVariable]
    accessors: set[Compartment]

    def byte_size(self) -> int:
        return sum(_padded(v.size) for v in self.variables)

    def merge(self, other: "VarGroup") -> None:
        self.variables.extend(other.variables)
        self.accessors |= other.accessors


@dataclass
class RegionAssignment:
    """The final variable-to-region mapping for one ACES build."""

    groups: list[VarGroup] = field(default_factory=list)

    def groups_of(self, compartment: Compartment) -> list[VarGroup]:
        return [g for g in self.groups if compartment in g.accessors]

    def accessible_vars(self, compartment: Compartment) -> set[GlobalVariable]:
        accessible: set[GlobalVariable] = set()
        for group in self.groups_of(compartment):
            accessible.update(group.variables)
        return accessible

    def accessible_bytes(self, compartment: Compartment) -> int:
        return sum(g.byte_size() for g in self.groups_of(compartment))


def assign_regions(compartments: list[Compartment],
                   writable_globals: list[GlobalVariable],
                   max_regions: int = MAX_DATA_REGIONS) -> RegionAssignment:
    """Group variables, then merge until every compartment fits."""
    natural: dict[frozenset[int], VarGroup] = {}
    for gvar in writable_globals:
        accessors = frozenset(
            c.index for c in compartments
            if gvar in c.resources.globals_all
        )
        if not accessors:
            continue  # untouched globals live outside compartment regions
        if accessors in natural:
            natural[accessors].variables.append(gvar)
        else:
            by_index = {c.index: c for c in compartments}
            natural[accessors] = VarGroup(
                variables=[gvar],
                accessors={by_index[i] for i in accessors},
            )
    assignment = RegionAssignment(groups=list(natural.values()))

    # Merge until every compartment maps at most `max_regions` groups.
    changed = True
    while changed:
        changed = False
        for compartment in compartments:
            groups = assignment.groups_of(compartment)
            if len(groups) <= max_regions:
                continue
            groups.sort(key=lambda g: g.byte_size())
            smaller, larger = groups[0], groups[1]
            larger.merge(smaller)
            assignment.groups.remove(smaller)
            changed = True
            break
    return assignment

"""Property-based round-trip tests for the OPEC-IR text format."""

from hypothesis import given, settings, strategies as st

import repro.ir as ir
from repro.ir import parse_module, print_module, verify_module

from .test_layout_and_sync_properties import firmware


@given(firmware())
@settings(max_examples=30, deadline=None)
def test_random_firmware_round_trips_textually(fw):
    module, _specs = fw
    text = print_module(module)
    parsed = parse_module(text)
    verify_module(parsed)
    assert print_module(parsed) == text


@given(firmware())
@settings(max_examples=20, deadline=None)
def test_random_firmware_round_trips_semantically(fw):
    from repro.hw import Machine, stm32f4_discovery
    from repro.image import build_vanilla_image
    from repro.interp import Interpreter

    module, _specs = fw

    def run(mod):
        board = stm32f4_discovery()
        image = build_vanilla_image(mod, board)
        machine = Machine(board)
        image.initialize_memory(machine)
        return Interpreter(machine, image).run()

    original = run(module)
    parsed = parse_module(print_module(module))
    assert run(parsed) == original


@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.sampled_from([ir.I8, ir.I16, ir.I32]))
@settings(max_examples=50, deadline=None)
def test_scalar_global_initializer_round_trips(value, int_type):
    module = ir.Module("g")
    module.add_global("g", int_type, value)
    _m, b = ir.define(module, "main", ir.I32, [])
    b.halt(0)
    parsed = parse_module(print_module(module))
    assert parsed.get_global("g").encode_initializer() == \
        module.get_global("g").encode_initializer()

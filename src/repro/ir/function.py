"""Functions and basic blocks."""

from __future__ import annotations

from typing import Iterator, Optional

from .instructions import Instruction
from .types import FunctionType, Type
from .values import Parameter, Value


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator.

    ``_compiled`` (set lazily by :mod:`repro.interp.blockcompile`)
    caches the block's superinstruction closure.  It resolves every
    image-specific value (globals, function addresses, stack limit)
    through the executing interpreter at runtime, so one compiled
    closure is valid for every image/machine the block is linked into
    and is shared across interpreters — including batch-runner lanes.
    A value of ``None`` marks the block as uncompilable (single-step
    only).
    """

    def __init__(self, name: str, parent: Optional["Function"] = None):
        self.name = name
        self.parent = parent
        self.instructions: list[Instruction] = []

    def __getstate__(self) -> dict:
        # Compiled closures and trace state are host-side caches, not
        # IR: closures don't pickle (modules ride the artifact cache),
        # and a rehydrated block simply recompiles on first execution.
        state = dict(self.__dict__)
        state.pop("_compiled", None)
        state.pop("_trace", None)
        return state

    def append(self, inst: Instruction) -> Instruction:
        if self.terminator is not None:
            raise ValueError(f"block {self.name} already has a terminator")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        return list(term.successors) if term is not None else []

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function(Value):
    """A firmware function.

    Attributes used by OPEC and the baselines:

    * ``source_file`` — "which .c file this came from"; drives the ACES
      filename partitioning strategies and Table 2.
    * ``is_interrupt_handler`` — IRQ handlers are excluded from being
      operation entries (§4.3) and run privileged.
    * ``is_monitor`` — part of OPEC-Monitor / startup code; always
      privileged, never partitioned into an operation.
    """

    def __init__(
        self,
        name: str,
        ftype: FunctionType,
        *,
        source_file: str = "",
        is_interrupt_handler: bool = False,
        irq_number: Optional[int] = None,
        is_monitor: bool = False,
    ):
        super().__init__(ftype, name)
        self.params = [
            Parameter(ptype, f"arg{i}", i) for i, ptype in enumerate(ftype.params)
        ]
        self.blocks: list[BasicBlock] = []
        self.source_file = source_file
        self.is_interrupt_handler = is_interrupt_handler or irq_number is not None
        self.irq_number = irq_number
        self.is_monitor = is_monitor

    @property
    def ftype(self) -> FunctionType:
        return self.type  # type: ignore[return-value]

    @property
    def return_type(self) -> Type:
        return self.ftype.ret

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    def add_block(self, name: str) -> BasicBlock:
        # Block names label branch targets in the textual format, so
        # they must be unique within the function.
        existing = {b.name for b in self.blocks}
        if name in existing:
            suffix = 1
            while f"{name}.{suffix}" in existing:
                suffix += 1
            name = f"{name}.{suffix}"
        block = BasicBlock(name, self)
        self.blocks.append(block)
        return block

    def iter_instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)

    def short(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        return f"<Function @{self.name} {self.ftype}>"

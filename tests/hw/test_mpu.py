"""Unit tests for the MPU model (§2.2 semantics)."""

import pytest

from repro.hw import (
    ACCESS_NONE,
    ACCESS_READ,
    ACCESS_READWRITE,
    MPU,
    MPURegion,
    align_base,
    is_power_of_two,
    region_size_for,
)


class TestRegionValidation:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            MPURegion(number=0, base=0, size=48)

    def test_minimum_size_32(self):
        with pytest.raises(ValueError):
            MPURegion(number=0, base=0, size=16)

    def test_base_alignment(self):
        with pytest.raises(ValueError):
            MPURegion(number=0, base=0x20, size=0x40)
        MPURegion(number=0, base=0x40, size=0x40)  # aligned: ok

    def test_region_number_range(self):
        with pytest.raises(ValueError):
            MPURegion(number=8, base=0, size=32)

    def test_bad_access_string(self):
        with pytest.raises(ValueError):
            MPURegion(number=0, base=0, size=32, priv="XX")

    def test_subregion_mask_range(self):
        with pytest.raises(ValueError):
            MPURegion(number=0, base=0, size=32, subregion_disable=256)


class TestSubregions:
    def test_subregion_size(self):
        region = MPURegion(number=0, base=0x20000000, size=0x100)
        assert region.subregion_size == 0x20

    def test_disabled_subregion_does_not_match(self):
        region = MPURegion(number=0, base=0x20000000, size=0x100,
                           subregion_disable=0b00000001)
        assert not region.matches(0x20000000)      # sub-region 0 disabled
        assert region.matches(0x20000020)          # sub-region 1 enabled

    def test_subregion_of(self):
        region = MPURegion(number=0, base=0, size=0x100)
        assert region.subregion_of(0x00) == 0
        assert region.subregion_of(0xFF) == 7


class TestHighestRegionWins:
    def setup_method(self):
        self.mpu = MPU(enabled=True, privdefena=False)
        self.mpu.set_region(MPURegion(
            number=0, base=0x20000000, size=0x1000,
            priv=ACCESS_READWRITE, unpriv=ACCESS_READ))
        self.mpu.set_region(MPURegion(
            number=3, base=0x20000000, size=0x100,
            priv=ACCESS_READWRITE, unpriv=ACCESS_READWRITE))

    def test_overlap_resolved_by_number(self):
        # Inside region 3: unprivileged write allowed.
        assert self.mpu.allows(0x20000010, 4, privileged=False, write=True)
        # Outside region 3 but inside region 0: read-only.
        assert not self.mpu.allows(0x20000200, 4, privileged=False, write=True)
        assert self.mpu.allows(0x20000200, 4, privileged=False, write=False)

    def test_disabled_subregion_falls_through(self):
        # Disable region 3's first sub-region: accesses fall to region 0.
        self.mpu.set_region(MPURegion(
            number=3, base=0x20000000, size=0x100,
            priv=ACCESS_READWRITE, unpriv=ACCESS_READWRITE,
            subregion_disable=0b00000001))
        assert not self.mpu.allows(0x20000000, 4, privileged=False, write=True)
        assert self.mpu.allows(0x20000020, 4, privileged=False, write=True)

    def test_higher_na_region_blocks(self):
        self.mpu.set_region(MPURegion(
            number=7, base=0x20000000, size=0x100,
            priv=ACCESS_READWRITE, unpriv=ACCESS_NONE))
        assert not self.mpu.allows(0x20000010, 4, privileged=False,
                                   write=False)


class TestBackgroundMap:
    def test_privdefena_allows_privileged_unmapped(self):
        mpu = MPU(enabled=True, privdefena=True)
        assert mpu.allows(0x40000000, 4, privileged=True, write=True)
        assert not mpu.allows(0x40000000, 4, privileged=False, write=False)

    def test_no_privdefena_blocks_privileged(self):
        mpu = MPU(enabled=True, privdefena=False)
        assert not mpu.allows(0x40000000, 4, privileged=True, write=True)

    def test_disabled_mpu_allows_everything(self):
        mpu = MPU(enabled=False)
        assert mpu.allows(0xDEADBEEF, 4, privileged=False, write=True)


class TestAccessSpan:
    def test_access_straddling_region_end_checked_at_both_ends(self):
        mpu = MPU(enabled=True, privdefena=False)
        mpu.set_region(MPURegion(
            number=0, base=0x20000000, size=0x40,
            priv=ACCESS_READWRITE, unpriv=ACCESS_READWRITE))
        assert mpu.allows(0x2000003C, 4, privileged=False, write=True)
        assert not mpu.allows(0x2000003E, 4, privileged=False, write=True)


class TestBoundarySemantics:
    """Accesses that straddle sub-region / region edges (§2.2)."""

    def setup_method(self):
        # Region 0: whole SRAM page, read-only to unprivileged code.
        # Region 3: a 0x100 window on top with RW, sub-region 1
        # (0x20000020-0x2000003F) disabled.
        self.mpu = MPU(enabled=True, privdefena=False)
        self.mpu.set_region(MPURegion(
            number=0, base=0x20000000, size=0x1000,
            priv=ACCESS_READWRITE, unpriv=ACCESS_READ))
        self.mpu.set_region(MPURegion(
            number=3, base=0x20000000, size=0x100,
            priv=ACCESS_READWRITE, unpriv=ACCESS_READWRITE,
            subregion_disable=0b00000010))

    def test_access_straddling_disabled_subregion(self):
        # Last word of sub-region 0 alone: RW via region 3.
        assert self.mpu.allows(0x2000001C, 4, privileged=False, write=True)
        # Straddle into the disabled sub-region: the tail byte falls
        # through to read-only region 0, so the write must fault...
        assert not self.mpu.allows(0x2000001E, 4, privileged=False,
                                   write=True)
        # ...while a read of the same span is fine at both ends.
        assert self.mpu.allows(0x2000001E, 4, privileged=False, write=False)

    def test_disabled_subregion_interior_uses_lower_region(self):
        assert not self.mpu.allows(0x20000030, 4, privileged=False,
                                   write=True)
        assert self.mpu.allows(0x20000030, 4, privileged=False, write=False)

    def test_disabled_subregion_with_no_lower_region(self):
        mpu = MPU(enabled=True, privdefena=True)
        mpu.set_region(MPURegion(
            number=2, base=0x20000000, size=0x100,
            priv=ACCESS_READWRITE, unpriv=ACCESS_READWRITE,
            subregion_disable=0b00000001))
        # Nothing matches in the hole: privileged falls back to the
        # default map (PRIVDEFENA), unprivileged faults.
        assert mpu.allows(0x20000004, 4, privileged=True, write=True)
        assert not mpu.allows(0x20000004, 4, privileged=False, write=False)
        # With PRIVDEFENA clear even privileged code faults there.
        mpu.privdefena = False
        assert not mpu.allows(0x20000004, 4, privileged=True, write=True)

    def test_straddle_out_of_privdefena_background(self):
        mpu = MPU(enabled=True, privdefena=True)
        mpu.set_region(MPURegion(
            number=1, base=0x20000000, size=0x40,
            priv=ACCESS_READ, unpriv=ACCESS_NONE))
        # First byte in the RO region (write denied), last byte in the
        # privileged background (allowed): the region's verdict rules.
        assert not mpu.allows(0x2000003E, 4, privileged=True, write=True)
        # Read: region grants RO, background grants everything.
        assert mpu.allows(0x2000003E, 4, privileged=True, write=False)


class TestDecisionCache:
    """The memoised verdicts must track every configuration mutator."""

    def _rw_region(self, number=0, unpriv=ACCESS_READWRITE):
        return MPURegion(number=number, base=0x20000000, size=0x100,
                         priv=ACCESS_READWRITE, unpriv=unpriv)

    def test_set_region_invalidates(self):
        mpu = MPU(enabled=True, privdefena=False)
        mpu.set_region(self._rw_region())
        assert mpu.allows(0x20000010, 4, privileged=False, write=True)
        mpu.set_region(self._rw_region(unpriv=ACCESS_READ))
        assert not mpu.allows(0x20000010, 4, privileged=False, write=True)

    def test_clear_region_invalidates(self):
        mpu = MPU(enabled=True, privdefena=False)
        mpu.set_region(self._rw_region())
        assert mpu.allows(0x20000010, 4, privileged=False, write=True)
        mpu.clear_region(0)
        assert not mpu.allows(0x20000010, 4, privileged=False, write=True)

    def test_load_configuration_invalidates(self):
        mpu = MPU(enabled=True, privdefena=False)
        mpu.set_region(self._rw_region())
        assert mpu.allows(0x20000010, 4, privileged=False, write=True)
        mpu.load_configuration([self._rw_region(unpriv=ACCESS_NONE)])
        assert not mpu.allows(0x20000010, 4, privileged=False, write=False)

    def test_restore_invalidates(self):
        mpu = MPU(enabled=True, privdefena=False)
        mpu.set_region(self._rw_region(unpriv=ACCESS_READ))
        snap = mpu.snapshot()
        mpu.set_region(self._rw_region(unpriv=ACCESS_READWRITE))
        assert mpu.allows(0x20000010, 4, privileged=False, write=True)
        mpu.restore(snap)
        assert not mpu.allows(0x20000010, 4, privileged=False, write=True)

    def test_privdefena_flip_changes_verdict(self):
        # privdefena is a plain attribute, not a mutator: it is part of
        # the cache key instead of an epoch bump.
        mpu = MPU(enabled=True, privdefena=True)
        assert mpu.allows(0x40000000, 4, privileged=True, write=True)
        mpu.privdefena = False
        assert not mpu.allows(0x40000000, 4, privileged=True, write=True)

    def test_cached_verdict_matches_arbitration(self):
        mpu = MPU(enabled=True, privdefena=False)
        mpu.set_region(MPURegion(
            number=0, base=0x20000000, size=0x100,
            priv=ACCESS_READWRITE, unpriv=ACCESS_READ,
            subregion_disable=0b10000000))
        probes = [(a, s, p, w)
                  for a in range(0x20000000 - 8, 0x20000100 + 8, 2)
                  for s in (1, 2, 4)
                  for p in (False, True)
                  for w in (False, True)]
        for a, s, p, w in probes:
            assert mpu.allows(a, s, p, w) == mpu._arbitrate(a, s, p, w)
        for a, s, p, w in probes:  # second pass: all served from cache
            assert mpu.allows(a, s, p, w) == mpu._arbitrate(a, s, p, w)


class TestSnapshot:
    def test_snapshot_restore_roundtrip(self):
        mpu = MPU(enabled=True)
        region = MPURegion(number=2, base=0, size=32)
        mpu.set_region(region)
        snap = mpu.snapshot()
        mpu.clear_region(2)
        assert mpu.get_region(2) is None
        mpu.restore(snap)
        assert mpu.get_region(2) is region

    def test_load_configuration_replaces_all(self):
        mpu = MPU()
        mpu.set_region(MPURegion(number=1, base=0, size=32))
        mpu.load_configuration([MPURegion(number=5, base=0, size=64)])
        assert mpu.get_region(1) is None
        assert mpu.get_region(5) is not None


class TestHelpers:
    def test_is_power_of_two(self):
        assert is_power_of_two(32)
        assert not is_power_of_two(48)
        assert not is_power_of_two(0)

    @pytest.mark.parametrize("length, expected", [
        (1, 32), (32, 32), (33, 64), (1024, 1024), (1025, 2048),
    ])
    def test_region_size_for(self, length, expected):
        assert region_size_for(length) == expected

    def test_align_base(self):
        assert align_base(0x12345, 0x100) == 0x12300
        assert align_base(0x200, 0x100) == 0x200

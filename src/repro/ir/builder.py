"""IRBuilder: the ergonomic construction API for firmware IR.

Modelled on LLVM's ``IRBuilder``, plus structured-control-flow context
managers (``if_then``, ``if_else``, ``while_loop``, ``for_range``) so
the applications in :mod:`repro.apps` read like the C they stand in
for.  All locals are ``alloca`` slots (clang -O0 style), which keeps
both the interpreter and the analyses free of SSA phi handling.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional, Sequence, Union

from .function import BasicBlock, Function
from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    GEP,
    Halt,
    ICall,
    ICmp,
    Jump,
    Load,
    Ret,
    Select,
    Store,
    SVC,
    Unreachable,
)
from .module import Module
from .types import FunctionType, IntType, Type, I8, I32, VOID, ptr
from .values import Constant, ConstantNull, ConstantPointer, Value

IntOrValue = Union[int, Value]


class IRBuilder:
    """Appends instructions to a current basic block."""

    def __init__(self, function: Function, block: Optional[BasicBlock] = None):
        self.function = function
        if block is None:
            block = function.blocks[0] if function.blocks else function.add_block("entry")
        self.block = block
        self._name_counter = 0

    # -- positioning ---------------------------------------------------

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def add_block(self, name: str = "") -> BasicBlock:
        return self.function.add_block(name or self._fresh("bb"))

    def _fresh(self, prefix: str) -> str:
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    def _emit(self, inst):
        return self.block.append(inst)

    # -- constants -----------------------------------------------------

    def const(self, value: int, type_: IntType = I32) -> Constant:
        return Constant(value, type_)

    def mmio(self, address: int, type_: Type = I32) -> ConstantPointer:
        """A constant pointer to a memory-mapped register."""
        return ConstantPointer(address, ptr(type_))

    def null(self, pointee: Type) -> ConstantNull:
        return ConstantNull(ptr(pointee))

    def _as_value(self, value: IntOrValue, type_: IntType = I32) -> Value:
        return Constant(value, type_) if isinstance(value, int) else value

    # -- memory ----------------------------------------------------------

    def alloca(self, type_: Type, count: int = 1, name: str = "") -> Alloca:
        return self._emit(Alloca(type_, count, name or self._fresh("slot")))

    def load(self, pointer: Value, name: str = "") -> Load:
        return self._emit(Load(pointer, name or self._fresh("v")))

    def store(self, value: IntOrValue, pointer: Value) -> Store:
        if isinstance(value, int):
            pointee = pointer.type.pointee
            itype = pointee if isinstance(pointee, IntType) else I32
            value = Constant(value, itype)
        return self._emit(Store(value, pointer))

    def gep(self, pointer: Value, *indices: IntOrValue, name: str = "") -> GEP:
        idx = [self._as_value(i) for i in indices]
        return self._emit(GEP(pointer, idx, name or self._fresh("p")))

    # -- arithmetic ------------------------------------------------------

    def binop(self, op: str, lhs: IntOrValue, rhs: IntOrValue, name: str = "") -> BinOp:
        lhs = self._as_value(lhs)
        rhs = self._as_value(rhs, lhs.type if isinstance(lhs.type, IntType) else I32)
        return self._emit(BinOp(op, lhs, rhs, name or self._fresh("t")))

    def add(self, a, b, name=""):
        return self.binop("add", a, b, name)

    def sub(self, a, b, name=""):
        return self.binop("sub", a, b, name)

    def mul(self, a, b, name=""):
        return self.binop("mul", a, b, name)

    def udiv(self, a, b, name=""):
        return self.binop("udiv", a, b, name)

    def urem(self, a, b, name=""):
        return self.binop("urem", a, b, name)

    def and_(self, a, b, name=""):
        return self.binop("and", a, b, name)

    def or_(self, a, b, name=""):
        return self.binop("or", a, b, name)

    def xor(self, a, b, name=""):
        return self.binop("xor", a, b, name)

    def shl(self, a, b, name=""):
        return self.binop("shl", a, b, name)

    def lshr(self, a, b, name=""):
        return self.binop("lshr", a, b, name)

    def icmp(self, pred: str, lhs: IntOrValue, rhs: IntOrValue, name: str = "") -> ICmp:
        lhs = self._as_value(lhs)
        rhs = self._as_value(rhs, lhs.type if isinstance(lhs.type, IntType) else I32)
        return self._emit(ICmp(pred, lhs, rhs, name or self._fresh("c")))

    def select(self, cond: Value, a: IntOrValue, b: IntOrValue, name: str = "") -> Select:
        a = self._as_value(a)
        b = self._as_value(b, a.type if isinstance(a.type, IntType) else I32)
        return self._emit(Select(cond, a, b, name or self._fresh("s")))

    def cast(self, kind: str, value: Value, to_type: Type, name: str = "") -> Cast:
        return self._emit(Cast(kind, value, to_type, name or self._fresh("x")))

    def zext(self, value, to_type=I32, name=""):
        return self.cast("zext", value, to_type, name)

    def trunc(self, value, to_type=I8, name=""):
        return self.cast("trunc", value, to_type, name)

    def ptrtoint(self, value, name=""):
        return self.cast("ptrtoint", value, I32, name)

    def inttoptr(self, value, pointee: Type, name=""):
        return self.cast("inttoptr", self._as_value(value), ptr(pointee), name)

    def bitcast(self, value, to_type: Type, name=""):
        return self.cast("bitcast", value, to_type, name)

    # -- calls -------------------------------------------------------------

    def call(self, callee: Function, *args: IntOrValue, name: str = "") -> Call:
        coerced = []
        for formal, actual in zip(callee.ftype.params, args):
            if isinstance(actual, int):
                itype = formal if isinstance(formal, IntType) else I32
                actual = Constant(actual, itype)
            coerced.append(actual)
        coerced.extend(self._as_value(a) for a in args[len(callee.ftype.params):])
        return self._emit(Call(callee, coerced, name or self._fresh("r")))

    def icall(self, target: Value, callee_type: FunctionType,
              *args: IntOrValue, name: str = "") -> ICall:
        coerced = [self._as_value(a) for a in args]
        return self._emit(ICall(target, callee_type, coerced, name or self._fresh("r")))

    def svc(self, number: int, payload: int = 0) -> SVC:
        return self._emit(SVC(number, payload))

    # -- terminators ---------------------------------------------------------

    def br(self, cond: Value, then_block: BasicBlock, else_block: BasicBlock) -> Br:
        return self._emit(Br(cond, then_block, else_block))

    def jump(self, target: BasicBlock) -> Jump:
        return self._emit(Jump(target))

    def ret(self, value: Optional[IntOrValue] = None) -> Ret:
        if isinstance(value, int):
            rtype = self.function.return_type
            itype = rtype if isinstance(rtype, IntType) else I32
            value = Constant(value, itype)
        return self._emit(Ret(value))

    def ret_void(self) -> Ret:
        return self._emit(Ret(None))

    def halt(self, code: IntOrValue = 0) -> Halt:
        return self._emit(Halt(self._as_value(code)))

    def unreachable(self) -> Unreachable:
        return self._emit(Unreachable())

    # -- structured control flow ----------------------------------------------

    @contextmanager
    def if_then(self, cond: Value):
        """``if (cond) { body }``."""
        then_block = self.add_block("then")
        merge = self.add_block("endif")
        self.br(cond, then_block, merge)
        self.position_at_end(then_block)
        yield
        if self.block.terminator is None:
            self.jump(merge)
        self.position_at_end(merge)

    @contextmanager
    def if_else(self, cond: Value):
        """``if (cond) { A } else { B }``; yields a switcher callable.

        Usage::

            with b.if_else(cond) as otherwise:
                ...then code...
                otherwise()
                ...else code...
        """
        then_block = self.add_block("then")
        else_block = self.add_block("else")
        merge = self.add_block("endif")
        self.br(cond, then_block, else_block)
        self.position_at_end(then_block)

        def otherwise():
            if self.block.terminator is None:
                self.jump(merge)
            self.position_at_end(else_block)

        yield otherwise
        if self.block.terminator is None:
            self.jump(merge)
        self.position_at_end(merge)

    @contextmanager
    def while_loop(self, cond_fn: Callable[[], Value]):
        """``while (cond) { body }``; ``cond_fn`` emits into the header."""
        header = self.add_block("while.head")
        body = self.add_block("while.body")
        exit_block = self.add_block("while.end")
        self.jump(header)
        self.position_at_end(header)
        cond = cond_fn()
        self.br(cond, body, exit_block)
        self.position_at_end(body)
        yield exit_block
        if self.block.terminator is None:
            self.jump(header)
        self.position_at_end(exit_block)

    @contextmanager
    def for_range(self, start: IntOrValue, stop: IntOrValue, step: int = 1):
        """``for (i = start; i < stop; i += step)``; yields loader for i."""
        ivar = self.alloca(I32, name="i")
        self.store(self._as_value(start), ivar)
        stop_v = self._as_value(stop)
        header = self.add_block("for.head")
        body = self.add_block("for.body")
        exit_block = self.add_block("for.end")
        self.jump(header)
        self.position_at_end(header)
        cur = self.load(ivar)
        self.br(self.icmp("slt", cur, stop_v), body, exit_block)
        self.position_at_end(body)
        yield lambda: self.load(ivar)
        if self.block.terminator is None:
            nxt = self.add(self.load(ivar), step)
            self.store(nxt, ivar)
            self.jump(header)
        self.position_at_end(exit_block)


def define(
    module: Module,
    name: str,
    ret: Type = VOID,
    params: Sequence[Type] = (),
    **attrs,
) -> tuple[Function, IRBuilder]:
    """Create a function with an entry block and return it + a builder."""
    func = Function(name, FunctionType(ret, params), **attrs)
    module.add_function(func)
    return func, IRBuilder(func)

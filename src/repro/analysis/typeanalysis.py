"""Type-based indirect-call resolution (the SVF fallback of §4.1).

When the points-to analysis cannot resolve an icall, OPEC falls back to
signature matching: two function types are considered identical when
the number of arguments, the types of struct-typed arguments, the types
of pointer-typed arguments, and the return type are all the same
(integer argument widths are not discriminated).  Candidate targets are
the address-taken functions of the module; if none matches, every
defined function with a matching signature is considered, keeping the
call graph sound.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import ICall
from ..ir.module import Module
from ..ir.types import FunctionType, IntType, PointerType, StructType, Type


def _param_key(param: Type):
    """The part of a parameter type the paper's rule discriminates on."""
    if isinstance(param, PointerType):
        return ("ptr", str(param))
    if isinstance(param, StructType):
        return ("struct", param.name)
    if isinstance(param, IntType):
        return ("int",)
    return ("other", str(param))


def signature_key(ftype: FunctionType):
    """Hashable signature identity per the paper's matching rule."""
    return (
        str(ftype.ret),
        len(ftype.params),
        tuple(_param_key(p) for p in ftype.params),
    )


def signatures_match(a: FunctionType, b: FunctionType) -> bool:
    return signature_key(a) == signature_key(b)


def address_taken_functions(module: Module) -> set[Function]:
    """Functions whose address escapes as a value (icall candidates)."""
    taken: set[Function] = set()
    for func in module.iter_functions():
        for inst in func.iter_instructions():
            for op in inst.operands:
                if isinstance(op, Function):
                    taken.add(op)
    return taken


class TypeBasedResolver:
    """Resolve icalls by signature against the module's functions."""

    def __init__(self, module: Module):
        self.module = module
        self._taken = address_taken_functions(module)
        self._by_key: dict[tuple, list[Function]] = {}
        self._taken_by_key: dict[tuple, list[Function]] = {}
        for func in module.defined_functions():
            key = signature_key(func.ftype)
            self._by_key.setdefault(key, []).append(func)
            if func in self._taken:
                self._taken_by_key.setdefault(key, []).append(func)

    def targets(self, icall: ICall) -> set[Function]:
        key = signature_key(icall.callee_type)
        candidates = self._taken_by_key.get(key) or self._by_key.get(key) or []
        return set(candidates)

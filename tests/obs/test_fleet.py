"""Tests for fleet telemetry envelopes, trace fusion, and roll-up.

The load-bearing contract: the sim-domain serialization — fused trace
section and dashboard section — is byte-identical for any worker
count, while the host-domain sections are cleanly separable for
masking.
"""

import json
import pickle

import pytest

from repro.obs import fleet
from repro.obs.events import DOMAIN_HOST, FLEET_RUN
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder


@pytest.fixture(autouse=True)
def _fresh_collector():
    fleet.reset()
    yield
    fleet.reset()


class TestCapture:
    def test_capture_collects_recorded_simulations(self):
        token = fleet.begin_capture()
        metrics = MetricsRegistry()
        metrics.counter("machine.loads").value = 5
        compile_metrics = MetricsRegistry()
        compile_metrics.counter("blockcompile.blocks_compiled").value = 2
        fleet.record_simulation(metrics, compile_metrics)
        envelope = fleet.end_capture(token, worker=3, label="w3")
        assert envelope.worker == 3
        assert envelope.label == "w3"
        assert envelope.metrics.counters["machine.loads"].value == 5
        assert envelope.compile_counters == \
            {"blockcompile.blocks_compiled": 2}
        assert envelope.busy_us >= 0

    def test_captures_are_exclusive_when_nested(self, tmp_path,
                                                monkeypatch):
        """An inner capture's cache traffic must not be double-counted
        by the enclosing capture: summing a call's envelopes has to
        reproduce the plain process totals exactly once."""
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        from repro import cache

        store = cache.active_store()
        outer = fleet.begin_capture()
        store.get("0" * 64)                        # outer's own miss
        inner = fleet.begin_capture()
        store.get("1" * 64)                        # inner's miss
        store.get("2" * 64)
        inner_env = fleet.end_capture(inner, label="inner")
        outer_env = fleet.end_capture(outer, label="outer")
        assert inner_env.cache_counters.get("misses") == 2
        assert outer_env.cache_counters.get("misses") == 1

    def test_end_capture_restores_previous_collector(self):
        before = fleet.collector()
        token = fleet.begin_capture()
        assert fleet.collector() is not before
        fleet.end_capture(token)
        assert fleet.collector() is before

    def test_envelope_pickles(self):
        token = fleet.begin_capture()
        metrics = MetricsRegistry()
        metrics.histogram("h").observe(9)
        fleet.record_simulation(metrics)
        recorder = FlightRecorder(16)
        recorder.instant("k", "e", 5)
        envelope = fleet.end_capture(
            token, worker=1, label="w",
            lanes=[fleet.LaneTelemetry(name="a:opec:mpu", backend="mpu",
                                       events=recorder.events())])
        clone = pickle.loads(pickle.dumps(envelope))
        assert clone.label == "w"
        assert clone.metrics.histograms["h"].count == 1
        assert clone.lanes[0].events[0].name == "e"


class TestValidateJobs:
    def test_rejects_non_positive(self):
        for bad in (0, -2, "0", "nope", None):
            with pytest.raises(ValueError,
                               match="invalid worker count"):
                fleet.validate_jobs(bad)

    def test_accepts_positive(self):
        assert fleet.validate_jobs(3) == 3
        assert fleet.validate_jobs("2", "--jobs") == 2


class TestWallSpan:
    def test_emits_begin_end_pair_with_wall_ts(self):
        recorder = FlightRecorder(8)
        with fleet.wall_span(recorder, FLEET_RUN, "x", lanes=2):
            pass
        events = recorder.events()
        assert [e.ph for e in events] == ["B", "E"]
        assert all(e.domain == DOMAIN_HOST for e in events)
        assert events[1].ts >= events[0].ts
        assert events[0].args == {"lanes": 2}

    def test_none_recorder_is_a_noop(self):
        with fleet.wall_span(None, FLEET_RUN, "x"):
            pass


class TestLaneSpecs:
    def test_pinlock_grid(self):
        specs = fleet.fleet_lane_specs("PinLock", "quick", ("mpu", "pmp"))
        assert len(specs) == 10                    # 5 kinds x 2 backends
        assert ("PinLock", "vanilla", "mpu") in specs
        assert ("PinLock", "ACES3", "pmp") in specs

    def test_unknown_target_rejected_loudly(self):
        with pytest.raises(ValueError, match="unknown fleet target"):
            fleet.fleet_lane_specs("NoSuchApp", "quick", ("mpu",))


class TestRunFleet:
    """End-to-end fleet runs (inline worker: jobs=1)."""

    @pytest.fixture(scope="class")
    def result(self):
        fleet.reset()
        return fleet.run_fleet("PinLock", jobs=1, profile="quick",
                               backends=("mpu",))

    def test_lane_grid_and_outcomes(self, result):
        lanes = result.lanes
        assert [lane.name for lane in lanes] == sorted(
            f"PinLock:{kind}:mpu"
            for kind in ("vanilla", "opec", "ACES1", "ACES2", "ACES3"))
        assert all(not lane.faulted for lane in lanes)
        assert all(lane.cycles > 0 for lane in lanes)
        assert all(lane.events for lane in lanes)

    def test_fused_trace_loads_and_has_sim_pid(self, result):
        document = json.loads(fleet.fuse_trace(result))
        pids = {entry.get("pid") for entry in document["traceEvents"]}
        assert 0 in pids                           # sim domain
        assert 2 in pids                           # worker 1's host pid
        tids = {entry["tid"] for entry in document["traceEvents"]
                if entry.get("pid") == 0 and entry.get("ph") != "M"}
        assert tids == set(range(1, len(result.lanes) + 1))

    def test_sim_trace_section_drops_host_pids(self, result):
        section = json.loads(fleet.sim_trace_section(
            fleet.fuse_trace(result)))
        assert {entry["pid"] for entry in section["traceEvents"]} == {0}
        assert all(key.startswith("sim_") for key in section["otherData"])

    def test_dashboard_has_marker_and_sections(self, result):
        dashboard = fleet.render_dashboard(result)
        assert fleet.HOST_SECTION_MARKER in dashboard
        sim = fleet.sim_dashboard_section(dashboard)
        assert "PinLock:opec:mpu" in sim
        assert "switch-cost histograms per backend" in sim
        assert fleet.HOST_SECTION_MARKER not in sim
        host = dashboard.split(fleet.HOST_SECTION_MARKER)[1]
        assert "worker1" in host

    def test_no_trace_drops_lane_events_but_keeps_metrics(self):
        fleet.reset()
        result = fleet.run_fleet("PinLock", jobs=1, profile="quick",
                                 backends=("mpu",), trace=False)
        assert all(not lane.events for lane in result.lanes)
        assert any(lane.metrics.counters for lane in result.lanes)

    def test_worker_count_parity_of_sim_sections(self, result):
        """Same lanes split over two workers: sim serialization must
        be byte-identical, host domain must show both workers."""
        fleet.reset()
        two = fleet.run_fleet("PinLock", jobs=2, profile="quick",
                              backends=("mpu",))
        assert fleet.sim_trace_section(fleet.fuse_trace(two)) == \
            fleet.sim_trace_section(fleet.fuse_trace(result))
        assert fleet.sim_dashboard_section(fleet.render_dashboard(two)) \
            == fleet.sim_dashboard_section(fleet.render_dashboard(result))
        document = json.loads(fleet.fuse_trace(two))
        worker_pids = {entry.get("pid")
                       for entry in document["traceEvents"]} - {0, 1}
        assert len(worker_pids) >= 2

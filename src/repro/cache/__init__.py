"""Persistent content-addressed artifact cache.

Compile each firmware once and reuse the artifacts across every
process: :mod:`repro.pipeline` and :mod:`repro.baselines` consult the
store before building, the evaluation harness
(:mod:`repro.eval.workloads`) additionally caches simulated runs and
task traces, and ``REPRO_JOBS`` workers share the store through the
filesystem.  See DESIGN.md, "Build caching" for the digest definition
and the byte-identity contract.
"""

from .digest import (
    CACHE_SCHEMA_VERSION,
    build_digest,
    clear_digest_memos,
    module_digest,
    pipeline_fingerprint,
    run_digest,
    trace_digest,
)
from .store import (
    ArtifactStore,
    CacheCounters,
    DEFAULT_ROOT,
    active_store,
    cache_root,
    counters_delta,
    counters_snapshot,
    reset_store_state,
)

__all__ = [
    "ArtifactStore",
    "CacheCounters",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_ROOT",
    "active_store",
    "build_digest",
    "cache_root",
    "clear_digest_memos",
    "counters_delta",
    "counters_snapshot",
    "module_digest",
    "pipeline_fingerprint",
    "reset_store_state",
    "run_digest",
    "trace_digest",
]

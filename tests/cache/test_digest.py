"""Digest stability and invalidation for the artifact cache."""

import os
import subprocess
import sys
from pathlib import Path

from repro.cache import digest as digest_mod
from repro.cache.digest import (
    build_digest,
    module_digest,
    pipeline_fingerprint,
    run_digest,
    trace_digest,
)
from repro.eval.workloads import build_app
from repro.hw import stm32f4_discovery
from repro.partition import OperationSpec

from ..conftest import MINI_SPECS, build_mini_module

REPO = Path(__file__).resolve().parents[2]


def test_digest_stable_across_hash_seeds_and_processes():
    """The cache key must not depend on ``PYTHONHASHSEED`` — set
    ordering, dict ordering, and object ids all vary with it, and any
    leak into the digest silently turns every warm run cold."""
    here = build_digest("opec", build_mini_module(), stm32f4_discovery(),
                        specs=MINI_SPECS)
    script = (
        "from tests.conftest import MINI_SPECS, build_mini_module\n"
        "from repro.cache.digest import build_digest\n"
        "from repro.hw import stm32f4_discovery\n"
        "print(build_digest('opec', build_mini_module(),"
        " stm32f4_discovery(), specs=MINI_SPECS))\n"
    )
    for seed in ("0", "1", "4242"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO / "src"), str(REPO)])
        proc = subprocess.run(
            [sys.executable, "-c", script], cwd=REPO, env=env,
            capture_output=True, text=True, check=True)
        assert proc.stdout.strip() == here, f"seed {seed} diverged"


def test_module_digest_tracks_semantics():
    a = module_digest(build_mini_module())
    assert a == module_digest(build_mini_module())
    assert a != module_digest(build_mini_module(shared_value=8))


def test_build_digest_separates_flavours_and_configs():
    module = build_mini_module()
    board = stm32f4_discovery()
    base = build_digest("opec", module, board, specs=MINI_SPECS)
    assert base != build_digest("vanilla", module, board)
    assert base != build_digest("aces:ACES2", module, board)
    assert base != build_digest("opec", module, board,
                                specs=list(reversed(MINI_SPECS)))
    assert base != build_digest("opec", module, board, specs=MINI_SPECS,
                                stack_size=1 << 14)
    assert base != build_digest(
        "opec", module, board,
        specs=[OperationSpec("task_a"), OperationSpec("task_b")][:1])


def test_run_and_trace_digests_cover_their_inputs():
    module = build_mini_module()
    board = stm32f4_discovery()
    key = build_digest("vanilla", module, board)
    run = run_digest(key, "Mini", "quick")
    assert run != run_digest(key, "Mini", "paper")
    assert run != run_digest(key, "Other", "quick")
    assert run != run_digest(key, "Mini", "quick", max_instructions=7)
    trace = trace_digest(key, "Mini", "quick", ["task_a"])
    assert trace != run
    assert trace != trace_digest(key, "Mini", "quick", ["task_b"])


def test_schema_version_changes_the_fingerprint(monkeypatch):
    """Bumping ``CACHE_SCHEMA_VERSION`` must invalidate every entry —
    the fingerprint partitions the store directory layout."""
    before = pipeline_fingerprint()
    monkeypatch.setattr(digest_mod, "CACHE_SCHEMA_VERSION",
                        digest_mod.CACHE_SCHEMA_VERSION + 1)
    bumped = pipeline_fingerprint()
    assert bumped != before
    monkeypatch.undo()
    assert pipeline_fingerprint() == before  # memo keyed per version


def test_fingerprint_feeds_build_digest(monkeypatch):
    module = build_mini_module()
    board = stm32f4_discovery()
    before = build_digest("vanilla", module, board)
    monkeypatch.setattr(digest_mod, "CACHE_SCHEMA_VERSION",
                        digest_mod.CACHE_SCHEMA_VERSION + 1)
    assert build_digest("vanilla", module, board) != before


def test_real_app_digest_is_reproducible():
    app = build_app("PinLock", profile="quick")
    rebuilt = build_app("CoreMark", profile="quick")
    a = build_digest("opec", app.module, app.board, specs=app.specs)
    b = build_digest("opec", app.module, app.board, specs=app.specs)
    assert a == b
    assert a != build_digest("opec", rebuilt.module, rebuilt.board,
                             specs=rebuilt.specs)

"""Property-based soundness test for the points-to analysis.

Random pointer-shuffling firmwares: addresses of globals move through
pointer slots via stores, loads, and copies, and the program finally
writes through one slot.  Soundness (the property OPEC depends on for
"an unsound call graph will bring dependency miss"): the global that
is *actually* written at runtime must be in the analysis'
points-to set for the final pointer.
"""

from hypothesis import given, settings, strategies as st

import repro.ir as ir
from repro.analysis import run_andersen
from repro.hw import Machine, stm32f4_discovery
from repro.image import build_vanilla_image
from repro.interp import Interpreter
from repro.ir import I32, VOID, ptr

NUM_GLOBALS = 3
NUM_SLOTS = 3
MARKER = 0xC0FFEE


@st.composite
def shuffle_programs(draw):
    """A random sequence of pointer moves, ending in one store."""
    steps = draw(st.lists(
        st.one_of(
            st.tuples(st.just("take"), st.integers(0, NUM_SLOTS - 1),
                      st.integers(0, NUM_GLOBALS - 1)),
            st.tuples(st.just("copy"), st.integers(0, NUM_SLOTS - 1),
                      st.integers(0, NUM_SLOTS - 1)),
        ),
        min_size=1, max_size=8,
    ))
    # Initialise every slot first so copies never propagate null.
    prologue = [
        ("take", slot, draw(st.integers(0, NUM_GLOBALS - 1)))
        for slot in range(NUM_SLOTS)
    ]
    final_slot = draw(st.integers(0, NUM_SLOTS - 1))
    return [*prologue, *steps], final_slot


def _build(program):
    steps, final_slot = program
    module = ir.Module("shuffle")
    gvars = [module.add_global(f"g{i}", I32, 0) for i in range(NUM_GLOBALS)]
    slots = [module.add_global(f"slot{i}", ptr(I32))
             for i in range(NUM_SLOTS)]
    _m, b = ir.define(module, "main", I32, [])
    for step in steps:
        if step[0] == "take":
            _, slot, gi = step
            b.store(gvars[gi], slots[slot])
        else:
            _, src, dst = step
            value = b.load(slots[src])
            b.store(value, slots[dst])
    final_ptr = b.load(slots[final_slot])
    b.store(MARKER & 0xFFFFFFFF, final_ptr)
    b.halt(0)
    return module, gvars, final_ptr


@given(shuffle_programs())
@settings(max_examples=60, deadline=None)
def test_runtime_target_within_static_points_to(program):
    module, gvars, final_ptr = _build(program)
    result = run_andersen(module)
    static_targets = result.pointed_globals(final_ptr)

    board = stm32f4_discovery()
    image = build_vanilla_image(module, board)
    machine = Machine(board)
    image.initialize_memory(machine)
    Interpreter(machine, image).run()

    written = [
        g for g in gvars
        if machine.read_direct(image.global_address(g), 4)
        == (MARKER & 0xFFFFFFFF)
    ]
    assert len(written) == 1  # exactly one global took the marker
    assert written[0] in static_targets  # soundness


@given(shuffle_programs())
@settings(max_examples=40, deadline=None)
def test_resource_analysis_covers_runtime_write(program):
    """The same soundness property one layer up: the function's
    resource dependency includes the runtime-written global."""
    from repro.analysis import ResourceAnalysis

    module, gvars, _final_ptr = _build(program)
    board = stm32f4_discovery()
    analysis = ResourceAnalysis(module, board)
    deps = analysis.function_resources(module.get_function("main"))

    image = build_vanilla_image(module, board)
    machine = Machine(board)
    image.initialize_memory(machine)
    Interpreter(machine, image).run()
    written = [
        g for g in gvars
        if machine.read_direct(image.global_address(g), 4)
        == (MARKER & 0xFFFFFFFF)
    ]
    assert set(written) <= deps.globals_all

"""Unit tests for layout, MPU config synthesis, and the OPEC linker."""

import pytest

import repro.ir as ir
from repro import build_opec
from repro.hw import MIN_REGION_SIZE, stm32f4_discovery
from repro.image import (
    LinkError,
    VECTOR_TABLE_SIZE,
    build_opec_image,
    build_vanilla_image,
    covering_regions,
    function_code_size,
    instrumentation_size,
    metadata_size,
    monitor_code_size,
    subregion_disable_for_free_range,
)
from repro.ir import I32, VOID

from ..conftest import MINI_SPECS, build_mini_module


def _sections_overlap(sections):
    ordered = sorted(sections, key=lambda s: s.base)
    for a, b in zip(ordered, ordered[1:]):
        if a.end > b.base:
            return (a, b)
    return None


class TestVanillaLayout:
    def test_sections_do_not_overlap(self, mini_module, board):
        image = build_vanilla_image(mini_module, board)
        assert _sections_overlap(image.sections) is None

    def test_functions_in_flash_word_aligned(self, mini_module, board):
        image = build_vanilla_image(mini_module, board)
        for func in mini_module.defined_functions():
            address = image.function_address(func)
            assert address % 4 == 0
            assert board.flash_base <= address < board.flash_base + board.flash_size
            assert image.function_at(address) is func

    def test_globals_in_sram(self, mini_module, board):
        image = build_vanilla_image(mini_module, board)
        for gvar in mini_module.writable_globals():
            address = image.global_address(gvar)
            assert board.sram_base <= address
            assert address + gvar.size <= board.sram_base + board.sram_size

    def test_const_globals_in_flash(self, board):
        module = build_mini_module()
        k = module.add_global("k", I32, 7, is_const=True)
        image = build_vanilla_image(module, board)
        address = image.global_address(k)
        assert board.flash_base <= address < board.flash_base + board.flash_size

    def test_stack_at_top(self, mini_module, board):
        image = build_vanilla_image(mini_module, board)
        assert image.stack_top == board.sram_base + board.sram_size
        assert image.stack_limit == image.stack_top - image.stack_size

    def test_code_bytes_counts_instructions(self, mini_module):
        func = mini_module.get_function("task_a")
        assert function_code_size(func) == func.instruction_count() * 4


class TestCoveringRegions:
    def test_single_region_when_aligned(self):
        assert covering_regions(0x40020000, 0x400) == [(0x40020000, 0x400)]

    def test_alignment_padding_single_region(self):
        # Base 0x40023800, size 0x400: a 0x400-sized region aligns fine.
        assert covering_regions(0x40023800, 0x400) == [(0x40023800, 0x400)]

    def test_misaligned_range_needs_multiple(self):
        # 0x800 bytes at 0x40020C00: a single aligned 0x800 region
        # cannot cover the range (§5.2's two-regions-per-peripheral case).
        pieces = covering_regions(0x40020C00, 0x800)
        assert len(pieces) >= 2
        covered_start = min(base for base, _ in pieces)
        covered_end = max(base + size for base, size in pieces)
        assert covered_start <= 0x40020C00
        assert covered_end >= 0x40020C00 + 0x800
        for base, size in pieces:
            assert size >= MIN_REGION_SIZE
            assert size & (size - 1) == 0
            assert base % size == 0

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            covering_regions(0x40020000, 0)


class TestSubregionMask:
    def test_mask_hides_high_subregions(self):
        # Stack of 0x1000 at 0x20000000; watermark mid-way.
        mask = subregion_disable_for_free_range(0x20000000, 0x1000,
                                                0x20000800)
        # Sub-regions 4..7 (at/above the watermark) disabled.
        assert mask == 0b11110000

    def test_mask_all_enabled_at_top(self):
        mask = subregion_disable_for_free_range(0x20000000, 0x1000,
                                                0x20001000)
        assert mask == 0

    def test_mask_all_disabled_at_bottom(self):
        mask = subregion_disable_for_free_range(0x20000000, 0x1000,
                                                0x20000000)
        assert mask == 0xFF


class TestOpecLinker:
    @pytest.fixture
    def artifacts(self, board):
        return build_opec(build_mini_module(), board, MINI_SPECS)

    def test_sections_do_not_overlap(self, artifacts):
        assert _sections_overlap(artifacts.image.sections) is None

    def test_every_operation_has_a_section_and_templates(self, artifacts):
        image = artifacts.image
        for op in artifacts.operations:
            layout = image.layout_of(op)
            assert layout.section.size >= MIN_REGION_SIZE
            assert layout.section.base % layout.region_size == 0
            numbers = [t.number for t in layout.templates]
            assert numbers == [0, 1, 2, 3, 4]

    def test_shadows_live_inside_their_section(self, artifacts):
        image = artifacts.image
        for (op_index, gvar), address in image.shadow_addresses.items():
            section = image.op_layouts[op_index].section
            assert section.base <= address
            assert address + gvar.size <= section.end

    def test_internal_vars_inside_their_section(self, artifacts):
        image = artifacts.image
        policy = artifacts.policy
        for op in artifacts.operations:
            section = image.layout_of(op).section
            for gvar in policy.internal_vars(op):
                address = image.global_address(gvar)
                assert section.base <= address < section.end

    def test_reloc_slot_per_external(self, artifacts):
        externals = set(artifacts.policy.all_external_vars())
        assert set(artifacts.image.reloc_slots) == externals
        slots = sorted(artifacts.image.reloc_slots.values())
        assert all(b - a == 4 for a, b in zip(slots, slots[1:]))

    def test_zone_region_covers_all_op_sections(self, artifacts):
        image = artifacts.image
        zone_end = image.zone_start + image.zone_size
        for layout in image.op_layouts.values():
            assert image.zone_start <= layout.section.base
            assert layout.section.end <= zone_end

    def test_zone_region_does_not_cover_reloc_table(self, artifacts):
        image = artifacts.image
        assert image.zone_start >= image.section("reloc").end

    def test_stack_region_power_of_two_aligned(self, artifacts):
        image = artifacts.image
        assert image.stack_size & (image.stack_size - 1) == 0
        assert image.stack_base % image.stack_size == 0

    def test_public_addresses_for_externals(self, artifacts):
        for gvar in artifacts.policy.all_external_vars():
            address = artifacts.image.public_addresses[gvar]
            public = artifacts.image.section("public")
            assert public.base <= address < public.end

    def test_odd_stack_size_rejected(self, board, mini_module):
        from repro.partition import build_policy
        with pytest.raises(LinkError, match="power of two"):
            build_opec_image(mini_module, board,
                             build_policy(mini_module, []),
                             stack_size=3000)

    def test_flash_overhead_components_positive(self, artifacts):
        image = artifacts.image
        assert image.monitor_code_bytes > 8000
        assert image.metadata_bytes > 0
        assert image.instrumentation_bytes > 0


class TestMetadataModel:
    def test_monitor_code_grows_with_operations(self):
        assert monitor_code_size(10) > monitor_code_size(5)

    def test_metadata_counts_externals_and_windows(self, board):
        module = build_mini_module()
        artifacts = build_opec(module, board, MINI_SPECS)
        assert metadata_size(artifacts.policy) >= 3 * (16 + 64)

    def test_instrumentation_counts_entry_call_sites(self, board):
        module = build_mini_module()
        artifacts = build_opec(module, board, MINI_SPECS)
        # main calls task_a twice and task_b once -> 3 sites * 8 bytes.
        assert instrumentation_size(artifacts.module, artifacts.policy) == 24

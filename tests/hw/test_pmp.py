"""Tests for the RISC-V PMP backend (§7 port)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.mpu import MPU, MPURegion, align_base
from repro.hw.pmp import (
    NUM_PMP_ENTRIES,
    PMP,
    PMPEntry,
    PmpProtection,
    compile_regions_to_pmp,
    napot_cover,
    use_pmp,
)


class TestPMPEntry:
    def test_napot_validation(self):
        with pytest.raises(ValueError):
            PMPEntry(base=0, size=3)
        with pytest.raises(ValueError):
            PMPEntry(base=4, size=8)  # misaligned

    def test_match_and_permissions(self):
        entry = PMPEntry(base=0x1000, size=0x100, readable=True)
        assert entry.matches(0x10FF)
        assert not entry.matches(0x1100)
        assert entry.permits(write=False)
        assert not entry.permits(write=True)


class TestPMPSemantics:
    def test_lowest_index_wins(self):
        pmp = PMP(enabled=True)
        pmp.set_entry(0, PMPEntry(base=0x1000, size=0x100, readable=True,
                                  writable=True))
        pmp.set_entry(1, PMPEntry(base=0x1000, size=0x1000))
        assert pmp.allows(0x1010, 4, privileged=False, write=True)
        assert not pmp.allows(0x1800, 4, privileged=False, write=False)

    def test_m_mode_bypasses_unlocked(self):
        pmp = PMP(enabled=True)
        pmp.set_entry(0, PMPEntry(base=0x1000, size=0x100))
        assert pmp.allows(0x1000, 4, privileged=True, write=True)
        assert not pmp.allows(0x1000, 4, privileged=False, write=False)

    def test_locked_entry_constrains_m_mode(self):
        pmp = PMP(enabled=True)
        pmp.set_entry(0, PMPEntry(base=0x1000, size=0x100, readable=True,
                                  locked=True))
        assert not pmp.allows(0x1000, 4, privileged=True, write=True)
        assert pmp.allows(0x1000, 4, privileged=True, write=False)

    def test_u_mode_denied_without_match(self):
        pmp = PMP(enabled=True)
        assert not pmp.allows(0x2000, 4, privileged=False, write=False)
        assert pmp.allows(0x2000, 4, privileged=True, write=False)


class TestNapotCover:
    @pytest.mark.parametrize("base, length", [
        (0x1000, 0x1000), (0x800, 0x1800), (0x20, 0x60), (0x1800, 0x800),
    ])
    def test_exact_cover(self, base, length):
        pieces = napot_cover(base, length)
        covered = []
        for piece_base, piece_size in pieces:
            assert piece_base % piece_size == 0
            covered.extend(range(piece_base, piece_base + piece_size, 4))
        assert covered == list(range(base, base + length, 4))

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            napot_cover(2, 8)


class TestRegionCompilation:
    def test_priority_inversion(self):
        """MPU highest-wins becomes PMP lowest-index-first."""
        regions = [
            MPURegion(number=0, base=0, size=0x40000000,
                      priv="RW", unpriv="RO"),
            MPURegion(number=4, base=0x20000000, size=0x400,
                      priv="RW", unpriv="RW"),
        ]
        entries = compile_regions_to_pmp(regions)
        assert entries[0].base == 0x20000000  # region 4 first
        assert entries[-1].size == 0x40000000

    def test_subregion_mask_becomes_runs(self):
        region = MPURegion(number=3, base=0x20000000, size=0x800,
                           priv="RW", unpriv="RW",
                           subregion_disable=0b11110000)
        entries = compile_regions_to_pmp([region])
        total = sum(e.size for e in entries)
        assert total == 0x400  # only the low four sub-regions
        assert all(e.base < 0x20000400 for e in entries)

    def test_entry_budget_enforced(self):
        regions = [
            MPURegion(number=i, base=0x20000000 + i * 0x1000, size=0x100,
                      priv="RW", unpriv="RW",
                      subregion_disable=0b01010101)  # 4 runs each
            for i in range(8)
        ]
        with pytest.raises(ValueError, match="PMP entries"):
            compile_regions_to_pmp(regions)

    def test_disabled_region_compiles_to_nothing(self):
        """Regression: disabled regions used to compile into live PMP
        entries (``enabled`` was never consulted)."""
        region = MPURegion(number=3, base=0x20000000, size=0x200,
                           priv="RW", unpriv="RW", enabled=False)
        assert compile_regions_to_pmp([region]) == []

    def test_disabled_region_does_not_shadow_lower_region(self):
        """The concrete damage of the bug: a disabled high-priority RW
        region over an NA region used to grant the access the MPU
        denies."""
        deny = MPURegion(number=1, base=0x20000000, size=0x200,
                         priv="RW", unpriv="NA")
        ghost = MPURegion(number=5, base=0x20000000, size=0x200,
                          priv="RW", unpriv="RW", enabled=False)
        mpu = MPU(enabled=True)
        adapter = PmpProtection()
        for region in (deny, ghost):
            mpu.set_region(region)
            adapter.set_region(region)
        adapter.enabled = True
        assert not mpu.allows(0x20000010, 4, False, False)
        assert not adapter.allows(0x20000010, 4, False, False)


class TestPmpProtectionSemantics:
    def test_privdefena_wired_into_no_match_path(self):
        """Regression: ``privdefena`` was assigned but never consulted —
        privileged no-match accesses succeeded even with it clear."""
        adapter = PmpProtection()
        adapter.enabled = True
        assert adapter.allows(0x20000000, 4, True, False)
        adapter.privdefena = False
        assert not adapter.allows(0x20000000, 4, True, False)
        # Unprivileged no-match is denied either way.
        assert not adapter.allows(0x20000000, 4, False, False)

    def test_decision_cache_dropped_on_configuration_epoch(self):
        adapter = PmpProtection()
        adapter.enabled = True
        region = MPURegion(number=2, base=0x20000000, size=0x100,
                           priv="RW", unpriv="RW")
        adapter.set_region(region)
        epoch = adapter.epoch
        assert adapter.allows(0x20000010, 4, False, True)
        assert adapter._decisions  # verdict memoised
        adapter.clear_region(2)
        assert adapter.epoch == epoch + 1
        assert not adapter._decisions
        assert not adapter.allows(0x20000010, 4, False, True)

    def test_snapshot_restore_roundtrip(self):
        adapter = PmpProtection()
        adapter.enabled = True
        region = MPURegion(number=4, base=0x20000000, size=0x100,
                           priv="RW", unpriv="RO")
        adapter.set_region(region)
        saved = adapter.snapshot()
        adapter.load_configuration([])
        assert not adapter.allows(0x20000010, 4, False, False)
        adapter.restore(saved)
        assert adapter.allows(0x20000010, 4, False, False)
        assert not adapter.allows(0x20000010, 4, False, True)


sizes = st.sampled_from([32 << i for i in range(16)])
addresses = st.integers(min_value=0, max_value=0x3FFFFFFF)


@st.composite
def mpu_regions(draw):
    size = draw(sizes)
    return MPURegion(
        number=draw(st.integers(0, 7)),
        base=align_base(draw(addresses), size),
        size=size,
        priv="RW",
        unpriv=draw(st.sampled_from(["NA", "RO", "RW"])),
        subregion_disable=draw(st.integers(0, 255)),
        enabled=draw(st.booleans()),
    )


@given(st.lists(mpu_regions(), max_size=4,
                unique_by=lambda r: r.number),
       addresses, st.booleans())
@settings(max_examples=200, deadline=None)
def test_pmp_adapter_equivalent_to_mpu_for_unprivileged(region_list,
                                                        address, write):
    """The §7 port property: for any region set the monitor could load,
    the PMP backend makes the same unprivileged decisions as the MPU."""
    mpu = MPU(enabled=True, privdefena=True)
    adapter = PmpProtection()
    try:
        for region in region_list:
            mpu.set_region(region)
            adapter.set_region(region)
    except ValueError:
        return  # exceeded the PMP entry budget: explicitly reported
    adapter.enabled = True
    assert adapter.allows(address, 4, False, write) == mpu.allows(
        address, 4, False, write)


class TestEndToEnd:
    def test_pinlock_runs_under_opec_on_pmp(self):
        """OPEC-Monitor unchanged, protection swapped for PMP."""
        from repro import build_opec, run_image
        from repro.apps import pinlock
        from repro.hw import SecurityAbort

        app = pinlock.build(rounds=2)
        artifacts = build_opec(app.module, app.board, app.specs)

        def setup(machine):
            use_pmp(machine)
            app.setup(machine)

        result = run_image(artifacts.image, setup=setup,
                           max_instructions=app.max_instructions)
        app.verify_run(result.machine, result.halt_code)
        assert isinstance(result.machine.mpu, PmpProtection)

    def test_isolation_still_enforced_on_pmp(self):
        import repro.ir as ir
        from repro import build_opec, run_image
        from repro.hw import SecurityAbort, stm32f4_discovery
        from tests.conftest import MINI_SPECS, build_mini_module

        probe = build_opec(build_mini_module(), stm32f4_discovery(),
                           MINI_SPECS)
        secret = probe.module.get_global("secret")
        leaked = probe.image.global_address(secret)

        module = build_mini_module()
        victim = module.get_function("task_b")
        block = victim.blocks[0]
        ret = block.instructions.pop()
        b = ir.IRBuilder(victim, block)
        b.store(0xBAD, b.inttoptr(leaked, ir.I32))
        block.instructions.append(ret)
        artifacts = build_opec(module, stm32f4_discovery(), MINI_SPECS)
        with pytest.raises(SecurityAbort):
            run_image(artifacts.image, setup=lambda m: use_pmp(m))

"""Unit tests for the Andersen points-to analysis."""

import repro.ir as ir
from repro.analysis import run_andersen
from repro.ir import I32, VOID, FunctionType, ptr


def test_alloca_points_to_its_site():
    module = ir.Module("m")
    _f, b = ir.define(module, "f", VOID, [])
    slot = b.alloca(I32)
    b.ret_void()
    result = run_andersen(module)
    assert ("alloca", slot) in result.points_to(slot)


def test_global_address_flows_through_casts_and_geps():
    module = ir.Module("m")
    g = module.add_global("g", ir.array(I32, 4))
    _f, b = ir.define(module, "f", VOID, [])
    p = b.gep(g, 0, 2)
    q = b.bitcast(p, ptr(I32))
    b.store(1, q)
    b.ret_void()
    result = run_andersen(module)
    assert g in result.pointed_globals(q)


def test_store_load_through_pointer_slot():
    """*slot = &g; x = *slot; *x = ... → x may point to g."""
    module = ir.Module("m")
    g = module.add_global("g", I32)
    _f, b = ir.define(module, "f", VOID, [])
    slot = b.alloca(ptr(I32))
    b.store(g, slot)
    loaded = b.load(slot)
    b.store(5, loaded)
    b.ret_void()
    result = run_andersen(module)
    assert g in result.pointed_globals(loaded)


def test_local_targets_filtered_from_pointed_globals():
    module = ir.Module("m")
    _f, b = ir.define(module, "f", VOID, [])
    local = b.alloca(I32)
    p = b.bitcast(local, ptr(I32))
    b.store(1, p)
    b.ret_void()
    result = run_andersen(module)
    assert result.pointed_globals(p) == set()
    assert ("alloca", local) in result.points_to(p)


def test_interprocedural_param_flow():
    module = ir.Module("m")
    g = module.add_global("g", I32)
    callee, cb = ir.define(module, "callee", VOID, [ptr(I32)])
    pointer = callee.params[0]
    cb.store(1, pointer)
    cb.ret_void()
    _f, b = ir.define(module, "f", VOID, [])
    b.call(callee, g)
    b.ret_void()
    result = run_andersen(module)
    assert g in result.pointed_globals(pointer)


def test_return_value_flow():
    module = ir.Module("m")
    g = module.add_global("g", I32)
    getter, gb = ir.define(module, "get", ptr(I32), [])
    gb.ret(g)
    _f, b = ir.define(module, "f", VOID, [])
    p = b.call(getter)
    b.store(2, p)
    b.ret_void()
    result = run_andersen(module)
    assert g in result.pointed_globals(p)


def test_icall_resolved_via_function_pointer_global():
    module = ir.Module("m")
    cb_slot = module.add_global("cb", ptr(ir.I8))
    handler, hb = ir.define(module, "handler", VOID, [I32])
    hb.ret_void()
    setup, sb = ir.define(module, "setup", VOID, [])
    sb.store(sb.inttoptr(sb.ptrtoint(handler), ir.I8), cb_slot)
    sb.ret_void()
    caller, crb = ir.define(module, "caller", VOID, [])
    target = crb.load(cb_slot)
    icall = crb.icall(crb.ptrtoint(target), FunctionType(VOID, [I32]), 1)
    crb.ret_void()
    result = run_andersen(module)
    assert result.icall_targets(icall) == {handler}
    assert result.resolves(icall)


def test_icall_arity_mismatch_rejected():
    module = ir.Module("m")
    cb_slot = module.add_global("cb", ptr(ir.I8))
    wrong, wb = ir.define(module, "wrong", VOID, [I32, I32, I32])
    wb.ret_void()
    setup, sb = ir.define(module, "setup", VOID, [])
    sb.store(sb.inttoptr(sb.ptrtoint(wrong), ir.I8), cb_slot)
    sb.ret_void()
    caller, crb = ir.define(module, "caller", VOID, [])
    target = crb.load(cb_slot)
    icall = crb.icall(crb.ptrtoint(target), FunctionType(VOID, [I32]), 1)
    crb.ret_void()
    result = run_andersen(module)
    assert not result.resolves(icall)


def test_icall_args_flow_into_target_params():
    module = ir.Module("m")
    g = module.add_global("g", I32)
    cb_slot = module.add_global("cb", ptr(ir.I8))
    handler, hb = ir.define(module, "handler", VOID, [ptr(I32)])
    hb.store(1, handler.params[0])
    hb.ret_void()
    setup, sb = ir.define(module, "setup", VOID, [])
    sb.store(sb.inttoptr(sb.ptrtoint(handler), ir.I8), cb_slot)
    sb.ret_void()
    caller, crb = ir.define(module, "caller", VOID, [])
    target = crb.load(cb_slot)
    crb.icall(crb.ptrtoint(target), FunctionType(VOID, [ptr(I32)]), g)
    crb.ret_void()
    result = run_andersen(module)
    assert g in result.pointed_globals(handler.params[0])


def test_select_merges_both_sides():
    module = ir.Module("m")
    g1 = module.add_global("g1", I32)
    g2 = module.add_global("g2", I32)
    _f, b = ir.define(module, "f", VOID, [])
    chosen = b.select(b.icmp("eq", 1, 1), g1, g2)
    b.store(0, chosen)
    b.ret_void()
    result = run_andersen(module)
    assert result.pointed_globals(chosen) == {g1, g2}


def test_solver_reports_statistics():
    module = ir.Module("m")
    _f, b = ir.define(module, "f", VOID, [])
    b.ret_void()
    result = run_andersen(module)
    assert result.solve_time >= 0.0
    assert result.iterations >= 0

"""Batched simulation: N machines multiplexed through one process.

Sweeps (backend comparisons, parameter scans, differential fuzzing)
spend most of their wall-clock re-running the same firmware under
slightly different stimuli.  One process per run pays the interpreter
warm-up, image build, and block compilation N times; the batch runner
pays them once:

* **Shared immutable images.**  Lanes may share one image object
  (typically served by the content-addressed artifact cache): images
  are read-only after linking, and every machine initialises its own
  memory from it.  Compiled block closures live on the shared IR
  (``block._compiled``) and are image- and machine-independent by
  construction, so lane 0's compilation warms every other lane.

* **Block-granular round-robin.**  Each scheduling quantum is one
  compiled-block entry (or one reference step on fallback paths) via
  :meth:`~repro.interp.interpreter.Interpreter.advance`.  Lanes are
  fully isolated — separate machines, monitors, recorders — so the
  interleaving cannot change any lane's simulated outcome; a batched
  lane's cycles, stats, and halt code are bit-identical to a solo run.

* **Fault isolation.**  A lane that dies — on a terminal
  :class:`~repro.hw.exceptions.MachineError` *or* on any other
  exception escaping its interpreter, hooks, or device models —
  records the error on its lane and the rest of the fleet keeps
  running.  Non-``MachineError`` failures are wrapped in
  :class:`LaneFailure` (carrying the lane name and the original
  exception as ``__cause__``) so a campaign-scale sweep never loses
  N-1 finished lanes to one buggy stimulus.

``REPRO_BATCH`` supplies a default lane count for harnesses
(``repro bench batch``); like the other knobs it validates loudly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..hw.exceptions import MachineError
from ..hw.machine import Machine
from ..obs.metrics import MetricsRegistry
from .hooks import RuntimeHooks
from .interpreter import Interpreter

DEFAULT_LANES = 8


class LaneFailure(MachineError):
    """A lane died on something other than a simulated-machine fault.

    Raising hooks, buggy device models, and generator defects surface
    here instead of killing the whole fleet; the original exception
    rides along as ``__cause__``/``original``.
    """

    def __init__(self, lane_name: str, original: BaseException):
        super().__init__(
            f"lane {lane_name!r} failed: "
            f"{type(original).__name__}: {original}")
        self.lane_name = lane_name
        self.original = original
        self.__cause__ = original


def batch_lanes(default: int = DEFAULT_LANES) -> int:
    """Lane count requested via ``REPRO_BATCH`` (default ``default``).

    Misspellings raise instead of silently running a different sweep
    width under a benchmark — and a non-numeric value reports itself
    as such instead of masquerading as a lane-count range error.
    """
    raw = os.environ.get("REPRO_BATCH", "").strip()
    if raw == "":
        return default
    try:
        lanes = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_BATCH={raw!r} is not an integer"
        ) from None
    if lanes < 1:
        raise ValueError(
            f"REPRO_BATCH={raw!r} is not a positive lane count"
        )
    return lanes


@dataclass
class BatchLane:
    """One simulated machine in the fleet."""

    name: str
    machine: Machine
    interpreter: Interpreter
    hooks: RuntimeHooks
    halt_code: Optional[int] = None
    error: Optional[MachineError] = None
    quanta: int = 0

    @property
    def finished(self) -> bool:
        return self.halt_code is not None or self.error is not None

    @property
    def cycles(self) -> int:
        return self.machine.cycles


@dataclass
class BatchResult:
    """Fleet outcome: per-lane results plus aggregate counters."""

    lanes: list[BatchLane]
    # Aggregated interpreter compile metrics (per-lane registries
    # merged; order-independent, so deterministic).
    compile_metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def failed(self) -> list[BatchLane]:
        return [lane for lane in self.lanes if lane.error is not None]


class BatchRunner:
    """Round-robin executor for a fleet of simulated machines.

    Usage::

        runner = BatchRunner()
        for stimulus in stimuli:
            runner.add(image, setup=stimulus, name=...)
        result = runner.run()

    ``add`` mirrors :func:`repro.pipeline.run_image`'s machine
    construction (same backend resolution, same automatic monitor
    selection) so a batched lane runs under exactly the runtime a solo
    ``run_image`` would.
    """

    def __init__(self, *, block_compile: Optional[bool] = None,
                 trace_fuse: Optional[bool] = None):
        self.block_compile = block_compile
        self.trace_fuse = trace_fuse
        self.lanes: list[BatchLane] = []

    def add(
        self,
        image,
        *,
        name: Optional[str] = None,
        hooks: Optional[RuntimeHooks] = None,
        setup: Optional[Callable[[Machine], None]] = None,
        entry: str = "main",
        args: Sequence[int] = (),
        max_instructions: int = 100_000_000,
        backend=None,
        recorder=None,
    ) -> BatchLane:
        """Stage one lane: fresh machine, loaded image, entry pushed."""
        # Deferred import: pipeline imports this package's interpreter.
        from ..pipeline import default_hooks, prepare_machine

        machine = prepare_machine(image, setup=setup, recorder=recorder,
                                  backend=backend)
        if hooks is None:
            hooks = default_hooks(machine, image)
        interp = Interpreter(machine, image, hooks,
                             max_instructions=max_instructions,
                             block_compile=self.block_compile,
                             trace_fuse=self.trace_fuse)
        interp.start(entry, tuple(args))
        lane = BatchLane(
            name=name or f"lane{len(self.lanes)}",
            machine=machine, interpreter=interp, hooks=interp.hooks,
        )
        self.lanes.append(lane)
        return lane

    def run(self) -> BatchResult:
        """Drive every lane to halt (or terminal fault), round-robin."""
        active = list(self.lanes)
        while active:
            still = []
            for lane in active:
                try:
                    running = lane.interpreter.advance()
                except MachineError as error:
                    lane.error = error
                    continue
                except Exception as error:  # noqa: BLE001 — isolation
                    lane.error = LaneFailure(lane.name, error)
                    continue
                lane.quanta += 1
                if running:
                    still.append(lane)
                else:
                    lane.halt_code = lane.interpreter.halt_code
            active = still
        result = BatchResult(lanes=list(self.lanes))
        for lane in self.lanes:
            result.compile_metrics.merge(lane.interpreter.compile_metrics)
        return result


__all__ = [
    "DEFAULT_LANES",
    "BatchLane",
    "BatchResult",
    "BatchRunner",
    "LaneFailure",
    "batch_lanes",
]

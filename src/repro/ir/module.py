"""The IR module: the unit the OPEC compiler operates on.

A module is a whole statically-linked firmware: every function and
global variable of the application, its libraries, and the HAL — the
bare-metal setting of the paper (§2.1, "statically linked binary").
"""

from __future__ import annotations

from typing import Iterator

from .function import Function
from .types import FunctionType, StructType, Type
from .values import GlobalVariable, Initializer


class Module:
    """A collection of functions, globals, and named struct types."""

    def __init__(self, name: str):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}
        self.structs: dict[str, StructType] = {}

    # -- functions ---------------------------------------------------

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def declare_function(self, name: str, ftype: FunctionType, **attrs) -> Function:
        return self.add_function(Function(name, ftype, **attrs))

    def get_function(self, name: str) -> Function:
        return self.functions[name]

    def iter_functions(self) -> Iterator[Function]:
        return iter(self.functions.values())

    # -- globals -----------------------------------------------------

    def add_global(
        self,
        name: str,
        value_type: Type,
        initializer: Initializer = None,
        **attrs,
    ) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global {name!r}")
        gvar = GlobalVariable(name, value_type, initializer, **attrs)
        self.globals[name] = gvar
        return gvar

    def get_global(self, name: str) -> GlobalVariable:
        return self.globals[name]

    def iter_globals(self) -> Iterator[GlobalVariable]:
        return iter(self.globals.values())

    # -- structs -----------------------------------------------------

    def add_struct(self, struct: StructType) -> StructType:
        self.structs[struct.name] = struct
        return struct

    def struct(self, name: str, fields) -> StructType:
        return self.add_struct(StructType(name, fields))

    # -- queries used by evaluation ----------------------------------

    def writable_globals(self) -> list[GlobalVariable]:
        """All globals that live in SRAM (non-const)."""
        return [g for g in self.globals.values() if not g.is_const]

    def total_global_bytes(self) -> int:
        return sum(g.size for g in self.writable_globals())

    def defined_functions(self) -> list[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )

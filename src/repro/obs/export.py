"""Exporters for the flight-recorder event stream.

* :func:`chrome_trace` — Chrome trace-event JSON (the ``traceEvents``
  array format), loadable directly in Perfetto / ``chrome://tracing``.
  Begin/end pairs on the same track nest, so an operation switch shows
  as a span with its sanitise/sync/stack/MPU phases inside it.
* :func:`event_tsv` — one row per event, for ``results/`` and diffing.
* :func:`trace_summary` — human one-liner for the CLI.

All serialisation is canonical (sorted keys, fixed separators, no
floats introduced) so a deterministic event stream exports to
byte-identical files.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from .events import DOMAIN_SIM, Event, INSTANT
from .recorder import FlightRecorder

#: Perfetto track ids per domain: simulated events on one track so
#: B/E spans nest, host-side (build/cache) events on their own.
_TRACK_IDS = {"sim": 0, "host": 1}
_TRACK_NAMES = {0: "firmware (DWT cycles)", 1: "host pipeline"}


def _selected(recorder: FlightRecorder,
              domain: Optional[str]) -> list[Event]:
    return recorder.events(domain)


def chrome_trace(recorder: FlightRecorder,
                 domain: Optional[str] = DOMAIN_SIM) -> str:
    """Render the buffered events as Chrome trace-event JSON.

    ``domain`` selects which stream to export — the default ``"sim"``
    is the deterministic one; pass ``None`` to include host-side build
    and cache events (diagnostic, varies with cache temperature).
    """
    trace_events: list[dict] = []
    tracks_used: set[int] = set()
    for event in _selected(recorder, domain):
        tid = _TRACK_IDS.get(event.domain, 1)
        tracks_used.add(tid)
        entry: dict = {
            "name": event.name,
            "cat": event.kind,
            "ph": event.ph,
            "ts": event.ts,
            "pid": 0,
            "tid": tid,
        }
        if event.ph == INSTANT:
            entry["s"] = "t"  # thread-scoped instant
        if event.args:
            entry["args"] = event.args
        trace_events.append(entry)
    # Name the tracks so Perfetto labels them meaningfully.
    metadata = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
         "args": {"name": _TRACK_NAMES[tid]}}
        for tid in sorted(tracks_used)
    ]
    document = {
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "dwt-cycles",
            "dropped": recorder.dropped,
            "recorded": len(trace_events),
        },
        "traceEvents": metadata + trace_events,
    }
    return json.dumps(document, sort_keys=True,
                      separators=(",", ":")) + "\n"


def event_tsv(recorder: FlightRecorder,
              domain: Optional[str] = DOMAIN_SIM) -> str:
    """One tab-separated row per event (args as canonical JSON)."""
    lines = ["seq\tts\tph\tkind\tname\tdomain\targs"]
    for event in _selected(recorder, domain):
        args = "" if not event.args else json.dumps(
            event.args, sort_keys=True, separators=(",", ":"))
        lines.append(f"{event.seq}\t{event.ts}\t{event.ph}\t{event.kind}"
                     f"\t{event.name}\t{event.domain}\t{args}")
    return "\n".join(lines) + "\n"


def trace_summary(recorder: FlightRecorder) -> str:
    """A one-line account of what the recorder holds."""
    sim = len(recorder.events(DOMAIN_SIM))
    total = len(recorder)
    return (f"{recorder.seq} events emitted, {total} buffered "
            f"({sim} sim / {total - sim} host), "
            f"{recorder.dropped} dropped, "
            f"capacity {recorder.capacity}")


def span_pairs(events: Iterable[Event]) -> list[tuple[Event, Event]]:
    """Match begin/end events into (begin, end) pairs (same kind,
    properly nested).  Unclosed spans are dropped — a crash can
    legitimately leave the innermost spans open."""
    stack: list[Event] = []
    pairs: list[tuple[Event, Event]] = []
    for event in events:
        if event.ph == "B":
            stack.append(event)
        elif event.ph == "E":
            while stack:
                begin = stack.pop()
                if begin.kind == event.kind:
                    pairs.append((begin, event))
                    break
    return pairs


__all__ = ["chrome_trace", "event_tsv", "span_pairs", "trace_summary"]

"""The operation policy: the compiler's output for the monitor (§4.3).

Classifies every writable global as *internal* (one accessing
operation — placed directly in that operation's data section) or
*external* (two or more — the original lives in the public data
section and every accessing operation holds a shadow copy, §4.4).
Globals touched by no operation stay public (startup/monitor data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..ir.module import Module
from ..ir.values import GlobalVariable
from .operations import Operation


@dataclass
class VariablePlacement:
    """Classification of one writable global."""

    variable: GlobalVariable
    accessors: tuple[Operation, ...]

    @property
    def is_internal(self) -> bool:
        return len(self.accessors) == 1

    @property
    def is_external(self) -> bool:
        return len(self.accessors) >= 2

    @property
    def is_public_only(self) -> bool:
        return len(self.accessors) == 0


@dataclass
class SystemPolicy:
    """Everything the image generator and monitor need per §4.3–§4.4."""

    module: Module
    operations: list[Operation]
    placements: dict[GlobalVariable, VariablePlacement] = field(
        default_factory=dict
    )

    # -- variable classification ----------------------------------------

    def internal_vars(self, operation: Operation) -> list[GlobalVariable]:
        return [
            p.variable
            for p in self.placements.values()
            if p.is_internal and p.accessors[0] is operation
        ]

    def external_vars(self, operation: Operation) -> list[GlobalVariable]:
        return [
            p.variable
            for p in self.placements.values()
            if p.is_external and operation in p.accessors
        ]

    def all_external_vars(self) -> list[GlobalVariable]:
        return [p.variable for p in self.placements.values() if p.is_external]

    def public_only_vars(self) -> list[GlobalVariable]:
        return [p.variable for p in self.placements.values() if p.is_public_only]

    def accessors_of(self, gvar: GlobalVariable) -> tuple[Operation, ...]:
        placement = self.placements.get(gvar)
        return placement.accessors if placement else ()

    # -- lookups -----------------------------------------------------------

    def operation_by_entry(self, name: str) -> Operation:
        for operation in self.operations:
            if operation.entry.name == name:
                return operation
        raise KeyError(f"no operation with entry {name!r}")

    @property
    def default_operation(self) -> Operation:
        for operation in self.operations:
            if operation.is_default:
                return operation
        raise ValueError("policy has no default operation")

    def section_vars(self, operation: Operation) -> list[GlobalVariable]:
        """Contents of an operation's data section: its internal
        variables plus shadows of its external variables (§4.4)."""
        return self.internal_vars(operation) + self.external_vars(operation)

    def section_size(self, operation: Operation) -> int:
        return sum(_padded(g.size) for g in self.section_vars(operation))


def _padded(size: int) -> int:
    """Word-align each variable inside a section."""
    return max(4, (size + 3) // 4 * 4)


def build_policy(module: Module, operations: Sequence[Operation]) -> SystemPolicy:
    """Classify globals against the operations' resource dependencies."""
    policy = SystemPolicy(module=module, operations=list(operations))
    for gvar in module.writable_globals():
        accessors = tuple(
            op for op in operations if gvar in op.resources.globals_all
        )
        policy.placements[gvar] = VariablePlacement(
            variable=gvar, accessors=accessors
        )
    return policy

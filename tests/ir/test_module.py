"""Unit tests for the Module container."""

import pytest

import repro.ir as ir
from repro.ir import I32, VOID, FunctionType


def test_duplicate_function_rejected():
    module = ir.Module("m")
    ir.define(module, "f", VOID, [])
    with pytest.raises(ValueError, match="duplicate function"):
        ir.define(module, "f", VOID, [])


def test_duplicate_global_rejected():
    module = ir.Module("m")
    module.add_global("g", I32)
    with pytest.raises(ValueError, match="duplicate global"):
        module.add_global("g", I32)


def test_declare_function_has_no_body():
    module = ir.Module("m")
    ext = module.declare_function("ext", FunctionType(VOID, [I32]))
    assert ext.is_declaration
    assert ext not in module.defined_functions()


def test_writable_globals_excludes_const():
    module = ir.Module("m")
    module.add_global("w", I32, 1)
    module.add_global("k", I32, 2, is_const=True)
    assert [g.name for g in module.writable_globals()] == ["w"]
    assert module.total_global_bytes() == 4


def test_struct_registry():
    module = ir.Module("m")
    pair = module.struct("pair", [("a", I32), ("b", I32)])
    assert module.structs["pair"] is pair


def test_irq_handler_flag_via_irq_number():
    module = ir.Module("m")
    handler, b = ir.define(module, "H", VOID, [], irq_number=15)
    b.ret_void()
    assert handler.is_interrupt_handler
    assert handler.irq_number == 15


def test_instruction_count():
    module = ir.Module("m")
    func, b = ir.define(module, "f", I32, [])
    b.halt(b.add(1, 2))
    assert func.instruction_count() == 2

"""Animation: SD-card picture slideshow with DMA2D blitting (§6).

"Reads pictures from an SD card and displays those pictures on an LCD
screen to demonstrate a moving butterfly" — 11 frames, each loaded
through the FAT filesystem, blitted to the framebuffer by the DMA2D
engine, and presented by the LTDC.  Eight operations as in Table 1.
"""

from __future__ import annotations

from ..hw.board import stm32479i_eval
from ..hw.machine import Machine
from ..hw.peripherals import DMA2D, GPIO, LTDC, RCC, SDCard
from ..ir import I8, I32, Module, VOID, array, define
from ..partition.operations import OperationSpec
from .base import Application
from .hal.display import add_dma2d_hal, add_lcd_hal
from .hal.libc import add_libc
from .hal.storage import add_sd_hal
from .hal.system import add_system_hal
from .lib.fatfs import add_fatfs, make_disk_image

PICTURE_COUNT = 11
PICTURE_BYTES = 1024  # one butterfly frame (words of RGB565 pairs)


def picture_bytes(index: int) -> bytes:
    """Host-side synthetic butterfly frame: a recognisable ramp."""
    return bytes((index * 37 + i) & 0xFF for i in range(PICTURE_BYTES))


def picture_name(index: int) -> bytes:
    return f"PIC{index:02d}   ".encode()[:8]


def build(pictures: int = PICTURE_COUNT) -> Application:
    board = stm32479i_eval()
    module = Module("animation")

    libc = add_libc(module)
    system = add_system_hal(module, board)
    sd = add_sd_hal(module, board)
    lcd = add_lcd_hal(module, board)
    dma2d = add_dma2d_hal(module, board)
    fatfs = add_fatfs(module, sd, libc)

    sd_fatfs = module.add_global("SDFatFs", fatfs.fatfs_t, source_file="main.c")
    pic_file = module.add_global("PicFile", fatfs.fil_t, source_file="main.c")
    pic_buffer = module.add_global("pic_buffer", array(I8, PICTURE_BYTES),
                                   source_file="main.c")
    framebuffer = module.add_global("framebuffer",
                                    array(I8, PICTURE_BYTES),
                                    source_file="main.c")
    pic_names = module.add_global(
        "pic_names", array(I8, 8 * PICTURE_COUNT),
        list(b"".join(picture_name(i) for i in range(PICTURE_COUNT))),
        is_const=True, source_file="main.c",
    )
    frames_done = module.add_global("frames_done", I32, 0,
                                    source_file="main.c")
    sd_ready = module.add_global("sd_ready", I32, 0, source_file="sd_task.c")
    lcd_ready = module.add_global("lcd_ready", I32, 0,
                                  source_file="lcd_task.c")
    mount_ok = module.add_global("mount_ok", I32, 0, source_file="fs_task.c")

    # -- the seven task entries -----------------------------------------
    sd_init_task, b = define(module, "Sd_Init_Task", VOID, [],
                             source_file="sd_task.c")
    b.call(system.rcc_enable_apb2, 1 << 11)
    b.call(sd.init)
    b.store(1, sd_ready)
    b.ret_void()

    lcd_init_task, b = define(module, "Lcd_Init_Task", VOID, [],
                              source_file="lcd_task.c")
    b.call(system.rcc_enable_apb2, 1 << 26)
    fb_address = b.ptrtoint(b.gep(framebuffer, 0, 0))
    b.call(lcd.init, fb_address)
    b.store(1, lcd_ready)
    b.ret_void()

    mount_task, b = define(module, "Mount_Task", VOID, [],
                           source_file="fs_task.c")
    status = b.call(fatfs.f_mount, sd_fatfs)
    b.store(b.select(b.icmp("eq", status, 0), 1, 0), mount_ok)
    b.ret_void()

    load_task, b = define(module, "Load_Task", VOID, [I32],
                          source_file="load.c")
    (index,) = load_task.params
    name = b.gep(pic_names, 0, b.mul(index, 8))
    b.call(fatfs.f_open, pic_file, sd_fatfs, name, 0)
    b.call(fatfs.f_read, pic_file, sd_fatfs, b.gep(pic_buffer, 0, 0),
           PICTURE_BYTES)
    b.call(fatfs.f_close, pic_file, sd_fatfs)
    b.ret_void()

    blit_task, b = define(module, "Blit_Task", VOID, [],
                          source_file="blit.c")
    src = b.ptrtoint(b.gep(pic_buffer, 0, 0))
    dst = b.ptrtoint(b.gep(framebuffer, 0, 0))
    b.call(dma2d.copy, src, dst, PICTURE_BYTES)
    b.ret_void()

    show_task, b = define(module, "Show_Task", VOID, [],
                          source_file="show.c")
    b.call(lcd.reload)
    b.call(system.delay_loop, 64)  # inter-frame pause
    b.store(b.add(b.load(frames_done), 1), frames_done)
    b.ret_void()

    cleanup_task, b = define(module, "Cleanup_Task", VOID, [],
                             source_file="show.c")
    b.call(libc.memset, b.gep(pic_buffer, 0, 0), 0, PICTURE_BYTES)
    b.ret_void()

    main, b = define(module, "main", I32, [], source_file="main.c")
    b.call(system.system_clock_config)
    b.call(system.rcc_enable_gpio, 0xF)
    b.call(sd_init_task)
    b.call(lcd_init_task)
    b.call(mount_task)
    # Status checks before entering the slideshow (real demo shape;
    # never fail in the model).
    ready = b.and_(b.load(sd_ready),
                   b.and_(b.load(lcd_ready), b.load(mount_ok)))
    with b.if_then(b.icmp("eq", ready, 0)):
        b.halt(0xDEAD)
    with b.for_range(0, pictures) as load_i:
        i = load_i()
        b.call(load_task, i)
        b.call(blit_task)
        b.call(show_task)
    b.call(cleanup_task)
    b.halt(b.load(frames_done))

    specs = [
        OperationSpec("Sd_Init_Task"),
        OperationSpec("Lcd_Init_Task"),
        OperationSpec("Mount_Task"),
        OperationSpec("Load_Task"),
        OperationSpec("Blit_Task"),
        OperationSpec("Show_Task"),
        OperationSpec("Cleanup_Task"),
    ]

    def setup(machine: Machine) -> None:
        machine.attach_device("RCC", RCC())
        for port in ("GPIOA", "GPIOB", "GPIOC", "GPIOD"):
            machine.attach_device(port, GPIO())
        files = {
            picture_name(i): picture_bytes(i) for i in range(pictures)
        }
        machine.attach_device("SDIO", SDCard(image=make_disk_image(files)))
        machine.attach_device("LTDC", LTDC())
        machine.attach_device("DMA2D", DMA2D())

    def check(machine: Machine, halt_code: int) -> None:
        assert halt_code == pictures, f"showed {halt_code}/{pictures}"
        ltdc = machine.device("LTDC")
        assert ltdc.frames_shown == pictures
        # The framebuffer must hold the final picture (DMA2D landed it).
        final = ltdc.snapshot(PICTURE_BYTES)
        assert final == picture_bytes(pictures - 1)
        assert machine.device("DMA2D").transfers == pictures

    return Application(
        name="Animation",
        module=module,
        board=board,
        specs=specs,
        setup=setup,
        check=check,
        max_instructions=200_000_000,
        description="11-frame butterfly slideshow from the SD card.",
    )

"""Ethernet MAC HAL authored in IR ("stm32_hal_eth.c").

Word-streaming receive/transmit against the MAC's register protocol;
the TCP-Echo network stack (:mod:`repro.apps.lib.netstack`) sits on
top of these.
"""

from __future__ import annotations

from types import SimpleNamespace

from ...hw.board import Board
from ...ir import I32, Module, VOID, define, ptr

MACCR = 0x00
RX_STAT = 0x10
RX_LEN = 0x14
RX_DATA = 0x18
RX_RELEASE = 0x1C
TX_DATA = 0x20
TX_LEN = 0x24
TX_GO = 0x28


def add_eth_hal(module: Module, board: Board) -> SimpleNamespace:
    base = board.peripheral("ETH").base
    p32 = ptr(I32)

    heth_errors = module.add_global("eth_rx_errors", I32, 0,
                                    source_file="stm32_hal_eth.c")

    # DMA-error recovery: never taken in the model, but part of every
    # receive path's static dependency (untaken-branch over-privilege).
    eth_rx_abort, b = define(module, "ETH_RxAbort", VOID, [],
                             source_file="stm32_hal_eth.c")
    b.store(b.add(b.load(heth_errors), 1), heth_errors)
    b.store(0, b.mmio(base + MACCR))  # stop the MAC
    b.halt(0xEC)

    eth_init, b = define(module, "HAL_ETH_Init", VOID, [],
                         source_file="stm32_hal_eth.c")
    b.store(0x0000C800, b.mmio(base + MACCR))  # FES | DM | RE/TE
    b.ret_void()

    frames_waiting, b = define(module, "ETH_Frames_Waiting", I32, [],
                               source_file="stm32_hal_eth.c")
    b.ret(b.load(b.mmio(base + RX_STAT)))

    # Receive the head frame into `buffer`; returns its byte length.
    rx_frame, b = define(module, "HAL_ETH_RxFrame", I32, [p32, I32],
                         source_file="stm32_hal_eth.c")
    buffer, max_words = rx_frame.params
    length = b.load(b.mmio(base + RX_LEN), name="len")
    with b.if_then(b.icmp("eq", length, 0)):
        b.call(eth_rx_abort)  # descriptor error: unreachable here
    words = b.udiv(b.add(length, 3), 4)
    clamped = b.select(b.icmp("ult", words, max_words), words, max_words)
    with b.for_range(0, clamped) as load_i:
        i = load_i()
        word = b.load(b.mmio(base + RX_DATA))
        b.store(word, b.gep(buffer, i))
    b.store(1, b.mmio(base + RX_RELEASE))
    # Report at most what fits the caller's buffer (oversized frames
    # are truncated, as a descriptor-ring driver would).
    capacity = b.mul(max_words, 4)
    b.ret(b.select(b.icmp("ugt", length, capacity), capacity, length))

    tx_frame, b = define(module, "HAL_ETH_TxFrame", VOID, [p32, I32],
                         source_file="stm32_hal_eth.c")
    buffer, length = tx_frame.params
    words = b.udiv(b.add(length, 3), 4)
    with b.for_range(0, words) as load_i:
        i = load_i()
        b.store(b.load(b.gep(buffer, i)), b.mmio(base + TX_DATA))
    b.store(length, b.mmio(base + TX_LEN))
    b.store(1, b.mmio(base + TX_GO))
    b.ret_void()

    return SimpleNamespace(
        init=eth_init, frames_waiting=frames_waiting,
        rx_frame=rx_frame, tx_frame=tx_frame,
    )

"""Tests for ACES' stack micro-emulator (§5.2)."""

import pytest

import repro.ir as ir
from repro import build_vanilla, run_image
from repro.baselines import build_aces
from repro.hw import stm32f4_discovery
from repro.ir import I8, I32, VOID, array, ptr


def _stack_crossing_module():
    """main (main.c) passes a stack buffer to fill() (lib.c): the
    cross-compartment callee writes the caller's frame."""
    module = ir.Module("xstack")
    fill, b = ir.define(module, "fill", VOID, [ptr(I8), I32],
                        source_file="lib.c")
    buf, count = fill.params
    with b.for_range(0, count) as load_i:
        b.store(b.const(ord("Z"), I8), b.gep(buf, load_i()))
    b.ret_void()

    _m, b = ir.define(module, "main", I32, [], source_file="main.c")
    local = b.alloca(array(I8, 12))
    b.call(fill, b.gep(local, 0, 0), 12)
    total = b.alloca(I32)
    b.store(0, total)
    with b.for_range(0, 12) as load_i:
        byte = b.zext(b.load(b.gep(local, 0, load_i())))
        b.store(b.add(b.load(total), byte), total)
    b.halt(b.load(total))
    return module


class TestMicroEmulator:
    def test_cross_compartment_stack_write_emulated(self, board):
        module = _stack_crossing_module()
        vanilla = run_image(build_vanilla(_stack_crossing_module(), board))
        artifacts = build_aces(module, board, "ACES2")
        result = run_image(artifacts.image)
        assert result.halt_code == vanilla.halt_code == 12 * ord("Z")
        # The callee's 12 stores into main's masked frame were emulated
        # (some may land in an enabled sub-region depending on layout).
        assert result.hooks.micro_emulations > 0
        assert result.machine.stats.micro_emulated_accesses == \
            result.hooks.micro_emulations

    def test_emulation_costs_cycles(self, board):
        module = _stack_crossing_module()
        artifacts = build_aces(module, board, "ACES2")
        result = run_image(artifacts.image)
        vanilla = run_image(build_vanilla(_stack_crossing_module(), board))
        per_access_overhead = (result.cycles - vanilla.cycles)
        # At least the emulation cost times the emulated accesses.
        assert per_access_overhead >= 50 * result.hooks.micro_emulations

    def test_non_stack_violation_still_aborts(self, board):
        from repro.hw import SecurityAbort
        from tests.conftest import build_mini_module

        probe = build_aces(build_mini_module(), board, "ACES2")
        secret = probe.module.get_global("secret")
        leaked = probe.image.global_address(secret)
        module = build_mini_module()
        task_b = module.get_function("task_b")
        block = task_b.blocks[0]
        ret = block.instructions.pop()
        b = ir.IRBuilder(task_b, block)
        b.store(0xBAD, b.inttoptr(leaked, I32))
        block.instructions.append(ret)
        artifacts = build_aces(module, board, "ACES2")
        with pytest.raises(SecurityAbort):
            run_image(artifacts.image)

    def test_same_compartment_stack_access_not_emulated(self, board):
        """Accesses to the current frame stay on the fast path."""
        module = ir.Module("own")
        _m, b = ir.define(module, "main", I32, [], source_file="main.c")
        local = b.alloca(I32)
        b.store(77, local)
        b.halt(b.load(local))
        artifacts = build_aces(module, board, "ACES1")
        result = run_image(artifacts.image)
        assert result.halt_code == 77
        assert result.hooks.micro_emulations == 0

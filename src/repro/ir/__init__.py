"""Firmware intermediate representation.

The substrate standing in for LLVM IR: a typed, SSA-lite (alloca-based,
phi-free) representation of a statically-linked bare-metal firmware
image.  OPEC's compiler passes (:mod:`repro.analysis`,
:mod:`repro.partition`, :mod:`repro.image`) analyse and transform it;
the interpreter (:mod:`repro.interp`) executes it on the simulated
machine.
"""

from .types import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
    I1,
    I8,
    I16,
    I32,
    VOID,
    array,
    ptr,
)
from .values import (
    Constant,
    ConstantNull,
    ConstantPointer,
    GlobalVariable,
    Parameter,
    Value,
    encode_initializer,
)
from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    GEP,
    Halt,
    ICall,
    ICmp,
    Instruction,
    Jump,
    Load,
    Ret,
    Select,
    Store,
    SVC,
    Unreachable,
    BINARY_OPS,
    ICMP_PREDICATES,
)
from .function import BasicBlock, Function
from .module import Module
from .builder import IRBuilder, define
from .verifier import VerificationError, verify_module
from .printer import print_function, print_module
from .parser import ParseError, parse_module

__all__ = [
    "ArrayType", "FunctionType", "IntType", "PointerType", "StructType",
    "Type", "VoidType", "I1", "I8", "I16", "I32", "VOID", "array", "ptr",
    "Constant", "ConstantNull", "ConstantPointer", "GlobalVariable",
    "Parameter", "Value", "encode_initializer",
    "Alloca", "BinOp", "Br", "Call", "Cast", "GEP", "Halt", "ICall",
    "ICmp", "Instruction", "Jump", "Load", "Ret", "Select", "Store",
    "SVC", "Unreachable", "BINARY_OPS", "ICMP_PREDICATES",
    "BasicBlock", "Function", "Module", "IRBuilder", "define",
    "VerificationError", "verify_module", "print_function", "print_module",
    "ParseError", "parse_module",
]

"""The PinLock case study (§6.1).

A vulnerability in ``HAL_UART_Receive_IT`` gives the attacker an
arbitrary-write primitive.  The attacker, driving the serial port while
``Lock_Task`` is receiving, overwrites the stored ``KEY`` hash so a
wrong PIN unlocks the lock:

* vanilla build — the attack succeeds (no isolation);
* OPEC build — the write faults: ``KEY``'s shadow is not in
  ``Lock_Task``'s operation data section, and the public copy is
  unprivileged-read-only.
"""

import pytest

from repro import build_opec, build_vanilla, run_image
from repro.apps import pinlock
from repro.apps.hal.crypto import fnv1a_host
from repro.apps.hal.uart import ATTACK_TRIGGER
from repro.hw import SecurityAbort
from repro.hw.peripherals import GPIO, RCC, UART

ATTACK_PIN = b"6666"


def _attack_setup(key_address: int):
    """Host-side stimulus: one legit round, then the exploit."""
    forged_key = fnv1a_host(ATTACK_PIN)

    def setup(machine):
        machine.attach_device("RCC", RCC())
        for port in ("GPIOA", "GPIOB", "GPIOC", "GPIOD"):
            machine.attach_device(port, GPIO())
        uart = machine.attach_device("USART2", UART())
        # Round 1 (Unlock_Task): wrong pin, rejected.
        uart.feed(b"9999")
        # Round 1 (Lock_Task): the exploit rides the receive path —
        # trigger byte, then the arbitrary write (address, value).
        uart.feed(bytes([ATTACK_TRIGGER]))
        uart.feed(key_address.to_bytes(4, "little"))
        uart.feed(forged_key.to_bytes(4, "little"))
        # Round 2 (Unlock_Task): the attacker's PIN.
        uart.feed(ATTACK_PIN)
        uart.feed(b"0000")  # Lock_Task, ends the round

    return setup


def _key_address_vanilla():
    app = pinlock.build(rounds=1, vulnerable=True)
    image = build_vanilla(app.module, app.board)
    return app, image, image.global_address(app.module.get_global("KEY"))


def test_attack_succeeds_on_vanilla():
    app, image, key_address = _key_address_vanilla()
    result = run_image(image, setup=_attack_setup(key_address),
                       max_instructions=app.max_instructions)
    # The wrong PIN unlocked the lock: halt code counts one "success".
    assert result.halt_code == 1
    transcript = result.machine.device("USART2").transmitted()
    assert b"Y" in transcript  # the forged key matched ATTACK_PIN


def test_attack_blocked_by_opec():
    app = pinlock.build(rounds=1, vulnerable=True)
    artifacts = build_opec(app.module, app.board, app.specs)
    key = app.module.get_global("KEY")
    # KEY is shared by Key_Init and Unlock_Task -> external -> the
    # attacker can try the public original or Unlock_Task's shadow.
    public_address = artifacts.image.public_addresses[key]
    with pytest.raises(SecurityAbort, match="outside its policy"):
        run_image(artifacts.image, setup=_attack_setup(public_address),
                  max_instructions=app.max_instructions)


def test_attack_on_unlock_shadow_also_blocked():
    app = pinlock.build(rounds=1, vulnerable=True)
    artifacts = build_opec(app.module, app.board, app.specs)
    key = artifacts.module.get_global("KEY")
    unlock_op = artifacts.policy.operation_by_entry("Unlock_Task")
    shadow_address = artifacts.image.shadow_address(unlock_op, key)
    with pytest.raises(SecurityAbort, match="outside its policy"):
        run_image(artifacts.image, setup=_attack_setup(shadow_address),
                  max_instructions=app.max_instructions)


def test_key_not_in_lock_task_section():
    """The structural reason the attack fails (§6.1): Lock_Task's
    operation data section holds no copy of KEY."""
    app = pinlock.build(rounds=1, vulnerable=True)
    artifacts = build_opec(app.module, app.board, app.specs)
    key = artifacts.module.get_global("KEY")
    lock_op = artifacts.policy.operation_by_entry("Lock_Task")
    assert key not in artifacts.policy.section_vars(lock_op)
    unlock_op = artifacts.policy.operation_by_entry("Unlock_Task")
    assert key in artifacts.policy.section_vars(unlock_op)


def test_benign_run_of_vulnerable_build_still_works():
    app = pinlock.build(rounds=2, vulnerable=True)
    artifacts = build_opec(app.module, app.board, app.specs)
    result = run_image(artifacts.image, setup=app.setup,
                       max_instructions=app.max_instructions)
    app.verify_run(result.machine, result.halt_code)

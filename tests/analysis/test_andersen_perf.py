"""Regression tests for the Andersen solver's cost model.

The seed solver appended nodes to the worklist even when already
pending and re-propagated whole points-to sets per pop, so fan-in-heavy
modules re-scanned hot nodes many times per round.  These tests pin the
difference-propagation + dedup-worklist cost down so a refactor cannot
silently reintroduce the quadratic behaviour.
"""

from __future__ import annotations

import repro.ir as ir
from repro.analysis.andersen import AndersenSolver
from repro.ir import I32, VOID, ptr


def build_fan_in_module(sources: int = 24) -> ir.Module:
    """Many globals stored through one hot pointer slot, then fanned
    back out through many loads — the worst case for a solver that
    re-propagates the hot node's whole set on every pop."""
    module = ir.Module("fanin")
    globals_ = [module.add_global(f"g{i}", I32) for i in range(sources)]
    slot = module.add_global("slot", ptr(I32))
    _f, b = ir.define(module, "f", VOID, [])
    for gvar in globals_:
        b.store(gvar, slot)            # fan-in: every global into slot
    loads = [b.load(slot) for _ in range(sources)]  # fan-out
    for loaded in loads:
        b.store(0, loaded)
    b.ret_void()
    return module


def test_fan_in_iterations_scale_linearly():
    small = AndersenSolver(build_fan_in_module(sources=8)).solve()
    large = AndersenSolver(build_fan_in_module(sources=32)).solve()
    # 4x the sources must cost ~4x the pops, not ~16x: allow generous
    # constant-factor headroom but rule out the quadratic regime.
    assert large.iterations <= 6 * small.iterations


def test_each_object_enters_each_delta_once():
    """The difference-propagation invariant: every object enters a
    node's delta exactly once, so the total propagated-object count
    equals the size of the solved fixpoint (Σ |pts(node)|) — not
    iterations x set width as in the seed solver."""
    solver = AndersenSolver(build_fan_in_module(sources=16))
    result = solver.solve()
    fixpoint_size = sum(len(objs) for objs in solver.pts.values())
    assert result.propagated_objects == fixpoint_size


def test_worklist_dedup_no_empty_delta_pops():
    """Every pop must consume a non-empty delta: a node already pending
    is never enqueued again, so iterations == useful pops."""
    solver = AndersenSolver(build_fan_in_module(sources=16))
    result = solver.solve()
    assert result.iterations > 0
    # Each pop moved at least one object (iterations <= propagated).
    assert result.iterations <= result.propagated_objects


def test_statistics_present_and_consistent():
    result = AndersenSolver(build_fan_in_module(sources=8)).solve()
    assert result.peak_delta >= 1
    counts = result.constraint_counts
    assert set(counts) == {"copy_edges", "load", "store", "icall_sites"}
    assert counts["store"] >= 8
    assert counts["load"] >= 8


def test_real_app_iteration_budget():
    """Lock in the measured ≥2x reduction on the suite's heavyweights
    (seed solver: FatFs-uSD 336 pops, TCP-Echo 273 pops)."""
    from repro.eval.workloads import build_app

    fatfs = AndersenSolver(
        build_app("FatFs-uSD", profile="quick").module).solve()
    tcp = AndersenSolver(
        build_app("TCP-Echo", profile="quick").module).solve()
    assert fatfs.iterations <= 336 // 2 + 10
    assert tcp.iterations <= 273 // 2

"""ACES image generation: layout + MPU templates per compartment.

Differences from the OPEC image that matter for the comparison (§6.4):

* **no shadowing** — every global has exactly one home; shared regions
  are granted to every accessor (partition-time over-privilege);
* **whole-stack access** — one RW region covers the entire stack for
  every compartment (no sub-region masking / relocation);
* **privilege lifting** — compartments that touch core peripherals run
  privileged (Table 2's PAC column);
* **peripheral inflexibility** — one MPU window spans the compartment's
  lowest to highest peripheral (no virtualisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...hw.board import Board
from ...hw.mpu import MIN_REGION_SIZE, MPURegion, align_base, region_size_for
from ...image.layout import (
    DEFAULT_HEAP_SIZE,
    DEFAULT_STACK_SIZE,
    Image,
    VECTOR_TABLE_SIZE,
    align_up,
)
from ...image.mpu_config import background_region, code_region
from ...ir.instructions import Call
from ...ir.module import Module
from .compartments import Compartment
from .regions import RegionAssignment, assign_regions

ACES_RUNTIME_CODE_BYTES = 4096
ACES_COMPARTMENT_METADATA_BYTES = 72
ACES_PER_FUNCTION_METADATA_BYTES = 8
ACES_SWITCH_STUB_BYTES = 8

_WORD = 4


@dataclass
class CompartmentLayout:
    """Link products for one compartment."""

    compartment: Compartment
    templates: list[MPURegion] = field(default_factory=list)


class AcesImage(Image):
    """A firmware image armed with the ACES baseline."""

    kind = "aces"

    def __init__(self, module: Module, board: Board,
                 compartments: list[Compartment],
                 assignment: RegionAssignment,
                 strategy: str,
                 stack_size: int = DEFAULT_STACK_SIZE,
                 heap_size: int = DEFAULT_HEAP_SIZE):
        super().__init__(module, board, stack_size, heap_size)
        self.compartments = compartments
        self.assignment = assignment
        self.strategy = strategy
        self.layouts: dict[int, CompartmentLayout] = {}
        self.function_compartment = {
            f: c for c in compartments for f in c.functions
        }
        self.group_sections: dict[int, tuple[int, int]] = {}
        self.stack_base = 0
        self.runtime_code_bytes = 0
        self.metadata_bytes = 0
        self.instrumentation_bytes = 0

    def compartment_for(self, func) -> Optional[Compartment]:
        return self.function_compartment.get(func)

    def layout_of(self, compartment: Compartment) -> CompartmentLayout:
        return self.layouts[compartment.index]

    def privileged_code_bytes(self) -> int:
        """Application code lifted to the privileged level (PAC)."""
        return sum(c.code_bytes() for c in self.compartments if c.privileged)


def _cross_compartment_call_sites(module: Module,
                                  compartments: list[Compartment]) -> int:
    owner = {f: c.index for c in compartments for f in c.functions}
    sites = 0
    for func in module.defined_functions():
        src = owner.get(func)
        for inst in func.iter_instructions():
            if isinstance(inst, Call):
                dst = owner.get(inst.callee)
                if dst is not None and src is not None and dst != src:
                    sites += 1
    return sites


def build_aces_image(module: Module, board: Board,
                     compartments: list[Compartment],
                     assignment: Optional[RegionAssignment] = None,
                     strategy: str = "ACES1",
                     stack_size: int = DEFAULT_STACK_SIZE,
                     heap_size: int = DEFAULT_HEAP_SIZE) -> AcesImage:
    if assignment is None:
        assignment = assign_regions(compartments, module.writable_globals())
    image = AcesImage(module, board, compartments, assignment, strategy,
                      stack_size, heap_size)

    # -- flash ---------------------------------------------------------
    cursor = board.flash_base
    image.add_section("vectors", cursor, VECTOR_TABLE_SIZE, "code")
    cursor += VECTOR_TABLE_SIZE
    text_start = cursor
    cursor = image._layout_code(cursor)
    image.add_section("text", text_start, cursor - text_start, "code")

    image.instrumentation_bytes = (
        ACES_SWITCH_STUB_BYTES
        * _cross_compartment_call_sites(module, compartments)
    )
    image.add_section("switch_stubs", cursor, image.instrumentation_bytes,
                      "code")
    cursor += image.instrumentation_bytes

    image.runtime_code_bytes = ACES_RUNTIME_CODE_BYTES
    image.add_section("aces_runtime", cursor, image.runtime_code_bytes,
                      "monitor")
    cursor += image.runtime_code_bytes

    rodata_start = cursor
    cursor = image._layout_rodata(cursor)
    if cursor > rodata_start:
        image.add_section("rodata", rodata_start, cursor - rodata_start,
                          "rodata")

    image.metadata_bytes = sum(
        ACES_COMPARTMENT_METADATA_BYTES
        + ACES_PER_FUNCTION_METADATA_BYTES * len(c.functions)
        for c in compartments
    )
    image.add_section("metadata", cursor, image.metadata_bytes, "metadata")
    cursor += image.metadata_bytes

    # -- SRAM ----------------------------------------------------------------
    cursor = board.sram_base
    # Globals no compartment touches keep a plain data section.
    grouped = {v for g in assignment.groups for v in g.variables}
    loose_start = cursor
    for gvar in module.writable_globals():
        if gvar in grouped:
            continue
        address = align_up(cursor, max(gvar.value_type.alignment, _WORD))
        image._global_addresses[gvar] = address
        cursor = address + align_up(gvar.size, _WORD)
    image.add_section("data", loose_start, cursor - loose_start, "data")

    # One MPU-aligned section per variable group, largest first.
    ordered = sorted(
        enumerate(assignment.groups),
        key=lambda item: item[1].byte_size(), reverse=True,
    )
    for group_id, group in ordered:
        content = max(group.byte_size(), MIN_REGION_SIZE)
        region = region_size_for(content)
        base = align_up(cursor, region)
        image.group_sections[group_id] = (base, region)
        image.add_section(f"region.{group_id}", base, region, "opdata")
        offset = base
        for gvar in group.variables:
            address = align_up(offset, max(gvar.value_type.alignment, _WORD))
            image._global_addresses[gvar] = address
            offset = address + align_up(gvar.size, _WORD)
        cursor = base + region

    image.heap_base = align_up(cursor, 8)
    image.add_section("heap", image.heap_base, heap_size, "heap")

    sram_end = board.sram_base + board.sram_size
    image.stack_base = sram_end - stack_size
    image.stack_top = sram_end
    image.stack_limit = image.stack_base
    image.add_section("stack", image.stack_base, stack_size, "stack")
    if image.heap_base + heap_size > image.stack_base:
        raise ValueError("ACES image SRAM overflow")

    _build_templates(image)
    return image


def _build_templates(image: AcesImage) -> None:
    board = image.board
    group_index = {id(g): i for i, g in enumerate(image.assignment.groups)}
    for compartment in image.compartments:
        regions: list[MPURegion] = []
        regions.append(background_region().instantiate())
        regions.append(code_region(board.flash_base,
                                   board.flash_size).instantiate())
        regions.append(MPURegion(
            number=2, base=image.stack_base, size=image.stack_size,
            priv="RW", unpriv="RW",
        ))
        # Up to four data regions (the merge pass guarantees the bound).
        groups = image.assignment.groups_of(compartment)
        for slot, group in zip((3, 4, 5, 6), groups):
            base, size = image.group_sections[group_index[id(group)]]
            regions.append(MPURegion(
                number=slot, base=base, size=size, priv="RW", unpriv="RW",
            ))
        # One window spanning every peripheral the compartment touches.
        peripherals = sorted(compartment.resources.peripherals,
                             key=lambda p: p.base)
        if peripherals:
            low = peripherals[0].base
            high = max(p.end for p in peripherals)
            size = region_size_for(high - low)
            base = align_base(low, size)
            while base + size < high:
                size <<= 1
                base = align_base(low, size)
            regions.append(MPURegion(
                number=7, base=base, size=size, priv="RW", unpriv="RW",
            ))
        image.layouts[compartment.index] = CompartmentLayout(
            compartment=compartment, templates=regions,
        )

"""The paper's evaluation workloads (§6), authored in the firmware IR.

Six representative IoT applications plus CoreMark, each exposing a
:class:`~repro.apps.base.Application` via ``build()``:

* :mod:`repro.apps.pinlock` — smart lock over the UART (case study);
* :mod:`repro.apps.animation` — SD-card slideshow with DMA2D;
* :mod:`repro.apps.fatfs_usd` — FAT filesystem create/write/read/verify;
* :mod:`repro.apps.lcd_usd` — picture viewer with fade effects;
* :mod:`repro.apps.tcp_echo` — lwIP-style TCP echo server;
* :mod:`repro.apps.camera` — button-triggered capture to USB;
* :mod:`repro.apps.coremark` — CoreMark-style CPU benchmark.
"""

from . import animation, camera, coremark, fatfs_usd, lcd_usd, pinlock, tcp_echo
from .base import Application

ALL_APPS = {
    "PinLock": pinlock.build,
    "Animation": animation.build,
    "FatFs-uSD": fatfs_usd.build,
    "LCD-uSD": lcd_usd.build,
    "TCP-Echo": tcp_echo.build,
    "Camera": camera.build,
    "CoreMark": coremark.build,
}

# The five applications the ACES comparison uses (§6.4).
ACES_APPS = ("PinLock", "Animation", "FatFs-uSD", "LCD-uSD", "TCP-Echo")

__all__ = ["Application", "ALL_APPS", "ACES_APPS", "animation", "camera",
           "coremark", "fatfs_usd", "lcd_usd", "pinlock", "tcp_echo"]

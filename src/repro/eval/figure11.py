"""Figure 11: ET (execution-time over-privilege) per task, for OPEC
and the three ACES strategies on the five shared applications (§6.4).

Tasks are the operation entries.  One traced run of the vanilla build
provides each task's executed-function set (the GDB single-stepping of
the paper); "needed" globals depend on the scheme:

* OPEC — the operation's resource dependency;
* ACES — the union of the dependencies of every compartment the task's
  executed functions belong to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import cache
from ..apps import ACES_APPS
from ..baselines.aces.compartments import ALL_STRATEGIES
from ..image.layout import build_vanilla_image
from ..ir.values import GlobalVariable
from .metrics import et_value
from .report import render_table
from .tracing import TaskTrace, trace_tasks
from .workloads import aces_artifacts, build_app, opec_artifacts


def _rebase_globals(variables: set[GlobalVariable],
                    module) -> set[GlobalVariable]:
    """The same (by name) global variables, as ``module``'s objects."""
    return {module.get_global(v.name) for v in variables}

# ET depends only on *which* functions each task executes — not on how
# many times the workload repeats them — so the figure runs entirely on
# the downscaled profile.  Resource sets are keyed by object identity
# *within* each build's artifacts; the trace records function names,
# and all cross-build joins below resolve names inside the build being
# analysed, so cache-rehydrated artifacts (fresh module copies) yield
# the same values as a cold in-process build.
PROFILE = "quick"

_trace_cache: dict[str, TaskTrace] = {}


def task_trace(name: str) -> TaskTrace:
    """The §6.4 executed-function trace of ``name``'s vanilla build.

    Memoised in-process and persisted in the artifact store: the trace
    is a pure function of the firmware, the stimuli, and the simulator,
    all of which the trace digest covers.
    """
    if name not in _trace_cache:
        app = build_app(name, profile=PROFILE)
        entries = [spec.entry for spec in app.specs]
        store = cache.active_store()
        digest = ""
        if store is not None:
            digest = cache.trace_digest(
                cache.build_digest("vanilla", app.module, app.board),
                name, PROFILE, entries,
                max_instructions=app.max_instructions)
            cached = store.get(digest)
            if cached is not None:
                _trace_cache[name] = cached
                return cached
        image = build_vanilla_image(app.module, app.board)
        trace, _result = trace_tasks(image, entries, setup=app.setup,
                                     max_instructions=app.max_instructions)
        if store is not None:
            store.put(digest, trace)
        _trace_cache[name] = trace
    return _trace_cache[name]


def _used_globals(name: str, task: str) -> set[GlobalVariable]:
    """Globals of the functions the task actually executed, resolved
    in the OPEC artifacts' module."""
    artifacts = opec_artifacts(name, profile=PROFILE)
    used: set[GlobalVariable] = set()
    for func in task_trace(name).functions_of(task, artifacts.module):
        used |= artifacts.resources.function_resources(func).globals_all
    return {v for v in used if not v.is_const}


@dataclass
class Figure11Data:
    app: str
    tasks: list[str] = field(default_factory=list)
    et: dict[str, list[float]] = field(default_factory=dict)


def compute_app(name: str) -> Figure11Data:
    app = build_app(name, profile=PROFILE)
    opec = opec_artifacts(name, profile=PROFILE)
    tasks = [spec.entry for spec in app.specs]
    data = Figure11Data(app=name, tasks=tasks)

    opec_values = []
    for task in tasks:
        operation = opec.policy.operation_by_entry(task)
        needed = {v for v in operation.resources.globals_all if not v.is_const}
        opec_values.append(et_value(_used_globals(name, task), needed))
    data.et["OPEC"] = opec_values

    for strategy in ALL_STRATEGIES:
        artifacts = aces_artifacts(name, strategy, profile=PROFILE)
        values = []
        for task in tasks:
            executed = task_trace(name).functions_of(task, artifacts.module)
            involved = {
                artifacts.image.compartment_for(f) for f in executed
            } - {None}
            needed: set[GlobalVariable] = set()
            for compartment in involved:
                needed |= {
                    v for v in compartment.resources.globals_all
                    if not v.is_const
                }
            # ET intersects by identity; the ACES compartments may be a
            # different module copy than the OPEC artifacts (cache
            # rehydration), so rebase "needed" into the OPEC module.
            needed = _rebase_globals(needed, opec.module)
            values.append(et_value(_used_globals(name, task), needed))
        data.et[strategy] = values
    return data


def compute_figure(apps: tuple[str, ...] = ACES_APPS) -> list[Figure11Data]:
    return [compute_app(name) for name in apps]


def render(data: list[Figure11Data]) -> str:
    blocks = []
    for entry in data:
        rows = []
        for policy in (*ALL_STRATEGIES, "OPEC"):
            rows.append(
                (policy, *(f"{v:.2f}" for v in entry.et[policy]))
            )
        blocks.append(render_table(
            ["Policy", *(f"T{i + 1}" for i in range(len(entry.tasks)))],
            rows,
            title=(f"Figure 11({entry.app}): ET per task "
                   f"(tasks: {', '.join(entry.tasks)})"),
        ))
    return "\n\n".join(blocks)


def main() -> None:
    print(render(compute_figure()))


if __name__ == "__main__":
    main()

"""Benchmark + regeneration of Figure 10 (partition-time
over-privilege, §6.4).

The timed quantity is the ACES compartmentalisation + data-region
assignment (the partition-time work that creates the over-privilege);
the printed series is the cumulative PT distribution per strategy.
"""

from __future__ import annotations

import pytest

from repro.apps import ACES_APPS
from repro.baselines import build_aces
from repro.eval import figure10
from repro.eval.workloads import build_app


@pytest.mark.parametrize("app_name", ACES_APPS)
def test_figure10_partition(benchmark, app_name):
    app = build_app(app_name)

    def partition():
        return build_aces(app.module, app.board, "ACES2")

    artifacts = benchmark.pedantic(partition, rounds=1, iterations=1)
    assert artifacts.compartments


def test_print_figure10(benchmark):
    data = benchmark.pedantic(figure10.compute_figure, rounds=1, iterations=1)
    print()
    print(figure10.render(data))
    for entry in data:
        # C4: OPEC solves partition-time over-privilege — PT = 0 for
        # every operation of every application.
        assert all(v == 0.0 for v in entry.pt_values["OPEC"])
    # The ACES strategies exhibit PT > 0 somewhere across the suite
    # (the region-merge over-privilege of Figure 3).
    aces_mass = sum(
        v
        for entry in data
        for strategy in ("ACES1", "ACES2", "ACES3")
        for v in entry.pt_values[strategy]
    )
    assert aces_mass > 0.0

"""Type system for the firmware IR.

The IR models the subset of LLVM types the OPEC compiler passes care
about: fixed-width integers, pointers, arrays, structs, and function
types.  Every first-class runtime value is a scalar (integer or
pointer); aggregates exist only in memory and are manipulated through
``gep`` + ``load``/``store``, mirroring how clang lowers C at -O0.

All sizes are in bytes on a 32-bit machine (ARMv7-M): pointers are four
bytes, and struct fields are naturally aligned up to a maximum of four
bytes, which matches the AAPCS layout for the types we use.
"""

from __future__ import annotations

from typing import Iterable, Sequence

_POINTER_SIZE = 4
_MAX_ALIGN = 4


def _align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 1:
        return value
    return (value + alignment - 1) // alignment * alignment


class Type:
    """Base class of all IR types.

    Types are immutable and compared structurally.  ``size`` is the
    in-memory footprint in bytes; ``alignment`` the natural alignment.
    """

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def alignment(self) -> int:
        return min(self.size, _MAX_ALIGN) or 1

    @property
    def is_scalar(self) -> bool:
        """Whether values of this type can live in a virtual register."""
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Type) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def _key(self) -> tuple:
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)


class VoidType(Type):
    """The type of functions that return nothing."""

    @property
    def size(self) -> int:
        return 0

    def _key(self) -> tuple:
        return ("void",)

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """A fixed-width two's-complement integer (i8, i16, i32)."""

    def __init__(self, bits: int):
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    @property
    def size(self) -> int:
        return max(1, self.bits // 8)

    @property
    def is_scalar(self) -> bool:
        return True

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    def _key(self) -> tuple:
        return ("int", self.bits)

    def __str__(self) -> str:
        return f"i{self.bits}"


class PointerType(Type):
    """A pointer to ``pointee``.  Pointers are 32-bit addresses."""

    def __init__(self, pointee: Type):
        self.pointee = pointee

    @property
    def size(self) -> int:
        return _POINTER_SIZE

    @property
    def is_scalar(self) -> bool:
        return True

    def _key(self) -> tuple:
        return ("ptr", self.pointee._key())

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(Type):
    """A contiguous array ``[count x element]``."""

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    @property
    def size(self) -> int:
        return _align_up(self.element.size, self.element.alignment) * self.count

    @property
    def alignment(self) -> int:
        return self.element.alignment

    @property
    def stride(self) -> int:
        """Distance in bytes between consecutive elements."""
        return _align_up(self.element.size, self.element.alignment)

    def _key(self) -> tuple:
        return ("array", self.element._key(), self.count)

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class StructType(Type):
    """A named struct with naturally-aligned fields.

    Field offsets are computed once at construction; ``offset_of`` and
    ``field_type`` drive both ``gep`` lowering and the points-to
    analysis' field handling.
    """

    def __init__(self, name: str, fields: Sequence[tuple[str, Type]]):
        self.name = name
        self.fields = list(fields)
        self._offsets: list[int] = []
        offset = 0
        for _, ftype in self.fields:
            offset = _align_up(offset, ftype.alignment)
            self._offsets.append(offset)
            offset += ftype.size
        self._size = _align_up(offset, self.alignment) if self.fields else 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def alignment(self) -> int:
        if not self.fields:
            return 1
        return max(ftype.alignment for _, ftype in self.fields)

    def offset_of(self, index: int) -> int:
        return self._offsets[index]

    def field_type(self, index: int) -> Type:
        return self.fields[index][1]

    def field_index(self, name: str) -> int:
        for i, (fname, _) in enumerate(self.fields):
            if fname == name:
                return i
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def _key(self) -> tuple:
        return ("struct", self.name)

    def __str__(self) -> str:
        return f"%{self.name}"


class FunctionType(Type):
    """The type of a function: return type plus parameter types."""

    def __init__(self, ret: Type, params: Iterable[Type], variadic: bool = False):
        self.ret = ret
        self.params = tuple(params)
        self.variadic = variadic

    @property
    def size(self) -> int:
        return 0

    def _key(self) -> tuple:
        return ("fn", self.ret._key(), tuple(p._key() for p in self.params), self.variadic)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.variadic:
            params = f"{params}, ..." if params else "..."
        return f"{self.ret} ({params})"


VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)


def ptr(pointee: Type) -> PointerType:
    """Shorthand for :class:`PointerType`."""
    return PointerType(pointee)


def array(element: Type, count: int) -> ArrayType:
    """Shorthand for :class:`ArrayType`."""
    return ArrayType(element, count)

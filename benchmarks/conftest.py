"""Benchmark-suite configuration.

Benchmarks default to the paper's workload profiles (100 un/locks, 11
pictures, 5 + 45 TCP packets, …).  Export ``REPRO_PROFILE=quick`` for
a fast smoke run.  Heavy whole-system benchmarks run exactly once
(``pedantic``): they measure a deterministic simulator, so repetition
adds wall-clock without adding information.
"""

from __future__ import annotations

import os

os.environ.setdefault("REPRO_PROFILE", "paper")

#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation (§6).

Equivalent to ``python -m repro.eval.report_all``.  Use the quick
profile for a fast pass:

    REPRO_PROFILE=quick python examples/run_evaluation.py
"""

from repro.eval.report_all import main

if __name__ == "__main__":
    main()

"""Tests for the §7 concurrency extension: thread context switching."""

import pytest

import repro.ir as ir
from repro import build_opec
from repro.hw import Machine, SecurityAbort, stm32f4_discovery
from repro.interp import Interpreter
from repro.ir import I32, VOID
from repro.partition import OperationSpec
from repro.runtime.monitor import OpecMonitor
from repro.runtime.threads import ThreadSupport


def _two_thread_world():
    """Two operations sharing `shared`; each 'thread' runs in one."""
    module = ir.Module("threads")
    shared = module.add_global("shared", I32, 0)
    module.add_global("a_private", I32, 5)
    module.add_global("b_private", I32, 9)

    op_a, b = ir.define(module, "thread_a_op", VOID, [])
    b.store(b.add(b.load(shared), b.load(module.get_global("a_private"))),
            shared)
    b.ret_void()

    op_b, b = ir.define(module, "thread_b_op", VOID, [])
    b.store(b.add(b.load(shared), b.load(module.get_global("b_private"))),
            shared)
    b.ret_void()

    _m, b = ir.define(module, "main", I32, [])
    b.call(op_a)
    b.call(op_b)
    b.halt(b.load(shared))

    board = stm32f4_discovery()
    artifacts = build_opec(
        module, board,
        [OperationSpec("thread_a_op"), OperationSpec("thread_b_op")])
    machine = Machine(board)
    artifacts.image.initialize_memory(machine)
    monitor = OpecMonitor(machine, artifacts.image)
    interp = Interpreter(machine, artifacts.image, monitor)
    monitor.on_reset(interp)
    return artifacts, machine, monitor, interp


class TestContextSwitch:
    def test_shared_value_synchronised_across_threads(self):
        artifacts, machine, monitor, interp = _two_thread_world()
        threads = ThreadSupport(monitor)
        policy = artifacts.policy
        op_a = policy.operation_by_entry("thread_a_op")
        op_b = policy.operation_by_entry("thread_b_op")
        shared = artifacts.module.get_global("shared")
        image = artifacts.image

        threads.register_thread(1, op_a, interp.sp)
        threads.register_thread(2, op_b, interp.sp - 4096)

        # Thread 1 (in op A) writes its shadow of `shared`.
        threads.context_switch(interp, 1)
        machine.write_direct(image.shadow_address(op_a, shared), 4, 41)

        # Switching to thread 2 must publish the value into B's shadow.
        threads.context_switch(interp, 2)
        assert machine.read_direct(
            image.shadow_address(op_b, shared), 4) == 41
        assert machine.read_direct(image.public_addresses[shared], 4) == 41

        # Thread 2 updates; switching back refreshes A's shadow.
        machine.write_direct(image.shadow_address(op_b, shared), 4, 50)
        threads.context_switch(interp, 1)
        assert machine.read_direct(
            image.shadow_address(op_a, shared), 4) == 50

    def test_mpu_follows_the_resumed_thread(self):
        artifacts, machine, monitor, interp = _two_thread_world()
        threads = ThreadSupport(monitor)
        policy = artifacts.policy
        op_a = policy.operation_by_entry("thread_a_op")
        op_b = policy.operation_by_entry("thread_b_op")
        image = artifacts.image
        threads.register_thread(1, op_a, interp.sp)
        threads.register_thread(2, op_b, interp.sp - 4096)

        threads.context_switch(interp, 1)
        a_section = image.layout_of(op_a).section
        b_section = image.layout_of(op_b).section
        assert machine.mpu.allows(a_section.base, 4, False, True)
        assert not machine.mpu.allows(b_section.base, 4, False, True)

        threads.context_switch(interp, 2)
        assert machine.mpu.allows(b_section.base, 4, False, True)
        assert not machine.mpu.allows(a_section.base, 4, False, True)

    def test_stack_pointer_per_thread(self):
        artifacts, machine, monitor, interp = _two_thread_world()
        threads = ThreadSupport(monitor)
        policy = artifacts.policy
        op_a = policy.operation_by_entry("thread_a_op")
        op_b = policy.operation_by_entry("thread_b_op")
        top = interp.sp
        threads.register_thread(1, op_a, top)
        threads.register_thread(2, op_b, top - 4096)

        threads.context_switch(interp, 2)
        assert interp.sp == top - 4096
        interp.sp -= 64  # thread 2 pushes a frame
        threads.context_switch(interp, 1)
        assert interp.sp == top
        threads.context_switch(interp, 2)
        assert interp.sp == top - 4096 - 64  # resumed where it left off

    def test_switch_counts_and_costs(self):
        artifacts, machine, monitor, interp = _two_thread_world()
        threads = ThreadSupport(monitor)
        policy = artifacts.policy
        threads.register_thread(1, policy.operation_by_entry("thread_a_op"),
                                interp.sp)
        threads.register_thread(2, policy.operation_by_entry("thread_b_op"),
                                interp.sp - 4096)
        before = machine.cycles
        threads.context_switch(interp, 2)
        threads.context_switch(interp, 1)
        assert threads.switches == 2
        assert machine.cycles > before

"""Camera HAL authored in IR: DCMI snapshot driver ("stm32_hal_dcmi.c")
plus the I2C sensor-configuration shim ("ov5640.c") the Camera app's
init task pokes.
"""

from __future__ import annotations

from types import SimpleNamespace

from ...hw.board import Board
from ...ir import I32, Module, VOID, define, ptr

DCMI_CR = 0x00
DCMI_SR = 0x04
DCMI_DR = 0x28
SR_FNE = 1 << 2
I2C_CR1 = 0x00
I2C_DR = 0x10


def add_camera_hal(module: Module, board: Board) -> SimpleNamespace:
    dcmi = board.peripheral("DCMI").base
    i2c = board.peripheral("I2C1").base
    p32 = ptr(I32)

    sensor_init, b = define(module, "OV5640_Init", VOID, [],
                            source_file="ov5640.c")
    b.store(1, b.mmio(i2c + I2C_CR1))
    with b.for_range(0, 8) as load_i:
        # Write a small register-config table to the sensor.
        b.store(b.add(b.mul(load_i(), 3), 0x40), b.mmio(i2c + I2C_DR))
    b.ret_void()

    dcmi_capture, b = define(module, "DCMI_Snapshot", VOID, [p32, I32],
                             source_file="stm32_hal_dcmi.c")
    buffer, max_words = dcmi_capture.params
    b.store(1, b.mmio(dcmi + DCMI_CR))  # capture
    count = b.alloca(I32, name="count")
    b.store(0, count)
    with b.while_loop(
        lambda: b.and_(
            b.icmp("ne", b.and_(b.load(b.mmio(dcmi + DCMI_SR)), SR_FNE), 0),
            b.icmp("ult", b.load(count), max_words),
        )
    ):
        word = b.load(b.mmio(dcmi + DCMI_DR))
        b.store(word, b.gep(buffer, b.load(count)))
        b.store(b.add(b.load(count), 1), count)
    b.ret_void()

    return SimpleNamespace(sensor_init=sensor_init, snapshot=dcmi_capture)

"""Figure 11: ET (execution-time over-privilege) per task, for OPEC
and the three ACES strategies on the five shared applications (§6.4).

Tasks are the operation entries.  One traced run of the vanilla build
provides each task's executed-function set (the GDB single-stepping of
the paper); "needed" globals depend on the scheme:

* OPEC — the operation's resource dependency;
* ACES — the union of the dependencies of every compartment the task's
  executed functions belong to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps import ACES_APPS
from ..baselines.aces.compartments import ALL_STRATEGIES
from ..image.layout import build_vanilla_image
from ..ir.values import GlobalVariable
from .metrics import et_value
from .report import render_table
from .tracing import TaskTrace, trace_tasks
from .workloads import aces_artifacts, build_app, opec_artifacts

# ET depends only on *which* functions each task executes — not on how
# many times the workload repeats them — so the figure runs entirely on
# the downscaled profile.  Crucially, the traced run, the OPEC
# partition, and the ACES compartments must all see the SAME module
# instance: resource sets are keyed by object identity.
PROFILE = "quick"

_trace_cache: dict[str, TaskTrace] = {}


def task_trace(name: str) -> TaskTrace:
    if name not in _trace_cache:
        app = build_app(name, profile=PROFILE)
        image = build_vanilla_image(app.module, app.board)
        entries = [spec.entry for spec in app.specs]
        trace, _result = trace_tasks(image, entries, setup=app.setup,
                                     max_instructions=app.max_instructions)
        _trace_cache[name] = trace
    return _trace_cache[name]


def _used_globals(name: str, task: str) -> set[GlobalVariable]:
    """Globals of the functions the task actually executed."""
    artifacts = opec_artifacts(name, profile=PROFILE)
    used: set[GlobalVariable] = set()
    for func in task_trace(name).functions_of(task):
        used |= artifacts.resources.function_resources(func).globals_all
    return {v for v in used if not v.is_const}


@dataclass
class Figure11Data:
    app: str
    tasks: list[str] = field(default_factory=list)
    et: dict[str, list[float]] = field(default_factory=dict)


def compute_app(name: str) -> Figure11Data:
    app = build_app(name, profile=PROFILE)
    opec = opec_artifacts(name, profile=PROFILE)
    tasks = [spec.entry for spec in app.specs]
    data = Figure11Data(app=name, tasks=tasks)

    opec_values = []
    for task in tasks:
        operation = opec.policy.operation_by_entry(task)
        needed = {v for v in operation.resources.globals_all if not v.is_const}
        opec_values.append(et_value(_used_globals(name, task), needed))
    data.et["OPEC"] = opec_values

    for strategy in ALL_STRATEGIES:
        artifacts = aces_artifacts(name, strategy, profile=PROFILE)
        values = []
        for task in tasks:
            executed = task_trace(name).functions_of(task)
            involved = {
                artifacts.image.compartment_for(f) for f in executed
            } - {None}
            needed: set[GlobalVariable] = set()
            for compartment in involved:
                needed |= {
                    v for v in compartment.resources.globals_all
                    if not v.is_const
                }
            values.append(et_value(_used_globals(name, task), needed))
        data.et[strategy] = values
    return data


def compute_figure(apps: tuple[str, ...] = ACES_APPS) -> list[Figure11Data]:
    return [compute_app(name) for name in apps]


def render(data: list[Figure11Data]) -> str:
    blocks = []
    for entry in data:
        rows = []
        for policy in (*ALL_STRATEGIES, "OPEC"):
            rows.append(
                (policy, *(f"{v:.2f}" for v in entry.et[policy]))
            )
        blocks.append(render_table(
            ["Policy", *(f"T{i + 1}" for i in range(len(entry.tasks)))],
            rows,
            title=(f"Figure 11({entry.app}): ET per task "
                   f"(tasks: {', '.join(entry.tasks)})"),
        ))
    return "\n\n".join(blocks)


def main() -> None:
    print(render(compute_figure()))


if __name__ == "__main__":
    main()

"""Regenerate every table and figure of the paper's evaluation (§6)."""

from __future__ import annotations

from . import figure9, figure10, figure11, table1, table2, table3


def main() -> None:
    sections = [
        ("Table 1", table1),
        ("Figure 9", figure9),
        ("Table 2", table2),
        ("Figure 10", figure10),
        ("Figure 11", figure11),
        ("Table 3", table3),
    ]
    for name, module in sections:
        print("=" * 72)
        if hasattr(module, "compute_table"):
            print(module.render(module.compute_table()))
        else:
            print(module.render(module.compute_figure()))
        print()


if __name__ == "__main__":
    main()
